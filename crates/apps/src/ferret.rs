//! The `ferret` co-tenant: a CPU-hungry neighbour, not a packet app.
//!
//! Paper §V-E shares Metronome's cores with "a VM running ferret, a
//! CPU-intensive, image similarity search task coming from the PARSEC
//! benchmarking suite", measuring (a) how much the co-tenant slows down
//! and (b) whether packet processing survives (Fig. 12, Table II).
//!
//! We model ferret as a fixed amount of CPU work split across worker
//! threads — exactly what matters for those experiments: its completion
//! time is `total work ÷ CPU share`, modulated by the scheduler and the
//! contention-inflation model. The standalone duration is taken from
//! Fig. 12's "alone / 1 core" bar (≈240 s); experiments shrink it
//! proportionally to keep simulations tractable and report the ratio,
//! which is what the paper's figure conveys.

use metronome_sim::{Cycles, Nanos};

/// Specification of a ferret run.
#[derive(Clone, Copy, Debug)]
pub struct FerretJob {
    /// Total CPU work of the whole job.
    pub total_cycles: Cycles,
    /// Worker threads (the paper runs 1 or 3, one per core).
    pub n_workers: usize,
    /// Work chunk per scheduler turn (bounds preemption latency error).
    pub chunk: Cycles,
}

impl FerretJob {
    /// A job that takes `standalone` wall time on `n_workers` uncontended
    /// cores at `mhz`.
    pub fn sized_for(standalone: Nanos, n_workers: usize, mhz: u32) -> Self {
        assert!(n_workers >= 1);
        let per_core = Cycles::from_duration(standalone, mhz);
        FerretJob {
            total_cycles: Cycles(per_core.0 * n_workers as u64),
            n_workers,
            chunk: Cycles::from_duration(Nanos::from_micros(100), mhz),
        }
    }

    /// Work assigned to each worker.
    pub fn cycles_per_worker(&self) -> Cycles {
        Cycles(self.total_cycles.0 / self.n_workers as u64)
    }

    /// Expected standalone duration at `mhz` with all workers uncontended.
    pub fn standalone_duration(&self, mhz: u32) -> Nanos {
        self.cycles_per_worker().at_mhz(mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_for_round_trips() {
        let job = FerretJob::sized_for(Nanos::from_secs(2), 3, 2100);
        assert_eq!(job.n_workers, 3);
        assert_eq!(job.standalone_duration(2100), Nanos::from_secs(2));
    }

    #[test]
    fn work_split_across_workers() {
        let job = FerretJob::sized_for(Nanos::from_secs(1), 4, 2100);
        assert_eq!(job.cycles_per_worker().0 * 4, job.total_cycles.0);
    }

    #[test]
    fn chunking_is_fine_grained() {
        let job = FerretJob::sized_for(Nanos::from_secs(1), 1, 2100);
        // Many chunks per job: preemption granularity stays far below the
        // completion time.
        assert!(job.cycles_per_worker().0 / job.chunk.0 > 1_000);
    }
}
