//! FloWatcher-DPDK: line-rate per-flow traffic monitoring.
//!
//! Paper §V-G: "FloWatcher is a DPDK-based traffic monitor application
//! providing tunable and fine-grained statistics, both at packet and
//! per-flow level. FloWatcher can either act through a run to completion
//! model or a pipeline one: we chose the former since the receiving thread
//! is also calculating the statistics, therefore providing a more
//! challenging scenario for Metronome."
//!
//! This implementation keeps the statistics FloWatcher reports: per-packet
//! counters (count, bytes, size histogram) and a per-flow table (packets,
//! bytes, inter-arrival tracking) keyed on the 5-tuple.
//!
//! **Cycle calibration (72 cycles/packet).** Two anchors from §V-G: the
//! monitor sustains 64 B line rate run-to-completion on one core with
//! zero loss, and Metronome runs it at ≈50% CPU *at line rate* — which
//! pins ρ = λ/µ ≈ 0.5, i.e. µ ≈ 29 Mpps ⇒ ≈72 cycles at 2.1 GHz (simple
//! per-packet + per-flow counter updates, comparable to an LPM lookup).

use crate::processor::{PacketProcessor, Verdict};
use metronome_dpdk::Mbuf;
use metronome_net::headers::parse_frame;
use metronome_net::ExactMatch;
use metronome_sim::stats::Histogram;
use metronome_sim::Nanos;

/// Per-flow record.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen (frame lengths).
    pub bytes: u64,
    /// First packet arrival.
    pub first_seen: Nanos,
    /// Most recent packet arrival.
    pub last_seen: Nanos,
}

/// The monitor application.
pub struct FloWatcher {
    flows: ExactMatch<FlowStats>,
    /// Total packets observed.
    pub packets: u64,
    /// Total bytes observed.
    pub bytes: u64,
    /// Malformed packets (unparseable).
    pub malformed: u64,
    /// Packet-size histogram.
    pub sizes: Histogram,
    /// Packets whose flow could not be tracked (table full).
    pub untracked: u64,
}

impl FloWatcher {
    /// Monitor with capacity for roughly `max_flows` concurrent flows.
    pub fn new(max_flows: usize) -> Self {
        FloWatcher {
            flows: ExactMatch::with_capacity(max_flows),
            packets: 0,
            bytes: 0,
            malformed: 0,
            sizes: Histogram::new(5),
            untracked: 0,
        }
    }

    /// Number of distinct flows tracked.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Look up one flow's record.
    pub fn flow(&self, tuple: &metronome_net::FiveTuple) -> Option<&FlowStats> {
        self.flows.get(tuple)
    }

    /// Iterate all tracked flows.
    pub fn iter_flows(&self) -> impl Iterator<Item = (&metronome_net::FiveTuple, &FlowStats)> {
        self.flows.iter()
    }

    /// Mean packet size seen so far.
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }
}

impl PacketProcessor for FloWatcher {
    fn name(&self) -> &'static str {
        "flowatcher"
    }

    /// See module docs: pinned by the paper's ≈50% CPU at line rate.
    fn cycles_per_packet(&self) -> u64 {
        72
    }

    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict {
        let len = mbuf.len() as u64;
        self.packets += 1;
        self.bytes += len;
        self.sizes.record(len);
        let parsed = match parse_frame(mbuf.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.malformed += 1;
                // A monitor still counts unparseable packets, then moves on.
                return Verdict::Forward;
            }
        };
        let now = mbuf.arrival;
        match self.flows.entry_or_insert_with(parsed.tuple, || FlowStats {
            first_seen: now,
            ..FlowStats::default()
        }) {
            Ok(stats) => {
                stats.packets += 1;
                stats.bytes += len;
                stats.last_seen = now;
            }
            Err(_) => {
                self.untracked += 1;
            }
        }
        Verdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_net::headers::{build_udp_frame, Mac};
    use metronome_net::FiveTuple;
    use std::net::Ipv4Addr;

    fn mk(tuple: &FiveTuple, arrival: Nanos) -> Mbuf {
        let mut m = Mbuf::from_bytes(build_udp_frame(
            Mac::local(1),
            Mac::local(2),
            tuple,
            &[],
            64,
        ));
        m.arrival = arrival;
        m
    }

    fn t(i: u32) -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::from(0x0a00_0000 + i),
            1000,
            Ipv4Addr::new(10, 9, 9, 9),
            2000,
        )
    }

    #[test]
    fn counts_packets_and_flows() {
        let mut fw = FloWatcher::new(1024);
        for i in 0..10u32 {
            for k in 0..5u64 {
                let mut m = mk(&t(i), Nanos::from_micros(k));
                assert_eq!(fw.process(&mut m), Verdict::Forward);
            }
        }
        assert_eq!(fw.packets, 50);
        assert_eq!(fw.flow_count(), 10);
        assert_eq!(fw.bytes, 50 * 64);
        assert_eq!(fw.mean_packet_size(), 64.0);
    }

    #[test]
    fn per_flow_records_track_arrivals() {
        let mut fw = FloWatcher::new(64);
        fw.process(&mut mk(&t(1), Nanos::from_micros(10)));
        fw.process(&mut mk(&t(1), Nanos::from_micros(30)));
        let s = fw.flow(&t(1)).unwrap();
        assert_eq!(s.packets, 2);
        assert_eq!(s.first_seen, Nanos::from_micros(10));
        assert_eq!(s.last_seen, Nanos::from_micros(30));
    }

    #[test]
    fn malformed_counted_not_dropped() {
        let mut fw = FloWatcher::new(64);
        let mut junk = Mbuf::from_bytes(bytes::BytesMut::from(&[0xFFu8; 60][..]));
        assert_eq!(fw.process(&mut junk), Verdict::Forward);
        assert_eq!(fw.malformed, 1);
        assert_eq!(fw.packets, 1);
        assert_eq!(fw.flow_count(), 0);
    }

    #[test]
    fn size_histogram_populated() {
        let mut fw = FloWatcher::new(64);
        fw.process(&mut mk(&t(1), Nanos::ZERO));
        assert_eq!(fw.sizes.count(), 1);
        assert_eq!(fw.sizes.median(), Some(64));
    }

    #[test]
    fn table_exhaustion_counted() {
        let mut fw = FloWatcher::new(1); // tiny: 2 buckets × 8 slots
        let mut exhausted = false;
        for i in 0..1000u32 {
            fw.process(&mut mk(&t(i), Nanos::ZERO));
            if fw.untracked > 0 {
                exhausted = true;
                break;
            }
        }
        assert!(exhausted, "expected flow-table exhaustion");
    }

    #[test]
    fn sustains_line_rate_on_one_core() {
        let fw = FloWatcher::new(1024);
        assert!(
            fw.mu_pps(2100, 32) > 14.88e6,
            "µ {} must exceed 64B line rate",
            fw.mu_pps(2100, 32)
        );
    }
}
