//! The IPsec Security Gateway application.
//!
//! Paper §V-G: "This application acts as an IPsec end tunnel for both
//! inbound and outbound network traffic. It takes advantage of the NIC
//! offloading capabilities for cryptographic operations, while
//! encapsulation and decapsulation are performed by the application
//! itself. Our tests perform encryption of the incoming packets through
//! the AES-CBC 128-bit algorithm as packets are later sent to the
//! unprotected port. The DPDK sample application achieves a maximum
//! outbound throughput of 5.61 Mpps with 64B packets."
//!
//! **Cycle calibration (370 cycles/packet).** 5.61 Mpps at 2.1 GHz is
//! ≈374 cycles per packet end to end; we budget ~370 for the gateway and
//! let the shared burst overhead supply the remainder. The *functional*
//! transformation here really runs AES-128-CBC in software (so the
//! round-trip is verifiable); the cost model reflects the paper's
//! offloaded-crypto deployment, where the CPU pays for ESP framing, SA
//! lookup and descriptor juggling but not the cipher itself.

use crate::processor::{PacketProcessor, Verdict};
use metronome_dpdk::Mbuf;
use metronome_net::esp::SecurityAssociation;
use metronome_sim::Rng;
use std::net::Ipv4Addr;

/// Gateway direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Protect: plaintext in, ESP tunnel out.
    Outbound,
    /// Unprotect: ESP in, plaintext out.
    Inbound,
}

/// IPsec security gateway over one SA.
pub struct IpsecGateway {
    sa: SecurityAssociation,
    direction: Direction,
    iv_rng: Rng,
    /// Successfully transformed packets.
    pub processed: u64,
    /// Packets dropped (malformed, wrong SPI, padding errors).
    pub dropped: u64,
}

impl IpsecGateway {
    /// Outbound (encrypting) gateway with a fixed demo SA.
    pub fn outbound() -> Self {
        Self::new(Direction::Outbound, 0x900D_5EC5, 7)
    }

    /// Inbound (decrypting) gateway matching [`IpsecGateway::outbound`].
    pub fn inbound() -> Self {
        Self::new(Direction::Inbound, 0x900D_5EC5, 7)
    }

    /// Gateway with explicit SPI and IV seed.
    pub fn new(direction: Direction, spi: u32, iv_seed: u64) -> Self {
        IpsecGateway {
            sa: SecurityAssociation::new(
                spi,
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 2, 1),
                b"metronome-secret",
            ),
            direction,
            iv_rng: Rng::new(iv_seed),
            processed: 0,
            dropped: 0,
        }
    }
}

impl PacketProcessor for IpsecGateway {
    fn name(&self) -> &'static str {
        match self.direction {
            Direction::Outbound => "ipsec-secgw-out",
            Direction::Inbound => "ipsec-secgw-in",
        }
    }

    /// See module docs: back-solved from the paper's 5.61 Mpps ceiling.
    fn cycles_per_packet(&self) -> u64 {
        370
    }

    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict {
        match self.direction {
            Direction::Outbound => {
                let mut iv = [0u8; 16];
                for b in iv.iter_mut() {
                    *b = self.iv_rng.next_u64() as u8;
                }
                match self.sa.encapsulate(mbuf.bytes(), &iv) {
                    Ok(out) => {
                        mbuf.replace_data(out);
                        self.processed += 1;
                        Verdict::Forward
                    }
                    Err(_) => {
                        self.dropped += 1;
                        Verdict::Drop
                    }
                }
            }
            Direction::Inbound => match self.sa.decapsulate(mbuf.bytes()) {
                Ok(out) => {
                    mbuf.replace_data(out);
                    self.processed += 1;
                    Verdict::Forward
                }
                Err(_) => {
                    self.dropped += 1;
                    Verdict::Drop
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_net::headers::{build_udp_frame, parse_frame, Mac};
    use metronome_net::{FiveTuple, IpProto};

    fn plain() -> Mbuf {
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            2000,
        );
        Mbuf::from_bytes(build_udp_frame(
            Mac::local(1),
            Mac::local(2),
            &t,
            b"top secret",
            64,
        ))
    }

    #[test]
    fn outbound_produces_esp() {
        let mut gw = IpsecGateway::outbound();
        let mut m = plain();
        assert_eq!(gw.process(&mut m), Verdict::Forward);
        let p = parse_frame(m.bytes()).unwrap();
        assert_eq!(p.tuple.proto, IpProto::Esp);
        assert_eq!(gw.processed, 1);
    }

    #[test]
    fn full_tunnel_round_trip() {
        let mut out = IpsecGateway::outbound();
        let mut inb = IpsecGateway::inbound();
        let mut m = plain();
        let original = m.bytes().to_vec();
        assert_eq!(out.process(&mut m), Verdict::Forward);
        assert_ne!(m.bytes(), &original[..]);
        assert_eq!(inb.process(&mut m), Verdict::Forward);
        assert_eq!(m.bytes(), &original[..]);
    }

    #[test]
    fn distinct_ivs_per_packet() {
        let mut gw = IpsecGateway::outbound();
        let mut a = plain();
        let mut b = plain();
        gw.process(&mut a);
        gw.process(&mut b);
        // Identical plaintext frames must encrypt differently.
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn inbound_rejects_garbage() {
        let mut gw = IpsecGateway::inbound();
        let mut m = plain(); // plaintext is not a valid ESP packet
        assert_eq!(gw.process(&mut m), Verdict::Drop);
        assert_eq!(gw.dropped, 1);
    }

    #[test]
    fn calibrated_mu_matches_paper_ceiling() {
        let gw = IpsecGateway::outbound();
        let mu = gw.mu_pps(2100, 32);
        // Paper: 5.61 Mpps max outbound with 64B packets.
        assert!(
            (5.3e6..6.0e6).contains(&mu),
            "IPsec µ = {mu}, expected ≈5.61 Mpps"
        );
    }
}
