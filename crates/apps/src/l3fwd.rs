//! The `l3fwd` application: DPDK's layer-3 forwarder.
//!
//! The paper's workhorse (§V): "The l3fwd sample application acts as a
//! software L3 forwarder either through the longest prefix matching (LPM)
//! mechanism or the exact match (EM) one. We chose the LPM approach as it
//! is the most computation-expensive one."
//!
//! Per packet: parse Ethernet/IPv4, look up the destination in the route
//! table, rewrite MACs, decrement TTL with incremental checksum update,
//! and emit on the next hop.
//!
//! **Cycle calibration (70 cycles/packet).** Table I of the paper measures
//! `B ≈ 1.04–1.15 × V` at 14.88 Mpps line rate, i.e. `ρ = B/(V+B) ≈
//! 0.50–0.53`, so the single-core drain rate is `µ = λ/ρ ≈ 28–30 Mpps`.
//! At 2.1 GHz that is ≈70 cycles per packet — in line with published DPDK
//! l3fwd numbers for LPM on Xeon-class cores. The value also keeps the
//! drain tail stable under the 1.45× shared-core cache-thrash inflation
//! (see `PacketProcessor::cycles_per_burst`).

use crate::processor::{BurstVerdicts, PacketProcessor, Verdict};
use metronome_dpdk::Mbuf;
use metronome_net::headers::{l3fwd_rewrite, parse_frame, Mac};
use metronome_net::lpm::Lpm;
use metronome_net::{ExactMatch, FiveTuple};
use std::net::Ipv4Addr;

/// Which lookup engine the forwarder uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LookupMode {
    /// Longest prefix match (DIR-24-8) — the paper's choice.
    Lpm,
    /// Exact match on the 5-tuple.
    ExactMatch,
}

/// A forwarding next hop: egress port and the MACs to write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NextHop {
    /// Egress port id.
    pub port: u16,
    /// Source MAC of the egress interface.
    pub src_mac: Mac,
    /// Next-hop router MAC.
    pub dst_mac: Mac,
}

/// LPM-based L3 forwarder with per-verdict counters.
pub struct L3Fwd {
    mode: LookupMode,
    lpm: Lpm,
    em: ExactMatch<u16>,
    hops: Vec<NextHop>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (no route, parse error, TTL).
    pub dropped: u64,
    // Burst-path scratch (reused across bursts so the batched path never
    // allocates in steady state): destinations of parseable frames, their
    // indices into the burst, and the bulk-lookup results.
    burst_dsts: Vec<Ipv4Addr>,
    burst_idx: Vec<usize>,
    burst_hops: Vec<Option<u16>>,
}

impl L3Fwd {
    /// Forwarder with the paper-style synthetic route table: one /8 per
    /// next hop (the l3fwd sample's default `l3fwd_lpm_route_array` shape),
    /// plus a handful of longer prefixes to exercise the second stage.
    pub fn with_sample_routes(n_hops: usize) -> Self {
        assert!((1..=64).contains(&n_hops));
        let mut lpm = Lpm::with_first_stage_bits(16, 256);
        let mut hops = Vec::new();
        for h in 0..n_hops {
            hops.push(NextHop {
                port: h as u16,
                src_mac: Mac::local(0x100 + h as u32),
                dst_mac: Mac::local(0x200 + h as u32),
            });
            // 10.h.0.0/16 plus a /24 carve-out pointing at the next hop,
            // to exercise longest-prefix override on every table.
            lpm.add(Ipv4Addr::new(10, h as u8, 0, 0), 16, h as u16)
                .expect("route");
            lpm.add(
                Ipv4Addr::new(10, h as u8, 7, 0),
                24,
                ((h + 1) % n_hops) as u16,
            )
            .expect("route");
        }
        L3Fwd {
            mode: LookupMode::Lpm,
            lpm,
            em: ExactMatch::with_capacity(1024),
            hops,
            forwarded: 0,
            dropped: 0,
            burst_dsts: Vec::new(),
            burst_idx: Vec::new(),
            burst_hops: Vec::new(),
        }
    }

    /// Switch to exact-match mode, registering the given flows.
    pub fn into_exact_match(mut self, flows: &[(FiveTuple, u16)]) -> Self {
        self.mode = LookupMode::ExactMatch;
        for &(t, hop) in flows {
            self.em.insert(t, hop).expect("EM capacity");
        }
        self
    }

    /// Next hops table.
    pub fn hops(&self) -> &[NextHop] {
        &self.hops
    }

    /// Look up the next hop for a destination (LPM mode).
    pub fn route(&self, dst: Ipv4Addr) -> Option<&NextHop> {
        self.lpm.lookup(dst).and_then(|h| self.hops.get(h as usize))
    }
}

impl PacketProcessor for L3Fwd {
    fn name(&self) -> &'static str {
        match self.mode {
            LookupMode::Lpm => "l3fwd-lpm",
            LookupMode::ExactMatch => "l3fwd-em",
        }
    }

    /// See module docs: back-solved from Table I (`µ ≈ 29 Mpps`).
    fn cycles_per_packet(&self) -> u64 {
        match self.mode {
            LookupMode::Lpm => 70,
            // EM is slightly cheaper ("LPM ... most computation-expensive").
            LookupMode::ExactMatch => 64,
        }
    }

    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict {
        let parsed = match parse_frame(mbuf.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.dropped += 1;
                return Verdict::Drop;
            }
        };
        let hop = match self.mode {
            LookupMode::Lpm => self.lpm.lookup(parsed.tuple.dst_ip),
            LookupMode::ExactMatch => self.em.get(&parsed.tuple).copied(),
        };
        let Some(hop) = hop.and_then(|h| self.hops.get(h as usize)).copied() else {
            self.dropped += 1;
            return Verdict::Drop;
        };
        if l3fwd_rewrite(mbuf.bytes_mut(), hop.src_mac, hop.dst_mac) {
            mbuf.port = hop.port;
            self.forwarded += 1;
            Verdict::Forward
        } else {
            self.dropped += 1;
            Verdict::Drop
        }
    }

    /// The batched forwarding path (`rte_lpm_lookup_bulk` style): parse
    /// the whole burst, resolve every destination in one bulk LPM pass,
    /// then rewrite — so the route table's cache misses are paid once per
    /// burst, back to back, instead of interleaved with header work.
    /// Observably equivalent to the per-packet loop (see the
    /// `PacketProcessor::process_burst` contract); exact-match mode has no
    /// bulk lookup and keeps the default loop shape.
    fn process_burst(&mut self, mbufs: &mut [Mbuf]) -> BurstVerdicts {
        let mut verdicts = BurstVerdicts::default();
        if self.mode == LookupMode::ExactMatch {
            for mbuf in mbufs {
                verdicts.count(self.process(mbuf));
            }
            return verdicts;
        }
        // Stage 1: parse, collecting the destinations of parseable frames.
        self.burst_dsts.clear();
        self.burst_idx.clear();
        self.burst_hops.clear();
        for (i, mbuf) in mbufs.iter().enumerate() {
            match parse_frame(mbuf.bytes()) {
                Ok(p) => {
                    self.burst_dsts.push(p.tuple.dst_ip);
                    self.burst_idx.push(i);
                }
                Err(_) => {
                    self.dropped += 1;
                    verdicts.count(Verdict::Drop);
                }
            }
        }
        // Stage 2: one bulk LPM pass over the burst's destinations.
        self.lpm.lookup_bulk(&self.burst_dsts, &mut self.burst_hops);
        // Stage 3: rewrite and count, exactly as the scalar path would.
        for (k, &i) in self.burst_idx.iter().enumerate() {
            let mbuf = &mut mbufs[i];
            let hop = self.burst_hops[k].and_then(|h| self.hops.get(h as usize).copied());
            let v = match hop {
                Some(hop) if l3fwd_rewrite(mbuf.bytes_mut(), hop.src_mac, hop.dst_mac) => {
                    mbuf.port = hop.port;
                    self.forwarded += 1;
                    Verdict::Forward
                }
                _ => {
                    self.dropped += 1;
                    Verdict::Drop
                }
            };
            verdicts.count(v);
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_net::headers::build_udp_frame;

    fn frame_to(dst: Ipv4Addr) -> Mbuf {
        let t = FiveTuple::udp(Ipv4Addr::new(192, 168, 0, 1), 1000, dst, 2000);
        Mbuf::from_bytes(build_udp_frame(Mac::local(1), Mac::local(2), &t, &[], 64))
    }

    #[test]
    fn forwards_on_matching_route() {
        let mut fwd = L3Fwd::with_sample_routes(4);
        let mut m = frame_to(Ipv4Addr::new(10, 2, 1, 1));
        assert_eq!(fwd.process(&mut m), Verdict::Forward);
        assert_eq!(fwd.forwarded, 1);
        assert_eq!(m.port, 2);
        let p = parse_frame(m.bytes()).unwrap();
        assert_eq!(p.ttl, 63);
        assert_eq!(p.src_mac, Mac::local(0x102));
        assert_eq!(p.dst_mac, Mac::local(0x202));
    }

    #[test]
    fn carveout_route_overrides() {
        let mut fwd = L3Fwd::with_sample_routes(4);
        // 10.2.7.0/24 maps to hop 3 ((2+1) % 4).
        let mut m = frame_to(Ipv4Addr::new(10, 2, 7, 9));
        assert_eq!(fwd.process(&mut m), Verdict::Forward);
        assert_eq!(m.port, 3);
    }

    #[test]
    fn drops_unroutable() {
        let mut fwd = L3Fwd::with_sample_routes(2);
        let mut m = frame_to(Ipv4Addr::new(172, 16, 0, 1));
        assert_eq!(fwd.process(&mut m), Verdict::Drop);
        assert_eq!(fwd.dropped, 1);
    }

    #[test]
    fn drops_garbage() {
        let mut fwd = L3Fwd::with_sample_routes(2);
        let mut m = Mbuf::from_bytes(bytes::BytesMut::from(&[0u8; 20][..]));
        assert_eq!(fwd.process(&mut m), Verdict::Drop);
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut fwd = L3Fwd::with_sample_routes(2);
        let mut m = frame_to(Ipv4Addr::new(10, 1, 1, 1));
        // Force TTL to 1.
        m.bytes_mut()[14 + 8] = 1;
        assert_eq!(fwd.process(&mut m), Verdict::Drop);
    }

    #[test]
    fn exact_match_mode() {
        let t = FiveTuple::udp(
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            Ipv4Addr::new(10, 1, 2, 3),
            2000,
        );
        let mut fwd = L3Fwd::with_sample_routes(4).into_exact_match(&[(t, 1)]);
        assert_eq!(fwd.name(), "l3fwd-em");
        let mut m = frame_to(Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(fwd.process(&mut m), Verdict::Forward);
        assert_eq!(m.port, 1);
        // A flow not in the EM table drops even if LPM would route it.
        let other = FiveTuple::udp(
            Ipv4Addr::new(192, 168, 0, 9),
            1,
            Ipv4Addr::new(10, 1, 2, 3),
            2,
        );
        let mut m2 = Mbuf::from_bytes(build_udp_frame(
            Mac::local(1),
            Mac::local(2),
            &other,
            &[],
            64,
        ));
        assert_eq!(fwd.process(&mut m2), Verdict::Drop);
    }

    #[test]
    fn burst_path_matches_per_packet_path() {
        // Mixed burst: routable, carve-out, unroutable, garbage, TTL=1.
        let build = || -> Vec<Mbuf> {
            let mut frames = vec![
                frame_to(Ipv4Addr::new(10, 2, 1, 1)),
                frame_to(Ipv4Addr::new(10, 2, 7, 9)),
                frame_to(Ipv4Addr::new(172, 16, 0, 1)),
                Mbuf::from_bytes(bytes::BytesMut::from(&[0u8; 20][..])),
                frame_to(Ipv4Addr::new(10, 1, 1, 1)),
            ];
            frames[4].bytes_mut()[14 + 8] = 1; // force TTL expiry
            frames
        };
        let mut scalar = L3Fwd::with_sample_routes(4);
        let mut scalar_frames = build();
        let mut scalar_verdicts = BurstVerdicts::default();
        for m in &mut scalar_frames {
            scalar_verdicts.count(scalar.process(m));
        }
        let mut batched = L3Fwd::with_sample_routes(4);
        let mut batched_frames = build();
        let batched_verdicts = batched.process_burst(&mut batched_frames);
        assert_eq!(batched_verdicts, scalar_verdicts);
        assert_eq!(batched.forwarded, scalar.forwarded);
        assert_eq!(batched.dropped, scalar.dropped);
        for (a, b) in scalar_frames.iter().zip(&batched_frames) {
            assert_eq!(a.bytes(), b.bytes(), "rewrites must be identical");
            assert_eq!(a.port, b.port);
        }
    }

    #[test]
    fn calibrated_mu_near_paper() {
        let fwd = L3Fwd::with_sample_routes(4);
        let mu = fwd.mu_pps(2100, 32);
        // Table I back-solve: µ ≈ 28–29 Mpps at 2.1 GHz.
        assert!((26.0e6..30.0e6).contains(&mu), "µ = {mu}");
    }

    #[test]
    fn route_lookup_api() {
        let fwd = L3Fwd::with_sample_routes(3);
        assert_eq!(fwd.route(Ipv4Addr::new(10, 1, 0, 5)).unwrap().port, 1);
        assert!(fwd.route(Ipv4Addr::new(9, 9, 9, 9)).is_none());
    }
}
