//! # metronome-apps — the applications of the paper's evaluation
//!
//! Three DPDK applications adapted to Metronome (paper §V-G) plus the
//! CPU-hungry co-tenant of the sharing experiments (§V-E):
//!
//! * [`l3fwd::L3Fwd`] — layer-3 forwarder, LPM (DIR-24-8) or exact-match;
//!   the workhorse of Figs. 5–15.
//! * [`ipsec::IpsecGateway`] — ESP tunnel gateway with real AES-128-CBC
//!   transformation and offload-calibrated cost (Fig. 16a).
//! * [`flowatcher::FloWatcher`] — per-packet + per-flow statistics monitor
//!   in run-to-completion mode (Fig. 16b).
//! * [`ferret::FerretJob`] — the PARSEC-style co-located CPU hog
//!   (Fig. 12, Table II).
//!
//! Applications implement [`processor::PacketProcessor`]: a functional
//! per-packet transformation plus a per-packet cycle cost calibrated from
//! the paper's own measured capacities (see each module's docs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ferret;
pub mod flowatcher;
pub mod ipsec;
pub mod l3fwd;
pub mod processor;

pub use ferret::FerretJob;
pub use flowatcher::FloWatcher;
pub use ipsec::IpsecGateway;
pub use l3fwd::L3Fwd;
pub use processor::{BurstVerdicts, PacketProcessor, Verdict};
