//! The packet-processor abstraction shared by all applications.
//!
//! Every application the paper adapts to Metronome (§V-G) is, at the
//! retrieval layer, a function applied per packet plus a per-packet CPU
//! cost. The discrete-event simulator only needs the cost (it processes
//! packets in aggregate); the functional path (unit tests, examples, the
//! real-thread runtime) calls [`PacketProcessor::process`] on real frames
//! — or, on the hot path, [`PacketProcessor::process_burst`] on a whole
//! retrieval burst at once, mirroring how DPDK applications consume the
//! `rte_rx_burst` result array.
//!
//! Cycle costs are calibrated from the paper's own single-core capacities
//! at 2.1 GHz — see each application's docs and DESIGN.md §3.

use metronome_dpdk::Mbuf;

/// Outcome of processing one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Forward the (possibly rewritten) packet.
    Forward,
    /// Drop it (parse error, TTL expiry, policy).
    Drop,
}

/// Aggregate outcome of processing one retrieval burst.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BurstVerdicts {
    /// Packets whose verdict was [`Verdict::Forward`].
    pub forwarded: u64,
    /// Packets whose verdict was [`Verdict::Drop`].
    pub dropped: u64,
}

impl BurstVerdicts {
    /// Count one verdict.
    pub fn count(&mut self, v: Verdict) {
        match v {
            Verdict::Forward => self.forwarded += 1,
            Verdict::Drop => self.dropped += 1,
        }
    }

    /// Total packets the burst contained.
    pub fn total(&self) -> u64 {
        self.forwarded + self.dropped
    }
}

/// A per-packet network function with a calibrated CPU cost.
pub trait PacketProcessor: Send {
    /// Application name for reports.
    fn name(&self) -> &'static str;

    /// CPU cycles consumed per packet on the paper's 2.1 GHz Xeon Silver.
    fn cycles_per_packet(&self) -> u64;

    /// Fixed overhead per retrieved burst (descriptor refill, prefetch,
    /// loop bookkeeping). DPDK amortizes this over up to 32 packets.
    ///
    /// Kept small for a reason Table I dictates: at 64 B line rate the
    /// inter-arrival gap is 67.2 ns (141 cycles at 2.1 GHz) and busy
    /// periods *do end* at line rate — even when cache contention inflates
    /// work by ~1.45× (shared-core experiments), a 1-packet burst must
    /// still beat one inter-arrival gap ((70+20)·1.45 = 130 cycles < 141).
    fn cycles_per_burst(&self) -> u64 {
        20
    }

    /// Functionally transform one packet.
    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict;

    /// Functionally transform one retrieval burst.
    ///
    /// # Contract
    ///
    /// `process_burst` must be **observably equivalent** to calling
    /// [`PacketProcessor::process`] on each mbuf of `mbufs` in slice
    /// order: the same frame rewrites, the same per-packet verdicts (only
    /// their aggregate counts are returned), and the same internal state
    /// transitions (counters, flow tables, SA sequence numbers advance as
    /// if the packets had been processed one by one). Implementations may
    /// reorder *work* for burst amortization — staged parsing, bulk table
    /// lookups, deferred rewrites — but never observable effects; the
    /// burst-vs-per-packet parity test (`tests/burst_parity.rs`) holds
    /// any override to this.
    ///
    /// The mbufs stay owned by the caller (the retrieval loop recycles
    /// them to the mempool afterwards); an implementation must not assume
    /// it sees a buffer again after returning.
    ///
    /// The default implementation is the per-packet loop. Override it
    /// only when the application has a real batched path (as `l3fwd` does
    /// with bulk LPM lookups) — an override that just loops adds nothing.
    fn process_burst(&mut self, mbufs: &mut [Mbuf]) -> BurstVerdicts {
        let mut verdicts = BurstVerdicts::default();
        for mbuf in mbufs {
            verdicts.count(self.process(mbuf));
        }
        verdicts
    }

    /// Single-core drain rate µ in packets/second at `mhz`, with the
    /// fixed per-burst overhead amortized over `burst`-packet bursts (the
    /// configured Rx burst size — DPDK convention 32, but ablations run
    /// down to 1, where the overhead is paid per packet).
    fn mu_pps(&self, mhz: u32, burst: u32) -> f64 {
        let burst = burst.max(1) as f64;
        let cycles = self.cycles_per_packet() as f64 + self.cycles_per_burst() as f64 / burst;
        mhz as f64 * 1e6 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    struct Nop;
    impl PacketProcessor for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn cycles_per_packet(&self) -> u64 {
            70
        }
        fn process(&mut self, _mbuf: &mut Mbuf) -> Verdict {
            Verdict::Forward
        }
    }

    /// Drops every other packet, so the default burst loop has both
    /// verdicts to count.
    struct Alternating {
        n: u64,
    }
    impl PacketProcessor for Alternating {
        fn name(&self) -> &'static str {
            "alternating"
        }
        fn cycles_per_packet(&self) -> u64 {
            1
        }
        fn process(&mut self, _mbuf: &mut Mbuf) -> Verdict {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                Verdict::Drop
            } else {
                Verdict::Forward
            }
        }
    }

    #[test]
    fn mu_matches_hand_computation() {
        let p = Nop;
        // 70 + 20/32 = 70.625 cycles -> 2.1e9/70.625 ≈ 29.7 Mpps.
        let mu = p.mu_pps(2100, 32);
        assert!((mu - 2.1e9 / 70.625).abs() < 1.0, "{mu}");
    }

    #[test]
    fn mu_scales_with_frequency() {
        let p = Nop;
        assert!((p.mu_pps(1050, 32) * 2.0 - p.mu_pps(2100, 32)).abs() < 1e-6);
    }

    #[test]
    fn mu_tracks_burst_size() {
        let p = Nop;
        // burst=1 pays the whole overhead per packet: 70+20 = 90 cycles.
        let mu1 = p.mu_pps(2100, 1);
        assert!((mu1 - 2.1e9 / 90.0).abs() < 1.0, "{mu1}");
        assert!(p.mu_pps(2100, 32) > mu1);
        // A zero burst is clamped to 1, not a division blow-up.
        assert!((p.mu_pps(2100, 0) - mu1).abs() < 1e-6);
    }

    #[test]
    fn default_burst_overhead() {
        let p = Nop;
        let mut m = Mbuf::from_bytes(BytesMut::new());
        assert_eq!(p.cycles_per_burst(), 20);
        let mut p = Nop;
        assert_eq!(p.process(&mut m), Verdict::Forward);
    }

    #[test]
    fn default_process_burst_loops_in_order() {
        let mut p = Alternating { n: 0 };
        let mut burst: Vec<Mbuf> = (0..5).map(|_| Mbuf::from_bytes(BytesMut::new())).collect();
        let v = p.process_burst(&mut burst);
        assert_eq!(v.forwarded, 3);
        assert_eq!(v.dropped, 2);
        assert_eq!(v.total(), 5);
        assert_eq!(p.n, 5, "state must advance exactly once per packet");
    }
}
