//! The packet-processor abstraction shared by all applications.
//!
//! Every application the paper adapts to Metronome (§V-G) is, at the
//! retrieval layer, a function applied per packet plus a per-packet CPU
//! cost. The discrete-event simulator only needs the cost (it processes
//! packets in aggregate); the functional path (unit tests, examples, the
//! real-thread runtime) calls [`PacketProcessor::process`] on real frames.
//!
//! Cycle costs are calibrated from the paper's own single-core capacities
//! at 2.1 GHz — see each application's docs and DESIGN.md §3.

use metronome_dpdk::Mbuf;

/// Outcome of processing one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Forward the (possibly rewritten) packet.
    Forward,
    /// Drop it (parse error, TTL expiry, policy).
    Drop,
}

/// A per-packet network function with a calibrated CPU cost.
pub trait PacketProcessor: Send {
    /// Application name for reports.
    fn name(&self) -> &'static str;

    /// CPU cycles consumed per packet on the paper's 2.1 GHz Xeon Silver.
    fn cycles_per_packet(&self) -> u64;

    /// Fixed overhead per retrieved burst (descriptor refill, prefetch,
    /// loop bookkeeping). DPDK amortizes this over up to 32 packets.
    ///
    /// Kept small for a reason Table I dictates: at 64 B line rate the
    /// inter-arrival gap is 67.2 ns (141 cycles at 2.1 GHz) and busy
    /// periods *do end* at line rate — even when cache contention inflates
    /// work by ~1.45× (shared-core experiments), a 1-packet burst must
    /// still beat one inter-arrival gap ((70+20)·1.45 = 130 cycles < 141).
    fn cycles_per_burst(&self) -> u64 {
        20
    }

    /// Functionally transform one packet.
    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict;

    /// Single-core drain rate µ in packets/second at `mhz`.
    fn mu_pps(&self, mhz: u32) -> f64 {
        // Amortize the burst overhead over a full 32-packet burst.
        let cycles = self.cycles_per_packet() as f64 + self.cycles_per_burst() as f64 / 32.0;
        mhz as f64 * 1e6 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    struct Nop;
    impl PacketProcessor for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn cycles_per_packet(&self) -> u64 {
            70
        }
        fn process(&mut self, _mbuf: &mut Mbuf) -> Verdict {
            Verdict::Forward
        }
    }

    #[test]
    fn mu_matches_hand_computation() {
        let p = Nop;
        // 70 + 20/32 = 70.625 cycles -> 2.1e9/70.625 ≈ 29.7 Mpps.
        let mu = p.mu_pps(2100);
        assert!((mu - 2.1e9 / 70.625).abs() < 1.0, "{mu}");
    }

    #[test]
    fn mu_scales_with_frequency() {
        let p = Nop;
        assert!((p.mu_pps(1050) * 2.0 - p.mu_pps(2100)).abs() < 1e-6);
    }

    #[test]
    fn default_burst_overhead() {
        let p = Nop;
        let mut m = Mbuf::from_bytes(BytesMut::new());
        assert_eq!(p.cycles_per_burst(), 20);
        let mut p = Nop;
        assert_eq!(p.process(&mut m), Verdict::Forward);
    }
}
