//! Ablation measurements for the design choices DESIGN.md §5 calls out.
//!
//! Not a timing benchmark: each ablation runs paired simulations and
//! prints the metric the design choice trades on. Executed by
//! `cargo bench` (harness = false).

use metronome_core::MetronomeConfig;
use metronome_os::config::TimerSlack;
use metronome_os::sleep::SleepService;
use metronome_runtime::{run, RunReport, Scenario, SystemKind, TrafficSpec};
use metronome_sim::Nanos;

const DUR: Nanos = Nanos(500_000_000); // 0.5 s per run

fn line_rate(cfg: MetronomeConfig) -> Scenario {
    Scenario::metronome("ablation", cfg, TrafficSpec::CbrGbps(10.0)).with_duration(DUR)
}

fn row(label: &str, r: &RunReport) -> String {
    format!(
        "  {label:<34} cpu {:5.1}%  busy-tries {:5.1}%  loss {:7.3}‰  V {:5.1}µs",
        r.cpu_total_pct,
        r.busy_try_fraction * 100.0,
        r.loss_permille(),
        r.mean_vacation_us()
    )
}

/// §IV-A: the primary/backup diversity strategy vs equal timeouts.
/// The paper's Fig. 6 motivation: equal timeouts waste wake-ups at load.
fn ablation_diversity() {
    println!("\n[1] timeout diversity (TS/TL) vs equal timeouts — line rate");
    let diverse = run(&line_rate(MetronomeConfig::default()));
    let equal = run(&line_rate(MetronomeConfig::default()).with_equal_timeouts());
    println!("{}", row("diversity (backups sleep TL)", &diverse));
    println!("{}", row("equal timeouts (ablated)", &equal));
    println!(
        "  -> equal timeouts make every loser re-poll at TS: busy tries {:.1}x, CPU +{:.1}pp",
        equal.busy_try_fraction / diverse.busy_try_fraction.max(1e-9),
        equal.cpu_total_pct - diverse.cpu_total_pct
    );
}

/// §IV-D: the adaptive TS rule (eq. 13) vs a fixed TS across loads.
fn ablation_adaptive_ts() {
    println!("\n[2] adaptive TS (eq. 13) vs fixed TS = V̄ — across loads");
    for gbps in [10.0, 1.0] {
        let adaptive =
            run(
                &Scenario::metronome("a", MetronomeConfig::default(), TrafficSpec::CbrGbps(gbps))
                    .with_duration(DUR),
            );
        let fixed = run(&Scenario::metronome(
            "f",
            MetronomeConfig {
                fixed_ts: Some(Nanos::from_micros(10)),
                ..MetronomeConfig::default()
            },
            TrafficSpec::CbrGbps(gbps),
        )
        .with_duration(DUR));
        println!("{}", row(&format!("adaptive @ {gbps} Gbps"), &adaptive));
        println!("{}", row(&format!("fixed TS=10µs @ {gbps} Gbps"), &fixed));
    }
    println!(
        "  -> fixed TS over-polls at low load (CPU) and under-adapts the\n     vacation; the adaptive rule pins mean V while shedding wake-ups"
    );
}

/// §III-A: hr_sleep vs nanosleep as the sleep primitive.
fn ablation_sleep_service() {
    println!("\n[3] hr_sleep vs nanosleep — line rate");
    let hr = run(&line_rate(MetronomeConfig::default()));
    let nano_min = run(&line_rate(MetronomeConfig::default())
        .with_sleep_service(SleepService::Nanosleep(TimerSlack::MinimalOneMicro)));
    let nano_def = run(&line_rate(MetronomeConfig::default())
        .with_sleep_service(SleepService::Nanosleep(TimerSlack::DefaultFifty)));
    println!("{}", row("hr_sleep", &hr));
    println!("{}", row("nanosleep, slack=1µs", &nano_min));
    println!("{}", row("nanosleep, default 50µs slack", &nano_def));
    println!(
        "  -> with the default slack the wake lands anywhere in a 50µs window:\n     vacations inflate ({:.1} vs {:.1} µs) and the ring runs close to full",
        nano_def.mean_vacation_us(),
        hr.mean_vacation_us()
    );
}

/// §V-C: Tx batch 32 vs 1 — latency variance at low rate vs CPU at line rate.
fn ablation_tx_batch() {
    println!("\n[4] Tx batch 32 vs 1");
    for (gbps, stride) in [(0.5, 31u64), (10.0, 509)] {
        for batch in [32u32, 1] {
            let sc = Scenario::metronome(
                "txb",
                MetronomeConfig {
                    tx_batch: batch,
                    ..MetronomeConfig::default()
                },
                TrafficSpec::CbrGbps(gbps),
            )
            .with_duration(DUR)
            .with_latency_stride(stride);
            let r = run(&sc);
            let lat = r.latency_us.expect("latency");
            println!(
                "  batch {batch:>2} @ {gbps:>4} Gbps: cpu {:5.1}%  latency mean {:5.1}µs  std {:5.2}µs",
                r.cpu_total_pct, lat.mean, lat.std_dev
            );
        }
    }
    println!(
        "  -> batch 1 trims the low-rate hold variance for ~2-3% extra CPU at line rate (§V-C)"
    );
}

/// §V-D: reactivity to packet bursts — Metronome vs one-core XDP.
fn ablation_burst_reactivity() {
    println!("\n[5] burst reactivity: 10ms line-rate bursts every 100ms");
    let traffic = TrafficSpec::OnOff {
        burst_pps: 14.88e6,
        on: Nanos::from_millis(10),
        off: Nanos::from_millis(90),
    };
    let met = run(
        &Scenario::metronome("m", MetronomeConfig::default(), traffic.clone()).with_duration(DUR),
    );
    let xdp1 = run(&Scenario::xdp("x", 1, traffic).with_duration(DUR));
    println!(
        "  metronome (adaptive):      tput {:5.2} Mpps  loss {:8.3}‰",
        met.throughput_mpps,
        met.loss_permille()
    );
    println!(
        "  xdp pinned to one core:    tput {:5.2} Mpps  loss {:8.3}‰",
        xdp1.throughput_mpps,
        xdp1.loss_permille()
    );
    println!(
        "  -> the paper's §V-D point: XDP's queue/core layout is static\n     (ethtool), so a burst beyond one core's capacity drops packets\n     until an operator intervenes; Metronome re-absorbs it in microseconds"
    );
}

/// §V-E: M > 1 threads as robustness, not parallelism.
fn ablation_thread_redundancy() {
    println!("\n[6] M=1 vs M=3 under heavy daemon interference — line rate");
    for m in [1usize, 3] {
        let mut sc = line_rate(MetronomeConfig {
            m_threads: m,
            ..MetronomeConfig::default()
        });
        // Aggressive interference: 120 µs bursts every ~3 ms per core.
        sc.os.daemon.mean_interval = Some(Nanos::from_millis(3));
        sc.os.daemon.duration_mu_ln_ns = (120_000f64).ln();
        let r = run(&sc);
        println!("{}", row(&format!("M = {m}"), &r));
    }
    println!(
        "  -> with one thread every scheduling hiccup stalls the queue; with\n     three, a backup wakes within TL and covers (§V-E, 'the case for\n     multiple threads')"
    );
}

fn main() {
    // `cargo bench -- --test` (used by `cargo test --benches`) must not run
    // the full measurement suite.
    if std::env::args().any(|a| a == "--test") {
        println!("ablations: skipped under --test");
        return;
    }
    println!("=== Metronome design-choice ablations (DESIGN.md §5) ===");
    let _sanity: SystemKind = SystemKind::StaticDpdk;
    ablation_diversity();
    ablation_adaptive_ts();
    ablation_sleep_service();
    ablation_tx_batch();
    ablation_burst_reactivity();
    ablation_thread_redundancy();
    println!("\ndone.");
}
