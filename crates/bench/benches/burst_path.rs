//! The datapath bench behind the burst refactor: per-packet clone vs
//! pooled burst on the functional l3fwd processor.
//!
//! Both benchmarks do one 32-packet retrieval burst's worth of work per
//! iteration, faithfully reproducing the two generations of the realtime
//! hot path:
//!
//! * **per-packet clone** — the pre-refactor shape: every packet clones
//!   its template frame into a fresh heap allocation
//!   (`Mbuf::from_bytes(frame.clone())`), takes the per-queue app mutex,
//!   runs `process`, and drops the buffer back to the allocator.
//! * **pooled burst** — the post-refactor shape: one `alloc_burst` pool
//!   transaction hands out recycled buffers, each is refilled from its
//!   template (`memcpy`, no allocation), the app mutex is taken once and
//!   `process_burst` (bulk LPM) runs over the whole burst, then one
//!   `free_burst` recycles every buffer.
//!
//! The acceptance bar for the refactor is ≥2× packets/second on the
//! pooled path; the measured ratio is printed at the end of the run.
//!
//! A third section compares the pooled path itself at 8 workers over one
//! shared pool: every burst through the locked freelist (the PR 3 shape)
//! vs per-worker mempool caches (the PR 6 shape) — see
//! [`metronome_bench::hotpath`].

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metronome_apps::processor::PacketProcessor;
use metronome_apps::L3Fwd;
use metronome_bench::hotpath;
use metronome_dpdk::{Mbuf, Mempool};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_sim::stats::Histogram;
use metronome_traffic::{FlowSet, WallClock};
use parking_lot::Mutex;
use std::time::Instant;

const BURST: usize = 32;
const SUBNETS: usize = 4;

/// Routable template frames, like the realtime runner's flow population.
fn templates() -> Vec<bytes::BytesMut> {
    FlowSet::routable(256, SUBNETS, 0xB45)
        .flows()
        .iter()
        .map(|t| build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS))
        .collect()
}

/// The per-queue application slot both paths contend for, exactly as the
/// runner holds it: processor + latency histogram behind one mutex.
struct QueueApp {
    proc: Box<dyn PacketProcessor>,
    latency_ns: Histogram,
}

fn queue_app() -> Mutex<QueueApp> {
    Mutex::new(QueueApp {
        proc: Box::new(L3Fwd::with_sample_routes(SUBNETS)),
        latency_ns: Histogram::latency(),
    })
}

/// One burst on the pre-refactor path, per packet: clone the template
/// into a fresh heap allocation, take the app mutex, `process`, stamp the
/// completion time (the old worker closure read the clock per packet),
/// record latency, drop the buffer. The arrival stamp comes from the
/// generator's schedule in both generations of the runner, so both paths
/// receive it as an input. Returns the forwarded count so nothing is
/// optimized away.
fn per_packet_clone(
    app: &Mutex<QueueApp>,
    clock: &WallClock,
    arrival: metronome_sim::Nanos,
    frames: &[bytes::BytesMut],
) -> u64 {
    let mut forwarded = 0u64;
    for frame in frames {
        let mut mbuf = Mbuf::from_bytes(frame.clone());
        mbuf.arrival = arrival;
        let mut slot = app.lock();
        if slot.proc.process(&mut mbuf) == metronome_apps::Verdict::Forward {
            forwarded += 1;
        }
        let lat = clock.now().saturating_sub(mbuf.arrival);
        slot.latency_ns.record(lat.as_nanos());
        // mbuf drops here: one heap free per packet.
    }
    forwarded
}

/// One burst on the pooled path: one `alloc_burst` pool transaction,
/// template refill per mbuf (memcpy, no allocation), one mutex
/// acquisition, one `process_burst`, one completion stamp for the whole
/// burst, one `free_burst`.
fn pooled_burst(
    app: &Mutex<QueueApp>,
    clock: &WallClock,
    arrival: metronome_sim::Nanos,
    pool: &Mempool,
    frames: &[bytes::BytesMut],
    burst: &mut Vec<Mbuf>,
) -> u64 {
    let got = pool.alloc_burst(frames.len(), burst);
    debug_assert_eq!(got, frames.len(), "bench pool must never exhaust");
    for (mbuf, frame) in burst.iter_mut().zip(frames) {
        mbuf.refill(frame);
        mbuf.arrival = arrival;
    }
    let mut slot = app.lock();
    let verdicts = slot.proc.process_burst(burst);
    let done = clock.now();
    for mbuf in burst.iter() {
        let lat = done.saturating_sub(mbuf.arrival);
        slot.latency_ns.record(lat.as_nanos());
    }
    drop(slot);
    pool.free_burst(burst.drain(..));
    verdicts.forwarded
}

/// Measure packets/second of a burst routine outside criterion (used for
/// the printed ratio; criterion reports the per-burst times).
fn pps_of(mut f: impl FnMut() -> u64) -> f64 {
    // Warm up.
    for _ in 0..1_000 {
        black_box(f());
    }
    let t0 = Instant::now();
    let mut bursts = 0u64;
    while t0.elapsed().as_millis() < 300 {
        for _ in 0..256 {
            black_box(f());
            bursts += 1;
        }
    }
    bursts as f64 * BURST as f64 / t0.elapsed().as_secs_f64()
}

fn bench_burst_path(c: &mut Criterion) {
    let frames = templates();
    let window = &frames[..BURST];
    let clock = WallClock::start();
    let arrival = clock.now();
    let mut group = c.benchmark_group("burst_path");

    let app = queue_app();
    group.bench_function("per_packet_clone_32", |b| {
        b.iter(|| black_box(per_packet_clone(&app, &clock, arrival, window)))
    });

    let app = queue_app();
    let pool = Mempool::new(4 * BURST, 2048);
    let mut burst = Vec::with_capacity(BURST);
    group.bench_function("pooled_burst_32", |b| {
        b.iter(|| {
            black_box(pooled_burst(
                &app, &clock, arrival, &pool, window, &mut burst,
            ))
        })
    });
    group.finish();

    // The acceptance ratio, measured head to head.
    let app_a = queue_app();
    let clone_pps = pps_of(|| per_packet_clone(&app_a, &clock, arrival, window));
    let app_b = queue_app();
    let pool = Mempool::new(4 * BURST, 2048);
    let mut burst = Vec::with_capacity(BURST);
    let pooled_pps = pps_of(|| pooled_burst(&app_b, &clock, arrival, &pool, window, &mut burst));
    println!(
        "burst_path summary: per-packet clone {:.2} Mpps, pooled burst {:.2} Mpps, speedup {:.2}x",
        clone_pps / 1e6,
        pooled_pps / 1e6,
        pooled_pps / clone_pps
    );

    // The PR 6 comparison: the same pooled hot path at 8 workers over one
    // shared pool, straight through the locked freelist (PR 3 shape) vs
    // per-worker mempool caches.
    const WORKER_BURSTS: u64 = 200_000;
    let locked8 = hotpath::burst_workers_mpps(8, false, WORKER_BURSTS);
    let cached8 = hotpath::burst_workers_mpps(8, true, WORKER_BURSTS);
    println!(
        "burst_path 8-worker summary: shared locked pool {locked8:.2} Mpps, \
         per-worker caches {cached8:.2} Mpps, speedup {:.2}x",
        cached8 / locked8
    );
}

criterion_group!(burst_path, bench_burst_path);
criterion_main!(burst_path);
