//! Mempool transaction bench behind the per-worker-cache refactor:
//! 32-buffer alloc/free transactions through the locked shared freelist
//! (the PR 3 path) vs a thread-local [`metronome_dpdk::MempoolCache`].
//!
//! Two views:
//!
//! * Criterion timings of one warm transaction on each path, single
//!   thread — the per-op constant each path pays;
//! * a scaling table at 1/2/4/8/16 workers over one shared pool (fixed
//!   total work, `elapsed / total_ops`) — the acceptance bar is that the
//!   cached path stays near-flat (≤20% per-op degradation 1→8 workers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metronome_bench::hotpath::{self, BURST};
use metronome_dpdk::{Mbuf, Mempool};

/// Total 32-buffer transactions split across the workers in the scaling
/// table, so every row measures the same amount of work.
const TOTAL_TXNS: u64 = 400_000;

fn bench_contended_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_pool");

    let pool = Mempool::new(4 * BURST, 64);
    let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
    group.bench_function("locked_txn_32", |b| {
        b.iter(|| {
            let got = pool.alloc_burst(BURST, &mut burst);
            debug_assert_eq!(got, BURST);
            pool.free_burst(burst.drain(..));
            black_box(got)
        })
    });

    let pool = Mempool::new(8 * BURST, 64);
    let mut cache = pool.cache(BURST);
    let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
    group.bench_function("cached_txn_32", |b| {
        b.iter(|| {
            let got = cache.alloc_burst(BURST, &mut burst);
            debug_assert_eq!(got, BURST);
            cache.free_burst(burst.drain(..));
            black_box(got)
        })
    });
    group.finish();

    println!("contended_pool scaling (ns per buffer alloc+free, fixed total work):");
    println!("  workers   locked   cached   locked/cached");
    let mut cached_one = 0.0;
    for &workers in &[1usize, 2, 4, 8, 16] {
        let locked = hotpath::pool_txn_per_op_ns(workers, false, TOTAL_TXNS);
        let cached = hotpath::pool_txn_per_op_ns(workers, true, TOTAL_TXNS);
        if workers == 1 {
            cached_one = cached;
        }
        println!(
            "  {workers:>7}  {locked:>6.1}   {cached:>6.1}   {:>8.2}x",
            locked / cached
        );
        if workers == 8 && cached_one > 0.0 {
            println!(
                "  cached per-op degradation 1->8 workers: {:+.1}%",
                (cached / cached_one - 1.0) * 100.0
            );
        }
    }
}

criterion_group!(contended_pool, bench_contended_pool);
criterion_main!(contended_pool);
