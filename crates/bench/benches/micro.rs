//! Microbenchmarks of the hot primitives every experiment leans on.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use metronome_apps::processor::PacketProcessor;
use metronome_apps::{FloWatcher, IpsecGateway, L3Fwd};
use metronome_core::TryLock;
use metronome_dpdk::{Mbuf, RxRingModel};
use metronome_net::aes::Aes128;
use metronome_net::checksum::internet_checksum;
use metronome_net::headers::{build_udp_frame, Mac};
use metronome_net::lpm::Lpm;
use metronome_net::toeplitz::Toeplitz;
use metronome_net::{ExactMatch, FiveTuple};
use metronome_sim::stats::Histogram;
use metronome_sim::{EventQueue, Nanos, Rng};
use metronome_traffic::{ArrivalProcess, Cbr};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn tuple(i: u32) -> FiveTuple {
    FiveTuple::udp(
        Ipv4Addr::from(0x0a00_0000 | i),
        (1000 + i % 60_000) as u16,
        Ipv4Addr::new(10, 200, 0, 1),
        80,
    )
}

fn bench_trylock(c: &mut Criterion) {
    let lock = TryLock::new();
    c.bench_function("micro/trylock_acquire_release", |b| {
        b.iter(|| {
            assert!(lock.try_lock());
            lock.unlock();
        })
    });
    c.bench_function("micro/trylock_contended_fail", |b| {
        assert!(lock.try_lock());
        b.iter(|| black_box(lock.try_lock()));
        lock.unlock();
    });
}

fn bench_toeplitz(c: &mut Criterion) {
    let tz = Toeplitz::default();
    let input = tuple(7).rss_input();
    c.bench_function("micro/toeplitz_hash_12b", |b| {
        b.iter(|| black_box(tz.hash(black_box(&input))))
    });
}

fn bench_lpm(c: &mut Criterion) {
    let mut lpm = Lpm::with_first_stage_bits(16, 256);
    let mut rng = Rng::new(5);
    for hop in 0..1000u16 {
        let depth = (rng.below(24) + 8) as u8;
        let _ = lpm.add(Ipv4Addr::from(rng.next_u64() as u32), depth, hop);
    }
    let probes: Vec<Ipv4Addr> = (0..256)
        .map(|_| Ipv4Addr::from(rng.next_u64() as u32))
        .collect();
    c.bench_function("micro/lpm_lookup_x256", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &p in &probes {
                acc = acc.wrapping_add(lpm.lookup(p).unwrap_or(0) as u32);
            }
            black_box(acc)
        })
    });
}

fn bench_exact_match(c: &mut Criterion) {
    let mut em = ExactMatch::with_capacity(65_536);
    for i in 0..50_000u32 {
        em.insert(tuple(i), i).unwrap();
    }
    c.bench_function("micro/exact_match_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            black_box(em.get(&tuple(i)))
        })
    });
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    c.bench_function("micro/aes128_block", |b| {
        let mut block = [0xABu8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            black_box(block[0])
        })
    });
    c.bench_function("micro/aes128_cbc_1440b", |b| {
        let mut data = vec![0x5Au8; 1440];
        b.iter(|| {
            aes.cbc_encrypt(&[1u8; 16], &mut data);
            black_box(data[0])
        })
    });
}

fn bench_checksum(c: &mut Criterion) {
    let frame = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(1), &[0u8; 1400], 1458);
    c.bench_function("micro/internet_checksum_1458b", |b| {
        b.iter(|| black_box(internet_checksum(black_box(&frame))))
    });
}

fn bench_apps(c: &mut Criterion) {
    let mk = || {
        let t = FiveTuple::udp(
            Ipv4Addr::new(192, 168, 0, 1),
            1000,
            Ipv4Addr::new(10, 2, 1, 1),
            2000,
        );
        Mbuf::from_bytes(build_udp_frame(Mac::local(1), Mac::local(2), &t, &[], 64))
    };
    c.bench_function("micro/l3fwd_process", |b| {
        let mut fwd = L3Fwd::with_sample_routes(8);
        let mut m = mk();
        b.iter(|| black_box(fwd.process(&mut m)))
    });
    c.bench_function("micro/ipsec_encapsulate", |b| {
        let mut gw = IpsecGateway::outbound();
        b.iter(|| {
            let mut m = mk();
            black_box(gw.process(&mut m))
        })
    });
    c.bench_function("micro/flowatcher_process", |b| {
        let mut fw = FloWatcher::new(65_536);
        let mut m = mk();
        b.iter(|| black_box(fw.process(&mut m)))
    });
}

fn bench_ring(c: &mut Criterion) {
    c.bench_function("micro/rx_ring_model_offer_take", |b| {
        let mut ring = RxRingModel::new(512);
        b.iter(|| {
            ring.offer(32);
            black_box(ring.take(32))
        })
    });
    c.bench_function("micro/mbuf_ring_enqueue_dequeue", |b| {
        let mut ring = metronome_dpdk::Ring::new(512);
        let mut out = Vec::with_capacity(32);
        b.iter(|| {
            for _ in 0..16 {
                ring.enqueue(Mbuf::from_bytes(BytesMut::new()));
            }
            out.clear();
            black_box(ring.dequeue_burst(16, &mut out))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_schedule_pop_x64", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..64u64 {
                q.schedule(Nanos(i * 13 % 977), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_arrivals(c: &mut Criterion) {
    c.bench_function("micro/cbr_drain_line_rate_100us", |b| {
        let mut cbr = Cbr::new(14_880_952.0, Nanos::ZERO);
        let mut t = Nanos::ZERO;
        b.iter(|| {
            t += Nanos::from_micros(100);
            black_box(cbr.drain(t, None))
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("micro/histogram_record", |b| {
        let mut h = Histogram::latency();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        })
    });
    c.bench_function("micro/xoshiro_next", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| black_box(rng.next_u64()))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1));
    targets =
        bench_trylock,
        bench_toeplitz,
        bench_lpm,
        bench_exact_match,
        bench_aes,
        bench_checksum,
        bench_apps,
        bench_ring,
        bench_event_queue,
        bench_arrivals,
        bench_stats
}
criterion_main!(micro);
