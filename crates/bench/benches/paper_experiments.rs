//! One Criterion group per paper table/figure: times a scaled-down kernel
//! of each reproduction (the full-duration versions live in the
//! `experiments` binary). Regenerate a figure's data with
//! `cargo run --release -p metronome-experiments --bin experiments -- <id>`.

use criterion::{criterion_group, criterion_main, Criterion};
use metronome_core::MetronomeConfig;
use metronome_dpdk::NicProfile;
use metronome_os::sleep::{SleepModel, SleepService};
use metronome_os::Governor;
use metronome_runtime::{run, AppProfile, FerretSpec, Scenario, TrafficSpec};
use metronome_sim::{Nanos, Rng};
use std::hint::black_box;

const QUICK: Nanos = Nanos(120_000_000); // 120 ms of simulated time

fn metronome_line(v_target_us: u64, dur: Nanos) -> Scenario {
    Scenario::metronome(
        "bench",
        MetronomeConfig {
            v_target: Nanos::from_micros(v_target_us),
            ..MetronomeConfig::default()
        },
        TrafficSpec::CbrGbps(10.0),
    )
    .with_duration(dur)
}

fn fig01_sleep_services(c: &mut Criterion) {
    let model = SleepModel::idle_calibration();
    c.bench_function("fig01_sleep_services/hr_sleep_10us_x1000", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut acc = Nanos::ZERO;
            for _ in 0..1000 {
                acc += model.actual_sleep(SleepService::HrSleep, Nanos::from_micros(10), &mut rng);
            }
            black_box(acc)
        })
    });
}

fn fig04_vacation_pdf(c: &mut Criterion) {
    c.bench_function("fig04_vacation_pdf/m3_fixed_ts", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "fig4",
                MetronomeConfig {
                    fixed_ts: Some(Nanos::from_micros(50)),
                    t_long: Nanos::from_micros(50),
                    ..MetronomeConfig::default()
                },
                TrafficSpec::CbrGbps(0.1),
            )
            .with_duration(QUICK);
            black_box(run(&sc).vacation_samples_us.len())
        })
    });
}

fn tab1_vacation_targets(c: &mut Criterion) {
    c.bench_function("tab1_vacation_targets/v10_line_rate", |b| {
        b.iter(|| black_box(run(&metronome_line(10, QUICK)).loss))
    });
}

fn fig05_vbar_tradeoff(c: &mut Criterion) {
    c.bench_function("fig05_vbar_tradeoff/v2_with_latency", |b| {
        b.iter(|| {
            let sc = metronome_line(2, QUICK).with_latency();
            black_box(run(&sc).latency_us.map(|l| l.mean))
        })
    });
}

fn fig06_tl_sweep(c: &mut Criterion) {
    c.bench_function("fig06_tl_sweep/tl300", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "fig6",
                MetronomeConfig {
                    t_long: Nanos::from_micros(300),
                    ..MetronomeConfig::default()
                },
                TrafficSpec::CbrGbps(10.0),
            )
            .with_duration(QUICK);
            black_box(run(&sc).busy_try_fraction)
        })
    });
}

fn fig07_m_sweep(c: &mut Criterion) {
    c.bench_function("fig07_m_sweep/m5", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "fig7",
                MetronomeConfig {
                    m_threads: 5,
                    ..MetronomeConfig::default()
                },
                TrafficSpec::CbrGbps(10.0),
            )
            .with_duration(QUICK);
            black_box(run(&sc).busy_try_fraction)
        })
    });
}

fn fig08_latency_vs_m(c: &mut Criterion) {
    c.bench_function("fig08_latency_vs_m/m6_1gbps", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "fig8",
                MetronomeConfig {
                    m_threads: 6,
                    ..MetronomeConfig::default()
                },
                TrafficSpec::CbrGbps(1.0),
            )
            .with_duration(QUICK)
            .with_latency_stride(31);
            black_box(run(&sc).latency_us.map(|l| l.mean))
        })
    });
}

fn fig09_adaptation(c: &mut Criterion) {
    c.bench_function("fig09_adaptation/mini_ramp", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "fig9",
                MetronomeConfig::default(),
                TrafficSpec::RampUpDown {
                    peak_pps: 14e6,
                    n_steps: 4,
                    step: Nanos::from_millis(20),
                },
            )
            .with_duration(Nanos::from_millis(160))
            .with_series(Nanos::from_millis(10));
            black_box(run(&sc).series.len())
        })
    });
}

fn fig10_three_way(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_three_way");
    g.bench_function("static_10g", |b| {
        b.iter(|| {
            let sc = Scenario::static_dpdk("s", 1, TrafficSpec::CbrGbps(10.0)).with_duration(QUICK);
            black_box(run(&sc).cpu_total_pct)
        })
    });
    g.bench_function("metronome_10g", |b| {
        b.iter(|| black_box(run(&metronome_line(10, QUICK)).cpu_total_pct))
    });
    g.bench_function("xdp_10g", |b| {
        b.iter(|| {
            let sc = Scenario::xdp("x", 4, TrafficSpec::CbrGbps(10.0)).with_duration(QUICK);
            black_box(run(&sc).cpu_total_pct)
        })
    });
    g.finish();
}

fn fig11_power_governors(c: &mut Criterion) {
    c.bench_function("fig11_power_governors/ondemand_idle", |b| {
        b.iter(|| {
            let sc = Scenario::metronome("f11", MetronomeConfig::default(), TrafficSpec::Silent)
                .with_duration(QUICK)
                .with_governor(Governor::Ondemand);
            black_box(run(&sc).power_watts)
        })
    });
}

fn fig12_ferret(c: &mut Criterion) {
    c.bench_function("fig12_ferret/metronome_sharing", |b| {
        b.iter(|| {
            let sc = metronome_line(10, Nanos::from_millis(300)).with_ferret(FerretSpec {
                n_workers: 3,
                standalone: Nanos::from_millis(60),
                nice: 19,
                on_net_cores: true,
            });
            black_box(run(&sc).ferret_slowdown())
        })
    });
}

fn tab2_sharing_throughput(c: &mut Criterion) {
    c.bench_function("tab2_sharing_throughput/static_vs_ferret", |b| {
        b.iter(|| {
            let sc = Scenario::static_dpdk("t2", 1, TrafficSpec::CbrGbps(10.0))
                .with_duration(Nanos::from_millis(300))
                .with_ferret(FerretSpec {
                    n_workers: 1,
                    standalone: Nanos::from_millis(60),
                    nice: 0,
                    on_net_cores: true,
                });
            black_box(run(&sc).throughput_mpps)
        })
    });
}

fn fig13_multiqueue_grid(c: &mut Criterion) {
    c.bench_function("fig13_multiqueue_grid/n4_m5", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "f13",
                MetronomeConfig::multiqueue(5, 4),
                TrafficSpec::CbrPps(37e6),
            )
            .with_nic(NicProfile::XL710)
            .with_duration(QUICK);
            black_box(run(&sc).cpu_total_pct)
        })
    });
}

fn fig14_busytries_rho(c: &mut Criterion) {
    c.bench_function("fig14_busytries_rho/n2_m6", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "f14",
                MetronomeConfig::multiqueue(6, 2),
                TrafficSpec::CbrPps(37e6),
            )
            .with_nic(NicProfile::XL710)
            .with_duration(QUICK);
            let r = run(&sc);
            black_box((r.busy_try_fraction, r.mean_rho()))
        })
    });
}

fn fig15_rate_sweep(c: &mut Criterion) {
    c.bench_function("fig15_rate_sweep/20mpps", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "f15",
                MetronomeConfig::multiqueue(5, 4),
                TrafficSpec::CbrPps(20e6),
            )
            .with_nic(NicProfile::XL710)
            .with_duration(QUICK);
            black_box(run(&sc).power_watts)
        })
    });
}

fn tab3_unbalanced(c: &mut Criterion) {
    c.bench_function("tab3_unbalanced/three_queues", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "t3",
                MetronomeConfig::multiqueue(4, 3),
                TrafficSpec::Unbalanced { total_pps: 37e6 },
            )
            .with_nic(NicProfile::XL710)
            .with_duration(QUICK);
            black_box(run(&sc).queues[0].rho)
        })
    });
}

fn fig16_applications(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_applications");
    g.bench_function("ipsec_1mpps", |b| {
        b.iter(|| {
            let sc = Scenario::metronome(
                "ipsec",
                MetronomeConfig::default(),
                TrafficSpec::CbrPps(1e6),
            )
            .with_app(AppProfile::ipsec())
            .with_duration(QUICK);
            black_box(run(&sc).cpu_total_pct)
        })
    });
    g.bench_function("flowatcher_5mpps", |b| {
        b.iter(|| {
            let sc =
                Scenario::metronome("flow", MetronomeConfig::default(), TrafficSpec::CbrPps(5e6))
                    .with_app(AppProfile::flowatcher())
                    .with_duration(QUICK);
            black_box(run(&sc).cpu_total_pct)
        })
    });
    g.finish();
}

criterion_group! {
    name = paper;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
        fig01_sleep_services,
        fig04_vacation_pdf,
        tab1_vacation_targets,
        fig05_vbar_tradeoff,
        fig06_tl_sweep,
        fig07_m_sweep,
        fig08_latency_vs_m,
        fig09_adaptation,
        fig10_three_way,
        fig11_power_governors,
        fig12_ferret,
        tab2_sharing_throughput,
        fig13_multiqueue_grid,
        fig14_busytries_rho,
        fig15_rate_sweep,
        tab3_unbalanced,
        fig16_applications
}
criterion_main!(paper);
