//! `SharedRing` path bench behind the lock-free refactor: the SPSC and
//! MPSC fast paths vs the locked-queue fallback, all behind the same
//! offer/pop API.
//!
//! Two views:
//!
//! * Criterion timings of a single-thread 32-frame offer+pop round trip
//!   on each path — the per-burst index-update cost with no contention;
//! * a real producer/consumer thread pair per path (generator shape:
//!   alloc from a pool cache, offer bursts, consumer drains and frees),
//!   reported in Mpps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metronome_bench::hotpath::{self, BURST};
use metronome_dpdk::{Mbuf, Mempool, RingPath, SharedRing};

/// Items each producer/consumer pair moves for the printed summary.
const PAIR_ITEMS: u64 = 2_000_000;

const ALL_PATHS: [RingPath; 3] = [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked];

fn bench_ring_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_path");
    for path in ALL_PATHS {
        let ring = SharedRing::with_path(1024, path);
        let consumer = ring.consumer();
        let pool = Mempool::new(4 * BURST, 64);
        let mut frames: Vec<Mbuf> = Vec::with_capacity(BURST);
        pool.alloc_burst(BURST, &mut frames);
        group.bench_function(&format!("offer_pop_32_{}", path.label()), |b| {
            b.iter(|| {
                let accepted = ring.offer_burst(&mut frames);
                debug_assert_eq!(accepted, BURST);
                let taken = consumer.pop_burst(&mut frames, BURST);
                debug_assert_eq!(taken, BURST);
                black_box(taken)
            })
        });
        pool.free_burst(frames.drain(..));
    }
    group.finish();

    println!("ring_path producer/consumer pair ({PAIR_ITEMS} frames each):");
    for path in ALL_PATHS {
        let mpps = hotpath::ring_pair_mpps(path, PAIR_ITEMS);
        println!("  {:<8} {mpps:>7.2} Mpps", path.label());
    }
}

criterion_group!(ring_path, bench_ring_path);
criterion_main!(ring_path);
