//! Emit `BENCH_10.json`: the sharded-ingest sweep — the PR 10 bench
//! guard.
//!
//! Three sections, all through [`metronome_bench::ingest`]:
//!
//! * **shard sweep** — `G ∈ {1, 2, 4}` producer shards × ring path
//!   (SPSC at `G = 1` as the single-producer reference, MPSC and locked
//!   at every `G`), fixed total accepted frames, exact conservation and
//!   a whole pool asserted at every point;
//! * **dispatch** — scatter-gather (`QueueScatter`) vs per-queue `Vec`
//!   staging at the same points. Baseline and candidate iterations are
//!   **interleaved** (b, c, b, c, …) so slow machine-state drift lands
//!   on both equally, and the per-path spread (max−min over runs,
//!   relative to the median) is reported alongside every number — a
//!   delta inside the spread is noise, not signal;
//! * **clock** — per-packet latency stamping through a precise
//!   `WallClock::now` vs one `CoarseClock::tick` per 32-frame burst
//!   with cached per-packet reads (the amortization the runner's hot
//!   paths adopted).
//!
//! ```text
//! cargo run --release -p metronome-bench --example bench10 [-- out.json]
//! ```
//!
//! Set `METRONOME_BENCH_QUICK=1` for a CI-sized run (fewer frames, two
//! runs per point instead of five).

use metronome_bench::ingest::{sharded_ingest_mpps, stamp_per_packet_ns};
use metronome_dpdk::RingPath;

const N_QUEUES: usize = 2;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("measurement NaN"));
    v[v.len() / 2]
}

/// Relative spread of a run set: (max − min) / median, in percent.
fn spread_pct(v: &[f64]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let med = median(v.to_vec());
    if med == 0.0 {
        0.0
    } else {
        (hi - lo) / med * 100.0
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".into());
    let quick = std::env::var("METRONOME_BENCH_QUICK").is_ok_and(|v| v == "1");
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get());
    let (total_packets, runs) = if quick {
        (60_000u64, 2)
    } else {
        (300_000u64, 5)
    };

    // Shard sweep × ring path, scatter vs per-queue staging interleaved.
    let mut points: Vec<(usize, RingPath)> = vec![(1, RingPath::Spsc)];
    for shards in [1usize, 2, 4] {
        points.push((shards, RingPath::Mpsc));
        points.push((shards, RingPath::Locked));
    }
    let mut rows = Vec::new();
    for (shards, path) in points {
        let (mut staged, mut scattered) = (Vec::new(), Vec::new());
        for _ in 0..runs {
            // Interleave baseline (per-queue Vec staging) and candidate
            // (QueueScatter) so drift biases neither.
            staged.push(sharded_ingest_mpps(
                shards,
                path,
                N_QUEUES,
                total_packets,
                false,
            ));
            scattered.push(sharded_ingest_mpps(
                shards,
                path,
                N_QUEUES,
                total_packets,
                true,
            ));
        }
        let (base_med, scat_med) = (median(staged.clone()), median(scattered.clone()));
        let (base_spread, scat_spread) = (spread_pct(&staged), spread_pct(&scattered));
        let delta_pct = (scat_med - base_med) / base_med * 100.0;
        eprintln!(
            "shards={shards} path={path:?}: staged {base_med:.3} Mpps (±{base_spread:.1}%), \
             scatter {scat_med:.3} Mpps (±{scat_spread:.1}%), delta {delta_pct:+.1}%"
        );
        rows.push(format!(
            "    {{\"shards\": {shards}, \"ring_path\": \"{}\", \
             \"staged_mpps\": {base_med:.4}, \"staged_spread_pct\": {base_spread:.2}, \
             \"scatter_mpps\": {scat_med:.4}, \"scatter_spread_pct\": {scat_spread:.2}, \
             \"scatter_delta_pct\": {delta_pct:.2}}}",
            path.label(),
        ));
    }

    // Clock amortization: precise per-packet read vs tick-per-burst.
    let clock_packets = total_packets * 10;
    let (mut precise, mut coarse) = (Vec::new(), Vec::new());
    for _ in 0..runs {
        precise.push(stamp_per_packet_ns(false, clock_packets));
        coarse.push(stamp_per_packet_ns(true, clock_packets));
    }
    let (precise_med, coarse_med) = (median(precise.clone()), median(coarse.clone()));
    let clock_reduction = if coarse_med > 0.0 {
        precise_med / coarse_med
    } else {
        0.0
    };
    eprintln!(
        "clock: precise {precise_med:.2} ns/pkt (±{:.1}%), coarse {coarse_med:.2} ns/pkt \
         (±{:.1}%), {clock_reduction:.1}x",
        spread_pct(&precise),
        spread_pct(&coarse),
    );

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_10\",\n\
         \x20 \"title\": \"Sharded ingest: producer shards x ring path, scatter-gather \
         dispatch, amortized clock\",\n\
         \x20 \"command\": \"cargo run --release -p metronome-bench --example bench10\",\n\
         \x20 \"host\": {{\"nproc\": {nproc}}},\n\
         \x20 \"quick_mode\": {quick},\n\
         \x20 \"unit\": \"Mpps until {total_packets} frames are ring-accepted and drained \
         ({N_QUEUES} queues, 32-frame bursts, 256 flows split across shards), median of \
         {runs} interleaved runs; spread is (max-min)/median\",\n\
         \x20 \"method\": \"baseline (per-queue Vec staging) and candidate (QueueScatter) \
         iterations interleaved b,c,b,c so machine drift lands on both; exact conservation \
         (offered == accepted + dropped, drained == accepted) and a whole pool (in_use == 0, \
         cached == 0, allocs == frees) asserted at every point\",\n\
         \x20 \"environment_note\": \"nproc above is the whole story for shard scaling: on a \
         1-core host {nproc_note} producer shards time-slice instead of running in parallel, \
         so G > 1 measures MPSC/locked coordination overhead, not speedup — the expected \
         multi-core win is the contention the ring paths absorb\",\n\
         \x20 \"points\": [\n{points}\n  ],\n\
         \x20 \"clock\": {{\n\
         \x20   \"precise_ns_per_packet\": {precise_med:.3},\n\
         \x20   \"precise_spread_pct\": {precise_spread:.2},\n\
         \x20   \"coarse_ns_per_packet\": {coarse_med:.3},\n\
         \x20   \"coarse_spread_pct\": {coarse_spread:.2},\n\
         \x20   \"reduction_factor\": {clock_reduction:.2},\n\
         \x20   \"note\": \"precise = WallClock::now per packet; coarse = one CoarseClock::tick \
         per 32-frame burst + cached reads per packet (the stamping shape the realtime runner \
         and trace payload events now use)\"\n\
         \x20 }}\n\
         }}\n",
        nproc_note = if nproc <= 1 {
            "(this one)"
        } else {
            "(not this one)"
        },
        points = rows.join(",\n"),
        precise_spread = spread_pct(&precise),
        coarse_spread = spread_pct(&coarse),
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
