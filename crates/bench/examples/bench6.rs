//! Emit `BENCH_6.json`: the PR 6 lock-free hot-path numbers.
//!
//! Runs the [`metronome_bench::hotpath`] harnesses — mempool transaction
//! scaling at 1/2/4/8/16 workers (locked vs cached), `SharedRing`
//! producer/consumer pairs per path, and the 8-worker pooled-burst
//! comparison — and writes the measurements as JSON to the path given as
//! the first argument (default `BENCH_6.json` in the working directory).
//!
//! ```text
//! cargo run --release -p metronome-bench --example bench6 [-- out.json]
//! ```

use metronome_bench::hotpath;
use metronome_dpdk::RingPath;

const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const POOL_TXNS: u64 = 1_000_000;
const PAIR_ITEMS: u64 = 2_000_000;
const WORKER_BURSTS: u64 = 200_000;
/// Runs per point; the median filters scheduler noise (see
/// [`hotpath::median_of`]).
const RUNS: usize = 3;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_6.json".into());
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get());

    eprintln!("measuring contended_pool scaling ({POOL_TXNS} txns per point)...");
    let mut pool_rows = Vec::new();
    let mut cached_1 = 0.0f64;
    let mut cached_8 = 0.0f64;
    for workers in WORKER_COUNTS {
        let locked = hotpath::median_of(RUNS, || {
            hotpath::pool_txn_per_op_ns(workers, false, POOL_TXNS)
        });
        let cached = hotpath::median_of(RUNS, || {
            hotpath::pool_txn_per_op_ns(workers, true, POOL_TXNS)
        });
        if workers == 1 {
            cached_1 = cached;
        }
        if workers == 8 {
            cached_8 = cached;
        }
        eprintln!("  workers {workers:>2}: locked {locked:.1} ns/op, cached {cached:.1} ns/op");
        pool_rows.push(format!(
            "    {{\"workers\": {workers}, \"locked_ns_per_op\": {locked:.2}, \
             \"cached_ns_per_op\": {cached:.2}}}"
        ));
    }
    let degradation_pct = if cached_1 > 0.0 {
        (cached_8 / cached_1 - 1.0) * 100.0
    } else {
        0.0
    };

    eprintln!("measuring ring_path pairs ({PAIR_ITEMS} frames each)...");
    let mut ring_rows = Vec::new();
    for path in [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked] {
        let mpps = hotpath::median_of(RUNS, || hotpath::ring_pair_mpps(path, PAIR_ITEMS));
        eprintln!("  {:<8} {mpps:.2} Mpps", path.label());
        ring_rows.push(format!(
            "    {{\"path\": \"{}\", \"pair_mpps\": {mpps:.3}}}",
            path.label()
        ));
    }

    eprintln!("measuring burst_path at 8 workers ({WORKER_BURSTS} bursts)...");
    let locked8 = hotpath::median_of(RUNS, || {
        hotpath::burst_workers_mpps(8, false, WORKER_BURSTS)
    });
    let cached8 = hotpath::median_of(RUNS, || hotpath::burst_workers_mpps(8, true, WORKER_BURSTS));
    eprintln!(
        "  locked {locked8:.2} Mpps, cached {cached8:.2} Mpps, speedup {:.2}x",
        cached8 / locked8
    );

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_6\",\n\
         \x20 \"title\": \"Lock-free hot path: per-worker mempool caches and SPSC/MPSC ring fast paths\",\n\
         \x20 \"command\": \"cargo run --release -p metronome-bench --example bench6\",\n\
         \x20 \"host\": {{\"nproc\": {nproc}}},\n\
         \x20 \"note\": \"{note}\",\n\
         \x20 \"contended_pool\": {{\n\
         \x20   \"unit\": \"ns per buffer alloc+free, fixed total work across workers\",\n\
         \x20   \"burst\": {burst},\n\
         \x20   \"points\": [\n{pool_rows}\n    ],\n\
         \x20   \"cached_per_op_degradation_1_to_8_pct\": {degradation_pct:.1}\n\
         \x20 }},\n\
         \x20 \"ring_path\": {{\n\
         \x20   \"unit\": \"Mpps through one producer/consumer thread pair\",\n\
         \x20   \"capacity\": 1024,\n\
         \x20   \"points\": [\n{ring_rows}\n    ]\n\
         \x20 }},\n\
         \x20 \"burst_path_8_workers\": {{\n\
         \x20   \"unit\": \"Mpps, pooled l3fwd hot path over one shared pool\",\n\
         \x20   \"locked_mpps\": {locked8:.3},\n\
         \x20   \"cached_mpps\": {cached8:.3},\n\
         \x20   \"speedup\": {speedup:.2}\n\
         \x20 }}\n\
         }}\n",
        note = "single-core host: workers time-slice, so cross-core contention does not \
                appear; the comparable numbers are per-op constants and per-op flatness \
                as workers are added",
        burst = hotpath::BURST,
        pool_rows = pool_rows.join(",\n"),
        ring_rows = ring_rows.join(",\n"),
        speedup = cached8 / locked8,
    );
    std::fs::write(&out_path, &json).expect("write bench snapshot");
    eprintln!("wrote {out_path}");
}
