//! Emit `BENCH_8.json`: the async-executor scale sweep.
//!
//! Runs the [`metronome_bench::scale`] harness — one Metronome worker per
//! queue at N ∈ {4, 8, 64, 256, 1024} queues, thread backend vs async
//! executor backend — and writes per-point conservation, throughput, and
//! RSS to the path given as the first argument (default `BENCH_8.json`).
//!
//! The thread backend runs the full measurement up to 256 queues; at
//! 1024 it runs a spawn probe instead (1024 OS threads stand up and tear
//! down, documenting that the host *can* spawn them and what they cost)
//! while the async backend runs the full 1024-queue drain on 2 shards.
//!
//! ```text
//! cargo run --release -p metronome-bench --example bench8 [-- out.json]
//! ```
//!
//! Set `METRONOME_BENCH_QUICK=1` for a CI-sized sweep (fewer items, one
//! run per point instead of the median of three).

use metronome_bench::scale::{self, ScalePoint};
use metronome_core::ExecBackend;

const QUEUE_COUNTS: [usize; 5] = [4, 8, 64, 256, 1024];
/// Largest queue count the thread backend runs the full drain at; above
/// this, one-thread-per-worker on this host is measured by spawn probe.
const THREADS_FULL_MAX: usize = 256;
/// Executor shards for every async point.
const SHARDS: usize = 2;

/// Re-run a point and keep the run with the median aggregate throughput
/// (the same noise filter as `hotpath::median_of`, keeping the whole
/// point's fields consistent with each other).
fn median_point(runs: usize, mut f: impl FnMut() -> ScalePoint) -> ScalePoint {
    let mut points: Vec<ScalePoint> = (0..runs).map(|_| f()).collect();
    points.sort_by(|a, b| {
        a.aggregate_mpps
            .partial_cmp(&b.aggregate_mpps)
            .expect("throughput NaN")
    });
    points.swap_remove(points.len() / 2)
}

fn point_row(p: &ScalePoint) -> String {
    format!(
        "    {{\"queues\": {}, \"backend\": \"{}\", \"offered\": {}, \"processed\": {}, \
         \"dropped\": {}, \"allocs\": {}, \"frees\": {}, \"aggregate_mpps\": {:.4}, \
         \"per_queue_kpps\": {:.2}, \"min_queue_kpps\": {:.2}, \"rss_mb\": {:.1}}}",
        p.n_queues,
        p.exec.label(),
        p.offered,
        p.processed,
        p.offered - p.processed,
        p.allocs,
        p.frees,
        p.aggregate_mpps,
        p.aggregate_mpps * 1e3 / p.n_queues as f64,
        p.min_queue_kpps,
        p.rss_mb,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".into());
    let quick = std::env::var("METRONOME_BENCH_QUICK").is_ok_and(|v| v == "1");
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get());
    let (total_items, runs) = if quick {
        (60_000u64, 1)
    } else {
        (1_000_000u64, 3)
    };

    let mut rows = Vec::new();
    let mut small_ratio: Vec<String> = Vec::new();
    for n in QUEUE_COUNTS {
        // Shrink the item budget where a backend's per-item cost blows up
        // (time-slicing N workers on one core), keeping wall time sane.
        // At N <= 8 both backends get the *same* budget, so the parity
        // ratio below compares identical workloads. Each JSON row carries
        // its own `offered`, so rows stay self-describing.
        let async_pq = (total_items / n as u64 / (n as u64 / 64).max(1)).max(64);
        let threads_pq = (total_items / n as u64 / (n as u64 / 8).max(1)).max(64);
        eprintln!("N={n}: async ({SHARDS} shards), {async_pq} items/queue...");
        let a = median_point(runs, || {
            scale::scale_run(n, ExecBackend::Async { shards: SHARDS }, async_pq)
        });
        assert_eq!(a.processed, a.offered, "async N={n}: conservation violated");
        assert_eq!(a.allocs, a.frees, "async N={n}: pool audit violated");
        eprintln!(
            "  async:   {:.3} Mpps aggregate, min queue {:.1} kpps, RSS {:.1} MB",
            a.aggregate_mpps, a.min_queue_kpps, a.rss_mb
        );

        if n <= THREADS_FULL_MAX {
            eprintln!("N={n}: threads ({n} workers), {threads_pq} items/queue...");
            let t = median_point(runs, || {
                scale::scale_run(n, ExecBackend::Threads, threads_pq)
            });
            assert_eq!(
                t.processed, t.offered,
                "threads N={n}: conservation violated"
            );
            assert_eq!(t.allocs, t.frees, "threads N={n}: pool audit violated");
            eprintln!(
                "  threads: {:.3} Mpps aggregate, min queue {:.1} kpps, RSS {:.1} MB",
                t.aggregate_mpps, t.min_queue_kpps, t.rss_mb
            );
            if n <= 8 {
                let ratio = a.aggregate_mpps / t.aggregate_mpps;
                eprintln!("  async/threads throughput ratio at N={n}: {ratio:.2}");
                small_ratio.push(format!(
                    "    {{\"queues\": {n}, \"async_over_threads\": {ratio:.3}}}"
                ));
            }
            rows.push(point_row(&t));
        }
        rows.push(point_row(&a));
    }

    // The thread backend at 1024 queues: prove the host can spawn the
    // 1024 OS threads the shape demands, and record what they cost to
    // stand up — the async rows above carry the actual drain numbers.
    eprintln!("N=1024: thread-backend spawn probe (1024 OS threads)...");
    let (spawn_ms, spawn_rss) = scale::thread_spawn_probe(1024);
    eprintln!("  spawned+joined in {spawn_ms:.0} ms, RSS {spawn_rss:.1} MB live");

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_8\",\n\
         \x20 \"title\": \"Async discipline executor: queue-count scaling, thread vs async backend\",\n\
         \x20 \"command\": \"cargo run --release -p metronome-bench --example bench8\",\n\
         \x20 \"host\": {{\"nproc\": {nproc}}},\n\
         \x20 \"quick_mode\": {quick},\n\
         \x20 \"note\": \"{note}\",\n\
         \x20 \"sweep\": {{\n\
         \x20   \"unit\": \"aggregate Mpps draining n_queues x items_per_queue pool-backed items; offered == processed and allocs == frees asserted per point\",\n\
         \x20   \"discipline\": \"metronome, M = N\",\n\
         \x20   \"async_shards\": {SHARDS},\n\
         \x20   \"base_items_per_point\": {total_items},\n\
         \x20   \"budget_rule\": \"per-point items shrink with backend slowdown above N=8 (async: /max(1,N/64), threads: /max(1,N/8)); N<=8 budgets are identical across backends so the parity ratio compares like for like; each row's offered is its own budget\",\n\
         \x20   \"points\": [\n{rows}\n    ]\n\
         \x20 }},\n\
         \x20 \"small_n_parity\": {{\n\
         \x20   \"acceptance\": \"async within 15% of threads at N <= 8\",\n\
         \x20   \"ratios\": [\n{ratios}\n    ]\n\
         \x20 }},\n\
         \x20 \"thread_spawn_probe_1024\": {{\n\
         \x20   \"unit\": \"ms to spawn and join 1024 idle Metronome worker threads\",\n\
         \x20   \"spawn_join_ms\": {spawn_ms:.0},\n\
         \x20   \"rss_mb_live\": {spawn_rss:.1}\n\
         \x20 }}\n\
         }}\n",
        note = "single-core host: backends time-slice, so the comparison measures per-item \
                overhead and scheduling cost, not parallel speedup; the host's thread limit \
                allows 1024 OS threads (see the spawn probe), but the full 1024-queue drain \
                on one core is measured on the async backend, where 2 executor threads \
                carry all 1024 workers",
        rows = rows.join(",\n"),
        ratios = small_ratio.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench snapshot");
    eprintln!("wrote {out_path}");
}
