//! Emit `BENCH_9.json`: flight-recorder tracing overhead on the burst
//! hot path — the PR 9 bench guard.
//!
//! Three measurements per worker count, all through
//! [`metronome_bench::hotpath::burst_workers_mpps_traced`]:
//!
//! * **baseline** — the untraced harness (`burst_workers_mpps`), the
//!   pre-tracing hot path;
//! * **disabled** — the traced harness monomorphized with `NullTrace`:
//!   the record calls compile to nothing, so this must sit within noise
//!   of baseline (that is the "disabled tracing is free" claim);
//! * **enabled** — the traced harness with a real per-worker
//!   [`TraceRecorder`] (4096-event ring + histograms), which is the cost
//!   a scenario pays for `with_trace` / the daemon default.
//!
//! ```text
//! cargo run --release -p metronome-bench --example bench9 [-- out.json]
//! ```
//!
//! Set `METRONOME_BENCH_QUICK=1` for a CI-sized run (fewer bursts, one
//! run per point instead of the median of five).

use metronome_bench::hotpath::{burst_workers_mpps, burst_workers_mpps_traced};
use metronome_telemetry::{TraceHub, DEFAULT_RING_CAPACITY};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".into());
    let quick = std::env::var("METRONOME_BENCH_QUICK").is_ok_and(|v| v == "1");
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get());
    let (total_bursts, runs) = if quick { (4_000u64, 1) } else { (40_000u64, 5) };

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("measurement NaN"));
        v[v.len() / 2]
    };

    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        // Interleave the three paths' runs so slow machine-state drift
        // (time-slicing, thermal, co-tenants) lands on all of them
        // equally instead of biasing whichever was measured last.
        let hub = TraceHub::new(workers, DEFAULT_RING_CAPACITY);
        let (mut b, mut d, mut e) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..runs {
            b.push(burst_workers_mpps(workers, true, total_bursts));
            d.push(burst_workers_mpps_traced(
                workers,
                true,
                total_bursts,
                |_| metronome_telemetry::NullTrace,
            ));
            e.push(burst_workers_mpps_traced(
                workers,
                true,
                total_bursts,
                |w| hub.recorder(w),
            ));
        }
        let (baseline, disabled, enabled) = (median(b), median(d), median(e));
        let disabled_delta_pct = (baseline - disabled) / baseline * 100.0;
        let enabled_overhead_pct = (baseline - enabled) / baseline * 100.0;
        eprintln!(
            "workers={workers}: baseline {baseline:.3} Mpps, disabled {disabled:.3} Mpps \
             ({disabled_delta_pct:+.1}%), enabled {enabled:.3} Mpps ({enabled_overhead_pct:+.1}%)"
        );
        rows.push(format!(
            "    {{\"workers\": {workers}, \"baseline_mpps\": {baseline:.4}, \
             \"disabled_mpps\": {disabled:.4}, \"enabled_mpps\": {enabled:.4}, \
             \"disabled_delta_pct\": {disabled_delta_pct:.2}, \
             \"enabled_overhead_pct\": {enabled_overhead_pct:.2}}}"
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"BENCH_9\",\n\
         \x20 \"title\": \"Flight-recorder tracing overhead on the burst hot path\",\n\
         \x20 \"command\": \"cargo run --release -p metronome-bench --example bench9\",\n\
         \x20 \"host\": {{\"nproc\": {nproc}}},\n\
         \x20 \"quick_mode\": {quick},\n\
         \x20 \"unit\": \"Mpps over {total_bursts} 32-packet bursts through the pooled-burst \
         worker loop (l3fwd + latency stamping, per-worker mempool cache), median of {runs}\",\n\
         \x20 \"paths\": {{\n\
         \x20   \"baseline\": \"burst_workers_mpps: the untraced harness\",\n\
         \x20   \"disabled\": \"burst_workers_mpps_traced with NullTrace: record calls \
         monomorphize to no-ops\",\n\
         \x20   \"enabled\": \"burst_workers_mpps_traced with one TraceRecorder per worker \
         ({ring} -event drop-oldest ring + wake/oversleep/sched histograms)\"\n\
         \x20 }},\n\
         \x20 \"acceptance\": \"disabled within noise of baseline (single-core shared host: \
         run-to-run noise is a few percent; the disabled path is the same monomorphization \
         as baseline, so any delta IS the noise floor)\",\n\
         \x20 \"points\": [\n{points}\n  ]\n\
         }}\n",
        ring = DEFAULT_RING_CAPACITY,
        points = rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
