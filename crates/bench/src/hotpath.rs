//! Multi-worker hot-path measurement harness behind the lock-free
//! refactor: alloc/free-burst transactions at worker counts, SPSC vs
//! locked ring producer/consumer pairs, and the full pooled-burst worker
//! loop with a shared locked pool vs per-worker caches.
//!
//! These are wall-clock duration harnesses (fixed total work, measured
//! elapsed), not Criterion timers: the contention effects under study only
//! exist across real threads, and the per-op number of interest is
//! `elapsed / total_ops` summed over all workers. The Criterion bench
//! targets (`contended_pool`, `ring_path`, `burst_path`) call into this
//! module for their scaling tables, and `examples/bench6.rs` snapshots the
//! same measurements into `BENCH_6.json`.
//!
//! **Single-core caveat**: on a 1-CPU host the workers time-slice instead
//! of running concurrently, so a mutex is nearly always free when the
//! running thread asks for it — cross-core cache-line bouncing and
//! lock-holder stalls do not appear. What remains measurable, and what
//! these harnesses report, is the *per-operation* cost each path pays
//! (lock + shared-freelist traffic vs thread-local stack moves) and
//! whether the cached path's per-op cost stays flat as workers are added.

use bytes::BytesMut;
use metronome_apps::processor::PacketProcessor;
use metronome_apps::L3Fwd;
use metronome_dpdk::{Mbuf, Mempool, RingPath, SharedRing};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_sim::stats::Histogram;
use metronome_telemetry::{NullTrace, TraceSink, TraceVerdict};
use metronome_traffic::{FlowSet, WallClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Burst size every harness uses, matching the paper's retrieval burst.
pub const BURST: usize = 32;

/// Median of `n` runs of a measurement — the noise filter the
/// `BENCH_6.json` snapshot applies on a shared, single-core host where
/// any one run can eat a scheduling hiccup.
pub fn median_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
    assert!(n > 0, "need at least one run");
    let mut runs: Vec<f64> = (0..n).map(|_| f()).collect();
    runs.sort_by(|a, b| a.partial_cmp(b).expect("measurement NaN"));
    runs[runs.len() / 2]
}

const SUBNETS: usize = 4;

/// Routable template frames, like the realtime runner's flow population.
pub fn templates() -> Vec<BytesMut> {
    FlowSet::routable(256, SUBNETS, 0xB45)
        .flows()
        .iter()
        .map(|t| build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS))
        .collect()
}

/// Nanoseconds per buffer alloc+free pair with `workers` threads doing
/// `total_txns / workers` 32-buffer transactions each against one shared
/// pool — through the locked freelist (`cached = false`) or through a
/// per-worker [`metronome_dpdk::MempoolCache`] (`cached = true`).
///
/// The total work is fixed, so the number is directly comparable across
/// worker counts: flat means the path scales, growth is contention.
pub fn pool_txn_per_op_ns(workers: usize, cached: bool, total_txns: u64) -> f64 {
    assert!(workers > 0, "need at least one worker");
    // Headroom for every cache's refill high-water mark plus in-flight
    // bursts, so the pool never exhausts (exhaustion would measure the
    // failure path, not the transaction).
    let pool = Mempool::new(workers * 4 * BURST + 4 * BURST, 64);
    let barrier = Arc::new(Barrier::new(workers + 1));
    let txns = (total_txns / workers as u64).max(1);
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let pool = pool.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
                let mut cache = cached.then(|| pool.cache(BURST));
                barrier.wait();
                for _ in 0..txns {
                    let got = match cache.as_mut() {
                        Some(c) => c.alloc_burst(BURST, &mut burst),
                        None => pool.alloc_burst(BURST, &mut burst),
                    };
                    debug_assert_eq!(got, BURST, "bench pool must never exhaust");
                    match cache.as_mut() {
                        Some(c) => c.free_burst(burst.drain(..)),
                        None => pool.free_burst(burst.drain(..)),
                    }
                }
                // Cache drops here, spilling its stack back to the pool.
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("pool bench worker panicked");
    }
    let elapsed = t0.elapsed();
    assert_eq!(pool.in_use(), 0, "bench leaked buffers");
    assert_eq!(pool.cached(), 0, "bench left buffers cached");
    let ops = txns * workers as u64 * BURST as u64;
    elapsed.as_secs_f64() * 1e9 / ops as f64
}

/// Mpps through one producer/consumer thread pair over a [`SharedRing`]
/// on the given path, until the consumer has drained `target_items`.
///
/// The producer allocates blank mbufs from a per-thread pool cache and
/// offers bursts; rejected frames recycle through the cache, exactly like
/// the realtime runner's generator. The consumer drains bursts and frees
/// them through its own cache.
pub fn ring_pair_mpps(path: RingPath, target_items: u64) -> f64 {
    let ring = Arc::new(SharedRing::with_path(1024, path));
    let pool = Mempool::new(4096, 64);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(3));
    let consumer = ring.consumer();

    let producer = {
        let ring = Arc::clone(&ring);
        let pool = pool.clone();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut cache = pool.cache(BURST);
            let mut frames: Vec<Mbuf> = Vec::with_capacity(BURST);
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                cache.alloc_burst(BURST, &mut frames);
                let accepted = ring.offer_burst(&mut frames);
                // Tail-dropped frames stay in `frames`; recycle them.
                cache.free_burst(frames.drain(..));
                if accepted == 0 {
                    // Ring full. On a single-core host spinning here burns
                    // the whole timeslice the consumer needs; hand it over.
                    std::thread::yield_now();
                }
            }
        })
    };
    let drainer = {
        let pool = pool.clone();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut cache = pool.cache(BURST);
            let mut out: Vec<Mbuf> = Vec::with_capacity(BURST);
            let mut got = 0u64;
            barrier.wait();
            while got < target_items {
                let n = consumer.pop_burst(&mut out, BURST);
                got += n as u64;
                cache.free_burst(out.drain(..));
                if n == 0 {
                    // Ring empty: yield to the producer (see above).
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
    };
    barrier.wait();
    let t0 = Instant::now();
    drainer.join().expect("ring bench consumer panicked");
    let elapsed = t0.elapsed();
    producer.join().expect("ring bench producer panicked");
    // Return anything still queued so the pool audit below holds.
    let leftover = ring.consumer();
    let mut out = Vec::with_capacity(BURST);
    while leftover.pop_burst(&mut out, BURST) > 0 {
        pool.free_burst(out.drain(..));
    }
    assert_eq!(pool.in_use(), 0, "ring bench leaked buffers");
    target_items as f64 / elapsed.as_secs_f64() / 1e6
}

/// The per-queue application slot, exactly as the runner holds it:
/// processor + latency histogram behind one mutex (each worker gets its
/// own, so the mutex is uncontended — the variable under test is the
/// pool path).
struct WorkerApp {
    proc: Box<dyn PacketProcessor>,
    latency_ns: Histogram,
}

/// Mpps of `workers` threads each running the pooled-burst hot path
/// (alloc burst → refill from templates → `process_burst` → stamp
/// latency → free burst) against one shared pool — straight through the
/// locked freelist (`cached = false`, the PR 3 shape) or through a
/// per-worker cache (`cached = true`).
pub fn burst_workers_mpps(workers: usize, cached: bool, total_bursts: u64) -> f64 {
    burst_workers_mpps_traced(workers, cached, total_bursts, |_| NullTrace)
}

/// [`burst_workers_mpps`] with a flight recorder on the hot path: each
/// worker records the same per-burst events the realtime worker loop
/// does (a turn verdict plus a drained-burst event). Monomorphized over
/// the tracer, so `NullTrace` compiles the record calls away — that
/// no-op instantiation **is** the untraced harness, which is the bench
/// guard's disabled-path claim (`BENCH_9.json`).
pub fn burst_workers_mpps_traced<R>(
    workers: usize,
    cached: bool,
    total_bursts: u64,
    make_tracer: impl Fn(usize) -> R,
) -> f64
where
    R: TraceSink + Send + 'static,
{
    assert!(workers > 0, "need at least one worker");
    let frames = Arc::new(templates());
    let pool = Mempool::new(workers * 4 * BURST + 4 * BURST, 2048);
    let clock = WallClock::start();
    let barrier = Arc::new(Barrier::new(workers + 1));
    let bursts = (total_bursts / workers as u64).max(1);
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let frames = Arc::clone(&frames);
            let pool = pool.clone();
            let barrier = Arc::clone(&barrier);
            let tracer = make_tracer(w);
            std::thread::spawn(move || {
                let app = Mutex::new(WorkerApp {
                    proc: Box::new(L3Fwd::with_sample_routes(SUBNETS)),
                    latency_ns: Histogram::latency(),
                });
                let window = &frames[..BURST];
                let mut cache = cached.then(|| pool.cache(BURST));
                let mut burst: Vec<Mbuf> = Vec::with_capacity(BURST);
                let arrival = clock.now();
                barrier.wait();
                let mut forwarded = 0u64;
                for _ in 0..bursts {
                    let got = match cache.as_mut() {
                        Some(c) => c.alloc_burst(BURST, &mut burst),
                        None => pool.alloc_burst(BURST, &mut burst),
                    };
                    debug_assert_eq!(got, BURST, "bench pool must never exhaust");
                    for (mbuf, frame) in burst.iter_mut().zip(window) {
                        mbuf.refill(frame);
                        mbuf.arrival = arrival;
                    }
                    let mut slot = app.lock();
                    let verdicts = slot.proc.process_burst(&mut burst);
                    let done = clock.now();
                    for mbuf in burst.iter() {
                        let lat = done.saturating_sub(mbuf.arrival);
                        slot.latency_ns.record(lat.as_nanos());
                    }
                    drop(slot);
                    match cache.as_mut() {
                        Some(c) => c.free_burst(burst.drain(..)),
                        None => pool.free_burst(burst.drain(..)),
                    }
                    forwarded += verdicts.forwarded;
                    // What the traced worker loop records per drained
                    // burst: the turn verdict and the burst itself.
                    tracer.turn_verdict(TraceVerdict::Continue);
                    tracer.burst(0, BURST as u64);
                }
                drop(tracer); // flight recorder flushes on drop
                forwarded
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut forwarded = 0u64;
    for h in handles {
        forwarded += h.join().expect("burst bench worker panicked");
    }
    let elapsed = t0.elapsed();
    assert_eq!(pool.in_use(), 0, "burst bench leaked buffers");
    assert!(forwarded > 0, "processor forwarded nothing");
    (bursts * workers as u64 * BURST as u64) as f64 / elapsed.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_harness_measures_both_paths() {
        let locked = pool_txn_per_op_ns(2, false, 2_000);
        let cached = pool_txn_per_op_ns(2, true, 2_000);
        assert!(locked > 0.0 && cached > 0.0);
    }

    #[test]
    fn ring_harness_moves_items_on_every_path() {
        for path in [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked] {
            assert!(ring_pair_mpps(path, 50_000) > 0.0, "{path:?}");
        }
    }

    #[test]
    fn burst_harness_measures_both_paths() {
        assert!(burst_workers_mpps(2, false, 500) > 0.0);
        assert!(burst_workers_mpps(2, true, 500) > 0.0);
    }

    #[test]
    fn traced_burst_harness_records_every_burst() {
        use metronome_telemetry::{TraceEventKind, TraceHub};
        let hub = TraceHub::new(2, 4096);
        let mpps = burst_workers_mpps_traced(2, true, 500, |w| hub.recorder(w));
        assert!(mpps > 0.0);
        let dump = hub.dump();
        // One Burst record per burst iteration, split across 2 workers.
        assert_eq!(dump.kind_count(TraceEventKind::Burst), 500);
        assert_eq!(dump.kind_count(TraceEventKind::TurnVerdict), 500);
    }
}
