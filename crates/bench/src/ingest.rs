//! Sharded-ingest measurement harness behind the multi-producer
//! generation refactor (`BENCH_10.json`): `G` producer shards splitting
//! one flow population, scatter-gather queue dispatch vs per-queue `Vec`
//! staging, and the amortized [`CoarseClock`] vs a precise per-packet
//! clock read.
//!
//! Like [`crate::hotpath`], these are wall-clock duration harnesses
//! (fixed total work, measured elapsed) across real threads, with exact
//! conservation asserted at every point: what the producers offered
//! equals what the rings accepted plus what they tail-dropped, what the
//! drainer freed equals what the rings accepted, and the pool ends
//! whole (`in_use == 0`, `cached == 0`, `allocs == frees`).
//!
//! **Single-core caveat**: on a 1-CPU host the shards time-slice instead
//! of producing concurrently, so shard scaling measures coordination
//! overhead (MPSC CAS traffic, cache hand-offs) rather than parallel
//! speedup — `BENCH_10.json` records the host's `nproc` alongside every
//! number for exactly this reason.

use bytes::BytesMut;
use metronome_dpdk::{Mbuf, Mempool, QueueScatter, RingPath, RssPort};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_sim::CoarseClock;
use metronome_traffic::{FlowSet, WallClock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Burst size every harness uses, matching the paper's retrieval burst.
pub const BURST: usize = 32;

/// Flows in the generated population (matches the realtime runner).
const FLOWS: usize = 256;

/// Destination subnets, matching `L3Fwd::with_sample_routes(4)`.
const SUBNETS: usize = 4;

/// Descriptors per Rx ring.
const RING_SIZE: usize = 1024;

/// Routable template frames with their RSS decision resolved once per
/// flow against `port`, exactly as the realtime runner and the daemon
/// build their populations.
fn resolved_templates(port: &RssPort) -> Vec<(BytesMut, usize, u32)> {
    FlowSet::routable(FLOWS, SUBNETS, 0xB45)
        .flows()
        .iter()
        .map(|t| {
            let frame = build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS);
            let input = t.rss_input();
            (frame, port.queue_for(&input), port.rss_hash(&input))
        })
        .collect()
}

/// Mpps of `shards` producer threads pushing a fixed total of accepted
/// frames through an [`RssPort`] on `path`, drained by one consumer
/// thread — the sharded-ingest shape end to end.
///
/// Each shard owns the flows whose template index is `i % shards` (the
/// runner's flow→shard function), a per-shard [`Mempool`] cache, and its
/// own staging: a [`QueueScatter`] bucket sort when `scatter` is true,
/// the pre-refactor per-queue `Vec` staging when false. Ring tail-drops
/// are recycled and re-offered as fresh frames until the shard's
/// acceptance quota is met, so the measured work is identical across
/// shard counts and paths.
///
/// # Panics
/// If conservation or the pool audit fails — a harness that can lose
/// packets would measure the leak, not the path.
pub fn sharded_ingest_mpps(
    shards: usize,
    path: RingPath,
    n_queues: usize,
    total_packets: u64,
    scatter: bool,
) -> f64 {
    assert!(shards > 0, "need at least one producer shard");
    assert!(n_queues > 0, "need at least one queue");
    assert!(
        shards == 1 || path != RingPath::Spsc,
        "SPSC rings admit one producer"
    );
    let port = Arc::new(RssPort::with_path(n_queues, RING_SIZE, path));
    let pool = Mempool::new(2 * n_queues * RING_SIZE + (shards + 1) * 4 * BURST, 2048);
    let templates = Arc::new(resolved_templates(&port));
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(shards + 2));
    let per_shard = (total_packets / shards as u64).max(1);
    let offered = Arc::new(AtomicU64::new(0));

    let producers: Vec<_> = (0..shards)
        .map(|s| {
            let port = Arc::clone(&port);
            let pool = pool.clone();
            let templates = Arc::clone(&templates);
            let barrier = Arc::clone(&barrier);
            let offered = Arc::clone(&offered);
            std::thread::spawn(move || {
                let mut cache = pool.cache(BURST);
                let mut blanks: Vec<Mbuf> = Vec::with_capacity(BURST);
                let mut bucket = QueueScatter::new(n_queues);
                let mut staged: Vec<Vec<Mbuf>> =
                    (0..n_queues).map(|_| Vec::with_capacity(BURST)).collect();
                let my: Vec<usize> = (0..templates.len()).filter(|i| i % shards == s).collect();
                let mut seq = 0usize;
                let mut accepted = 0u64;
                barrier.wait();
                while accepted < per_shard {
                    let want = BURST.min((per_shard - accepted) as usize);
                    cache.alloc_burst(want, &mut blanks);
                    let mut built = 0u64;
                    while let Some(mut mbuf) = blanks.pop() {
                        let (frame, q, hash) = &templates[my[seq % my.len()]];
                        seq += 1;
                        mbuf.refill(frame);
                        mbuf.queue = *q as u16;
                        mbuf.rss_hash = *hash;
                        built += 1;
                        if scatter {
                            bucket.push(*q, mbuf);
                        } else {
                            staged[*q].push(mbuf);
                        }
                    }
                    offered.fetch_add(built, Ordering::Relaxed);
                    let before = accepted;
                    if scatter {
                        bucket.dispatch(|q, frames| {
                            accepted += port.offer_burst(q, frames) as u64;
                            // Tail-dropped frames stay behind; recycle.
                            cache.free_burst(frames.drain(..));
                        });
                    } else {
                        for (q, frames) in staged.iter_mut().enumerate() {
                            if frames.is_empty() {
                                continue;
                            }
                            accepted += port.offer_burst(q, frames) as u64;
                            cache.free_burst(frames.drain(..));
                        }
                    }
                    if accepted == before {
                        // Rings full: on a single-core host spinning here
                        // burns the timeslice the drainer needs.
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let drainer = {
        let pool = pool.clone();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let consumers = port.consumers();
        std::thread::spawn(move || {
            let mut cache = pool.cache(BURST);
            let mut out: Vec<Mbuf> = Vec::with_capacity(BURST);
            let mut drained = 0u64;
            barrier.wait();
            loop {
                let mut idle = true;
                for c in &consumers {
                    let n = c.pop_burst(&mut out, BURST);
                    drained += n as u64;
                    cache.free_burst(out.drain(..));
                    if n > 0 {
                        idle = false;
                    }
                }
                if idle {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            drained
        })
    };

    barrier.wait();
    let t0 = Instant::now();
    for p in producers {
        p.join().expect("ingest producer panicked");
    }
    stop.store(true, Ordering::Release);
    let drained = drainer.join().expect("ingest drainer panicked");
    let elapsed = t0.elapsed();

    // Exact conservation at this sweep point.
    let accepted = port.total_accepted();
    assert_eq!(accepted, shards as u64 * per_shard, "quota not met");
    assert_eq!(drained, accepted, "drainer lost frames");
    assert_eq!(
        port.total_offered(),
        port.total_accepted() + port.total_dropped(),
        "port counters leaked"
    );
    assert_eq!(
        offered.load(Ordering::Relaxed),
        port.total_offered(),
        "producers and port disagree on offered"
    );
    // Pool audit: caches flushed on join, every buffer home.
    let stats = pool.stats();
    assert_eq!(pool.in_use(), 0, "ingest bench leaked buffers");
    assert_eq!(pool.cached(), 0, "ingest bench left buffers cached");
    assert_eq!(stats.allocs, stats.frees, "alloc/free imbalance");

    accepted as f64 / elapsed.as_secs_f64() / 1e6
}

/// Nanoseconds per packet of latency stamping: a precise clock read per
/// packet (`WallClock::now`, the pre-refactor shape) vs the amortized
/// path (one [`CoarseClock::tick`] per 32-packet burst, free cached
/// reads per packet). The stamped values feed a black-boxed accumulator
/// so neither loop can be optimized away.
pub fn stamp_per_packet_ns(coarse: bool, total_packets: u64) -> f64 {
    let clock = WallClock::start();
    let amortized = CoarseClock::from_epoch(clock.anchor());
    let bursts = (total_packets / BURST as u64).max(1);
    let mut acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..bursts {
        if coarse {
            amortized.tick();
            for _ in 0..BURST {
                acc = acc.wrapping_add(std::hint::black_box(amortized.cached().as_nanos()));
            }
        } else {
            for _ in 0..BURST {
                acc = acc.wrapping_add(std::hint::black_box(clock.now().as_nanos()));
            }
        }
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / (bursts * BURST as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_harness_conserves_on_every_path_and_staging() {
        for (shards, path) in [
            (1, RingPath::Spsc),
            (1, RingPath::Mpsc),
            (2, RingPath::Mpsc),
            (2, RingPath::Locked),
        ] {
            for scatter in [false, true] {
                let mpps = sharded_ingest_mpps(shards, path, 2, 20_000, scatter);
                assert!(mpps > 0.0, "{shards} shards on {path:?}");
            }
        }
    }

    #[test]
    fn multi_shard_spsc_is_rejected() {
        let r = std::panic::catch_unwind(|| sharded_ingest_mpps(2, RingPath::Spsc, 1, 100, true));
        assert!(r.is_err(), "two producers on SPSC must be refused");
    }

    #[test]
    fn stamp_harness_measures_both_clocks() {
        assert!(stamp_per_packet_ns(false, 50_000) > 0.0);
        assert!(stamp_per_packet_ns(true, 50_000) > 0.0);
    }
}
