//! # metronome-bench — benchmark harness
//!
//! Three bench targets (run with `cargo bench`):
//!
//! * `paper_experiments` — Criterion timing of a scaled-down kernel of
//!   every table/figure reproduction (one group per experiment), useful as
//!   a regression canary for simulation throughput;
//! * `micro` — Criterion microbenchmarks of the hot primitives (trylock,
//!   Toeplitz, LPM, exact-match, AES, rings, event queue, arrival drains);
//! * `ablations` — a measurement harness (not a timer) printing the
//!   design-choice comparisons called out in DESIGN.md §5: diversity vs
//!   equal timeouts, adaptive vs fixed TS, hr_sleep vs nanosleep, Tx batch
//!   32 vs 1, burst reactivity vs XDP.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use metronome_core::MetronomeConfig;
use metronome_runtime::{run, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// A short Metronome line-rate run used by several benches.
pub fn quick_line_rate_run(millis: u64) -> RunReport {
    let sc = Scenario::metronome(
        "bench-line",
        MetronomeConfig::default(),
        TrafficSpec::CbrGbps(10.0),
    )
    .with_duration(Nanos::from_millis(millis));
    run(&sc)
}
