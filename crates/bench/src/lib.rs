//! # metronome-bench — benchmark harness
//!
//! Bench targets (run with `cargo bench`):
//!
//! * `paper_experiments` — Criterion timing of a scaled-down kernel of
//!   every table/figure reproduction (one group per experiment), useful as
//!   a regression canary for simulation throughput;
//! * `micro` — Criterion microbenchmarks of the hot primitives (trylock,
//!   Toeplitz, LPM, exact-match, AES, rings, event queue, arrival drains);
//! * `ablations` — a measurement harness (not a timer) printing the
//!   design-choice comparisons called out in DESIGN.md §5: diversity vs
//!   equal timeouts, adaptive vs fixed TS, hr_sleep vs nanosleep, Tx batch
//!   32 vs 1, burst reactivity vs XDP;
//! * `burst_path` — per-packet clone vs pooled burst on the l3fwd hot
//!   path, plus the 8-worker shared-locked vs per-worker-cache comparison;
//! * `contended_pool` — alloc/free-burst transactions at 1/2/4/8/16
//!   workers, locked freelist vs per-worker [`hotpath`] caches;
//! * `ring_path` — SPSC/MPSC/locked `SharedRing` paths, single-thread
//!   burst round-trips and a real producer/consumer thread pair.
//!
//! The multi-thread measurement harnesses live in [`hotpath`];
//! `examples/bench6.rs` snapshots them into `BENCH_6.json`. The
//! queue-count scaling harness (thread vs async executor backend) lives
//! in [`scale`]; `examples/bench8.rs` snapshots it into `BENCH_8.json`.
//! The sharded-ingest harness (producer shards × ring paths,
//! scatter-gather vs per-queue staging, amortized vs precise clock)
//! lives in [`ingest`]; `examples/bench10.rs` snapshots it into
//! `BENCH_10.json`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hotpath;
pub mod ingest;
pub mod scale;

use metronome_core::MetronomeConfig;
use metronome_runtime::{run, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// A short Metronome line-rate run used by several benches.
pub fn quick_line_rate_run(millis: u64) -> RunReport {
    let sc = Scenario::metronome(
        "bench-line",
        MetronomeConfig::default(),
        TrafficSpec::CbrGbps(10.0),
    )
    .with_duration(Nanos::from_millis(millis));
    run(&sc)
}
