//! Queue-count scaling harness: the same Metronome worker set at
//! N ∈ {4 … 1024} queues on either [`ExecBackend`], under a fixed total
//! of pool-backed items pushed with backpressure.
//!
//! The question the async executor exists to answer: how far does queue
//! count scale when workers are cooperative tasks on a handful of shards
//! instead of one OS thread each? Each [`scale_run`] point measures
//!
//! * **conservation** — the producer retries until every item is
//!   accepted, so `offered == processed` exactly and `dropped == 0`; the
//!   pool's `allocs == frees` audit closes the loop on buffers;
//! * **throughput** — aggregate Mpps over the drain window, plus the
//!   slowest queue's rate (nonzero per-queue throughput is the fairness
//!   floor);
//! * **footprint** — the process RSS while the worker set is live, read
//!   from `/proc/self/status` (the thread backend pays a stack per
//!   worker, the async backend a task struct per worker).
//!
//! `examples/bench8.rs` sweeps this harness into `BENCH_8.json`.
//!
//! **Single-core caveat** (same as [`crate::hotpath`]): on a 1-CPU host
//! the backends time-slice, so the comparison measures per-item overhead
//! and scheduling cost, not parallel speedup.

use crate::hotpath::BURST;
use crossbeam::queue::ArrayQueue;
use metronome_core::{DisciplineSpec, ExecBackend, MetronomeConfig, WorkerSet};
use metronome_dpdk::{Mbuf, Mempool};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ring capacity per queue (small, so footprint scales with N honestly).
const QUEUE_CAP: usize = 128;

/// Mbuf dataroom for scale points: payload is irrelevant here, buffers
/// exist to exercise the pool accounting.
const DATAROOM: usize = 64;

/// Buffers in the shared pool. Also the in-flight ceiling: the producer
/// blocks on an empty pool exactly like it blocks on a full ring, so no
/// point ever drops.
const POOL_POPULATION: usize = 8 * 1024;

/// One measured point of the scale sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Queue (and worker) count of this point.
    pub n_queues: usize,
    /// Backend the worker set ran on.
    pub exec: ExecBackend,
    /// Items pushed (the producer retries until accepted: exact).
    pub offered: u64,
    /// Items the workers processed (must equal `offered`).
    pub processed: u64,
    /// Pool allocations over the run.
    pub allocs: u64,
    /// Pool frees over the run (must equal `allocs` after teardown).
    pub frees: u64,
    /// Wall-clock seconds from first push to last item processed.
    pub elapsed_s: f64,
    /// Aggregate drain rate in Mpps.
    pub aggregate_mpps: f64,
    /// The slowest queue's drain rate in kpps (nonzero = no starvation).
    pub min_queue_kpps: f64,
    /// Process RSS (MB) while the worker set was live.
    pub rss_mb: f64,
}

/// Current process RSS in MB from `/proc/self/status` (0.0 if the field
/// is unavailable — non-Linux hosts).
pub fn rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Run one scale point: `n_queues` queues, one Metronome worker per
/// queue (`M = N`), `per_queue` items each, on `exec`. The producer
/// pushes with backpressure (retry on full ring or exhausted pool), so
/// conservation is exact by construction — the *measurement* is how fast
/// the worker set drains and what it costs to stand up.
pub fn scale_run(n_queues: usize, exec: ExecBackend, per_queue: u64) -> ScalePoint {
    assert!(n_queues > 0 && per_queue > 0);
    let cfg = MetronomeConfig {
        m_threads: n_queues,
        n_queues,
        ..MetronomeConfig::default()
    };
    let pool = Mempool::new(POOL_POPULATION, DATAROOM);
    let queues: Vec<Arc<ArrayQueue<Mbuf>>> = (0..n_queues)
        .map(|_| Arc::new(ArrayQueue::new(QUEUE_CAP)))
        .collect();

    // Per-worker cache size, capped so that even if every idle worker's
    // cache sits at its spill floor, the caches collectively park at most
    // ~3/8 of the pool (each retains up to 1.5x its size before
    // spilling). Without the cap, at N >= 256 the caches can absorb the
    // entire population and the producer starves permanently: the
    // remaining buffers are parked behind workers whose rings are empty,
    // so nothing ever spills back.
    let worker_burst = (cfg.burst as usize).min((POOL_POPULATION / (4 * n_queues)).max(1));
    let set =
        WorkerSet::start_discipline_scoped(exec, cfg, DisciplineSpec::Metronome, queues.clone(), {
            let pool = &pool;
            move |_worker| {
                // Per-worker cache, like the realtime runner: a recycled
                // burst is a thread/task-local stack push. The cache
                // flushes when the worker is dropped at stop, so the
                // allocs == frees audit below balances.
                let mut cache = pool.cache(worker_burst);
                move |_q: usize, burst: &mut Vec<Mbuf>| {
                    cache.free_burst(burst.drain(..));
                }
            }
        });

    // Producer: burst-alloc, push round-robin with backpressure. An
    // exhausted pool and a full ring are the same condition — items in
    // flight — and both resolve when workers drain, so spin-yield.
    let total = n_queues as u64 * per_queue;
    let mut cache = pool.cache(BURST);
    let mut blanks: Vec<Mbuf> = Vec::with_capacity(BURST);
    let t0 = Instant::now();
    let mut pushed = 0u64;
    while pushed < total {
        let want = BURST.min((total - pushed) as usize);
        while cache.alloc_burst(want, &mut blanks) == 0 {
            std::thread::yield_now();
        }
        while let Some(mbuf) = blanks.pop() {
            let q = (pushed % n_queues as u64) as usize;
            let mut item = mbuf;
            loop {
                match queues[q].push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
            pushed += 1;
        }
    }
    drop(cache);

    // Drain window: generation is over, wait for the workers to catch up.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let processed: u64 = (0..n_queues).map(|q| set.processed(q)).sum();
        if processed >= total || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    let rss = rss_mb();
    let stats = set.stop();

    let processed = stats.total_processed();
    let elapsed_s = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let min_queue = stats.processed.iter().copied().min().unwrap_or(0);
    let (allocs, frees) = pool.counters();
    assert_eq!(pool.in_use(), 0, "scale point leaked buffers");
    assert_eq!(pool.cached(), 0, "worker caches not flushed at stop");
    ScalePoint {
        n_queues,
        exec,
        offered: pushed,
        processed,
        allocs,
        frees,
        elapsed_s,
        aggregate_mpps: processed as f64 / elapsed_s / 1e6,
        min_queue_kpps: min_queue as f64 / elapsed_s / 1e3,
        rss_mb: rss,
    }
}

/// Stand up (and immediately tear down) a thread-backend worker set of
/// `n_queues` workers with no traffic, returning (spawn+join wall ms,
/// RSS MB while live). At 1024 workers this is 1024 OS threads — the
/// probe documents that the host *can* spawn them and what the stacks
/// cost, without charging the full-drain measurement to a backend that
/// is pure context-switch thrash at that shape on one core.
pub fn thread_spawn_probe(n_queues: usize) -> (f64, f64) {
    let cfg = MetronomeConfig {
        m_threads: n_queues,
        n_queues,
        ..MetronomeConfig::default()
    };
    let queues: Vec<Arc<ArrayQueue<u64>>> = (0..n_queues)
        .map(|_| Arc::new(ArrayQueue::new(8)))
        .collect();
    let t0 = Instant::now();
    let set = WorkerSet::start_discipline_scoped(
        ExecBackend::Threads,
        cfg,
        DisciplineSpec::Metronome,
        queues,
        |_worker| |_q: usize, burst: &mut Vec<u64>| burst.clear(),
    );
    let rss = rss_mb();
    let stats = set.stop();
    assert_eq!(stats.total_processed(), 0);
    (t0.elapsed().as_secs_f64() * 1e3, rss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_conserve_at_a_small_point() {
        for exec in [ExecBackend::Threads, ExecBackend::Async { shards: 2 }] {
            let p = scale_run(4, exec, 512);
            assert_eq!(p.offered, 4 * 512, "{exec:?}: offered");
            assert_eq!(p.processed, p.offered, "{exec:?}: conservation");
            assert_eq!(p.allocs, p.frees, "{exec:?}: pool audit");
            assert!(p.aggregate_mpps > 0.0, "{exec:?}: throughput");
            assert!(p.min_queue_kpps > 0.0, "{exec:?}: a queue starved");
        }
    }

    #[test]
    fn spawn_probe_reports_a_live_worker_set() {
        let (ms, rss) = thread_spawn_probe(8);
        assert!(ms > 0.0);
        assert!(rss > 0.0);
    }
}
