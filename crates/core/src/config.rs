//! Metronome configuration knobs.

use metronome_sim::Nanos;

/// Tunables of the Metronome architecture (paper §V defaults unless noted).
#[derive(Clone, Debug)]
pub struct MetronomeConfig {
    /// Number of packet-retrieval threads `M` (paper default 3 for the
    /// single-queue evaluation, 5 for the 4-queue XL710 sweep).
    pub m_threads: usize,
    /// Number of Rx queues `N` (`M ≥ N`).
    pub n_queues: usize,
    /// Target mean vacation period `V̄` (10 µs single-queue, 15 µs
    /// multiqueue in the paper).
    pub v_target: Nanos,
    /// Long (backup) timeout `TL` — fixed at 500 µs in the evaluation:
    /// "(i) it is 50 times bigger than the maximum TS possible value ...
    /// (ii) most of the advantage of increasing TL happens before 500 µs".
    pub t_long: Nanos,
    /// EWMA smoothing factor `α` of the load estimator (eq. (11)).
    pub alpha: f64,
    /// Rx burst size (DPDK convention: 32).
    pub burst: u32,
    /// Tx batching threshold (32 default; 1 trades 2-3% CPU for lower
    /// low-rate latency variance, §V-C).
    pub tx_batch: u32,
    /// Pin `TS` to a fixed value instead of the adaptive rule — used by
    /// the model-validation experiment (paper Fig. 4 sets TS = TL = 50 µs)
    /// and the fixed-vs-adaptive ablation.
    pub fixed_ts: Option<Nanos>,
}

impl Default for MetronomeConfig {
    fn default() -> Self {
        MetronomeConfig {
            m_threads: 3,
            n_queues: 1,
            v_target: Nanos::from_micros(10),
            t_long: Nanos::from_micros(500),
            alpha: 0.125,
            burst: 32,
            tx_batch: 32,
            fixed_ts: None,
        }
    }
}

impl MetronomeConfig {
    /// Paper §V-F multiqueue defaults: `V̄ = 15 µs`, `N` queues, `M`
    /// threads.
    pub fn multiqueue(m_threads: usize, n_queues: usize) -> Self {
        MetronomeConfig {
            m_threads,
            n_queues,
            v_target: Nanos::from_micros(15),
            ..Default::default()
        }
    }

    /// Validate invariants; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.m_threads < 1 {
            return Err("need at least one thread".into());
        }
        if self.n_queues < 1 {
            return Err("need at least one queue".into());
        }
        if self.m_threads < self.n_queues {
            return Err(format!(
                "M ({}) must be at least N ({}) so every queue can have a primary (§IV-E)",
                self.m_threads, self.n_queues
            ));
        }
        if self.v_target.is_zero() {
            return Err("zero target vacation".into());
        }
        if self.t_long < self.v_target {
            return Err("TL must exceed the vacation target".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha == 0.0 {
            return Err("alpha must be in (0, 1]".into());
        }
        if self.burst == 0 || self.tx_batch == 0 {
            return Err("burst sizes must be positive".into());
        }
        if let Some(ts) = self.fixed_ts {
            if ts.is_zero() || ts > self.t_long {
                return Err("fixed TS must be in (0, TL]".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = MetronomeConfig::default();
        c.validate().unwrap();
        assert_eq!(c.m_threads, 3);
        assert_eq!(c.v_target, Nanos::from_micros(10));
        assert_eq!(c.t_long, Nanos::from_micros(500));
    }

    #[test]
    fn multiqueue_preset() {
        let c = MetronomeConfig::multiqueue(5, 4);
        c.validate().unwrap();
        assert_eq!(c.v_target, Nanos::from_micros(15));
        assert_eq!(c.n_queues, 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = MetronomeConfig {
            m_threads: 0,
            ..MetronomeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MetronomeConfig {
            n_queues: 5, // M=3 < N=5
            ..MetronomeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MetronomeConfig {
            t_long: Nanos::from_micros(5),
            ..MetronomeConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MetronomeConfig {
            alpha: 0.0,
            ..MetronomeConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
