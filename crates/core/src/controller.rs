//! The adaptive controller: per-queue load estimation and `TS` setting.
//!
//! Paper §IV-D: each renewal cycle yields an observation `B(i)/(V(i)+B(i))`
//! that feeds the EWMA of eq. (11); the smoothed `ρ` then drives the `TS`
//! rule of eq. (13) (or eq. (14) per queue in the multiqueue case). The
//! controller also exposes the derived offered-rate estimate `λ̂ = ρ̂·µ`
//! that Fig. 9a plots against the true MoonGen rate.

use crate::config::MetronomeConfig;
use crate::model;
use metronome_sim::stats::Ewma;
use metronome_sim::Nanos;

/// Per-queue adaptation state plus run statistics.
#[derive(Clone, Debug)]
pub struct QueueState {
    rho: Ewma,
    /// Successful trylock acquisitions on this queue.
    pub total_tries: u64,
    /// Failed trylock attempts ("busy tries", Figs. 6/7/14, Table III).
    pub busy_tries: u64,
    /// Completed renewal cycles.
    pub cycles: u64,
    /// Sum of vacation durations (for reporting mean V).
    pub vacation_sum: Nanos,
    /// Sum of busy durations.
    pub busy_sum: Nanos,
}

impl QueueState {
    fn new(alpha: f64) -> Self {
        QueueState {
            rho: Ewma::new(alpha),
            total_tries: 0,
            busy_tries: 0,
            cycles: 0,
            vacation_sum: Nanos::ZERO,
            busy_sum: Nanos::ZERO,
        }
    }

    /// Smoothed load estimate (0 before any observation).
    pub fn rho(&self) -> f64 {
        self.rho.value_or(0.0)
    }

    /// Mean observed vacation period.
    pub fn mean_vacation(&self) -> Option<Nanos> {
        (self.cycles > 0).then(|| self.vacation_sum / self.cycles)
    }

    /// Mean observed busy period.
    pub fn mean_busy(&self) -> Option<Nanos> {
        (self.cycles > 0).then(|| self.busy_sum / self.cycles)
    }

    /// Fraction of trylock attempts that failed.
    pub fn busy_try_fraction(&self) -> f64 {
        let all = self.total_tries + self.busy_tries;
        if all == 0 {
            0.0
        } else {
            self.busy_tries as f64 / all as f64
        }
    }
}

/// The per-port adaptive controller shared by all Metronome threads.
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    cfg: MetronomeConfig,
    queues: Vec<QueueState>,
}

impl AdaptiveController {
    /// Controller for the configured number of queues.
    pub fn new(cfg: MetronomeConfig) -> Self {
        let queues = (0..cfg.n_queues)
            .map(|_| QueueState::new(cfg.alpha))
            .collect();
        AdaptiveController { cfg, queues }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MetronomeConfig {
        &self.cfg
    }

    /// Record a completed renewal cycle on `queue`: the vacation that
    /// preceded the busy period and the busy period itself (eq. (11)).
    pub fn record_cycle(&mut self, queue: usize, vacation: Nanos, busy: Nanos) {
        let q = &mut self.queues[queue];
        let sample = model::rho_from_periods(busy.as_secs_f64(), vacation.as_secs_f64());
        q.rho.update(sample);
        q.cycles += 1;
        q.vacation_sum += vacation;
        q.busy_sum += busy;
    }

    /// Record a successful trylock acquisition.
    pub fn record_acquired(&mut self, queue: usize) {
        self.queues[queue].total_tries += 1;
    }

    /// Record a failed trylock attempt (busy try).
    pub fn record_busy_try(&mut self, queue: usize) {
        self.queues[queue].busy_tries += 1;
    }

    /// Current `TS` for `queue` (eq. (13), or eq. (14) when `n_queues > 1`).
    /// A configured `fixed_ts` short-circuits the adaptive rule.
    pub fn ts(&self, queue: usize) -> Nanos {
        if let Some(fixed) = self.cfg.fixed_ts {
            return fixed;
        }
        let rho = self.queues[queue].rho();
        let v = self.cfg.v_target.as_secs_f64();
        let ts = if self.cfg.n_queues == 1 {
            model::ts_rule(self.cfg.m_threads, rho, v)
        } else {
            model::ts_rule_multiqueue(self.cfg.m_threads, self.cfg.n_queues, rho, v)
        };
        Nanos::from_secs_f64(ts)
    }

    /// The long backup timeout (fixed; §IV-E "the TL value remains fixed").
    pub fn tl(&self) -> Nanos {
        self.cfg.t_long
    }

    /// Smoothed load of a queue.
    pub fn rho(&self, queue: usize) -> f64 {
        self.queues[queue].rho()
    }

    /// Offered-rate estimate for a queue: `λ̂ = ρ̂·µ` (Fig. 9a), where `µ`
    /// is the configured drain rate in packets/second.
    pub fn estimated_rate_pps(&self, queue: usize, mu_pps: f64) -> f64 {
        self.rho(queue) * mu_pps
    }

    /// Immutable view of a queue's statistics.
    pub fn queue(&self, queue: usize) -> &QueueState {
        &self.queues[queue]
    }

    /// Number of queues under control.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// Aggregate busy-try fraction across queues.
    pub fn busy_try_fraction(&self) -> f64 {
        let (mut busy, mut all) = (0u64, 0u64);
        for q in &self.queues {
            busy += q.busy_tries;
            all += q.busy_tries + q.total_tries;
        }
        if all == 0 {
            0.0
        } else {
            busy as f64 / all as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetronomeConfig;

    fn cfg(m: usize, n: usize) -> MetronomeConfig {
        MetronomeConfig {
            m_threads: m,
            n_queues: n,
            ..MetronomeConfig::default()
        }
    }

    #[test]
    fn ts_starts_at_low_load_value() {
        // No observations → ρ = 0 → TS = M·V̄.
        let c = AdaptiveController::new(cfg(3, 1));
        let expect = c.config().v_target.scaled(3);
        assert_eq!(c.ts(0), expect);
    }

    #[test]
    fn ts_shrinks_under_load() {
        let mut c = AdaptiveController::new(cfg(3, 1));
        let before = c.ts(0);
        // Heavy load: busy periods as long as vacations (ρ ≈ 0.5).
        for _ in 0..200 {
            c.record_cycle(0, Nanos::from_micros(20), Nanos::from_micros(20));
        }
        let after = c.ts(0);
        assert!(after < before, "{after} !< {before}");
        assert!((c.rho(0) - 0.5).abs() < 0.01, "rho {}", c.rho(0));
        // TS = 3(1-0.5)/(1-0.125)·V̄ = 12/7·V̄ ≈ 1.714·V̄.
        let expect = c.config().v_target.scaled_f64(12.0 / 7.0);
        let err =
            (after.as_nanos() as f64 - expect.as_nanos() as f64).abs() / expect.as_nanos() as f64;
        assert!(err < 0.02, "{after} vs {expect}");
    }

    #[test]
    fn ewma_tracks_load_changes() {
        let mut c = AdaptiveController::new(cfg(3, 1));
        for _ in 0..300 {
            c.record_cycle(0, Nanos::from_micros(10), Nanos::from_micros(90));
        }
        assert!((c.rho(0) - 0.9).abs() < 0.01);
        // Load drops; estimate must follow.
        for _ in 0..300 {
            c.record_cycle(0, Nanos::from_micros(90), Nanos::from_micros(10));
        }
        assert!((c.rho(0) - 0.1).abs() < 0.01);
    }

    #[test]
    fn per_queue_independence() {
        let mut c = AdaptiveController::new(cfg(6, 3));
        for _ in 0..100 {
            c.record_cycle(0, Nanos::from_micros(10), Nanos::from_micros(30)); // hot
            c.record_cycle(1, Nanos::from_micros(30), Nanos::from_micros(10)); // cold
        }
        assert!(c.rho(0) > 0.7);
        assert!(c.rho(1) < 0.3);
        assert_eq!(c.rho(2), 0.0);
        // Hot queue gets a shorter TS.
        assert!(c.ts(0) < c.ts(1));
    }

    #[test]
    fn rate_estimate_scales_with_mu() {
        let mut c = AdaptiveController::new(cfg(3, 1));
        for _ in 0..200 {
            c.record_cycle(0, Nanos::from_micros(10), Nanos::from_micros(10));
        }
        let est = c.estimated_rate_pps(0, 28e6);
        assert!((est - 14e6).abs() / 14e6 < 0.02, "estimate {est}");
    }

    #[test]
    fn busy_try_accounting() {
        let mut c = AdaptiveController::new(cfg(3, 2));
        c.record_acquired(0);
        c.record_acquired(0);
        c.record_busy_try(0);
        c.record_busy_try(1);
        assert!((c.queue(0).busy_try_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.queue(1).busy_try_fraction(), 1.0);
        assert!((c.busy_try_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_periods_reported() {
        let mut c = AdaptiveController::new(cfg(3, 1));
        assert_eq!(c.queue(0).mean_vacation(), None);
        c.record_cycle(0, Nanos::from_micros(10), Nanos::from_micros(30));
        c.record_cycle(0, Nanos::from_micros(20), Nanos::from_micros(10));
        assert_eq!(c.queue(0).mean_vacation(), Some(Nanos::from_micros(15)));
        assert_eq!(c.queue(0).mean_busy(), Some(Nanos::from_micros(20)));
    }

    #[test]
    fn multiqueue_ts_uses_eq14() {
        let mut c = AdaptiveController::new(cfg(6, 3));
        for _ in 0..300 {
            c.record_cycle(0, Nanos::from_micros(10), Nanos::from_micros(10));
        }
        let rho = c.rho(0);
        let expect = crate::model::ts_rule_multiqueue(6, 3, rho, c.config().v_target.as_secs_f64());
        let got = c.ts(0).as_secs_f64();
        // `ts()` rounds to integer nanoseconds, so compare at that grain.
        assert!((got - expect).abs() < 2e-9, "{got} vs {expect}");
    }
}
