//! Retrieval disciplines: *how* a worker thread decides when to look at
//! its Rx queues.
//!
//! The paper's comparative claims (Figs. 10, 15, 16) pit Metronome's
//! adaptive sleep&wake scheme against classic busy-polling DPDK and
//! interrupt-driven XDP. To run those baselines on real threads — not
//! just in the simulator — the *discipline* is factored out of the worker
//! loop: the Listing 2 Metronome protocol becomes one implementation of
//! [`RetrievalDiscipline`], alongside
//!
//! * [`BusyPoll`] — one pinned spinning worker per queue, never sleeps
//!   (the classic `rte_eth_rx_burst` lcore loop, paper Listing 1);
//! * [`InterruptLike`] — workers park on a per-queue [`Doorbell`] the
//!   producer rings, with an adaptive interrupt-moderation window (the
//!   XDP/NAPI analogue: zero CPU at idle, batched wake-ups under load);
//! * [`ConstSleep`] — fixed-period retrieval (`r_sleep(P)` between
//!   drains), the naive strawman whose fixed timeout Metronome's
//!   adaptive `TS` beats.
//!
//! A discipline is a pure state machine over the same [`Backend`]
//! capability trait the engine uses: each [`RetrievalDiscipline::turn`]
//! performs one protocol step and yields a [`Verdict`] telling the
//! driver what to do before the next turn (continue, yield, sleep, park,
//! wait). The realtime driver (`crate::realtime`) executes verdicts with
//! real sleeps and condvar parks; because disciplines never touch a
//! clock or a thread primitive directly, they remain testable
//! single-threaded against a scripted backend.

use crate::engine::{Backend, EngineOp, MetronomeEngine};
use crate::policy::ThreadPolicy;
use metronome_sim::Nanos;
use metronome_telemetry::{PhaseKind, SleepKind, TelemetrySink};
use std::sync::{Arc, Condvar, Mutex};
use std::task::Waker;
use std::time::Duration;

/// The state behind a [`Doorbell`]'s mutex: the monotone ring sequence
/// plus the wakers of async tasks parked on the bell. Keeping both under
/// one lock is what makes waker registration race-free: `register`
/// re-checks the sequence under the same lock `ring` bumps it under.
#[derive(Debug, Default)]
struct BellState {
    seq: u64,
    wakers: Vec<Waker>,
}

/// A per-queue wake-up doorbell: the producer rings it after enqueuing,
/// parked [`InterruptLike`] workers wait on it (the IRQ line of the
/// XDP/NAPI analogue).
///
/// The bell is a monotone sequence number behind a mutex/condvar pair.
/// Waiters sample the counter *before* their final empty poll and then
/// wait for it to move past that sample — so a ring that races the poll
/// is never lost, only delivered immediately. Two kinds of waiter share
/// the same protocol: OS threads block on the condvar ([`wait_past`]),
/// and async executor tasks leave a [`Waker`] behind ([`register`])
/// that the next ring fires.
///
/// [`wait_past`]: Doorbell::wait_past
/// [`register`]: Doorbell::register
#[derive(Debug, Default)]
pub struct Doorbell {
    state: Mutex<BellState>,
    cv: Condvar,
}

impl Doorbell {
    /// A fresh, unrung doorbell.
    pub fn new() -> Arc<Self> {
        Arc::new(Doorbell::default())
    }

    /// Ring the bell (producer side): bump the sequence, wake every
    /// condvar waiter and fire every registered waker. One short
    /// uncontended critical section per call — ring once per *burst*,
    /// not per packet. Wakers fire outside the lock.
    pub fn ring(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.seq = st.seq.wrapping_add(1);
        let wakers = std::mem::take(&mut st.wakers);
        drop(st);
        self.cv.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }

    /// The current sequence number. Sample it **before** the final empty
    /// poll that precedes a park.
    pub fn counter(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// Park until the bell has been rung past `seen` or `timeout`
    /// elapses; returns whether it was rung. Spurious wake-ups are
    /// absorbed by the sequence check.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if guard.seq != seen {
            return true;
        }
        let (guard, _timed_out) = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.seq != seen
    }

    /// Register `waker` to fire on the next ring, **iff** the bell still
    /// sits at `seen` — the async analogue of [`Doorbell::wait_past`].
    /// Returns `false` when the bell has already moved past the sample,
    /// in which case the caller must *not* park but re-poll instead (the
    /// ring it would have missed already happened). Registering the same
    /// waker twice is idempotent ([`Waker::will_wake`]).
    pub fn register(&self, seen: u64, waker: &Waker) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.seq != seen {
            return false;
        }
        if !st.wakers.iter().any(|w| w.will_wake(waker)) {
            st.wakers.push(waker.clone());
        }
        true
    }
}

/// A parked wait handed from a discipline to its driver: the doorbell to
/// block on and the sequence sampled before the final empty poll.
#[derive(Clone, Debug)]
pub struct ParkToken {
    doorbell: Arc<Doorbell>,
    seen: u64,
}

impl ParkToken {
    /// The lost-wakeup-safe arming protocol, shared by every driver that
    /// parks on a [`Doorbell`]: sample the sequence, run the caller's
    /// **final** poll, and hand back a token pinned to the *pre-poll*
    /// sample only when the poll found nothing. A producer that slips in
    /// between the poll and the park must ring *after* the sample, so a
    /// subsequent [`wait`](ParkToken::wait) returns immediately and a
    /// [`subscribe`](ParkToken::subscribe) refuses to arm.
    ///
    /// `final_poll_found_work` performs the empty-check poll and returns
    /// whether anything turned up; when it does, no token is produced and
    /// the caller keeps draining.
    pub fn arm(
        doorbell: &Arc<Doorbell>,
        final_poll_found_work: impl FnOnce() -> bool,
    ) -> Option<ParkToken> {
        let seen = doorbell.counter();
        if final_poll_found_work() {
            None
        } else {
            Some(ParkToken {
                doorbell: Arc::clone(doorbell),
                seen,
            })
        }
    }

    /// Block for up to `timeout`, returning whether the bell rang. The
    /// driver calls this in a loop so it can interleave stop-flag checks.
    pub fn wait(&self, timeout: Duration) -> bool {
        self.doorbell.wait_past(self.seen, timeout)
    }

    /// Async-executor parking: register `waker` to fire on the next ring.
    /// Returns `false` when the bell already moved past the token's
    /// sample — the task must be re-queued for an immediate re-poll
    /// instead of parking (see [`Doorbell::register`]).
    pub fn subscribe(&self, waker: &Waker) -> bool {
        self.doorbell.register(self.seen, waker)
    }
}

/// What a discipline asks its driver to do after one turn.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Protocol work happened; call [`RetrievalDiscipline::turn`] again
    /// immediately.
    Continue,
    /// A spin boundary: the discipline found nothing to do but will not
    /// sleep (busy polling). The driver checks its stop flag and spins on.
    Yield,
    /// Sleep for (at least) the given duration through the driver's sleep
    /// service, then turn again.
    Sleep(Nanos),
    /// Block on the token's doorbell until the producer rings (or the
    /// driver decides to stop), then turn again.
    Park(ParkToken),
    /// Idle exactly this long (start-up stagger; no oversleep semantics).
    Wait(Nanos),
}

/// Which retrieval discipline a worker runs — the label shared by
/// telemetry, reports and thread names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisciplineKind {
    /// The paper's adaptive sleep&wake protocol (Listing 2).
    Metronome,
    /// Classic DPDK busy polling (Listing 1).
    BusyPoll,
    /// Interrupt-driven retrieval with adaptive moderation (XDP/NAPI).
    InterruptLike,
    /// Fixed-period retrieval (the constant `r_sleep` strawman).
    ConstSleep,
}

impl DisciplineKind {
    /// Stable lowercase label ("metronome", "busy-poll", "interrupt",
    /// "const-sleep") used by telemetry hubs and exported series.
    pub fn label(self) -> &'static str {
        match self {
            DisciplineKind::Metronome => "metronome",
            DisciplineKind::BusyPoll => "busy-poll",
            DisciplineKind::InterruptLike => "interrupt",
            DisciplineKind::ConstSleep => "const-sleep",
        }
    }
}

/// One worker thread's retrieval discipline: a resumable state machine
/// over the [`Backend`] capability trait.
///
/// The contract mirrors the engine's: `turn` performs **one** protocol
/// step (at most one queue operation) and never blocks — blocking is the
/// driver's job, directed by the returned [`Verdict`]. Implementations
/// publish their own telemetry (retrieved bursts, planned sleeps, phase
/// transitions) into the sink at protocol grain.
pub trait RetrievalDiscipline {
    /// Which discipline this is (telemetry/report label).
    fn kind(&self) -> DisciplineKind;

    /// Advance the protocol by one step.
    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict;

    /// The per-thread policy counters (wakes, races, empty polls).
    fn policy(&self) -> &ThreadPolicy;

    /// Consume the discipline, yielding its final policy statistics.
    fn into_policy(self) -> ThreadPolicy;
}

// ---------------------------------------------------------------------------
// Metronome (the Listing 2 engine, adapted)
// ---------------------------------------------------------------------------

/// The paper's protocol as a discipline: a thin adapter over
/// [`MetronomeEngine`] mapping [`EngineOp`]s onto [`Verdict`]s.
#[derive(Clone, Debug)]
pub struct MetronomeDiscipline {
    engine: MetronomeEngine,
}

impl MetronomeDiscipline {
    /// Engine for a thread initially contending `initial_queue`, draining
    /// bursts of `burst`.
    pub fn new(initial_queue: usize, burst: u32) -> Self {
        MetronomeDiscipline {
            engine: MetronomeEngine::new(initial_queue, burst),
        }
    }
}

impl RetrievalDiscipline for MetronomeDiscipline {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::Metronome
    }

    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict {
        match self.engine.step_with(backend, sink) {
            // Real cycles were already spent doing the step.
            EngineOp::Work(_) => Verdict::Continue,
            EngineOp::Sleep(dur) => Verdict::Sleep(dur),
            EngineOp::Wait(dur) => Verdict::Wait(dur),
        }
    }

    fn policy(&self) -> &ThreadPolicy {
        self.engine.policy()
    }

    fn into_policy(self) -> ThreadPolicy {
        self.engine.into_policy()
    }
}

// ---------------------------------------------------------------------------
// BusyPoll (paper Listing 1)
// ---------------------------------------------------------------------------

/// Classic DPDK busy polling: one worker owns one queue exclusively and
/// spins on it forever. No trylock, no controller, no sleeps — CPU is
/// pinned at 100% per queue regardless of load, which is precisely the
/// baseline cost Metronome exists to reclaim.
#[derive(Clone, Debug)]
pub struct BusyPoll {
    q: usize,
    burst: u32,
    policy: ThreadPolicy,
}

impl BusyPoll {
    /// Poller bound to queue `q`, draining bursts of `burst`.
    pub fn new(q: usize, burst: u32) -> Self {
        BusyPoll {
            q,
            burst: burst.max(1),
            policy: ThreadPolicy::new(q),
        }
    }
}

impl RetrievalDiscipline for BusyPoll {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::BusyPoll
    }

    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict {
        let taken = backend.rx_burst(self.q, self.burst);
        if taken > 0 {
            sink.retrieved(self.q, taken);
            Verdict::Continue
        } else {
            self.policy.on_empty_poll();
            Verdict::Yield
        }
    }

    fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    fn into_policy(self) -> ThreadPolicy {
        self.policy
    }
}

// ---------------------------------------------------------------------------
// ConstSleep (fixed-period retrieval)
// ---------------------------------------------------------------------------

/// Fixed-period retrieval: drain the queue dry, sleep exactly `period`,
/// repeat. The naive sleep&wake strawman — its fixed timeout either
/// oversleeps the queue at high rates (loss) or wakes pointlessly at low
/// ones (CPU); Metronome's adaptive `TS` (eq. 13) is the fix.
#[derive(Clone, Debug)]
pub struct ConstSleep {
    q: usize,
    burst: u32,
    period: Nanos,
    policy: ThreadPolicy,
    drained_any: bool,
    asleep: bool,
}

impl ConstSleep {
    /// Fixed-period retriever for queue `q`: sleep `period` between
    /// drain episodes, draining bursts of `burst`.
    pub fn new(q: usize, burst: u32, period: Nanos) -> Self {
        ConstSleep {
            q,
            burst: burst.max(1),
            period: Nanos(period.as_nanos().max(1)),
            policy: ThreadPolicy::new(q),
            drained_any: false,
            asleep: false,
        }
    }

    /// The fixed retrieval period.
    pub fn period(&self) -> Nanos {
        self.period
    }
}

impl RetrievalDiscipline for ConstSleep {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::ConstSleep
    }

    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict {
        if self.asleep {
            self.asleep = false;
            self.policy.on_wake();
            sink.wake();
            sink.phase(PhaseKind::Wake);
        }
        let taken = backend.rx_burst(self.q, self.burst);
        if taken > 0 {
            self.drained_any = true;
            sink.retrieved(self.q, taken);
            return Verdict::Continue;
        }
        if !self.drained_any {
            self.policy.on_empty_poll();
        }
        self.drained_any = false;
        self.asleep = true;
        sink.sleep_planned(SleepKind::Fixed, self.period);
        sink.phase(PhaseKind::Sleep);
        Verdict::Sleep(self.period)
    }

    fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    fn into_policy(self) -> ThreadPolicy {
        self.policy
    }
}

// ---------------------------------------------------------------------------
// InterruptLike (XDP/NAPI analogue)
// ---------------------------------------------------------------------------

/// Bounds of the adaptive interrupt-moderation window.
#[derive(Clone, Copy, Debug)]
pub struct ModerationConfig {
    /// Smallest moderation window (light load: react fast).
    pub min: Nanos,
    /// Largest moderation window (sustained load: batch aggressively).
    pub max: Nanos,
}

impl Default for ModerationConfig {
    fn default() -> Self {
        // Same order as the simulator's calibrated XDP ITR windows
        // (12 µs light / 50 µs loaded, runtime::calib).
        ModerationConfig {
            min: Nanos::from_micros(12),
            max: Nanos::from_micros(500),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum IrqPhase {
    /// Just woke (doorbell or moderation timer); about to drain.
    Wake,
    /// Draining the queue.
    Drain,
    /// The moderation window just elapsed; one more poll decides between
    /// staying in polling mode and re-arming the doorbell.
    Moderate,
    /// Queue verified empty; arm the doorbell and park.
    Arm,
}

/// Interrupt-driven retrieval, the XDP/NAPI analogue: the worker parks on
/// its queue's [`Doorbell`] (zero CPU while idle — "the IRQ line"), and a
/// producer ring wakes it. After draining, instead of re-arming
/// immediately it lingers for an adaptive moderation window — NAPI's
/// polling mode / NIC interrupt moderation — so sustained load coalesces
/// many arrivals into one wake-up. The window doubles whenever the
/// post-window poll finds more packets (batching pays) and halves when it
/// doesn't, clamped to [`ModerationConfig`].
#[derive(Clone, Debug)]
pub struct InterruptLike {
    q: usize,
    burst: u32,
    doorbell: Arc<Doorbell>,
    moderation: ModerationConfig,
    window: Nanos,
    policy: ThreadPolicy,
    phase: IrqPhase,
}

impl InterruptLike {
    /// Handler for queue `q` parking on `doorbell`, draining bursts of
    /// `burst`.
    pub fn new(
        q: usize,
        burst: u32,
        doorbell: Arc<Doorbell>,
        moderation: ModerationConfig,
    ) -> Self {
        InterruptLike {
            q,
            burst: burst.max(1),
            doorbell,
            window: moderation.min,
            moderation,
            policy: ThreadPolicy::new(q),
            phase: IrqPhase::Wake,
        }
    }

    /// The current adaptive moderation window.
    pub fn window(&self) -> Nanos {
        self.window
    }
}

impl RetrievalDiscipline for InterruptLike {
    fn kind(&self) -> DisciplineKind {
        DisciplineKind::InterruptLike
    }

    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict {
        match self.phase {
            IrqPhase::Wake => {
                self.policy.on_wake();
                sink.wake();
                sink.phase(PhaseKind::Wake);
                self.phase = IrqPhase::Drain;
                Verdict::Continue
            }
            IrqPhase::Drain => {
                let taken = backend.rx_burst(self.q, self.burst);
                if taken > 0 {
                    sink.retrieved(self.q, taken);
                    return Verdict::Continue;
                }
                // Queue drained: moderate before re-arming, like a NIC
                // holding its IRQ down for the ITR window.
                self.phase = IrqPhase::Moderate;
                sink.sleep_planned(SleepKind::Fixed, self.window);
                sink.phase(PhaseKind::Sleep);
                Verdict::Sleep(self.window)
            }
            IrqPhase::Moderate => {
                let taken = backend.rx_burst(self.q, self.burst);
                if taken > 0 {
                    // Load is sustained: stay in polling mode, widen the
                    // window (more batching per wake).
                    self.window =
                        Nanos((self.window.as_nanos() * 2).min(self.moderation.max.as_nanos()));
                    sink.retrieved(self.q, taken);
                    self.phase = IrqPhase::Drain;
                    return Verdict::Continue;
                }
                // The window bought nothing: shrink it and park.
                self.window =
                    Nanos((self.window.as_nanos() / 2).max(self.moderation.min.as_nanos()));
                self.phase = IrqPhase::Arm;
                Verdict::Continue
            }
            IrqPhase::Arm => {
                // Lost-wakeup-safe arming order (ParkToken::arm): sample
                // the bell, then verify the queue is still empty, then
                // park past the sample. A producer that slips between the
                // poll and the park must ring after our sample, so the
                // park returns immediately.
                let mut taken = 0;
                let token = ParkToken::arm(&self.doorbell, || {
                    taken = backend.rx_burst(self.q, self.burst);
                    taken > 0
                });
                match token {
                    None => {
                        sink.retrieved(self.q, taken);
                        self.phase = IrqPhase::Drain;
                        Verdict::Continue
                    }
                    Some(token) => {
                        self.policy.on_empty_poll();
                        sink.phase(PhaseKind::Sleep);
                        self.phase = IrqPhase::Wake;
                        Verdict::Park(token)
                    }
                }
            }
        }
    }

    fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    fn into_policy(self) -> ThreadPolicy {
        self.policy
    }
}

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// A discipline choice a runner can make at runtime (the realtime
/// counterpart of `SystemKind`): how many workers to spawn and which
/// state machine each runs.
#[derive(Clone, Debug)]
pub enum DisciplineSpec {
    /// `M` Metronome threads racing over `N` queues (Listing 2).
    Metronome,
    /// One busy-polling worker pinned per queue.
    BusyPoll,
    /// One doorbell-parked worker per queue with adaptive moderation.
    InterruptLike(ModerationConfig),
    /// One fixed-period worker per queue.
    ConstSleep(Nanos),
}

impl DisciplineSpec {
    /// The discipline this spec builds.
    pub fn kind(&self) -> DisciplineKind {
        match self {
            DisciplineSpec::Metronome => DisciplineKind::Metronome,
            DisciplineSpec::BusyPoll => DisciplineKind::BusyPoll,
            DisciplineSpec::InterruptLike(_) => DisciplineKind::InterruptLike,
            DisciplineSpec::ConstSleep(_) => DisciplineKind::ConstSleep,
        }
    }

    /// How many workers this spec spawns for a given configuration:
    /// `m_threads` for Metronome (threads race over queues), one pinned
    /// worker per queue for every baseline.
    pub fn workers(&self, m_threads: usize, n_queues: usize) -> usize {
        match self {
            DisciplineSpec::Metronome => m_threads,
            _ => n_queues,
        }
    }

    /// Build worker `w`'s discipline state. `doorbells` must hold one
    /// bell per queue (only [`DisciplineSpec::InterruptLike`] reads it).
    pub fn build(
        &self,
        worker: usize,
        n_queues: usize,
        burst: u32,
        doorbells: &[Arc<Doorbell>],
    ) -> AnyDiscipline {
        match self {
            DisciplineSpec::Metronome => {
                AnyDiscipline::Metronome(MetronomeDiscipline::new(worker % n_queues, burst))
            }
            DisciplineSpec::BusyPoll => AnyDiscipline::BusyPoll(BusyPoll::new(worker, burst)),
            DisciplineSpec::InterruptLike(moderation) => AnyDiscipline::InterruptLike(
                InterruptLike::new(worker, burst, Arc::clone(&doorbells[worker]), *moderation),
            ),
            DisciplineSpec::ConstSleep(period) => {
                AnyDiscipline::ConstSleep(ConstSleep::new(worker, burst, *period))
            }
        }
    }
}

/// Runtime-dispatched discipline (what a spawned worker actually runs;
/// the enum keeps worker threads monomorphic while the spec is chosen at
/// runtime).
#[derive(Clone, Debug)]
pub enum AnyDiscipline {
    /// Listing 2.
    Metronome(MetronomeDiscipline),
    /// Listing 1.
    BusyPoll(BusyPoll),
    /// XDP/NAPI analogue.
    InterruptLike(InterruptLike),
    /// Fixed-period strawman.
    ConstSleep(ConstSleep),
}

impl RetrievalDiscipline for AnyDiscipline {
    fn kind(&self) -> DisciplineKind {
        match self {
            AnyDiscipline::Metronome(d) => d.kind(),
            AnyDiscipline::BusyPoll(d) => d.kind(),
            AnyDiscipline::InterruptLike(d) => d.kind(),
            AnyDiscipline::ConstSleep(d) => d.kind(),
        }
    }

    fn turn<B: Backend, S: TelemetrySink>(&mut self, backend: &mut B, sink: &S) -> Verdict {
        match self {
            AnyDiscipline::Metronome(d) => d.turn(backend, sink),
            AnyDiscipline::BusyPoll(d) => d.turn(backend, sink),
            AnyDiscipline::InterruptLike(d) => d.turn(backend, sink),
            AnyDiscipline::ConstSleep(d) => d.turn(backend, sink),
        }
    }

    fn policy(&self) -> &ThreadPolicy {
        match self {
            AnyDiscipline::Metronome(d) => d.policy(),
            AnyDiscipline::BusyPoll(d) => d.policy(),
            AnyDiscipline::InterruptLike(d) => d.policy(),
            AnyDiscipline::ConstSleep(d) => d.policy(),
        }
    }

    fn into_policy(self) -> ThreadPolicy {
        match self {
            AnyDiscipline::Metronome(d) => d.into_policy(),
            AnyDiscipline::BusyPoll(d) => d.into_policy(),
            AnyDiscipline::InterruptLike(d) => d.into_policy(),
            AnyDiscipline::ConstSleep(d) => d.into_policy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_telemetry::NullSink;
    use std::collections::VecDeque;

    /// Scripted single-queue backend (no locks needed: the baselines
    /// never race).
    struct ScriptBackend {
        queued: VecDeque<u64>,
        processed: u64,
    }

    impl ScriptBackend {
        fn new() -> Self {
            ScriptBackend {
                queued: VecDeque::new(),
                processed: 0,
            }
        }
    }

    impl Backend for ScriptBackend {
        fn n_queues(&self) -> usize {
            1
        }

        fn draw(&mut self) -> u64 {
            0
        }

        fn try_acquire(&mut self, _q: usize) -> bool {
            true
        }

        fn rx_burst(&mut self, _q: usize, burst: u32) -> u64 {
            let mut taken = 0;
            while taken < burst as u64 && self.queued.pop_front().is_some() {
                taken += 1;
                self.processed += 1;
            }
            taken
        }

        fn release(&mut self, _q: usize) -> Nanos {
            Nanos::from_micros(30)
        }

        fn ts(&self, _q: usize) -> Nanos {
            Nanos::from_micros(30)
        }

        fn tl(&self) -> Nanos {
            Nanos::from_micros(500)
        }
    }

    #[test]
    fn busy_poll_drains_and_yields() {
        let mut b = ScriptBackend::new();
        b.queued.extend(0..40u64);
        let mut d = BusyPoll::new(0, 32);
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue));
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue));
        assert_eq!(b.processed, 40);
        // Empty queue: yield, never sleep.
        for _ in 0..10 {
            assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Yield));
        }
        assert_eq!(d.policy().empty_polls, 10);
        assert_eq!(d.kind().label(), "busy-poll");
    }

    #[test]
    fn const_sleep_alternates_drain_and_fixed_sleep() {
        let period = Nanos::from_micros(100);
        let mut b = ScriptBackend::new();
        b.queued.extend(0..40u64);
        let mut d = ConstSleep::new(0, 32, period);
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue));
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue));
        match d.turn(&mut b, &NullSink) {
            Verdict::Sleep(dur) => assert_eq!(dur, period),
            other => panic!("expected fixed sleep, got {other:?}"),
        }
        // Wake with an empty queue: one empty poll, then sleep again.
        match d.turn(&mut b, &NullSink) {
            Verdict::Sleep(dur) => assert_eq!(dur, period),
            other => panic!("expected fixed sleep, got {other:?}"),
        }
        assert_eq!(d.policy().wakes, 1);
        assert_eq!(d.policy().empty_polls, 1);
        assert_eq!(b.processed, 40);
    }

    #[test]
    fn interrupt_like_parks_when_idle_and_wakes_on_ring() {
        let bell = Doorbell::new();
        let mut b = ScriptBackend::new();
        let mut d = InterruptLike::new(0, 32, Arc::clone(&bell), ModerationConfig::default());
        // First wake finds nothing: drain-empty → moderate → arm → park.
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue)); // wake
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Sleep(_))); // moderation
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue)); // moderate→arm
        let token = match d.turn(&mut b, &NullSink) {
            Verdict::Park(t) => t,
            other => panic!("expected park, got {other:?}"),
        };
        // Unrung bell: the park would block (times out).
        assert!(!token.wait(Duration::from_millis(1)));
        // Producer enqueues then rings: the park returns immediately.
        b.queued.extend(0..5u64);
        bell.ring();
        assert!(token.wait(Duration::from_millis(100)));
        // The next turns drain what arrived.
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue)); // wake
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Continue)); // drain
        assert_eq!(b.processed, 5);
        assert_eq!(d.policy().wakes, 2);
    }

    #[test]
    fn interrupt_ring_between_poll_and_park_is_not_lost() {
        let bell = Doorbell::new();
        let mut b = ScriptBackend::new();
        let mut d = InterruptLike::new(0, 32, Arc::clone(&bell), ModerationConfig::default());
        d.turn(&mut b, &NullSink); // wake
        d.turn(&mut b, &NullSink); // drain-empty → moderation sleep
        d.turn(&mut b, &NullSink); // moderate → arm
                                   // The arm turn samples the bell, then polls. Ring *after* the
                                   // token is produced (the racy window): the wait must not block.
        let token = match d.turn(&mut b, &NullSink) {
            Verdict::Park(t) => t,
            other => panic!("expected park, got {other:?}"),
        };
        bell.ring();
        assert!(token.wait(Duration::from_millis(1)), "lost wakeup");
    }

    #[test]
    fn moderation_window_adapts_and_clamps() {
        let bell = Doorbell::new();
        let cfg = ModerationConfig {
            min: Nanos::from_micros(10),
            max: Nanos::from_micros(80),
        };
        let mut b = ScriptBackend::new();
        let mut d = InterruptLike::new(0, 32, bell, cfg);
        assert_eq!(d.window(), cfg.min);
        // Sustained load: every moderation poll finds packets → doubles.
        d.turn(&mut b, &NullSink); // wake
        for _ in 0..5 {
            d.turn(&mut b, &NullSink); // drain (empty) → moderation sleep
            b.queued.extend(0..4u64);
            d.turn(&mut b, &NullSink); // moderate: finds packets, grows
        }
        assert_eq!(d.window(), cfg.max, "window must clamp at max");
        // Idle: empty moderation polls halve it back down to min.
        for _ in 0..5 {
            d.turn(&mut b, &NullSink); // drain empty → moderation sleep
            d.turn(&mut b, &NullSink); // moderate: empty, shrinks → arm
            match d.turn(&mut b, &NullSink) {
                Verdict::Park(_) => {}
                other => panic!("expected park, got {other:?}"),
            }
            d.turn(&mut b, &NullSink); // wake
        }
        assert_eq!(d.window(), cfg.min, "window must clamp at min");
    }

    #[test]
    fn metronome_discipline_mirrors_engine() {
        // The adapter must behave exactly like driving the engine raw.
        let mut b = ScriptBackend::new();
        b.queued.extend(0..10u64);
        let mut d = MetronomeDiscipline::new(0, 32);
        assert!(matches!(d.turn(&mut b, &NullSink), Verdict::Wait(_))); // stagger
        let mut sleeps = 0;
        for _ in 0..20 {
            match d.turn(&mut b, &NullSink) {
                Verdict::Sleep(_) => sleeps += 1,
                Verdict::Continue => {}
                other => panic!("unexpected {other:?}"),
            }
            if sleeps > 0 {
                break;
            }
        }
        assert_eq!(b.processed, 10);
        assert_eq!(d.policy().races_won, 1);
    }

    /// Counting test waker: each `wake`/`wake_by_ref` bumps the counter.
    struct CountingWaker(std::sync::atomic::AtomicU64);

    impl std::task::Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWaker>, std::task::Waker) {
        let counter = Arc::new(CountingWaker(std::sync::atomic::AtomicU64::new(0)));
        let waker = std::task::Waker::from(Arc::clone(&counter));
        (counter, waker)
    }

    #[test]
    fn arm_skips_the_park_when_the_final_poll_finds_work() {
        let bell = Doorbell::new();
        assert!(ParkToken::arm(&bell, || true).is_none());
        assert!(ParkToken::arm(&bell, || false).is_some());
    }

    #[test]
    fn ring_between_sample_and_subscribe_refuses_registration() {
        // The async half of the racy window the condvar test covers: a
        // producer rings after the token was armed but before the task's
        // waker lands on the bell. subscribe must refuse, forcing a
        // re-poll, and the waker must never be held (a later ring fires
        // nothing).
        let bell = Doorbell::new();
        let token = ParkToken::arm(&bell, || false).expect("empty poll arms");
        bell.ring();
        let (count, waker) = counting_waker();
        assert!(!token.subscribe(&waker), "stale sample must refuse to arm");
        bell.ring();
        assert_eq!(
            count.0.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "a refused registration must not leave a waker behind"
        );
    }

    #[test]
    fn subscribed_waker_fires_on_ring_exactly_once() {
        let bell = Doorbell::new();
        let token = ParkToken::arm(&bell, || false).expect("empty poll arms");
        let (count, waker) = counting_waker();
        // Double registration is idempotent (Waker::will_wake dedupe).
        assert!(token.subscribe(&waker));
        assert!(token.subscribe(&waker));
        bell.ring();
        assert_eq!(count.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        // The ring drained the registration: another ring fires nothing.
        bell.ring();
        assert_eq!(count.0.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_rings_never_lose_a_subscribed_waker() {
        // Hammer the arm → subscribe → ring protocol from a real producer
        // thread: every armed registration must either be refused (bell
        // moved first — caller re-polls) or fire. A round that neither
        // fires nor refuses is a lost wakeup.
        let bell = Doorbell::new();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producer = {
            let bell = Arc::clone(&bell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    bell.ring();
                    std::hint::spin_loop();
                }
            })
        };
        for _ in 0..2_000 {
            let token = ParkToken::arm(&bell, || false).expect("empty poll arms");
            let (count, waker) = counting_waker();
            if token.subscribe(&waker) {
                let deadline = std::time::Instant::now() + Duration::from_secs(5);
                while count.0.load(std::sync::atomic::Ordering::SeqCst) == 0 {
                    assert!(std::time::Instant::now() < deadline, "lost wakeup");
                    std::hint::spin_loop();
                }
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        producer.join().unwrap();
    }

    #[test]
    fn spec_builds_the_right_worker_set() {
        let doorbells: Vec<_> = (0..2).map(|_| Doorbell::new()).collect();
        assert_eq!(DisciplineSpec::Metronome.workers(5, 2), 5);
        assert_eq!(DisciplineSpec::BusyPoll.workers(5, 2), 2);
        let d =
            DisciplineSpec::InterruptLike(ModerationConfig::default()).build(1, 2, 32, &doorbells);
        assert_eq!(d.kind(), DisciplineKind::InterruptLike);
        let d = DisciplineSpec::ConstSleep(Nanos::from_micros(50)).build(0, 2, 32, &doorbells);
        assert_eq!(d.kind(), DisciplineKind::ConstSleep);
        assert_eq!(d.kind().label(), "const-sleep");
    }
}
