//! The backend-agnostic Metronome execution core.
//!
//! The paper's Listing 2 loop — trylock race, drain burst, adaptive
//! `TS`/`TL` sleep — exists exactly once, here, as the resumable state
//! machine [`MetronomeEngine`]. Everything environment-specific is behind
//! the [`Backend`] trait: how time passes, how packets are received and
//! processed, how the race primitive and the entropy source are realized,
//! and what each protocol step costs.
//!
//! Two backends drive the same engine:
//!
//! * the **discrete-event simulation** (`metronome-runtime`'s
//!   `WorldBackend`): the trylock is an owner slot on the simulated queue,
//!   sleeps go through the calibrated `hr_sleep()`/`nanosleep()` model,
//!   entropy comes from the thread's seeded PRNG stream, and every step
//!   charges calibrated CPU cycles to the virtual core;
//! * the **real-thread runtime** (`crate::realtime::RealtimeBackend`):
//!   the trylock is a CMPXCHG [`crate::trylock::TryLock`], sleeps go
//!   through the spin-assisted [`crate::realtime::PreciseSleeper`],
//!   entropy is a shared SplitMix64 counter, and step costs are zero
//!   because the hardware charges them implicitly.
//!
//! The engine yields an [`EngineOp`] per step instead of blocking so the
//! cooperative simulator can interleave threads and advance virtual time
//! between steps; the real-thread driver simply executes ops in a loop.
//! One protocol change lands in both runtimes by construction.

use crate::policy::ThreadPolicy;
use metronome_sim::Nanos;
use metronome_telemetry::{NullSink, PhaseKind, SleepKind, TelemetrySink};

pub use crate::policy::Role;

/// CPU cycles charged per protocol step, exclusive of packet processing.
///
/// The simulation backend fills these from its calibration constants; the
/// real-thread backend reports zero everywhere (real cycles are spent, not
/// modeled).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepCosts {
    /// Wake path after a timer fires: IRQ, context switch in, re-warming.
    pub wake_path: u64,
    /// Successful trylock plus queue-state load.
    pub acquire: u64,
    /// Failed trylock attempt (read + CMPXCHG miss + branch).
    pub busy_try: u64,
    /// An empty `rx_burst` poll on a just-acquired queue.
    pub empty_poll: u64,
    /// Lock release, estimator update, `TS` computation.
    pub release: u64,
    /// Issuing the sleep syscall (entry, hrtimer arming, switch out).
    pub sleep_call: u64,
}

impl StepCosts {
    /// All-zero costs (real-time execution: the hardware keeps the books).
    pub const ZERO: StepCosts = StepCosts {
        wake_path: 0,
        acquire: 0,
        busy_try: 0,
        empty_poll: 0,
        release: 0,
        sleep_call: 0,
    };
}

/// What the engine asks its driver to do next.
///
/// Every step of the protocol yields exactly one op; the driver performs
/// it (burn cycles / sleep / wait) and calls [`MetronomeEngine::step`]
/// again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineOp {
    /// Execute this many CPU cycles of protocol work, then step again.
    /// Real-time drivers treat any `Work` as "continue immediately".
    Work(u64),
    /// Sleep through the backend's timer service for (at least) the given
    /// duration, then step again. Subject to the service's oversleep.
    Sleep(Nanos),
    /// Idle until exactly this much time has passed (start-up stagger);
    /// no timer-service oversleep model applies.
    Wait(Nanos),
}

/// The environment capabilities the Metronome protocol runs against.
///
/// A backend bundles the clockless subset of what Listing 2 touches:
/// queue I/O (`try_acquire` / `rx_burst` / `release`), the per-queue
/// adaptive controller view (`ts` / `tl`), an entropy source for the
/// backup queue pick (`draw`), and the step cost model. Implementations
/// must record race and renewal-cycle statistics inside `try_acquire` /
/// `release` so the shared [`crate::controller::AdaptiveController`]
/// bookkeeping also lives in exactly one place per backend.
pub trait Backend {
    /// Number of Rx queues under contention.
    fn n_queues(&self) -> usize;

    /// Entropy for the backup's random queue pick (the `rte_random` role).
    fn draw(&mut self) -> u64;

    /// Race for queue `q`. On success the backend must record the
    /// acquisition (and start vacation measurement); on failure it must
    /// record the busy try.
    fn try_acquire(&mut self, q: usize) -> bool;

    /// Receive up to `burst` packets from the owned queue `q`, returning
    /// how many were taken. Real-time backends process the packets here;
    /// simulation backends only dequeue (processing cost is charged via
    /// [`Backend::chunk_cost`] and accounted in [`Backend::chunk_done`]).
    fn rx_burst(&mut self, q: usize, burst: u32) -> u64;

    /// CPU cycles to process a chunk of `k` packets (application cost).
    fn chunk_cost(&self, k: u64) -> u64 {
        let _ = k;
        0
    }

    /// A chunk of `k` packets finished processing (Tx-batch accounting).
    fn chunk_done(&mut self, q: usize, k: u64) {
        let _ = (q, k);
    }

    /// Release the owned queue `q`, feed the completed renewal cycle
    /// (vacation + busy period) to the adaptive controller, and return the
    /// queue's resulting adaptive `TS`. Returning `TS` from here lets a
    /// backend whose controller sits behind a lock update the estimator
    /// and read the timeout in one critical section per turn.
    fn release(&mut self, q: usize) -> Nanos;

    /// Hook invoked on wake for the queue about to be contended, before
    /// the race (the simulation flushes stale Tx batches here).
    fn before_contend(&mut self, q: usize) {
        let _ = q;
    }

    /// Current adaptive short timeout of queue `q`.
    fn ts(&self, q: usize) -> Nanos;

    /// The long (backup) timeout.
    fn tl(&self) -> Nanos;

    /// Equal-timeout ablation: losers sleep `TS` instead of `TL`.
    fn equal_timeouts(&self) -> bool {
        false
    }

    /// Start-up stagger before the first contention (threads in a real
    /// deployment start milliseconds apart; the simulation draws a uniform
    /// offset over one `TL` so first wakes don't race in lockstep).
    fn stagger(&mut self) -> Nanos {
        Nanos::ZERO
    }

    /// The cycle cost of each protocol step.
    fn costs(&self) -> StepCosts {
        StepCosts::ZERO
    }
}

impl<B: Backend> Backend for &mut B {
    fn n_queues(&self) -> usize {
        (**self).n_queues()
    }

    fn draw(&mut self) -> u64 {
        (**self).draw()
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        (**self).try_acquire(q)
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        (**self).rx_burst(q, burst)
    }

    fn chunk_cost(&self, k: u64) -> u64 {
        (**self).chunk_cost(k)
    }

    fn chunk_done(&mut self, q: usize, k: u64) {
        (**self).chunk_done(q, k)
    }

    fn release(&mut self, q: usize) -> Nanos {
        (**self).release(q)
    }

    fn before_contend(&mut self, q: usize) {
        (**self).before_contend(q)
    }

    fn ts(&self, q: usize) -> Nanos {
        (**self).ts(q)
    }

    fn tl(&self) -> Nanos {
        (**self).tl()
    }

    fn equal_timeouts(&self) -> bool {
        (**self).equal_timeouts()
    }

    fn stagger(&mut self) -> Nanos {
        (**self).stagger()
    }

    fn costs(&self) -> StepCosts {
        (**self).costs()
    }
}

/// Where the engine is inside the Listing 2 loop.
#[derive(Clone, Copy, Debug)]
enum Phase {
    /// First dispatch: stagger the start phase.
    Init,
    /// Just woke from a timer sleep.
    AfterSleep,
    /// Race for the queue.
    TryAcquire,
    /// A burst of `k` packets from queue `q` is being processed.
    Chunk {
        /// Owned queue.
        q: usize,
        /// Packets in the chunk whose processing just completed.
        k: u64,
    },
    /// About to sleep for `dur`.
    GoSleep {
        /// Requested sleep length.
        dur: Nanos,
        /// Which timeout the sleep is taken under (telemetry label).
        kind: SleepKind,
    },
}

/// One Metronome packet-retrieval thread: the paper's Listing 2 as a
/// resumable, backend-agnostic state machine.
///
/// ```text
/// while (1) {
///     if (!trylock(lock[curr_queue])) {
///         curr_queue = randint(n_queues);
///         hr_sleep(timeout_long);
///         continue;
///     }
///     while (nb_rx = receive_burst(queue[curr_queue], pkts, BURST_SIZE))
///         process_and_send_pkts(pkts, nb_rx);
///     unlock(lock[i]);
///     hr_sleep(timeout_short);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MetronomeEngine {
    policy: ThreadPolicy,
    burst: u32,
    phase: Phase,
}

impl MetronomeEngine {
    /// Engine for a thread initially contending `initial_queue`, draining
    /// in bursts of `burst` packets.
    pub fn new(initial_queue: usize, burst: u32) -> Self {
        MetronomeEngine {
            policy: ThreadPolicy::new(initial_queue),
            burst: burst.max(1),
            phase: Phase::Init,
        }
    }

    /// The thread's policy state (role, queue, race counters).
    pub fn policy(&self) -> &ThreadPolicy {
        &self.policy
    }

    /// Consume the engine, yielding the final policy statistics.
    pub fn into_policy(self) -> ThreadPolicy {
        self.policy
    }

    /// Advance the protocol by one step against `backend`, returning what
    /// the driver must do before the next step.
    pub fn step<B: Backend>(&mut self, backend: &mut B) -> EngineOp {
        self.step_with(backend, &NullSink)
    }

    /// [`MetronomeEngine::step`] with telemetry: phase transitions,
    /// drained-burst counts, `TS` recomputations and sleep intents are
    /// published into `sink` as they happen. `sink` is called at protocol
    /// grain (per turn / per burst, never per packet), so a counter sink
    /// adds a handful of relaxed-atomic increments per turn; with
    /// [`NullSink`] this monomorphizes back to the plain loop.
    pub fn step_with<B: Backend, S: TelemetrySink>(
        &mut self,
        backend: &mut B,
        sink: &S,
    ) -> EngineOp {
        match self.phase {
            Phase::Init => {
                let stagger = backend.stagger();
                self.phase = Phase::AfterSleep;
                sink.phase(PhaseKind::Stagger);
                sink.sleep_planned(SleepKind::Stagger, stagger);
                EngineOp::Wait(stagger)
            }
            Phase::AfterSleep => {
                self.policy.on_wake();
                sink.wake();
                sink.phase(PhaseKind::Wake);
                let q = self.policy.queue_to_contend();
                backend.before_contend(q);
                self.phase = Phase::TryAcquire;
                EngineOp::Work(backend.costs().wake_path)
            }
            Phase::TryAcquire => {
                let q = self.policy.queue_to_contend();
                if backend.try_acquire(q) {
                    self.policy.on_race_won();
                    sink.phase(PhaseKind::Drain);
                    self.phase = Phase::Chunk { q, k: 0 };
                    EngineOp::Work(backend.costs().acquire)
                } else {
                    // Busy try: become backup, pick a random queue, sleep
                    // TL (or TS in the equal-timeout ablation).
                    let n_queues = backend.n_queues();
                    let draw = backend.draw();
                    self.policy.on_race_lost(n_queues, draw);
                    sink.phase(PhaseKind::LostRace);
                    let dur = if backend.equal_timeouts() {
                        backend.ts(q)
                    } else {
                        backend.tl()
                    };
                    self.phase = Phase::GoSleep {
                        dur,
                        kind: SleepKind::Long,
                    };
                    let costs = backend.costs();
                    EngineOp::Work(costs.busy_try + costs.sleep_call)
                }
            }
            Phase::Chunk { q, k } => {
                if k > 0 {
                    // The chunk just finished computing: account Tx.
                    backend.chunk_done(q, k);
                }
                let taken = backend.rx_burst(q, self.burst);
                if taken > 0 {
                    sink.retrieved(q, taken);
                    self.phase = Phase::Chunk { q, k: taken };
                    EngineOp::Work(backend.chunk_cost(taken))
                } else {
                    // Queue depleted: release, compute TS, sleep.
                    if k == 0 {
                        self.policy.on_empty_poll();
                    }
                    let dur = backend.release(q);
                    sink.ts_update(q, dur);
                    sink.phase(PhaseKind::Release);
                    debug_assert_eq!(self.policy.role(), Role::Primary);
                    self.phase = Phase::GoSleep {
                        dur,
                        kind: SleepKind::Short,
                    };
                    let costs = backend.costs();
                    EngineOp::Work(costs.empty_poll + costs.release + costs.sleep_call)
                }
            }
            Phase::GoSleep { dur, kind } => {
                self.phase = Phase::AfterSleep;
                sink.sleep_planned(kind, dur);
                sink.phase(PhaseKind::Sleep);
                EngineOp::Sleep(dur)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted in-memory backend for engine unit tests.
    struct ScriptBackend {
        n_queues: usize,
        locked: Vec<bool>,
        queued: Vec<VecDeque<u64>>,
        draws: VecDeque<u64>,
        ts: Nanos,
        tl: Nanos,
        equal: bool,
        releases: Vec<usize>,
        processed: u64,
    }

    impl ScriptBackend {
        fn new(n_queues: usize) -> Self {
            ScriptBackend {
                n_queues,
                locked: vec![false; n_queues],
                queued: (0..n_queues).map(|_| VecDeque::new()).collect(),
                draws: VecDeque::new(),
                ts: Nanos::from_micros(30),
                tl: Nanos::from_micros(500),
                equal: false,
                releases: Vec::new(),
                processed: 0,
            }
        }
    }

    impl Backend for ScriptBackend {
        fn n_queues(&self) -> usize {
            self.n_queues
        }

        fn draw(&mut self) -> u64 {
            self.draws.pop_front().unwrap_or(0)
        }

        fn try_acquire(&mut self, q: usize) -> bool {
            if self.locked[q] {
                false
            } else {
                self.locked[q] = true;
                true
            }
        }

        fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
            let mut taken = 0;
            while taken < burst as u64 && self.queued[q].pop_front().is_some() {
                taken += 1;
                self.processed += 1;
            }
            taken
        }

        fn release(&mut self, q: usize) -> Nanos {
            assert!(self.locked[q], "release of unowned queue");
            self.locked[q] = false;
            self.releases.push(q);
            self.ts
        }

        fn ts(&self, _q: usize) -> Nanos {
            self.ts
        }

        fn tl(&self) -> Nanos {
            self.tl
        }

        fn equal_timeouts(&self) -> bool {
            self.equal
        }
    }

    fn run_one_turn(engine: &mut MetronomeEngine, b: &mut ScriptBackend) -> EngineOp {
        // Step until the engine asks to sleep; return the sleep op.
        loop {
            match engine.step(b) {
                EngineOp::Work(_) | EngineOp::Wait(_) => continue,
                op @ EngineOp::Sleep(_) => return op,
            }
        }
    }

    #[test]
    fn win_drain_release_sleeps_ts() {
        let mut b = ScriptBackend::new(1);
        b.queued[0].extend(0..40u64); // two bursts of 32 + 8
        let mut e = MetronomeEngine::new(0, 32);
        let op = run_one_turn(&mut e, &mut b);
        assert_eq!(op, EngineOp::Sleep(b.ts));
        assert_eq!(b.processed, 40);
        assert_eq!(b.releases, vec![0]);
        assert!(!b.locked[0]);
        assert_eq!(e.policy().races_won, 1);
        assert_eq!(e.policy().role(), Role::Primary);
        // 40 packets drained in two non-empty bursts, no empty poll flag.
        assert_eq!(e.policy().empty_polls, 0);
    }

    #[test]
    fn empty_win_counts_empty_poll() {
        let mut b = ScriptBackend::new(1);
        let mut e = MetronomeEngine::new(0, 32);
        run_one_turn(&mut e, &mut b);
        assert_eq!(e.policy().empty_polls, 1);
        assert_eq!(b.releases, vec![0]);
    }

    #[test]
    fn lost_race_sleeps_tl_and_randomizes() {
        let mut b = ScriptBackend::new(4);
        b.locked[1] = true; // someone owns the target queue
        b.draws.push_back(7); // 7 % 4 = queue 3
        let mut e = MetronomeEngine::new(1, 32);
        let op = run_one_turn(&mut e, &mut b);
        assert_eq!(op, EngineOp::Sleep(b.tl));
        assert_eq!(e.policy().role(), Role::Backup);
        assert_eq!(e.policy().races_lost, 1);
        assert_eq!(e.policy().queue_to_contend(), 3);
        assert!(b.releases.is_empty(), "loser must not release");
    }

    #[test]
    fn equal_timeout_ablation_sleeps_ts_on_loss() {
        let mut b = ScriptBackend::new(1);
        b.locked[0] = true;
        b.equal = true;
        let mut e = MetronomeEngine::new(0, 32);
        let op = run_one_turn(&mut e, &mut b);
        assert_eq!(op, EngineOp::Sleep(b.ts));
    }

    #[test]
    fn first_step_is_stagger_wait() {
        let mut b = ScriptBackend::new(1);
        let mut e = MetronomeEngine::new(0, 32);
        assert_eq!(e.step(&mut b), EngineOp::Wait(Nanos::ZERO));
    }

    #[test]
    fn step_with_publishes_telemetry() {
        use metronome_telemetry::TelemetryHub;
        use std::sync::atomic::Ordering;

        let hub = TelemetryHub::new(1, 1);
        let sink = hub.worker_sink(0);
        let mut b = ScriptBackend::new(1);
        b.queued[0].extend(0..40u64);
        let mut e = MetronomeEngine::new(0, 32);
        loop {
            if let EngineOp::Sleep(_) = e.step_with(&mut b, &sink) {
                break;
            }
        }
        assert_eq!(hub.total_retrieved(), 40);
        assert_eq!(hub.total_wakeups(), 1);
        // Two non-empty bursts → two burst records.
        assert_eq!(hub.queue(0).bursts.load(Ordering::Relaxed), 2);
        // The TS gauge carries the release()-computed timeout.
        assert_eq!(hub.queue(0).ts_ns.load(Ordering::Relaxed), b.ts.as_nanos());
        // The winner's sleep is a short (TS) sleep.
        assert_eq!(hub.worker(0).sleeps_short.load(Ordering::Relaxed), 1);
        assert_eq!(hub.worker(0).sleeps_long.load(Ordering::Relaxed), 0);

        // A lost race publishes a long (TL) sleep intent.
        b.locked[0] = true;
        loop {
            if let EngineOp::Sleep(_) = e.step_with(&mut b, &sink) {
                break;
            }
        }
        assert_eq!(hub.worker(0).sleeps_long.load(Ordering::Relaxed), 1);
        assert_eq!(hub.total_wakeups(), 2);
    }

    #[test]
    fn backup_recovers_to_primary_after_winning() {
        let mut b = ScriptBackend::new(1);
        b.locked[0] = true;
        let mut e = MetronomeEngine::new(0, 32);
        run_one_turn(&mut e, &mut b); // loses
        assert_eq!(e.policy().role(), Role::Backup);
        b.locked[0] = false;
        run_one_turn(&mut e, &mut b); // wins
        assert_eq!(e.policy().role(), Role::Primary);
        assert_eq!(e.policy().role_transitions, 2);
        assert_eq!(e.policy().wakes, 2);
    }
}
