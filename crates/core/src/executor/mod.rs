//! The async discipline executor: 1000+ retrieval queues on a handful of
//! OS threads.
//!
//! The thread backend ([`crate::realtime::Metronome`]) spawns one OS
//! thread per worker, which caps scenario scale at what the host can
//! schedule. This module runs the *same* [`RetrievalDiscipline`] state
//! machines as cooperative tasks over a hand-rolled, vruntime-weighted
//! executor — no external async runtime, consistent with the offline
//! vendoring policy. A worker set of `W` tasks runs on `shards` executor
//! threads; each shard owns
//!
//! * a **run queue** ordered by accumulated virtual runtime (the CFS
//!   idea: the task that has consumed the least weighted CPU runs next,
//!   so a saturated drain cannot starve its shard-mates);
//! * a **hierarchical [`TimerWheel`]** absorbing every `Verdict::Sleep` /
//!   `Verdict::Wait` deadline — thousands of concurrent `r_sleep` timers
//!   become one coalesced deadline store per shard instead of one parked
//!   OS thread each;
//! * an **injector** that [`std::task::Waker`]s push woken tasks through:
//!   a `Verdict::Park` registers the task's waker on its queue's
//!   [`Doorbell`] (via the same lost-wakeup-safe arming protocol the
//!   condvar path uses, [`crate::discipline::ParkToken::arm`]), so a
//!   parked task costs zero CPU until a producer's ring fires the waker.
//!
//! Verdict → scheduling map (the async mirror of
//! `crate::realtime::run_worker`):
//!
//! | [`Verdict`]  | thread backend              | executor                          |
//! |--------------|-----------------------------|-----------------------------------|
//! | `Continue`   | loop again                  | same slice until the turn budget  |
//! | `Yield`      | stop-check + `spin_loop`    | requeue by vruntime               |
//! | `Sleep(d)`   | `PreciseSleeper::sleep(d)`  | timer-wheel entry, oversleep kept |
//! | `Wait(d)`    | precise sleep, no oversleep | timer-wheel entry                 |
//! | `Park(tok)`  | condvar wait on the bell    | waker registered on the bell      |
//!
//! Accounting is shared wholesale: tasks run over the identical
//! [`RealtimeBackend`] / `SharedState` substrate (controller, trylocks,
//! processed counters, doorbells) and publish through the same
//! [`TelemetrySink`] calls at the same protocol boundaries, so a report
//! produced on this backend is directly comparable to the thread
//! backend's — that is what the thread-vs-async parity tests pin down.

mod wheel;

pub use wheel::{TimerEntry, TimerWheel};

use crate::config::MetronomeConfig;
use crate::discipline::{DisciplineSpec, Doorbell, ParkToken, RetrievalDiscipline, Verdict};
use crate::policy::ThreadPolicy;
use crate::realtime::{collect_stats, Metronome, RealtimeBackend, RealtimeStats, SharedState};
use crate::rxqueue::RxQueue;
use crossbeam::queue::ArrayQueue;
use metronome_sim::Nanos;
use metronome_telemetry::{
    NullSink, NullTrace, TelemetryHub, TelemetrySink, TraceHub, TraceSink, TraceVerdict, TracedSink,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// Wheel tick: ≈16 µs coalescing grain, fine enough that Metronome's
/// adaptive `TS` (tens of µs and up) keeps µs-class resolution.
const TICK_NS: u64 = 16_384;

/// Consecutive `Verdict::Continue` turns a task may run before it is
/// requeued (64 turns × a 32-packet burst ≈ 2k packets per slice): the
/// preemption grain that keeps one saturated queue from starving its
/// shard-mates.
const TURN_BUDGET: u32 = 64;

/// How much of an upcoming deadline's tail the shard spins instead of
/// blocking — the same precision/CPU trade [`PreciseSleeper`] makes, at
/// shard rather than worker grain.
///
/// [`PreciseSleeper`]: crate::realtime::PreciseSleeper
const SPIN_WAIT: Duration = Duration::from_micros(120);

/// Upper bound on one idle block (bounds wheel catch-up work and stop
/// latency even if a notification is somehow missed).
const MAX_IDLE_WAIT: Duration = Duration::from_millis(20);

/// Defensive re-poll cadence for parked tasks. The waker protocol is
/// lost-wakeup-free on its own; this fallback timer (cancelled by the
/// wake's generation bump — "cancel on wake") merely bounds the damage
/// of a producer that forgets to ring. Long on purpose: parked tasks are
/// supposed to cost ~zero CPU.
const PARK_RECHECK: Duration = Duration::from_millis(50);

/// The CFS nice-0 weight; every task currently runs at it, so vruntime
/// degenerates to fair round-robin by consumed CPU. The division is kept
/// in the charge path so per-discipline weights are a one-line change.
const NICE0_WEIGHT: u64 = 1024;

// ---------------------------------------------------------------------------
// Injector: waker → shard hand-off
// ---------------------------------------------------------------------------

/// Where wakers deposit woken tasks and where an idle shard blocks.
struct Injector {
    state: Mutex<InjectorState>,
    cv: Condvar,
    /// Lock-free "something happened" flag for the spin tail of precise
    /// waits; cleared when the shard drains.
    hot: AtomicBool,
}

#[derive(Default)]
struct InjectorState {
    woken: Vec<usize>,
    notified: bool,
}

impl Injector {
    fn new() -> Arc<Self> {
        Arc::new(Injector {
            state: Mutex::new(InjectorState::default()),
            cv: Condvar::new(),
            hot: AtomicBool::new(false),
        })
    }

    /// Push a woken task (waker side) and rouse the shard.
    fn push(&self, task: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.woken.push(task);
        st.notified = true;
        drop(st);
        self.hot.store(true, Ordering::Release);
        self.cv.notify_one();
    }

    /// Rouse the shard without a task (stop propagation).
    fn notify(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.notified = true;
        drop(st);
        self.hot.store(true, Ordering::Release);
        self.cv.notify_one();
    }

    /// Move all woken tasks into `out` and re-arm the notification flags.
    fn drain_into(&self, out: &mut Vec<usize>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        out.append(&mut st.woken);
        st.notified = false;
        drop(st);
        self.hot.store(false, Ordering::Release);
    }

    /// Block until something is pushed/notified or `timeout` elapses.
    fn wait(&self, timeout: Duration) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.notified || !st.woken.is_empty() {
            return;
        }
        let _ = self
            .cv
            .wait_timeout(st, timeout)
            .unwrap_or_else(|e| e.into_inner());
    }

    fn is_hot(&self) -> bool {
        self.hot.load(Ordering::Acquire)
    }
}

/// The per-task waker a `Verdict::Park` leaves on a [`Doorbell`]: firing
/// it pushes the task into its shard's injector. One waker is built per
/// task at spawn and reused for every park, so [`Waker::will_wake`]
/// dedupe on the bell works by pointer identity.
struct TaskWaker {
    injector: Arc<Injector>,
    task: usize,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.injector.push(self.task);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.injector.push(self.task);
    }
}

// ---------------------------------------------------------------------------
// Tasks and the shard loop
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunState {
    /// In the run queue (or currently running).
    Runnable,
    /// Waiting on a timer-wheel deadline (`Sleep`/`Wait`).
    Sleeping,
    /// Waker registered on a doorbell (`Park`); fallback timer armed.
    Parked,
}

/// One cooperative task: a discipline state machine plus its private
/// backend, sink and scheduling bookkeeping.
struct Task<T: Send + 'static, P, Q: RxQueue<T>, S> {
    /// Global worker index (hub slot / stats order — identical to the
    /// thread backend's worker numbering).
    id: usize,
    discipline: crate::discipline::AnyDiscipline,
    backend: RealtimeBackend<T, P, Q>,
    sink: S,
    waker: Waker,
    state: RunState,
    /// Accumulated weighted CPU (CFS virtual runtime).
    vruntime: u64,
    weight: u64,
    /// Arming generation: bumped whenever a pending timer becomes stale
    /// (doorbell wake, new sleep), which is how timers cancel in O(1).
    gen: u64,
    /// When the current idle period (sleep or park) began.
    idle_from: Option<Instant>,
    /// Requested wake-up instant of the current sleep, when oversleep is
    /// part of the verdict's contract (`Sleep` yes, `Wait`/`Park` no).
    oversleep_deadline: Option<Instant>,
    /// Requested duration of the current timed sleep (trace event datum;
    /// `None` while parked or runnable).
    sleep_requested: Option<Nanos>,
    /// When the task last became runnable — the scheduler-delay clock a
    /// vruntime pick closes.
    ready_at: Option<Instant>,
    /// The task's next pick follows a doorbell wake: its scheduler delay
    /// is also the wake-to-first-poll latency.
    woke_from_park: bool,
}

impl<T, P, Q, S> Task<T, P, Q, S>
where
    T: Send + 'static,
    P: FnMut(usize, &mut Vec<T>),
    Q: RxQueue<T>,
    S: TelemetrySink,
{
    /// Close the current idle period: record the slept span and, for
    /// oversleep-bearing sleeps, how far past the requested deadline the
    /// task actually woke (the wheel-tick quantization shows up here,
    /// exactly as `PreciseSleeper` imprecision does on the thread path).
    ///
    /// The tracer sees the same values the sink does: a timed sleep
    /// becomes one sleep event carrying requested/actual/oversleep (so
    /// the trace oversleep histogram sums to the hub counter), a park
    /// becomes an unpark event carrying the parked span.
    fn finish_idle(&mut self, tracer: &impl TraceSink) {
        let actual = self.idle_from.take().map(|from| {
            let slept = Nanos(from.elapsed().as_nanos() as u64);
            self.sink.slept(slept);
            slept
        });
        let over = self.oversleep_deadline.take().map(|deadline| {
            let over = Nanos(
                Instant::now()
                    .saturating_duration_since(deadline)
                    .as_nanos() as u64,
            );
            self.sink.overslept(over);
            over
        });
        match (self.sleep_requested.take(), actual) {
            (Some(requested), Some(actual)) => {
                tracer.sleep(requested, actual, over.unwrap_or(Nanos::ZERO));
            }
            (None, Some(parked)) if self.state == RunState::Parked => tracer.unpark(parked),
            _ => {}
        }
    }
}

/// What a slice ended with (the non-`Continue` verdict that closed it,
/// or budget exhaustion).
enum SliceEnd {
    Requeue,
    Timed { dur: Nanos, oversleep: bool },
    Park(ParkToken),
}

/// Run one task until it yields, sleeps, parks or exhausts its turn
/// budget; charge the elapsed wall time to its busy telemetry and its
/// vruntime. The tracer brackets the slice with begin/end events, sees
/// every turn verdict, and — via the [`TracedSink`] wrapper — every
/// drained burst the discipline reports inside the slice.
fn run_slice<T, P, Q, S, R>(task: &mut Task<T, P, Q, S>, stop: &AtomicBool, tracer: &R) -> SliceEnd
where
    T: Send + 'static,
    P: FnMut(usize, &mut Vec<T>),
    Q: RxQueue<T>,
    S: TelemetrySink,
    R: TraceSink,
{
    tracer.slice_begin(task.id, task.vruntime);
    let sink = TracedSink::new(&task.sink, tracer);
    let from = Instant::now();
    let mut turns = 0u32;
    let end = loop {
        match task.discipline.turn(&mut task.backend, &sink) {
            Verdict::Continue => {
                tracer.turn_verdict(TraceVerdict::Continue);
                turns += 1;
                if turns >= TURN_BUDGET || stop.load(Ordering::Relaxed) {
                    break SliceEnd::Requeue;
                }
            }
            Verdict::Yield => {
                tracer.turn_verdict(TraceVerdict::Yield);
                break SliceEnd::Requeue;
            }
            Verdict::Sleep(dur) => {
                tracer.turn_verdict(TraceVerdict::Sleep);
                break SliceEnd::Timed {
                    dur,
                    oversleep: true,
                };
            }
            Verdict::Wait(dur) => {
                tracer.turn_verdict(TraceVerdict::Wait);
                break SliceEnd::Timed {
                    dur,
                    oversleep: false,
                };
            }
            Verdict::Park(token) => {
                tracer.turn_verdict(TraceVerdict::Park);
                break SliceEnd::Park(token);
            }
        }
    };
    let elapsed = from.elapsed().as_nanos() as u64;
    task.sink.busy(Nanos(elapsed));
    tracer.slice_end(task.id, Nanos(elapsed));
    task.vruntime = task
        .vruntime
        .saturating_add(elapsed.max(1) * NICE0_WEIGHT / task.weight);
    end
}

/// One executor shard: the scheduler loop over its owned task set.
///
/// The shard owns one `tracer` (its flight-recorder ring slot): besides
/// the per-slice events [`run_slice`] records, the loop itself records
/// doorbell unparks, vruntime picks with their scheduler delay,
/// wake-to-first-poll latencies, and every timer-wheel insert, cascade
/// batch, and fire (live or cancelled).
fn run_shard<T, P, Q, S, R>(
    mut tasks: Vec<Task<T, P, Q, S>>,
    injector: Arc<Injector>,
    stop: Arc<AtomicBool>,
    tracer: R,
) -> Vec<(usize, ThreadPolicy)>
where
    T: Send + 'static,
    P: FnMut(usize, &mut Vec<T>),
    Q: RxQueue<T>,
    S: TelemetrySink,
    R: TraceSink,
{
    let epoch = Instant::now();
    let mut wheel = TimerWheel::new(TICK_NS);
    // Min-heap on (vruntime, local index): the least-served task runs
    // next. A task is in the heap iff its state is Runnable and it is
    // not currently running.
    let mut run_queue: BinaryHeap<Reverse<(u64, usize)>> =
        (0..tasks.len()).map(|idx| Reverse((0u64, idx))).collect();
    let mut woken: Vec<usize> = Vec::new();
    let mut expired: Vec<TimerEntry> = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        // 1. Doorbell wakes: parked tasks whose waker fired become
        //    runnable; the generation bump cancels their fallback timer.
        injector.drain_into(&mut woken);
        for idx in woken.drain(..) {
            let task = &mut tasks[idx];
            if task.state == RunState::Parked {
                task.gen = task.gen.wrapping_add(1);
                task.finish_idle(&tracer);
                task.state = RunState::Runnable;
                task.ready_at = Some(Instant::now());
                task.woke_from_park = true;
                run_queue.push(Reverse((task.vruntime, idx)));
            }
        }
        // 2. Timer expiries (coalesced: every deadline in a tick fires in
        //    one advance).
        let cascaded_before = wheel.cascaded();
        wheel.advance(epoch.elapsed().as_nanos() as u64, &mut |e| {
            expired.push(e);
        });
        let cascaded = wheel.cascaded() - cascaded_before;
        if cascaded > 0 {
            tracer.wheel_cascade(cascaded);
        }
        for e in expired.drain(..) {
            let task = &mut tasks[e.task];
            let live = task.gen == e.gen && task.state != RunState::Runnable;
            tracer.wheel_fire(task.id, live);
            if !live {
                continue; // cancelled on wake
            }
            task.finish_idle(&tracer);
            // A fired park-fallback timer is a wake too: its next pick's
            // delay doubles as wake-to-first-poll latency.
            task.woke_from_park = task.state == RunState::Parked;
            task.state = RunState::Runnable;
            task.ready_at = Some(Instant::now());
            run_queue.push(Reverse((task.vruntime, e.task)));
        }
        // 3. Run the least-served runnable task for one slice.
        let Some(Reverse((_, idx))) = run_queue.pop() else {
            idle_wait(&wheel, &injector, &stop, epoch);
            continue;
        };
        {
            let task = &mut tasks[idx];
            if let Some(ready) = task.ready_at.take() {
                let delay = Nanos(ready.elapsed().as_nanos() as u64);
                tracer.sched_pick(task.id, delay);
                if std::mem::take(&mut task.woke_from_park) {
                    tracer.first_poll(delay);
                }
            }
        }
        let end = run_slice(&mut tasks[idx], &stop, &tracer);
        let now_ns = epoch.elapsed().as_nanos() as u64;
        let task = &mut tasks[idx];
        match end {
            SliceEnd::Requeue => {
                task.ready_at = Some(Instant::now());
                run_queue.push(Reverse((task.vruntime, idx)));
            }
            SliceEnd::Timed { dur, oversleep } => {
                if dur.is_zero() {
                    task.ready_at = Some(Instant::now());
                    run_queue.push(Reverse((task.vruntime, idx)));
                } else {
                    task.gen = task.gen.wrapping_add(1);
                    task.state = RunState::Sleeping;
                    let now = Instant::now();
                    task.idle_from = Some(now);
                    task.oversleep_deadline =
                        oversleep.then(|| now + Duration::from_nanos(dur.as_nanos()));
                    task.sleep_requested = Some(dur);
                    let deadline_ns = now_ns + dur.as_nanos();
                    tracer.wheel_insert(task.id, deadline_ns);
                    wheel.insert(
                        deadline_ns,
                        TimerEntry {
                            task: idx,
                            gen: task.gen,
                        },
                    );
                }
            }
            SliceEnd::Park(token) => {
                // The waker lands on the bell only if the bell still sits
                // at the token's pre-poll sample; otherwise the ring we
                // would have parked through already happened — re-poll.
                if token.subscribe(&task.waker) {
                    task.gen = task.gen.wrapping_add(1);
                    task.state = RunState::Parked;
                    task.idle_from = Some(Instant::now());
                    tracer.park();
                    let deadline_ns = now_ns + PARK_RECHECK.as_nanos() as u64;
                    tracer.wheel_insert(task.id, deadline_ns);
                    wheel.insert(
                        deadline_ns,
                        TimerEntry {
                            task: idx,
                            gen: task.gen,
                        },
                    );
                } else {
                    task.ready_at = Some(Instant::now());
                    run_queue.push(Reverse((task.vruntime, idx)));
                }
            }
        }
    }

    // Stop: mirror the thread backend's exit discipline. A runnable task
    // may sit mid-drain (holding a queue trylock after a budget-exhausted
    // slice); drive it to its next verdict boundary so locks release and
    // the final drain lands on the books. Idle tasks just close their
    // sleep accounting.
    for task in &mut tasks {
        match task.state {
            RunState::Runnable => {
                let from = Instant::now();
                while let Verdict::Continue = task.discipline.turn(&mut task.backend, &task.sink) {}
                task.sink.busy(Nanos(from.elapsed().as_nanos() as u64));
            }
            RunState::Sleeping | RunState::Parked => task.finish_idle(&tracer),
        }
    }
    tasks
        .into_iter()
        .map(|t| (t.id, t.discipline.into_policy()))
        .collect()
}

/// Empty run queue: block toward the next wheel deadline (or a bounded
/// default), spinning the final stretch for µs-class wake precision.
fn idle_wait(wheel: &TimerWheel, injector: &Injector, stop: &AtomicBool, epoch: Instant) {
    let now_ns = epoch.elapsed().as_nanos() as u64;
    match wheel.next_deadline_ns() {
        Some(d) if d <= now_ns => {} // due: return to expire it
        Some(d) => {
            let until = Duration::from_nanos(d - now_ns);
            if until > SPIN_WAIT {
                injector.wait((until - SPIN_WAIT).min(MAX_IDLE_WAIT));
            } else {
                while (epoch.elapsed().as_nanos() as u64) < d {
                    if injector.is_hot() || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        None => injector.wait(MAX_IDLE_WAIT),
    }
}

// ---------------------------------------------------------------------------
// AsyncMetronome: the executor-backed worker set
// ---------------------------------------------------------------------------

/// A running worker set on the async executor — the drop-in counterpart
/// of [`Metronome`], same construction and observation surface, with the
/// worker-per-thread model replaced by `shards` executor threads.
pub struct AsyncMetronome<T: Send + 'static, Q: RxQueue<T> = Arc<ArrayQueue<T>>> {
    queues: Vec<Q>,
    stop: Arc<AtomicBool>,
    injectors: Vec<Arc<Injector>>,
    handles: Vec<std::thread::JoinHandle<Vec<(usize, ThreadPolicy)>>>,
    shared: Arc<SharedState>,
    cfg: MetronomeConfig,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send + 'static, Q: RxQueue<T>> AsyncMetronome<T, Q> {
    /// Start `spec`'s worker set as cooperative tasks on `shards`
    /// executor threads (clamped to `[1, worker count]`), with a
    /// per-worker process factory — the async counterpart of
    /// [`Metronome::start_discipline_scoped`].
    pub fn start_discipline_scoped<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        shards: usize,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            |_worker| NullSink,
            |_shard| NullTrace,
            shards,
        )
    }

    /// [`AsyncMetronome::start_discipline_scoped`] with telemetry. The
    /// hub needs one worker slot per *task* (not per shard) — worker
    /// numbering and labeling are identical to the thread backend's, so
    /// reports stay comparable across backends.
    pub fn start_discipline_scoped_with_telemetry<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
        shards: usize,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        assert_eq!(
            hub.n_workers(),
            spec.workers(cfg.m_threads, cfg.n_queues),
            "hub/config worker mismatch"
        );
        assert_eq!(hub.n_queues(), cfg.n_queues, "hub/config queue mismatch");
        let hub = Arc::clone(hub);
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            move |worker| hub.worker_sink(worker),
            |_shard| NullTrace,
            shards,
        )
    }

    /// [`AsyncMetronome::start_discipline_scoped_with_telemetry`] with
    /// flight-recorder tracing. Unlike the thread backend (one recorder
    /// per worker), the executor records at *shard* grain: each shard
    /// thread owns one ring slot of `trace` and logs its scheduler events
    /// (slices, vruntime picks, wheel activity) alongside the per-task
    /// verdicts, with the global worker id carried in the event payloads.
    /// The trace hub must have at least `shards` recorder slots (after
    /// clamping to `[1, worker count]`).
    pub fn start_discipline_scoped_traced<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
        trace: &Arc<TraceHub>,
        shards: usize,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        let workers = spec.workers(cfg.m_threads, cfg.n_queues);
        assert_eq!(hub.n_workers(), workers, "hub/config worker mismatch");
        assert_eq!(hub.n_queues(), cfg.n_queues, "hub/config queue mismatch");
        assert!(
            trace.n_recorders() >= shards.clamp(1, workers.max(1)),
            "trace hub has {} recorder slots for {} shards",
            trace.n_recorders(),
            shards.clamp(1, workers.max(1))
        );
        let hub = Arc::clone(hub);
        let trace = Arc::clone(trace);
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            move |worker| hub.worker_sink(worker),
            move |shard| trace.recorder(shard),
            shards,
        )
    }

    fn start_with_sinks<P, S, R>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        mut make_process: impl FnMut(usize) -> P,
        make_sink: impl Fn(usize) -> S,
        make_tracer: impl Fn(usize) -> R,
        shards: usize,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
        S: TelemetrySink + Send + 'static,
        R: TraceSink + Send + 'static,
    {
        cfg.validate().expect("invalid Metronome configuration");
        assert_eq!(queues.len(), cfg.n_queues, "queue count mismatch");
        let n_tasks = spec.workers(cfg.m_threads, cfg.n_queues);
        let shards = shards.clamp(1, n_tasks.max(1));
        let shared = SharedState::new(&cfg);
        let stop = Arc::new(AtomicBool::new(false));
        let label = spec.kind().label();
        let injectors: Vec<_> = (0..shards).map(|_| Injector::new()).collect();
        let mut per_shard: Vec<Vec<Task<T, P, Q, S>>> = (0..shards).map(|_| Vec::new()).collect();
        for worker in 0..n_tasks {
            let shard = worker % shards;
            let local = per_shard[shard].len();
            let waker = Waker::from(Arc::new(TaskWaker {
                injector: Arc::clone(&injectors[shard]),
                task: local,
            }));
            per_shard[shard].push(Task {
                id: worker,
                discipline: spec.build(worker, cfg.n_queues, cfg.burst, &shared.doorbells),
                backend: RealtimeBackend::new(
                    queues.clone(),
                    Arc::clone(&shared),
                    make_process(worker),
                ),
                sink: make_sink(worker),
                waker,
                state: RunState::Runnable,
                vruntime: 0,
                weight: NICE0_WEIGHT,
                gen: 0,
                idle_from: None,
                oversleep_deadline: None,
                sleep_requested: None,
                ready_at: None,
                woke_from_park: false,
            });
        }
        let handles = per_shard
            .into_iter()
            .enumerate()
            .map(|(s, tasks)| {
                let injector = Arc::clone(&injectors[s]);
                let stop = Arc::clone(&stop);
                let tracer = make_tracer(s);
                std::thread::Builder::new()
                    .name(format!("{label}-exec-{s}"))
                    .spawn(move || run_shard(tasks, injector, stop, tracer))
                    .expect("spawn executor shard")
            })
            .collect();
        AsyncMetronome {
            queues,
            stop,
            injectors,
            handles,
            shared,
            cfg,
            _item: PhantomData,
        }
    }

    /// The Rx queues (for producers to push into).
    pub fn queues(&self) -> &[Q] {
        &self.queues
    }

    /// Number of executor shard threads.
    pub fn shards(&self) -> usize {
        self.injectors.len()
    }

    /// Queue `q`'s wake-up doorbell (see [`Metronome::doorbell`]).
    pub fn doorbell(&self, q: usize) -> &Arc<Doorbell> {
        &self.shared.doorbells[q]
    }

    /// Items processed so far on a queue.
    pub fn processed(&self, queue: usize) -> u64 {
        self.shared.processed[queue].load(Ordering::Relaxed)
    }

    /// Current smoothed load estimate of a queue.
    pub fn rho(&self, queue: usize) -> f64 {
        self.shared.controller.lock().rho(queue)
    }

    /// Current adaptive TS of a queue.
    pub fn ts(&self, queue: usize) -> Nanos {
        self.shared.controller.lock().ts(queue)
    }

    /// Stop all shards and collect final statistics, in the same global
    /// worker order the thread backend reports.
    pub fn stop(self) -> RealtimeStats {
        self.stop.store(true, Ordering::Relaxed);
        for injector in &self.injectors {
            injector.notify();
        }
        let mut policies: Vec<(usize, ThreadPolicy)> = self
            .handles
            .into_iter()
            .flat_map(|h| h.join().expect("executor shard panicked"))
            .collect();
        policies.sort_by_key(|&(id, _)| id);
        collect_stats(
            &self.shared,
            self.cfg.n_queues,
            policies.into_iter().map(|(_, p)| p).collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// ExecBackend + WorkerSet: runtime-selectable backend
// ---------------------------------------------------------------------------

/// Which execution backend a worker set runs on: one OS thread per
/// worker (the paper's model) or cooperative tasks on a sharded async
/// executor (the 1000+-queue scale path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecBackend {
    /// One OS thread per worker ([`Metronome`]).
    #[default]
    Threads,
    /// Cooperative tasks on `shards` executor threads
    /// ([`AsyncMetronome`]); `shards` is clamped to `[1, worker count]`.
    Async {
        /// Executor threads to spread the task set over.
        shards: usize,
    },
}

impl ExecBackend {
    /// Stable lowercase label ("threads" / "async") for protocols and
    /// reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecBackend::Threads => "threads",
            ExecBackend::Async { .. } => "async",
        }
    }
}

/// A running worker set on either backend: the one handle the realtime
/// runner and the daemon hold, delegating the shared observation surface
/// ([`queues`](WorkerSet::queues), [`doorbell`](WorkerSet::doorbell),
/// [`processed`](WorkerSet::processed), …) to whichever backend is live.
pub enum WorkerSet<T: Send + 'static, Q: RxQueue<T> = Arc<ArrayQueue<T>>> {
    /// One OS thread per worker.
    Threads(Metronome<T, Q>),
    /// Cooperative tasks on executor shards.
    Async(AsyncMetronome<T, Q>),
}

impl<T: Send + 'static, Q: RxQueue<T>> WorkerSet<T, Q> {
    /// Start `spec`'s worker set on `exec`, with a per-worker process
    /// factory (see [`Metronome::start_discipline_scoped`]).
    pub fn start_discipline_scoped<P>(
        exec: ExecBackend,
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        match exec {
            ExecBackend::Threads => WorkerSet::Threads(Metronome::start_discipline_scoped(
                cfg,
                spec,
                queues,
                make_process,
            )),
            ExecBackend::Async { shards } => WorkerSet::Async(
                AsyncMetronome::start_discipline_scoped(cfg, spec, queues, make_process, shards),
            ),
        }
    }

    /// [`WorkerSet::start_discipline_scoped`] with telemetry; the hub
    /// needs one worker slot per worker on either backend.
    pub fn start_discipline_scoped_with_telemetry<P>(
        exec: ExecBackend,
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        match exec {
            ExecBackend::Threads => {
                WorkerSet::Threads(Metronome::start_discipline_scoped_with_telemetry(
                    cfg,
                    spec,
                    queues,
                    make_process,
                    hub,
                ))
            }
            ExecBackend::Async { shards } => {
                WorkerSet::Async(AsyncMetronome::start_discipline_scoped_with_telemetry(
                    cfg,
                    spec,
                    queues,
                    make_process,
                    hub,
                    shards,
                ))
            }
        }
    }

    /// [`WorkerSet::start_discipline_scoped_with_telemetry`] with
    /// flight-recorder tracing. Recorder grain follows the backend: one
    /// ring per worker on [`ExecBackend::Threads`], one ring per shard on
    /// [`ExecBackend::Async`] — size the trace hub with
    /// [`ExecBackend`]-aware arithmetic (see
    /// [`WorkerSet::trace_recorders`]).
    pub fn start_discipline_scoped_traced<P>(
        exec: ExecBackend,
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
        trace: &Arc<TraceHub>,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        match exec {
            ExecBackend::Threads => WorkerSet::Threads(Metronome::start_discipline_scoped_traced(
                cfg,
                spec,
                queues,
                make_process,
                hub,
                trace,
            )),
            ExecBackend::Async { shards } => {
                WorkerSet::Async(AsyncMetronome::start_discipline_scoped_traced(
                    cfg,
                    spec,
                    queues,
                    make_process,
                    hub,
                    trace,
                    shards,
                ))
            }
        }
    }

    /// How many trace-ring recorder slots a worker set on `exec` records
    /// into: one per worker on the thread backend, one per shard (after
    /// clamping to the worker count) on the executor.
    pub fn trace_recorders(
        exec: ExecBackend,
        cfg: &MetronomeConfig,
        spec: DisciplineSpec,
    ) -> usize {
        let workers = spec.workers(cfg.m_threads, cfg.n_queues);
        match exec {
            ExecBackend::Threads => workers,
            ExecBackend::Async { shards } => shards.clamp(1, workers.max(1)),
        }
    }

    /// Which backend this set runs on.
    pub fn exec(&self) -> ExecBackend {
        match self {
            WorkerSet::Threads(_) => ExecBackend::Threads,
            WorkerSet::Async(a) => ExecBackend::Async { shards: a.shards() },
        }
    }

    /// The Rx queues (for producers to push into).
    pub fn queues(&self) -> &[Q] {
        match self {
            WorkerSet::Threads(m) => m.queues(),
            WorkerSet::Async(a) => a.queues(),
        }
    }

    /// Queue `q`'s wake-up doorbell.
    pub fn doorbell(&self, q: usize) -> &Arc<Doorbell> {
        match self {
            WorkerSet::Threads(m) => m.doorbell(q),
            WorkerSet::Async(a) => a.doorbell(q),
        }
    }

    /// Items processed so far on a queue.
    pub fn processed(&self, queue: usize) -> u64 {
        match self {
            WorkerSet::Threads(m) => m.processed(queue),
            WorkerSet::Async(a) => a.processed(queue),
        }
    }

    /// Current smoothed load estimate of a queue.
    pub fn rho(&self, queue: usize) -> f64 {
        match self {
            WorkerSet::Threads(m) => m.rho(queue),
            WorkerSet::Async(a) => a.rho(queue),
        }
    }

    /// Current adaptive TS of a queue.
    pub fn ts(&self, queue: usize) -> Nanos {
        match self {
            WorkerSet::Threads(m) => m.ts(queue),
            WorkerSet::Async(a) => a.ts(queue),
        }
    }

    /// Stop all workers and collect final statistics.
    pub fn stop(self) -> RealtimeStats {
        match self {
            WorkerSet::Threads(m) => m.stop(),
            WorkerSet::Async(a) => a.stop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::ModerationConfig;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn async_processes_everything_exactly_once() {
        // Mirror of realtime::tests::processes_everything_exactly_once,
        // on 2 executor shards instead of 3 OS threads.
        let cfg = MetronomeConfig {
            m_threads: 3,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<u64>::new(4096)))
            .collect();
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let m = {
            let seen = Arc::clone(&seen);
            let sum = Arc::clone(&sum);
            AsyncMetronome::start_discipline_scoped(
                cfg,
                DisciplineSpec::Metronome,
                queues.clone(),
                move |_worker| {
                    let seen = Arc::clone(&seen);
                    let sum = Arc::clone(&sum);
                    move |_q: usize, burst: &mut Vec<u64>| {
                        for item in burst.drain(..) {
                            seen.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(item, Ordering::Relaxed);
                        }
                    }
                },
                2,
            )
        };
        assert_eq!(m.shards(), 2);
        let n: u64 = 10_000;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "lost or stalled items");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "duplicates");
        assert_eq!(stats.total_processed(), n);
        // Stats arrive in global worker order: one policy per *task*.
        assert_eq!(stats.wakes.len(), 3);
    }

    /// Drive one discipline end-to-end on the executor; mirror of the
    /// thread backend's run_discipline_once.
    fn run_discipline_once(spec: DisciplineSpec, ring: bool) -> RealtimeStats {
        let cfg = MetronomeConfig {
            m_threads: 2,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<u64>::new(4096)))
            .collect();
        let seen = Arc::new(AtomicU64::new(0));
        let m = {
            let seen = Arc::clone(&seen);
            AsyncMetronome::start_discipline_scoped(
                cfg,
                spec,
                queues.clone(),
                move |_worker| {
                    let seen = Arc::clone(&seen);
                    move |_q: usize, burst: &mut Vec<u64>| {
                        seen.fetch_add(burst.drain(..).count() as u64, Ordering::Relaxed);
                    }
                },
                2,
            )
        };
        let n: u64 = 4_000;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
            if ring && i % 32 == 0 {
                m.doorbell(q).ring();
            }
        }
        if ring {
            m.doorbell(0).ring();
            m.doorbell(1).ring();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "lost or stalled items");
        assert_eq!(stats.total_processed(), n);
        stats
    }

    #[test]
    fn busy_poll_runs_cooperatively_without_starvation() {
        // Two spinning pollers share two shards; vruntime requeueing must
        // let both make progress.
        let stats = run_discipline_once(DisciplineSpec::BusyPoll, false);
        assert_eq!(stats.wakes.iter().sum::<u64>(), 0);
        assert!(stats.processed.iter().all(|&p| p > 0), "a queue starved");
    }

    #[test]
    fn const_sleep_wakes_through_the_timer_wheel() {
        let stats = run_discipline_once(DisciplineSpec::ConstSleep(Nanos::from_micros(200)), false);
        assert!(stats.wakes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn interrupt_parks_on_wakers_and_wakes_on_ring() {
        let stats = run_discipline_once(
            DisciplineSpec::InterruptLike(ModerationConfig::default()),
            true,
        );
        assert!(stats.wakes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn parked_executor_stops_promptly() {
        // Idle interrupt tasks are parked on wakers with only the long
        // fallback timer armed; stop() must not wait for it.
        let cfg = MetronomeConfig {
            m_threads: 1,
            n_queues: 1,
            ..MetronomeConfig::default()
        };
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = AsyncMetronome::start_discipline_scoped(
            cfg,
            DisciplineSpec::InterruptLike(ModerationConfig::default()),
            queues,
            |_worker| |_q: usize, _b: &mut Vec<u64>| {},
            1,
        );
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        let stats = m.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "parked shard did not observe stop"
        );
        assert_eq!(stats.total_processed(), 0);
    }

    #[test]
    fn traced_executor_records_scheduler_and_wheel_events() {
        use metronome_telemetry::TraceEventKind;
        let cfg = MetronomeConfig {
            m_threads: 3,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let hub = TelemetryHub::new(3, 2);
        let trace = Arc::new(TraceHub::new(2, 4096));
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<u64>::new(4096)))
            .collect();
        let m = AsyncMetronome::start_discipline_scoped_traced(
            cfg,
            DisciplineSpec::Metronome,
            queues.clone(),
            |_worker| {
                |_q: usize, burst: &mut Vec<u64>| {
                    burst.drain(..);
                }
            },
            &hub,
            &trace,
            2,
        );
        let n = 4_000u64;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while m.processed(0) + m.processed(1) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        m.stop();
        let dump = trace.dump();
        // Both shard rings saw activity.
        for w in &dump.workers {
            assert!(
                w.events.len() as u64 + w.dropped > 0,
                "shard {} recorded nothing",
                w.worker
            );
        }
        // Scheduler introspection: slices bracket, vruntime picks carry
        // their delay, and Metronome sleeps ride the timer wheel.
        assert!(dump.kind_count(TraceEventKind::SliceBegin) > 0);
        assert!(dump.kind_count(TraceEventKind::SliceEnd) > 0);
        assert!(dump.kind_count(TraceEventKind::SchedPick) > 0);
        assert!(dump.kind_count(TraceEventKind::WheelInsert) > 0);
        assert!(dump.kind_count(TraceEventKind::WheelFire) > 0);
        // Burst reconciliation holds on the executor path too.
        let hub_bursts: u64 = (0..2)
            .map(|q| hub.queue(q).bursts.load(Ordering::Relaxed))
            .sum();
        assert_eq!(dump.kind_count(TraceEventKind::Burst), hub_bursts);
        let hub_oversleep: u64 = (0..3)
            .map(|w| hub.worker(w).oversleep_nanos.load(Ordering::Relaxed))
            .sum();
        assert_eq!(dump.oversleep().sum(), hub_oversleep as u128);
    }

    #[test]
    fn worker_set_dispatches_both_backends() {
        for exec in [ExecBackend::Threads, ExecBackend::Async { shards: 1 }] {
            let queues = vec![Arc::new(ArrayQueue::<u64>::new(256))];
            let seen = Arc::new(AtomicU64::new(0));
            let ws = {
                let seen = Arc::clone(&seen);
                WorkerSet::start_discipline_scoped(
                    exec,
                    MetronomeConfig::default(),
                    DisciplineSpec::Metronome,
                    queues.clone(),
                    move |_worker| {
                        let seen = Arc::clone(&seen);
                        move |_q: usize, burst: &mut Vec<u64>| {
                            seen.fetch_add(burst.drain(..).count() as u64, Ordering::Relaxed);
                        }
                    },
                )
            };
            assert_eq!(ws.exec().label(), exec.label());
            for i in 0..100u64 {
                let _ = ws.queues()[0].push(i);
            }
            let deadline = Instant::now() + Duration::from_secs(10);
            while seen.load(Ordering::Relaxed) < 100 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            let stats = ws.stop();
            assert_eq!(stats.total_processed(), 100, "{} backend", exec.label());
        }
    }
}
