//! Hierarchical timer wheel: thousands of concurrent `r_sleep` deadlines
//! amortized into one structure per executor shard.
//!
//! The thread backend pays one [`crate::realtime::PreciseSleeper`] call
//! per sleeping worker; at 1000+ queues that is 1000+ blocked OS threads.
//! The wheel replaces them with a single deadline store the shard polls:
//! 4 levels × 64 slots of hashed buckets, one tick ≈ 16 µs, so level 0
//! spans ≈ 1 ms, level 1 ≈ 67 ms, level 2 ≈ 4.3 s and level 3 ≈ 4.6 min
//! (longer deadlines clamp into the top level and re-cascade by their
//! true deadline until they fit). Insert and cancel are O(1); advancing
//! one tick touches one level-0 slot plus the occasional cascade.
//!
//! Coalescing falls out of the layout: every deadline inside one 16 µs
//! tick lands in the same slot and fires in the same `advance` call —
//! the shard wakes once per tick with work, not once per timer.
//!
//! Cancellation is by *generation*: entries carry the arming generation
//! of their task, and the executor bumps the task's generation when a
//! doorbell wake (or a new sleep) obsoletes a pending timer. Stale
//! entries still fire here but are discarded by the caller's generation
//! check — O(1) cancel with no search.
//!
//! The wheel is deliberately clock-free: callers pass `now` explicitly
//! (nanoseconds since an epoch they own), which keeps the whole suite
//! below unit-testable without real time.

/// Slots per level (64: one `u64`-friendly power of two).
const SLOTS: usize = 64;
/// log2(SLOTS).
const SLOT_BITS: u32 = 6;
/// Number of levels.
const LEVELS: usize = 4;

/// An armed timer: which task to wake and the generation it was armed
/// under. A fired entry whose generation no longer matches the task's
/// current one is a cancelled timer and must be ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerEntry {
    /// Shard-local index of the task to wake.
    pub task: usize,
    /// The task's arming generation when this timer was inserted.
    pub gen: u64,
}

/// The hierarchical wheel. See the module docs for the layout.
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: u64,
    /// The last tick `advance` fully processed.
    current: u64,
    /// `LEVELS × SLOTS` buckets of `(deadline_tick, entry)`, flattened.
    slots: Vec<Vec<(u64, TimerEntry)>>,
    pending: usize,
    /// Cumulative count of entries re-placed by cascades (tracing reads
    /// this as a delta across `advance` calls).
    cascaded: u64,
}

impl TimerWheel {
    /// An empty wheel with the given tick length in nanoseconds.
    pub fn new(tick_ns: u64) -> Self {
        TimerWheel {
            tick_ns: tick_ns.max(1),
            current: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            pending: 0,
            cascaded: 0,
        }
    }

    /// The tick length in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Armed timers currently in the wheel (including cancelled ones not
    /// yet fired-and-discarded).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total entries re-placed by cascades since construction. Monotone;
    /// a tracer reads it before and after [`TimerWheel::advance`] and
    /// records the delta as one cascade event.
    pub fn cascaded(&self) -> u64 {
        self.cascaded
    }

    /// Arm a timer for `deadline_ns` (nanoseconds on the caller's clock).
    /// The deadline is rounded **up** to the next tick boundary — the
    /// sleep-at-least contract of `r_sleep` — and never earlier than the
    /// next unprocessed tick.
    pub fn insert(&mut self, deadline_ns: u64, entry: TimerEntry) {
        let deadline_tick = deadline_ns
            .div_ceil(self.tick_ns)
            .max(self.current.wrapping_add(1));
        self.place(deadline_tick, entry);
        self.pending += 1;
    }

    fn place(&mut self, deadline_tick: u64, entry: TimerEntry) {
        let delta = deadline_tick.saturating_sub(self.current);
        let level = (0..LEVELS)
            .find(|&l| delta < 1u64 << (SLOT_BITS * (l as u32 + 1)))
            .unwrap_or(LEVELS - 1);
        // Deadlines beyond the wheel's span clamp into the top level by
        // slot position only; the true deadline rides along and the entry
        // re-cascades until it fits.
        let span = 1u64 << (SLOT_BITS * LEVELS as u32);
        let slot_tick = if delta >= span {
            self.current + span - 1
        } else {
            deadline_tick
        };
        let idx = ((slot_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + idx].push((deadline_tick, entry));
    }

    /// Process every tick up to `now_ns`, calling `fire` for each entry
    /// whose deadline has passed. Entries fire in tick order (entries of
    /// one tick in arbitrary order); an empty wheel fast-forwards.
    pub fn advance(&mut self, now_ns: u64, fire: &mut impl FnMut(TimerEntry)) {
        let target = now_ns / self.tick_ns;
        if self.pending == 0 {
            self.current = self.current.max(target);
            return;
        }
        while self.current < target {
            self.current += 1;
            let t = self.current;
            // Cascade: each time a level's window wraps, re-place the
            // next higher slot's entries by their true deadlines.
            for level in 1..LEVELS {
                if t & ((1u64 << (SLOT_BITS * level as u32)) - 1) != 0 {
                    break;
                }
                let idx = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                let entries = std::mem::take(&mut self.slots[level * SLOTS + idx]);
                self.cascaded += entries.len() as u64;
                for (deadline_tick, entry) in entries {
                    self.place(deadline_tick, entry);
                }
            }
            let bucket = (t & (SLOTS as u64 - 1)) as usize;
            if self.slots[bucket].is_empty() {
                continue;
            }
            let entries = std::mem::take(&mut self.slots[bucket]);
            for (deadline_tick, entry) in entries {
                debug_assert!(deadline_tick == t, "level-0 entry fires at its own tick");
                self.pending -= 1;
                fire(entry);
            }
        }
    }

    /// The earliest armed deadline in nanoseconds, if any — what the
    /// shard's idle wait sleeps toward. O(pending) scan; called only
    /// when the run queue is empty.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        self.slots
            .iter()
            .flatten()
            .map(|&(deadline_tick, _)| deadline_tick)
            .min()
            .map(|tick| tick.saturating_mul(self.tick_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task: usize, gen: u64) -> TimerEntry {
        TimerEntry { task, gen }
    }

    #[test]
    fn coalesces_deadlines_of_one_tick_into_one_advance() {
        let mut w = TimerWheel::new(1_000);
        // Three deadlines inside tick 1, one in tick 2.
        w.insert(100, entry(0, 0));
        w.insert(400, entry(1, 0));
        w.insert(900, entry(2, 0));
        w.insert(1_500, entry(3, 0));
        let mut fired = Vec::new();
        w.advance(1_000, &mut |e| fired.push(e.task));
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1, 2], "one tick fires its whole bucket");
        assert_eq!(w.pending(), 1);
        w.advance(2_000, &mut |e| fired.push(e.task));
        assert_eq!(fired.len(), 4);
    }

    #[test]
    fn deadlines_round_up_never_early() {
        let mut w = TimerWheel::new(1_000);
        w.insert(1_001, entry(0, 0)); // rounds up to tick 2
        let mut fired = 0;
        w.advance(1_000, &mut |_| fired += 1);
        assert_eq!(fired, 0, "must not fire before the deadline");
        w.advance(2_000, &mut |_| fired += 1);
        assert_eq!(fired, 1);
    }

    #[test]
    fn cascade_fires_long_deadlines_at_the_right_tick() {
        // 100_000 ticks out: lives in level 2, must cascade down through
        // level 1 and fire exactly on time.
        let mut w = TimerWheel::new(1_000);
        let deadline = 100_000 * 1_000u64;
        w.insert(deadline, entry(7, 3));
        let mut fired = Vec::new();
        // Walk up in uneven chunks to cross several cascade boundaries.
        let mut now = 0u64;
        while now < deadline - 1_000 {
            now += 37_777;
            w.advance(now.min(deadline - 1_000), &mut |e| fired.push(e));
        }
        assert!(fired.is_empty(), "fired {fired:?} before the deadline");
        w.advance(deadline, &mut |e| fired.push(e));
        assert_eq!(fired, vec![entry(7, 3)], "exactly one fire, on time");
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn deadlines_beyond_the_span_clamp_and_still_fire() {
        let mut w = TimerWheel::new(1);
        let span = 1u64 << 24; // 64^4 ticks at tick_ns = 1
        let deadline = span * 3 + 12_345;
        w.insert(deadline, entry(1, 0));
        let mut fired = Vec::new();
        let mut now = 0u64;
        while now < deadline {
            now = (now + span / 2).min(deadline);
            w.advance(now, &mut |e| fired.push(e));
            if now < deadline {
                assert!(fired.is_empty(), "fired early at now={now}");
            }
        }
        assert_eq!(fired.len(), 1, "clamped entry must re-cascade and fire");
    }

    #[test]
    fn cancel_on_wake_discards_stale_generations() {
        // The executor's cancellation protocol: a doorbell wake bumps the
        // task's generation, orphaning the armed fallback timer. The stale
        // entry still pops out of the wheel, but the generation check
        // identifies it as cancelled.
        let mut w = TimerWheel::new(1_000);
        w.insert(5_000, entry(4, 1));
        let current_gen = 2u64; // the task woke; its generation moved on
        let mut live = Vec::new();
        w.advance(10_000, &mut |e| {
            if e.gen == current_gen {
                live.push(e);
            }
        });
        assert!(live.is_empty(), "stale-generation timer must be a no-op");
        assert_eq!(w.pending(), 0, "the stale entry left the wheel");
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let mut w = TimerWheel::new(1_000);
        assert_eq!(w.next_deadline_ns(), None);
        w.insert(90_000, entry(0, 0));
        w.insert(7_000, entry(1, 0));
        w.insert(2_000_000, entry(2, 0));
        assert_eq!(w.next_deadline_ns(), Some(7_000));
        let mut fired = 0;
        w.advance(10_000, &mut |_| fired += 1);
        assert_eq!(fired, 1);
        assert_eq!(w.next_deadline_ns(), Some(90_000));
    }

    #[test]
    fn cascaded_counts_replaced_entries() {
        let mut w = TimerWheel::new(1_000);
        // Level-2 deadline: must ride at least one cascade down.
        w.insert(100_000 * 1_000, entry(0, 0));
        assert_eq!(w.cascaded(), 0);
        let mut fired = 0;
        w.advance(100_000 * 1_000, &mut |_| fired += 1);
        assert_eq!(fired, 1);
        assert!(w.cascaded() >= 1, "long deadline must cascade down");
        // Short deadlines never cascade.
        let before = w.cascaded();
        w.insert(100_001 * 1_000, entry(1, 0));
        w.advance(100_001 * 1_000, &mut |_| {});
        assert_eq!(w.cascaded(), before);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_tick() {
        let mut w = TimerWheel::new(1_000);
        w.advance(50_000, &mut |_| {});
        w.insert(10_000, entry(0, 0)); // already in the past
        let mut fired = 0;
        w.advance(51_000, &mut |_| fired += 1);
        assert_eq!(fired, 1, "past deadline fires on the very next tick");
    }
}
