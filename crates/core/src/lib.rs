//! # metronome-core — adaptive and precise intermittent packet retrieval
//!
//! The primary contribution of *Metronome* (Faltelli et al., CoNEXT 2020):
//! replace DPDK's continuous busy polling with a sleep&wake scheme whose
//! CPU usage is proportional to the load while the added latency stays
//! pinned at a configurable target.
//!
//! The pieces, each its own module:
//!
//! * [`trylock`] — the user-space CMPXCHG race primitive (§III-B);
//! * [`engine`] — the backend-agnostic execution core: the Listing 2 loop
//!   as a resumable [`engine::MetronomeEngine`] state machine over the
//!   [`engine::Backend`] capability trait, so the identical protocol code
//!   drives the discrete-event simulation and the real-thread runtime;
//! * [`discipline`] — the retrieval-discipline layer: the Listing 2 loop
//!   as one [`discipline::RetrievalDiscipline`] among four — Metronome,
//!   busy-polling DPDK ([`discipline::BusyPoll`]), interrupt-driven
//!   XDP/NAPI ([`discipline::InterruptLike`] parked on a
//!   [`discipline::Doorbell`]), and fixed-period retrieval
//!   ([`discipline::ConstSleep`]) — so the paper's comparative baselines
//!   run on real threads too;
//! * [`policy`] — the primary/backup diversity policy: race winners sleep
//!   the short adaptive timeout `TS` and re-contend their queue, losers
//!   sleep the long timeout `TL` and re-contend a random queue (§IV-A,
//!   §IV-E);
//! * [`model`] — the renewal/vacation analytical model, equations (1)–(14);
//! * [`controller`] — the EWMA load estimator (eq. (11)) driving the
//!   `TS` rule (eq. (13)/(14)) per queue;
//! * [`predictor`] — closed-form CPU/wake-rate predictions from the same
//!   renewal structure, validated against the simulation;
//! * [`realtime`] — the protocol on real `std::thread`s with a
//!   spin-assisted [`realtime::PreciseSleeper`] standing in for the
//!   paper's `hr_sleep()` kernel service;
//! * [`executor`] — the async backend: the same disciplines as
//!   cooperative tasks on a vruntime-weighted sharded executor
//!   ([`executor::AsyncMetronome`]) with a hierarchical
//!   [`executor::TimerWheel`] and waker-wired doorbells, so 1000+
//!   queues run on a handful of OS threads
//!   ([`executor::ExecBackend`] / [`executor::WorkerSet`] select the
//!   backend at runtime);
//! * [`config`] — tunables with the paper's evaluation defaults
//!   (`M = 3`, `V̄ = 10 µs`, `TL = 500 µs`, burst 32).
//!
//! The same policy/model code drives both the discrete-event simulation
//! (see `metronome-runtime`) and the real-thread runtime, so what the
//! benchmarks evaluate is what a user adopts.
//!
//! ## Quick start (real threads)
//!
//! ```
//! use metronome_core::{config::MetronomeConfig, realtime::Metronome};
//! use crossbeam::queue::ArrayQueue;
//! use std::sync::Arc;
//!
//! let queues = vec![Arc::new(ArrayQueue::<u64>::new(1024))];
//! let m = Metronome::start(MetronomeConfig::default(), queues.clone(), |_q, item| {
//!     let _ = item; // process the packet
//! });
//! queues[0].push(42).unwrap();
//! std::thread::sleep(std::time::Duration::from_millis(50));
//! let stats = m.stop();
//! assert_eq!(stats.total_processed(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod discipline;
pub mod engine;
pub mod executor;
pub mod model;
pub mod policy;
pub mod predictor;
pub mod realtime;
pub mod rxqueue;
pub mod trylock;

pub use config::MetronomeConfig;
pub use controller::AdaptiveController;
pub use discipline::{
    AnyDiscipline, BusyPoll, ConstSleep, DisciplineKind, DisciplineSpec, Doorbell, InterruptLike,
    MetronomeDiscipline, ModerationConfig, ParkToken, RetrievalDiscipline, Verdict,
};
pub use engine::{Backend, EngineOp, MetronomeEngine, StepCosts};
pub use executor::{AsyncMetronome, ExecBackend, TimerWheel, WorkerSet};
pub use policy::{Role, ThreadPolicy};
pub use realtime::{Metronome, PreciseSleeper, RealtimeBackend, RealtimeHarness, RealtimeStats};
pub use rxqueue::RxQueue;
pub use trylock::TryLock;
