//! The Metronome analytical model (paper §IV, equations 1–14).
//!
//! Metronome alternates *vacation periods* `V(i)` (all threads asleep,
//! packets accumulate) with *busy periods* `B(i)` (the trylock winner
//! drains the queue). Given the load `ρ = λ/µ`, the model relates the
//! controllable short timeout `TS` to the resulting mean vacation — and is
//! then inverted to pin the mean vacation (and thus the added latency) at a
//! target `V̄` regardless of load.
//!
//! All functions are pure and deterministic; time is carried in seconds as
//! `f64` for algebra and converted at the edges (the controller in
//! [`crate::controller`] does the `Nanos` conversion).
//!
//! Two transcription notes versus the arXiv text (both verified by Monte
//! Carlo in the unit tests below):
//! * eq. (7)'s closed form is `[1 − (1 − TS/TL)^{M−1}] / (M−1)`;
//! * the exact general-load mean (§IV-C) has denominator
//!   `M (p/TS + (1−p)/TL)` — the `TS`/`TL` positions are swapped in the
//!   paper's display equation (its own limits confirm this: `p → 1` must
//!   give `TS/M`, `p → 0` must give eq. (6)).

/// Mean busy period for a vacation of length `v` at load `rho` (eq. (3)):
/// `E[B|V] = V·ρ/(1−ρ)`.
///
/// Returns infinity at `rho >= 1` (overloaded queue never empties).
pub fn busy_period_mean(v: f64, rho: f64) -> f64 {
    assert!(v >= 0.0);
    if rho >= 1.0 {
        f64::INFINITY
    } else if rho <= 0.0 {
        0.0
    } else {
        v * rho / (1.0 - rho)
    }
}

/// Load estimate from an observed (busy, vacation) pair (eq. (4)):
/// `ρ = B/(V+B)`.
pub fn rho_from_periods(busy: f64, vacation: f64) -> f64 {
    if busy <= 0.0 {
        0.0
    } else {
        busy / (vacation + busy)
    }
}

/// High-load vacation CDF (eq. (5)): `P(V ≤ x)` when one primary thread
/// uses timeout `ts` and `m−1` backups are uniformly spread over `(0, tl)`.
pub fn vacation_cdf_high_load(x: f64, ts: f64, tl: f64, m: usize) -> f64 {
    assert!(m >= 2, "model needs at least two threads");
    assert!(ts > 0.0 && tl > 0.0);
    if x < 0.0 {
        0.0
    } else if x >= ts {
        1.0
    } else {
        1.0 - (1.0 - x / tl).max(0.0).powi(m as i32 - 1)
    }
}

/// Mean high-load vacation (eq. (6)):
/// `E[V] = (TL/M)·(1 − (1 − TS/TL)^M)`.
pub fn vacation_mean_high_load(ts: f64, tl: f64, m: usize) -> f64 {
    assert!(m >= 2);
    assert!(ts > 0.0 && tl > 0.0 && ts <= tl);
    tl / m as f64 * (1.0 - (1.0 - ts / tl).powi(m as i32))
}

/// Probability that a backup thread (rather than the primary) wins the next
/// race (eq. (7)): `[1 − (1 − TS/TL)^{M−1}]/(M−1)`.
pub fn backup_success_prob(ts: f64, tl: f64, m: usize) -> f64 {
    assert!(m >= 2);
    assert!(ts > 0.0 && tl > 0.0 && ts <= tl);
    (1.0 - (1.0 - ts / tl).powi(m as i32 - 1)) / (m as f64 - 1.0)
}

/// Low-load vacation CDF (eq. (8)): all `m` threads primary with timeout
/// `ts`.
pub fn vacation_cdf_low_load(x: f64, ts: f64, m: usize) -> f64 {
    assert!(m >= 1);
    assert!(ts > 0.0);
    if x < 0.0 {
        0.0
    } else if x >= ts {
        1.0
    } else {
        1.0 - (1.0 - x / ts).powi(m as i32)
    }
}

/// Equal-timeout vacation PDF (eq. (9), the Fig. 4 overlay):
/// `f(x) = (M−1)/TL · (1 − x/TL)^{M−2}` on `[0, TL]`.
pub fn vacation_pdf_equal_timeouts(x: f64, tl: f64, m: usize) -> f64 {
    assert!(m >= 2);
    assert!(tl > 0.0);
    if !(0.0..=tl).contains(&x) {
        0.0
    } else {
        (m as f64 - 1.0) / tl * (1.0 - x / tl).powi(m as i32 - 2)
    }
}

/// Exact general-load mean vacation (§IV-C integral):
/// `E[V] = [1 − ((1−p)(1−TS/TL))^M] / (M·(p/TS + (1−p)/TL))`
/// where `p` is the probability a thread is in primary state.
pub fn vacation_mean_general(ts: f64, tl: f64, m: usize, p: f64) -> f64 {
    assert!(m >= 1);
    assert!(ts > 0.0 && tl > 0.0 && ts <= tl);
    assert!((0.0..=1.0).contains(&p));
    let a = p / ts + (1.0 - p) / tl;
    let inner = (1.0 - p) * (1.0 - ts / tl);
    (1.0 - inner.powi(m as i32)) / (m as f64 * a)
}

/// Approximate general-load mean vacation under `TL ≫ TS` (eq. (10)):
/// `E[V] ≈ TS·(1 − (1−p)^M)/(M·p)`.
pub fn vacation_mean_approx(ts: f64, m: usize, p: f64) -> f64 {
    assert!(m >= 1);
    assert!(ts > 0.0);
    assert!((0.0..=1.0).contains(&p));
    if p <= f64::EPSILON {
        // p → 0 limit: E[V] → TS.
        return ts;
    }
    ts * (1.0 - (1.0 - p).powi(m as i32)) / (m as f64 * p)
}

/// The load-adaptive `TS` rule (eq. (13)):
/// `TS = M·(1−ρ)/(1−ρ^M) · V̄ = M·V̄ / (1 + ρ + … + ρ^{M−1})`.
///
/// Clamps `rho` into `[0, 1]`; the `ρ → 1` limit (`TS = V̄`) and the
/// `ρ → 0` limit (`TS = M·V̄`) are handled exactly.
pub fn ts_rule(m: usize, rho: f64, v_target: f64) -> f64 {
    assert!(m >= 1);
    assert!(v_target > 0.0);
    let rho = rho.clamp(0.0, 1.0);
    // Geometric-sum form is numerically stable at rho ≈ 1.
    let mut denom = 0.0;
    let mut pow = 1.0;
    for _ in 0..m {
        denom += pow;
        pow *= rho;
    }
    m as f64 * v_target / denom
}

/// The multiqueue `TS` rule (eq. (14)): per-queue load `rho_i`, with
/// `M/N` average threads per queue:
/// `TS_i = (M/N)·(1−ρ_i)/(1−ρ_i^{M/N}) · V̄`.
pub fn ts_rule_multiqueue(m: usize, n: usize, rho_i: f64, v_target: f64) -> f64 {
    assert!(m >= 1 && n >= 1);
    assert!(m >= n, "need at least one thread per queue (M ≥ N)");
    assert!(v_target > 0.0);
    let m_eff = m as f64 / n as f64;
    let rho = rho_i.clamp(0.0, 1.0);
    if (1.0 - rho).abs() < 1e-9 {
        return v_target; // ρ → 1 limit
    }
    if rho < 1e-12 {
        return m_eff * v_target; // ρ → 0 limit
    }
    m_eff * (1.0 - rho) / (1.0 - rho.powf(m_eff)) * v_target
}

/// Worst-case added latency (§IV-D): a packet arriving right after a busy
/// period waits out the whole vacation, so the expected worst case equals
/// the target vacation.
pub fn worst_case_latency(v_target: f64) -> f64 {
    v_target
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_sim::Rng;

    const TS: f64 = 10e-6;
    const TL: f64 = 500e-6;

    #[test]
    fn busy_period_limits() {
        assert_eq!(busy_period_mean(10.0, 0.0), 0.0);
        assert!((busy_period_mean(10.0, 0.5) - 10.0).abs() < 1e-12);
        assert!((busy_period_mean(10.0, 0.9) - 90.0).abs() < 1e-9);
        assert!(busy_period_mean(10.0, 1.0).is_infinite());
    }

    #[test]
    fn rho_inverts_busy_period() {
        // eq. (3) and eq. (4) are inverses.
        for rho in [0.1, 0.5, 0.53, 0.9] {
            let v = 20e-6;
            let b = busy_period_mean(v, rho);
            assert!((rho_from_periods(b, v) - rho).abs() < 1e-12, "rho {rho}");
        }
    }

    #[test]
    fn cdf_boundaries() {
        assert_eq!(vacation_cdf_high_load(-1.0, TS, TL, 3), 0.0);
        assert_eq!(vacation_cdf_high_load(TS, TS, TL, 3), 1.0);
        assert_eq!(vacation_cdf_low_load(TS, TS, 3), 1.0);
        let mid = vacation_cdf_high_load(TS / 2.0, TS, TL, 3);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = TS * i as f64 / 100.0;
            let c = vacation_cdf_high_load(x, TS, TL, 5);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn mean_high_load_monte_carlo() {
        // V = min(TS, U_1, ..., U_{M-1}) with U_j ~ Uniform(0, TL).
        let m = 4;
        let mut rng = Rng::new(11);
        let n = 400_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let mut v: f64 = TS;
            for _ in 0..m - 1 {
                v = v.min(rng.f64() * TL);
            }
            sum += v;
        }
        let mc = sum / n as f64;
        let analytic = vacation_mean_high_load(TS, TL, m);
        assert!(
            (mc - analytic).abs() / analytic < 0.01,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn backup_success_monte_carlo() {
        // A backup wins if its uniform wake lands before TS *and* before
        // all other backups; by symmetry each backup has the same chance.
        let m = 4;
        let mut rng = Rng::new(12);
        let n = 400_000;
        let mut wins_first_backup = 0u64;
        for _ in 0..n {
            let wakes: Vec<f64> = (0..m - 1).map(|_| rng.f64() * TL).collect();
            let min = wakes.iter().cloned().fold(f64::INFINITY, f64::min);
            if min < TS && wakes[0] == min {
                wins_first_backup += 1;
            }
        }
        let mc = wins_first_backup as f64 / n as f64;
        let analytic = backup_success_prob(TS, TL, m);
        assert!(
            (mc - analytic).abs() / analytic < 0.05,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn pdf_integrates_to_one() {
        // eq. (9) over [0, TL] must integrate to 1.
        for m in [2usize, 3, 5] {
            let steps = 100_000;
            let dx = TL / steps as f64;
            let integral: f64 = (0..steps)
                .map(|i| vacation_pdf_equal_timeouts((i as f64 + 0.5) * dx, TL, m) * dx)
                .sum();
            assert!((integral - 1.0).abs() < 1e-3, "m={m}: {integral}");
        }
    }

    #[test]
    fn general_mean_limits_match_extremes() {
        let m = 3;
        // p → 1 (all primary, low load): TS/M.
        let low = vacation_mean_general(TS, TL, m, 1.0);
        assert!((low - TS / m as f64).abs() < 1e-12, "{low}");
        // p → 0 (one primary, high load): eq. (6).
        let high = vacation_mean_general(TS, TL, m, 0.0);
        let eq6 = vacation_mean_high_load(TS, TL, m);
        assert!((high - eq6).abs() / eq6 < 1e-12, "{high} vs {eq6}");
    }

    #[test]
    fn approx_close_to_exact_when_tl_large() {
        for p in [0.1, 0.5, 0.9] {
            let exact = vacation_mean_general(TS, 100.0 * TS, 3, p);
            let approx = vacation_mean_approx(TS, 3, p);
            assert!(
                (exact - approx).abs() / exact < 0.02,
                "p={p}: exact {exact} approx {approx}"
            );
        }
    }

    #[test]
    fn general_mean_monte_carlo() {
        // §IV-C model: the conditioning thread (just released the queue)
        // wakes after exactly TS; each of the remaining M−1 threads is
        // independently primary with probability p (wake ~ U(0,TS)) or
        // backup (wake ~ U(0,TL)). V is the minimum of all of them.
        let (m, p) = (4usize, 0.37);
        let mut rng = Rng::new(13);
        let n = 400_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let mut v: f64 = TS;
            for _ in 0..m - 1 {
                let t = if rng.f64() < p {
                    rng.f64() * TS
                } else {
                    rng.f64() * TL
                };
                v = v.min(t);
            }
            sum += v;
        }
        let mc = sum / n as f64;
        let analytic = vacation_mean_general(TS, TL, m, p);
        assert!(
            (mc - analytic).abs() / analytic < 0.02,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn ts_rule_limits() {
        let v = 10e-6;
        // ρ → 1: TS = V̄.
        assert!((ts_rule(3, 1.0, v) - v).abs() < 1e-15);
        // ρ → 0: TS = M·V̄.
        assert!((ts_rule(3, 0.0, v) - 3.0 * v).abs() < 1e-15);
        // Clamps out-of-range estimates.
        assert!((ts_rule(3, 1.7, v) - v).abs() < 1e-15);
        assert!((ts_rule(3, -0.2, v) - 3.0 * v).abs() < 1e-15);
    }

    #[test]
    fn ts_rule_monotone_decreasing_in_rho() {
        let v = 10e-6;
        let mut prev = f64::INFINITY;
        for i in 0..=50 {
            let rho = i as f64 / 50.0;
            let ts = ts_rule(4, rho, v);
            assert!(ts <= prev + 1e-15, "not monotone at rho={rho}");
            prev = ts;
        }
    }

    #[test]
    fn ts_rule_geometric_identity() {
        // M(1−ρ)/(1−ρ^M) = M/(1+ρ+…+ρ^{M−1}).
        for rho in [0.05, 0.3, 0.65, 0.999] {
            let m = 5;
            let direct = m as f64 * (1.0 - rho) / (1.0 - rho.powi(m as i32));
            let ours = ts_rule(m, rho, 1.0) / 1.0;
            assert!(
                (direct - ours).abs() < 1e-9,
                "rho {rho}: {direct} vs {ours}"
            );
        }
    }

    #[test]
    fn ts_rule_inverts_vacation_mean() {
        // Setting TS by eq. (13) must yield E[V] = V̄ under eq. (10) with
        // p = 1−ρ — the self-consistency at the heart of the adaptation.
        let v_target = 10e-6;
        for rho in [0.1, 0.5, 0.9] {
            let m = 3;
            let ts = ts_rule(m, rho, v_target);
            let ev = vacation_mean_approx(ts, m, 1.0 - rho);
            assert!(
                (ev - v_target).abs() / v_target < 1e-9,
                "rho {rho}: E[V] {ev}"
            );
        }
    }

    #[test]
    fn multiqueue_reduces_to_single_queue() {
        for rho in [0.2, 0.7] {
            let a = ts_rule_multiqueue(3, 1, rho, 10e-6);
            let b = ts_rule(3, rho, 10e-6);
            assert!((a - b).abs() / b < 1e-9);
        }
    }

    #[test]
    fn multiqueue_fractional_threads_per_queue() {
        // M=5, N=4: M/N = 1.25 threads per queue on average.
        let ts = ts_rule_multiqueue(5, 4, 0.5, 15e-6);
        let m_eff: f64 = 1.25;
        let expect = m_eff * 0.5 / (1.0 - 0.5f64.powf(m_eff)) * 15e-6;
        assert!((ts - expect).abs() < 1e-12);
    }

    #[test]
    fn multiqueue_limits() {
        assert!((ts_rule_multiqueue(6, 3, 1.0, 10e-6) - 10e-6).abs() < 1e-15);
        assert!((ts_rule_multiqueue(6, 3, 0.0, 10e-6) - 20e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "M ≥ N")]
    fn multiqueue_requires_threads_for_queues() {
        ts_rule_multiqueue(2, 3, 0.5, 10e-6);
    }
}
