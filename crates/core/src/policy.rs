//! Per-thread role policy: the primary/backup diversity strategy.
//!
//! Paper §IV-A: "Each thread independently classifies itself as being in
//! primary or backup state":
//!
//! * winning the trylock race ⇒ **primary**: drain the queue, then sleep
//!   the short, adaptively computed timeout `TS` and contend for the *same*
//!   queue ("we know it is likely for it to win the race again", §IV-E);
//! * losing the race ⇒ **backup**: sleep the long timeout `TL` and (in the
//!   multiqueue case) pick the *next queue to contend at random*, which
//!   decorrelates the backups and keeps queue checks fair.
//!
//! The policy is a plain state machine with no I/O; it is owned by the
//! backend-agnostic [`crate::engine::MetronomeEngine`], so the same code
//! drives both the discrete-event simulation and the real-thread runtime.

/// A thread's current role in the diversity scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Recently drained a queue; wakes again after `TS`.
    Primary,
    /// Recently lost a race; wakes again after `TL`.
    Backup,
}

/// The per-thread policy state machine.
#[derive(Clone, Debug)]
pub struct ThreadPolicy {
    role: Role,
    queue: usize,
    /// Total wake-ups.
    pub wakes: u64,
    /// Races won (lock acquired).
    pub races_won: u64,
    /// Races lost (busy tries).
    pub races_lost: u64,
    /// Times this thread found its queue empty after winning (idle poll).
    pub empty_polls: u64,
    /// Role changes (primary↔backup transitions).
    pub role_transitions: u64,
}

impl ThreadPolicy {
    /// New thread starting as primary on `initial_queue` (at start-up every
    /// thread optimistically contends — the first race sorts out roles).
    pub fn new(initial_queue: usize) -> Self {
        ThreadPolicy {
            role: Role::Primary,
            queue: initial_queue,
            wakes: 0,
            races_won: 0,
            races_lost: 0,
            empty_polls: 0,
            role_transitions: 0,
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The queue this thread will contend for at its next wake-up.
    pub fn queue_to_contend(&self) -> usize {
        self.queue
    }

    /// Record a wake-up.
    pub fn on_wake(&mut self) {
        self.wakes += 1;
    }

    fn set_role(&mut self, role: Role) {
        if self.role != role {
            self.role_transitions += 1;
        }
        self.role = role;
    }

    /// The thread won the trylock race: it becomes (or stays) primary and
    /// will re-contend the same queue.
    pub fn on_race_won(&mut self) {
        self.races_won += 1;
        self.set_role(Role::Primary);
    }

    /// The thread lost the race: it becomes a backup and picks its next
    /// queue uniformly at random among the `n_queues` (paper §IV-E).
    /// `draw` supplies the randomness (a `u64` from any source); with a
    /// single queue the pick is forced.
    pub fn on_race_lost(&mut self, n_queues: usize, draw: u64) {
        self.races_lost += 1;
        self.set_role(Role::Backup);
        self.queue = if n_queues <= 1 {
            0
        } else {
            (draw % n_queues as u64) as usize
        };
    }

    /// Record that the queue was already empty on a successful acquire.
    pub fn on_empty_poll(&mut self) {
        self.empty_polls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_sim::Rng;

    #[test]
    fn starts_primary() {
        let p = ThreadPolicy::new(2);
        assert_eq!(p.role(), Role::Primary);
        assert_eq!(p.queue_to_contend(), 2);
    }

    #[test]
    fn won_race_keeps_queue() {
        let mut p = ThreadPolicy::new(1);
        p.on_race_won();
        assert_eq!(p.role(), Role::Primary);
        assert_eq!(p.queue_to_contend(), 1);
        assert_eq!(p.races_won, 1);
    }

    #[test]
    fn lost_race_becomes_backup_and_randomizes_queue() {
        let mut p = ThreadPolicy::new(1);
        let mut rng = Rng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            p.on_race_lost(4, rng.next_u64());
            assert_eq!(p.role(), Role::Backup);
            seen[p.queue_to_contend()] = true;
        }
        assert!(seen.iter().all(|&s| s), "random pick must cover all queues");
        assert_eq!(p.races_lost, 200);
    }

    #[test]
    fn single_queue_lost_race_stays_on_queue_zero() {
        let mut p = ThreadPolicy::new(0);
        p.on_race_lost(1, 0xDEADBEEF);
        assert_eq!(p.queue_to_contend(), 0);
    }

    #[test]
    fn role_recovers_after_backup_wins() {
        let mut p = ThreadPolicy::new(0);
        p.on_race_lost(1, 1);
        assert_eq!(p.role(), Role::Backup);
        p.on_race_won();
        assert_eq!(p.role(), Role::Primary);
    }

    #[test]
    fn role_transitions_counted_only_on_change() {
        let mut p = ThreadPolicy::new(0);
        p.on_race_won(); // primary -> primary: no transition
        assert_eq!(p.role_transitions, 0);
        p.on_race_lost(1, 1); // primary -> backup
        p.on_race_lost(1, 2); // backup -> backup: no transition
        p.on_race_won(); // backup -> primary
        assert_eq!(p.role_transitions, 2);
    }

    #[test]
    fn wake_counter() {
        let mut p = ThreadPolicy::new(0);
        for _ in 0..5 {
            p.on_wake();
        }
        assert_eq!(p.wakes, 5);
    }
}
