//! Analytical resource predictor: closed-form CPU and wake-rate estimates.
//!
//! The paper's model (§IV) predicts *timing*; operators also want the
//! resource side before deploying: "if I run M threads at target V̄
//! against load ρ, what CPU will Metronome use?" This module derives that
//! from the same renewal structure, and the test suite validates it
//! against the discrete-event simulation — closing the loop between the
//! analysis and the system the way the paper's Fig. 4 does for vacations.
//!
//! Per renewal cycle (mean length `E[V] + E[B]`):
//! * the serving thread is on-CPU for `E[B]` plus one wake/sleep path;
//! * every other thread wakes on its own timer (TS or TL) and pays a
//!   busy-try path.
//!
//! With the eq. (13) rule in force, `E[V] = V̄` and `E[B] = V̄·ρ/(1−ρ)`.

use crate::model;

/// Cost parameters of one deployment (times in seconds, like the model).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// CPU seconds charged per wake→race→sleep cycle of any thread
    /// (syscall entry/exit, timer, context switches, trylock, poll).
    pub wake_cycle_cost: f64,
    /// Service rate µ in packets per second.
    pub mu_pps: f64,
}

impl CostModel {
    /// The repo's calibrated defaults at 2.1 GHz (see
    /// `metronome-runtime::calib`): ≈2.1 µs per sleep&wake cycle,
    /// l3fwd µ ≈ 29.4 Mpps.
    pub fn calibrated() -> Self {
        CostModel {
            wake_cycle_cost: 2.1e-6,
            mu_pps: 29.4e6,
        }
    }
}

/// Closed-form prediction for a single-queue deployment.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// Smoothed load ρ = λ/µ.
    pub rho: f64,
    /// The TS the controller will settle on (seconds).
    pub ts: f64,
    /// Mean busy period (seconds).
    pub busy: f64,
    /// Total CPU across all threads, as a fraction of one core
    /// (1.0 = 100%).
    pub cpu_fraction: f64,
    /// Total thread wake-ups per second.
    pub wakes_per_sec: f64,
}

/// Predict steady-state resource usage for `m` threads at target vacation
/// `v_target` (seconds) under offered load `lambda_pps`, with backup
/// timeout `tl` (seconds).
///
/// Assumes ρ < 1 (below saturation) and the adaptive rule in force.
///
/// Accounting: with eq. (13) in force the system performs exactly one
/// successful acquire per renewal cycle of mean length `V̄ + E[B]` —
/// at low load that single rate already covers *all* wakes (every wake
/// wins), at high load the M−1 backups add failed wakes at ≈(1−p)/TL
/// each. CPU is the busy fraction plus the wake-path cost times the total
/// wake rate.
pub fn predict(m: usize, v_target: f64, tl: f64, lambda_pps: f64, cost: &CostModel) -> Prediction {
    assert!(m >= 1);
    assert!(v_target > 0.0 && tl >= v_target);
    let rho = (lambda_pps / cost.mu_pps).clamp(0.0, 0.999_999);
    let ts = model::ts_rule(m, rho, v_target);
    let busy = model::busy_period_mean(v_target, rho);
    let cycle = v_target + busy;

    let acquire_rate = 1.0 / cycle;
    // Backup threads (probability 1−p = ρ each) wake once per TL and fail.
    let failure_rate = (m as f64 - 1.0) * rho / tl;
    let wakes_per_sec = acquire_rate + failure_rate;

    Prediction {
        rho,
        ts,
        busy,
        cpu_fraction: busy / cycle + wakes_per_sec * cost.wake_cycle_cost,
        wakes_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_floor_matches_calibration() {
        // M = 3, V̄ = 10 µs, zero traffic → the paper's ≈20% CPU floor.
        let p = predict(3, 10e-6, 500e-6, 0.0, &CostModel::calibrated());
        assert!(
            (0.12..0.28).contains(&p.cpu_fraction),
            "idle CPU {}",
            p.cpu_fraction
        );
        // All threads primary at idle: TS = M·V̄.
        assert!((p.ts - 30e-6).abs() < 1e-9);
    }

    #[test]
    fn line_rate_matches_fig10() {
        // 14.88 Mpps, M = 3 → the paper's ≈60% total CPU.
        let p = predict(3, 10e-6, 500e-6, 14.88e6, &CostModel::calibrated());
        assert!(
            (0.45..0.70).contains(&p.cpu_fraction),
            "line-rate CPU {}",
            p.cpu_fraction
        );
        assert!((p.rho - 0.506).abs() < 0.01);
    }

    #[test]
    fn cpu_monotone_in_load() {
        let cost = CostModel::calibrated();
        let mut last = 0.0;
        for mpps in [0.0, 2.0, 6.0, 10.0, 14.0] {
            let p = predict(3, 10e-6, 500e-6, mpps * 1e6, &cost);
            assert!(p.cpu_fraction >= last - 1e-9, "not monotone at {mpps}");
            last = p.cpu_fraction;
        }
    }

    #[test]
    fn shorter_target_costs_more_cpu() {
        let cost = CostModel::calibrated();
        let tight = predict(3, 2e-6, 500e-6, 7.44e6, &cost);
        let loose = predict(3, 10e-6, 500e-6, 7.44e6, &cost);
        assert!(tight.cpu_fraction > loose.cpu_fraction);
        assert!(tight.wakes_per_sec > loose.wakes_per_sec);
    }

    #[test]
    fn saturation_clamps() {
        let p = predict(3, 10e-6, 500e-6, 40e6, &CostModel::calibrated());
        assert!(p.rho < 1.0);
        assert!(p.cpu_fraction <= 1.2, "{}", p.cpu_fraction);
    }
}
