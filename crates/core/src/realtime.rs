//! Real-thread Metronome: the paper's Listing 2 on actual OS threads.
//!
//! This module is the adoptable library surface: it runs the Metronome
//! protocol (trylock racing, primary/backup timeouts, adaptive `TS`) with
//! `std::thread` workers against in-process lock-free queues.
//!
//! **`hr_sleep()` substitution.** The paper's precision comes from a custom
//! kernel sleep service we cannot ship from user space. [`PreciseSleeper`]
//! stands in: it sleeps coarsely through the OS for the bulk of the
//! interval and spin-waits the final stretch, delivering microsecond-class
//! wake precision at a small, bounded CPU cost — the same trade the paper
//! makes in kernel space (documented in DESIGN.md as a substitution).
//!
//! The worker body mirrors Listing 2 line by line:
//!
//! ```text
//! while (1) {
//!     if (!trylock(lock[curr_queue])) {
//!         curr_queue = randint(n_queues);
//!         hr_sleep(timeout_long);
//!         continue;
//!     }
//!     while (nb_rx = receive_burst(queue[curr_queue], pkts, BURST_SIZE))
//!         process_and_send_pkts(pkts, nb_rx);
//!     unlock(lock[i]);
//!     hr_sleep(timeout_short);
//! }
//! ```

use crate::config::MetronomeConfig;
use crate::controller::AdaptiveController;
use crate::engine::{Role, ThreadPolicy};
use crate::trylock::TryLock;
use crossbeam::queue::ArrayQueue;
use metronome_sim::Nanos;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hybrid sleep: OS sleep for the bulk, spin for the residual.
///
/// `spin_threshold` is how much of the tail is spun; larger values buy
/// precision with CPU. The default 120 µs comfortably covers typical Linux
/// `nanosleep` overshoot (≈50–100 µs without an RT class).
#[derive(Clone, Copy, Debug)]
pub struct PreciseSleeper {
    /// Portion of the interval spun instead of slept.
    pub spin_threshold: Duration,
}

impl Default for PreciseSleeper {
    fn default() -> Self {
        PreciseSleeper {
            spin_threshold: Duration::from_micros(120),
        }
    }
}

impl PreciseSleeper {
    /// Sleep for at least `dur`, waking within spin precision of the
    /// deadline (sub-microsecond on an unloaded core).
    pub fn sleep(&self, dur: Duration) {
        let deadline = Instant::now() + dur;
        if dur > self.spin_threshold {
            std::thread::sleep(dur - self.spin_threshold);
        }
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// Aggregated counters of a real-thread run.
#[derive(Clone, Debug, Default)]
pub struct RealtimeStats {
    /// Items processed per queue.
    pub processed: Vec<u64>,
    /// Per-thread wake counts.
    pub wakes: Vec<u64>,
    /// Per-thread won races.
    pub races_won: Vec<u64>,
    /// Per-thread lost races (busy tries).
    pub races_lost: Vec<u64>,
    /// Final smoothed ρ per queue.
    pub rho: Vec<f64>,
    /// Final TS per queue.
    pub ts: Vec<Nanos>,
}

impl RealtimeStats {
    /// Total items processed across queues.
    pub fn total_processed(&self) -> u64 {
        self.processed.iter().sum()
    }

    /// Total busy tries across threads.
    pub fn total_busy_tries(&self) -> u64 {
        self.races_lost.iter().sum()
    }
}

/// A running real-thread Metronome instance over queues of `T`.
pub struct Metronome<T: Send + 'static> {
    queues: Vec<Arc<ArrayQueue<T>>>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<ThreadPolicy>>,
    shared: Arc<SharedState>,
    cfg: MetronomeConfig,
}

struct SharedState {
    controller: Mutex<AdaptiveController>,
    locks: Vec<TryLock>,
    /// Instant each queue's lock was last released (vacation measurement).
    last_release: Vec<Mutex<Option<Instant>>>,
    processed: Vec<AtomicU64>,
    rand_state: AtomicU64,
}

impl SharedState {
    /// SplitMix64 over a shared counter — the `rte_random` role.
    fn draw(&self) -> u64 {
        let s = self
            .rand_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<T: Send + 'static> Metronome<T> {
    /// Start `cfg.m_threads` workers over the given queues, processing
    /// each item with `process`. Queues must match `cfg.n_queues`.
    pub fn start<F>(cfg: MetronomeConfig, queues: Vec<Arc<ArrayQueue<T>>>, process: F) -> Self
    where
        F: Fn(usize, T) + Send + Sync + 'static,
    {
        cfg.validate().expect("invalid Metronome configuration");
        assert_eq!(queues.len(), cfg.n_queues, "queue count mismatch");
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SharedState {
            controller: Mutex::new(AdaptiveController::new(cfg.clone())),
            locks: (0..cfg.n_queues).map(|_| TryLock::new()).collect(),
            last_release: (0..cfg.n_queues).map(|_| Mutex::new(None)).collect(),
            processed: (0..cfg.n_queues).map(|_| AtomicU64::new(0)).collect(),
            rand_state: AtomicU64::new(0x4D3),
        });
        let process = Arc::new(process);
        let sleeper = PreciseSleeper::default();
        let mut handles = Vec::new();
        for worker in 0..cfg.m_threads {
            let queues: Vec<_> = queues.to_vec();
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let process = Arc::clone(&process);
            let n_queues = cfg.n_queues;
            let initial_queue = worker % n_queues;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("metronome-{worker}"))
                    .spawn(move || {
                        let mut policy = ThreadPolicy::new(initial_queue);
                        while !stop.load(Ordering::Relaxed) {
                            policy.on_wake();
                            let q = policy.queue_to_contend();
                            if !shared.locks[q].try_lock() {
                                // Busy try: back off to a random queue.
                                policy.on_race_lost(n_queues, shared.draw());
                                let tl = {
                                    let mut ctrl = shared.controller.lock();
                                    ctrl.record_busy_try(q);
                                    ctrl.tl()
                                };
                                sleeper.sleep(Duration::from_nanos(tl.as_nanos()));
                                continue;
                            }
                            // Lock held: measure the vacation that just ended.
                            let acquire_t = Instant::now();
                            policy.on_race_won();
                            let vacation = shared.last_release[q]
                                .lock()
                                .map(|rel| acquire_t.duration_since(rel));
                            // Drain until idle.
                            let mut drained = 0u64;
                            while let Some(item) = queues[q].pop() {
                                process(q, item);
                                drained += 1;
                            }
                            if drained == 0 {
                                policy.on_empty_poll();
                            }
                            shared.processed[q].fetch_add(drained, Ordering::Relaxed);
                            let busy = acquire_t.elapsed();
                            *shared.last_release[q].lock() = Some(Instant::now());
                            shared.locks[q].unlock();
                            // Feed the adaptive controller and sleep TS.
                            let ts = {
                                let mut ctrl = shared.controller.lock();
                                ctrl.record_acquired(q);
                                if let Some(v) = vacation {
                                    ctrl.record_cycle(
                                        q,
                                        Nanos(v.as_nanos() as u64),
                                        Nanos(busy.as_nanos() as u64),
                                    );
                                }
                                ctrl.ts(q)
                            };
                            debug_assert_eq!(policy.role(), Role::Primary);
                            sleeper.sleep(Duration::from_nanos(ts.as_nanos()));
                        }
                        policy
                    })
                    .expect("spawn metronome worker"),
            );
        }
        Metronome {
            queues,
            stop,
            handles,
            shared,
            cfg,
        }
    }

    /// The Rx queues (for producers to push into).
    pub fn queues(&self) -> &[Arc<ArrayQueue<T>>] {
        &self.queues
    }

    /// Items processed so far on a queue.
    pub fn processed(&self, queue: usize) -> u64 {
        self.shared.processed[queue].load(Ordering::Relaxed)
    }

    /// Current smoothed load estimate of a queue.
    pub fn rho(&self, queue: usize) -> f64 {
        self.shared.controller.lock().rho(queue)
    }

    /// Current adaptive TS of a queue.
    pub fn ts(&self, queue: usize) -> Nanos {
        self.shared.controller.lock().ts(queue)
    }

    /// Stop all workers and collect final statistics.
    pub fn stop(self) -> RealtimeStats {
        self.stop.store(true, Ordering::Relaxed);
        let mut stats = RealtimeStats {
            processed: (0..self.cfg.n_queues)
                .map(|q| self.shared.processed[q].load(Ordering::Relaxed))
                .collect(),
            ..Default::default()
        };
        for h in self.handles {
            let policy = h.join().expect("worker panicked");
            stats.wakes.push(policy.wakes);
            stats.races_won.push(policy.races_won);
            stats.races_lost.push(policy.races_lost);
        }
        let ctrl = self.shared.controller.lock();
        for q in 0..self.cfg.n_queues {
            stats.rho.push(ctrl.rho(q));
            stats.ts.push(ctrl.ts(q));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleeper_hits_deadline() {
        let s = PreciseSleeper::default();
        for req_us in [50u64, 200, 1_000] {
            let req = Duration::from_micros(req_us);
            let t0 = Instant::now();
            s.sleep(req);
            let actual = t0.elapsed();
            assert!(actual >= req, "woke early: {actual:?} < {req:?}");
            // Generous bound for shared CI machines.
            assert!(
                actual < req + Duration::from_millis(20),
                "woke far too late: {actual:?} for request {req:?}"
            );
        }
    }

    #[test]
    fn processes_everything_exactly_once() {
        let cfg = MetronomeConfig {
            m_threads: 3,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let queues: Vec<_> = (0..2).map(|_| Arc::new(ArrayQueue::<u64>::new(4096))).collect();
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let m = {
            let seen = Arc::clone(&seen);
            let sum = Arc::clone(&sum);
            Metronome::start(cfg, queues.clone(), move |_q, item: u64| {
                seen.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(item, Ordering::Relaxed);
            })
        };
        // Feed 10k items split across queues.
        let n: u64 = 10_000;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        // Wait for drain (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "lost or stalled items");
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "duplicated items");
        assert_eq!(stats.total_processed(), n);
        assert_eq!(stats.wakes.len(), 3);
    }

    #[test]
    fn adaptation_reacts_to_idle() {
        // With no traffic the estimator must stay at/near zero and TS at
        // its maximal (M·V̄ for single queue) value.
        let cfg = MetronomeConfig::default(); // M=3, N=1, V̄=10µs
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = Metronome::start(cfg.clone(), queues, |_q, _i| {});
        std::thread::sleep(Duration::from_millis(300));
        let rho = m.rho(0);
        let ts = m.ts(0);
        let stats = m.stop();
        assert!(rho < 0.2, "idle rho {rho}");
        // TS near M·V̄ = 30µs.
        assert!(
            ts >= Nanos::from_micros(20),
            "idle TS {ts} should be near M·V̄"
        );
        assert!(stats.total_processed() == 0);
        // Threads were actually waking and racing.
        assert!(stats.wakes.iter().sum::<u64>() > 100);
    }

    #[test]
    fn stats_expose_race_outcomes() {
        let cfg = MetronomeConfig::default();
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = Metronome::start(cfg, queues, |_q, _i| {});
        std::thread::sleep(Duration::from_millis(200));
        let stats = m.stop();
        let won: u64 = stats.races_won.iter().sum();
        assert!(won > 0, "nobody ever acquired the queue");
        assert_eq!(stats.rho.len(), 1);
        assert_eq!(stats.ts.len(), 1);
    }
}
