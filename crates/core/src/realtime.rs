//! Real-thread packet retrieval: the paper's Listing 2 — and its
//! comparative baselines — on actual OS threads.
//!
//! This module is the adoptable library surface: it runs a
//! [`RetrievalDiscipline`] worker set (by default the shared
//! [`crate::engine::MetronomeEngine`]: trylock racing, primary/backup
//! timeouts, adaptive `TS`; via [`Metronome::start_discipline`] also the
//! BusyPoll / InterruptLike / ConstSleep baselines) with `std::thread`
//! workers against in-process lock-free queues. Each worker owns a
//! [`RealtimeBackend`] that realizes the engine's [`Backend`]
//! capabilities with real primitives:
//!
//! | engine capability | simulation realization | real-thread realization |
//! |---|---|---|
//! | race primitive    | owner slot on the sim queue | CMPXCHG [`TryLock`] |
//! | receive burst     | counting descriptor ring    | any [`RxQueue`] (locked `ArrayQueue`, lock-free SPSC/MPSC ring consumer) drained batched into a reusable scratch buffer, one app call per burst |
//! | sleep service     | calibrated `hr_sleep` model | [`PreciseSleeper`]  |
//! | entropy           | seeded xoshiro stream       | SplitMix64 counter  |
//! | clock             | virtual `Nanos`             | `std::time::Instant` |
//! | step costs        | calibrated cycle charges    | zero (hardware pays) |
//!
//! **`hr_sleep()` substitution.** The paper's precision comes from a custom
//! kernel sleep service we cannot ship from user space. [`PreciseSleeper`]
//! stands in: it sleeps coarsely through the OS for the bulk of the
//! interval and spin-waits the final stretch, delivering microsecond-class
//! wake precision at a small, bounded CPU cost — the same trade the paper
//! makes in kernel space (documented in DESIGN.md as a substitution).

use crate::config::MetronomeConfig;
use crate::controller::AdaptiveController;
use crate::discipline::{DisciplineSpec, Doorbell, RetrievalDiscipline, Verdict};
use crate::engine::Backend;
use crate::policy::ThreadPolicy;
use crate::rxqueue::RxQueue;
use crate::trylock::TryLock;
use crossbeam::queue::ArrayQueue;
use metronome_sim::Nanos;
use metronome_telemetry::{
    NullSink, NullTrace, TelemetryHub, TelemetrySink, TraceHub, TraceSink, TraceVerdict, TracedSink,
};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a parked worker waits on its doorbell before re-checking the
/// stop flag (bounds shutdown latency of idle InterruptLike workers).
const PARK_STOP_CHECK: Duration = Duration::from_millis(1);

/// Hybrid sleep: OS sleep for the bulk, spin for the residual.
///
/// `spin_threshold` is how much of the tail is spun; larger values buy
/// precision with CPU. The default 120 µs comfortably covers typical Linux
/// `nanosleep` overshoot (≈50–100 µs without an RT class).
///
/// **Accounting semantic.** A `sleep()` call — including its spun tail,
/// which for intervals at or below `spin_threshold` is the *whole*
/// interval — counts as sleep time in telemetry, not busy time. The
/// sleeper stands in for the paper's kernel `hr_sleep()`, whose sleeps
/// are genuinely CPU-free; charging its user-space spin to the worker
/// would report the substitution artifact instead of the protocol's
/// cost. Every retrieval discipline goes through the same sleeper with
/// the same threshold, so cross-discipline duty-cycle comparisons stay
/// apples-to-apples *under the `hr_sleep` model*; the real spin cost of
/// the substitution is documented in DESIGN.md §2 and measurable by
/// dropping the threshold to zero ([`PreciseSleeper::with_spin_threshold`],
/// the `nanosleep`-precision ablation).
#[derive(Clone, Copy, Debug)]
pub struct PreciseSleeper {
    /// Portion of the interval spun instead of slept.
    pub spin_threshold: Duration,
}

impl Default for PreciseSleeper {
    fn default() -> Self {
        PreciseSleeper {
            spin_threshold: Duration::from_micros(120),
        }
    }
}

impl PreciseSleeper {
    /// A sleeper spinning the final `spin_threshold` of every interval.
    /// Larger thresholds buy wake precision with CPU; zero degrades to a
    /// plain `thread::sleep` (the `nanosleep` ablation).
    pub fn with_spin_threshold(spin_threshold: Duration) -> Self {
        PreciseSleeper { spin_threshold }
    }

    /// Sleep for at least `dur`, waking within spin precision of the
    /// deadline (sub-microsecond on an unloaded core). Returns the
    /// measured oversleep — how far past the requested deadline the call
    /// actually returned — so callers can feed telemetry's sleep-
    /// precision counters.
    pub fn sleep(&self, dur: Duration) -> Duration {
        let start = Instant::now();
        let deadline = start + dur;
        if dur > self.spin_threshold {
            std::thread::sleep(dur - self.spin_threshold);
        }
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        start.elapsed().saturating_sub(dur)
    }
}

/// Aggregated counters of a real-thread run.
#[derive(Clone, Debug, Default)]
pub struct RealtimeStats {
    /// Items processed per queue.
    pub processed: Vec<u64>,
    /// Per-thread wake counts.
    pub wakes: Vec<u64>,
    /// Per-thread won races.
    pub races_won: Vec<u64>,
    /// Per-thread lost races (busy tries).
    pub races_lost: Vec<u64>,
    /// Final smoothed ρ per queue.
    pub rho: Vec<f64>,
    /// Final TS per queue.
    pub ts: Vec<Nanos>,
    /// Snapshot of the adaptive controller after all workers joined:
    /// per-queue try accounting and renewal-cycle sums for reports.
    pub controller: Option<AdaptiveController>,
}

impl RealtimeStats {
    /// Total items processed across queues.
    pub fn total_processed(&self) -> u64 {
        self.processed.iter().sum()
    }

    /// Total busy tries across threads.
    pub fn total_busy_tries(&self) -> u64 {
        self.races_lost.iter().sum()
    }
}

/// Assemble a [`RealtimeStats`] from joined per-worker policies (in
/// worker order) and the shared state's final counters. Shared by the
/// thread backend's [`Metronome::stop`] and the async executor's stop so
/// the two backends report through one code path.
pub(crate) fn collect_stats(
    shared: &SharedState,
    n_queues: usize,
    policies: Vec<ThreadPolicy>,
) -> RealtimeStats {
    let mut stats = RealtimeStats::default();
    for policy in policies {
        stats.wakes.push(policy.wakes);
        stats.races_won.push(policy.races_won);
        stats.races_lost.push(policy.races_lost);
    }
    // Counters are read only after every worker joined: a worker that
    // was mid-turn when the flag rose finishes its drain first, and
    // those packets must be on the books (the realtime runner asserts
    // offered = processed + dropped against these).
    stats.processed = (0..n_queues)
        .map(|q| shared.processed[q].load(Ordering::Relaxed))
        .collect();
    let ctrl = shared.controller.lock();
    for q in 0..n_queues {
        stats.rho.push(ctrl.rho(q));
        stats.ts.push(ctrl.ts(q));
    }
    stats.controller = Some(ctrl.clone());
    stats
}

/// State shared by every worker of one [`Metronome`] instance (or one
/// async-executor worker set — `crate::executor` builds the same state,
/// which is what keeps the two backends' accounting identical).
pub(crate) struct SharedState {
    pub(crate) controller: Mutex<AdaptiveController>,
    locks: Vec<TryLock>,
    /// Instant each queue's lock was last released (vacation measurement).
    last_release: Vec<Mutex<Option<Instant>>>,
    pub(crate) processed: Vec<AtomicU64>,
    rand_state: AtomicU64,
    /// `TL` is fixed (§IV-E), so workers read it without the controller
    /// lock.
    t_long: Nanos,
    /// One wake-up doorbell per queue. Only the InterruptLike discipline
    /// parks on them; producers may ring unconditionally (a ring with no
    /// waiter is one uncontended mutex bump).
    pub(crate) doorbells: Vec<Arc<Doorbell>>,
}

impl SharedState {
    pub(crate) fn new(cfg: &MetronomeConfig) -> Arc<Self> {
        Arc::new(SharedState {
            controller: Mutex::new(AdaptiveController::new(cfg.clone())),
            locks: (0..cfg.n_queues).map(|_| TryLock::new()).collect(),
            last_release: (0..cfg.n_queues).map(|_| Mutex::new(None)).collect(),
            processed: (0..cfg.n_queues).map(|_| AtomicU64::new(0)).collect(),
            rand_state: AtomicU64::new(0x4D3),
            t_long: cfg.t_long,
            doorbells: (0..cfg.n_queues).map(|_| Doorbell::new()).collect(),
        })
    }
}

impl SharedState {
    /// SplitMix64 over a shared counter — the `rte_random` role.
    fn draw(&self) -> u64 {
        let s = self
            .rand_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The real-thread realization of the engine's [`Backend`] capabilities:
/// CMPXCHG trylock, [`RxQueue`] receive bursts drained batched into a
/// reusable scratch buffer and processed one application call per burst,
/// wall-clock vacation measurement, and a shared SplitMix64 entropy
/// counter. One backend instance belongs to one worker thread, and its
/// process closure is `FnMut` *owned by that worker* — per-thread state
/// (a mempool cache, a flow table shard) lives right in the closure with
/// no locks around it.
pub struct RealtimeBackend<T: Send + 'static, P, Q: RxQueue<T> = Arc<ArrayQueue<T>>> {
    queues: Vec<Q>,
    shared: Arc<SharedState>,
    process: P,
    /// Reusable burst buffer: filled by `rx_burst`, handed to the process
    /// closure, cleared after — the hot path allocates only until the
    /// buffer's capacity has grown to the configured burst size once.
    scratch: Vec<T>,
    /// Acquire instant of the currently held lock (busy-period start).
    acquired_at: Option<Instant>,
    /// Vacation that ended at the current acquire, if measurable.
    pending_vacation: Option<Duration>,
}

impl<T, P, Q> RealtimeBackend<T, P, Q>
where
    T: Send + 'static,
    P: FnMut(usize, &mut Vec<T>),
    Q: RxQueue<T>,
{
    pub(crate) fn new(queues: Vec<Q>, shared: Arc<SharedState>, process: P) -> Self {
        RealtimeBackend {
            queues,
            shared,
            process,
            scratch: Vec::new(),
            acquired_at: None,
            pending_vacation: None,
        }
    }
}

impl<T, P, Q> Backend for RealtimeBackend<T, P, Q>
where
    T: Send + 'static,
    P: FnMut(usize, &mut Vec<T>),
    Q: RxQueue<T>,
{
    fn n_queues(&self) -> usize {
        self.queues.len()
    }

    fn draw(&mut self) -> u64 {
        self.shared.draw()
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        if !self.shared.locks[q].try_lock() {
            self.shared.controller.lock().record_busy_try(q);
            return false;
        }
        // Lock held: measure the vacation that just ended. The controller
        // is deliberately NOT touched here — contending its mutex while
        // holding the queue lock would extend the queue's unavailability
        // and inflate the measured busy period; the acquisition is
        // recorded in release()'s single critical section instead.
        let now = Instant::now();
        self.acquired_at = Some(now);
        self.pending_vacation =
            (*self.shared.last_release[q].lock()).map(|released| now.duration_since(released));
        true
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        // Drain up to `burst` items into the reusable scratch buffer with
        // one batched dequeue, then hand the application the whole burst
        // at once (the rx_burst → process-array shape of a DPDK lcore
        // loop). The actual drained count — not the requested burst — is
        // what the engine's Chunk phase and the cost model see.
        debug_assert!(self.scratch.is_empty(), "scratch not cleared");
        let taken = self.queues[q].pop_burst(&mut self.scratch, burst as usize) as u64;
        if taken > 0 {
            (self.process)(q, &mut self.scratch);
            // The closure may have consumed the items (e.g. recycled them
            // to a mempool); drop whatever it left behind.
            self.scratch.clear();
            self.shared.processed[q].fetch_add(taken, Ordering::Relaxed);
        }
        taken
    }

    fn release(&mut self, q: usize) -> Nanos {
        let acquired = self
            .acquired_at
            .take()
            .expect("release without matching acquire");
        let busy = acquired.elapsed();
        *self.shared.last_release[q].lock() = Some(Instant::now());
        self.shared.locks[q].unlock();
        // One controller critical section per winning turn: record the
        // acquisition and the completed renewal cycle, read the new TS.
        let mut ctrl = self.shared.controller.lock();
        ctrl.record_acquired(q);
        if let Some(vacation) = self.pending_vacation.take() {
            ctrl.record_cycle(
                q,
                Nanos(vacation.as_nanos() as u64),
                Nanos(busy.as_nanos() as u64),
            );
        }
        ctrl.ts(q)
    }

    fn ts(&self, q: usize) -> Nanos {
        self.shared.controller.lock().ts(q)
    }

    fn tl(&self) -> Nanos {
        self.shared.t_long
    }
}

/// A single-threaded harness over the realtime backend components.
///
/// Spawns no threads: it builds the same `SharedState` a running
/// [`Metronome`] uses and hands out per-worker [`RealtimeBackend`]s that a
/// test can drive step by step. This is what the sim-vs-realtime parity
/// test uses to execute both backends under one deterministic schedule.
pub struct RealtimeHarness<T: Send + 'static, F, Q: RxQueue<T> = Arc<ArrayQueue<T>>> {
    queues: Vec<Q>,
    shared: Arc<SharedState>,
    process: Arc<F>,
    _item: PhantomData<fn() -> T>,
}

impl<T, F, Q> RealtimeHarness<T, F, Q>
where
    T: Send + 'static,
    F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
    Q: RxQueue<T>,
{
    /// Build the shared state for `cfg` over the given queues.
    pub fn new(cfg: MetronomeConfig, queues: Vec<Q>, process: F) -> Self {
        cfg.validate().expect("invalid Metronome configuration");
        assert_eq!(queues.len(), cfg.n_queues, "queue count mismatch");
        RealtimeHarness {
            shared: SharedState::new(&cfg),
            queues,
            process: Arc::new(process),
            _item: PhantomData,
        }
    }

    /// A worker backend sharing this harness's state (all backends call
    /// the one shared process closure).
    pub fn backend(
        &self,
    ) -> RealtimeBackend<T, impl FnMut(usize, &mut Vec<T>) + Send + Sync + 'static, Q> {
        let process = Arc::clone(&self.process);
        RealtimeBackend::new(
            self.queues.clone(),
            Arc::clone(&self.shared),
            move |q, burst: &mut Vec<T>| process(q, burst),
        )
    }

    /// Items processed so far on a queue.
    pub fn processed(&self, queue: usize) -> u64 {
        self.shared.processed[queue].load(Ordering::Relaxed)
    }

    /// Successful acquisitions recorded on a queue.
    pub fn total_tries(&self, queue: usize) -> u64 {
        self.shared.controller.lock().queue(queue).total_tries
    }

    /// Busy tries recorded on a queue.
    pub fn busy_tries(&self, queue: usize) -> u64 {
        self.shared.controller.lock().queue(queue).busy_tries
    }
}

/// A running real-thread Metronome instance over queues of `T`.
pub struct Metronome<T: Send + 'static, Q: RxQueue<T> = Arc<ArrayQueue<T>>> {
    queues: Vec<Q>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<ThreadPolicy>>,
    shared: Arc<SharedState>,
    cfg: MetronomeConfig,
    _item: PhantomData<fn() -> T>,
}

impl<T: Send + 'static, Q: RxQueue<T>> Metronome<T, Q> {
    /// Start `cfg.m_threads` workers over the given queues, processing
    /// each item with `process`. Queues must match `cfg.n_queues`.
    pub fn start<F>(cfg: MetronomeConfig, queues: Vec<Q>, process: F) -> Self
    where
        F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
    {
        Self::start_discipline(cfg, DisciplineSpec::Metronome, queues, process)
    }

    /// [`Metronome::start`] with telemetry: every worker publishes wakes,
    /// busy/sleep time, drained bursts and `TS` updates into `hub`
    /// (relaxed-atomic increments at protocol grain — the hot path takes
    /// no lock and allocates nothing for telemetry). The hub must have
    /// `cfg.m_threads` worker slots and `cfg.n_queues` queue slots.
    pub fn start_with_telemetry<F>(
        cfg: MetronomeConfig,
        queues: Vec<Q>,
        process: F,
        hub: &Arc<TelemetryHub>,
    ) -> Self
    where
        F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
    {
        Self::start_discipline_with_telemetry(cfg, DisciplineSpec::Metronome, queues, process, hub)
    }

    /// Start a worker set running an arbitrary retrieval discipline over
    /// the queues: `cfg.m_threads` racing workers for
    /// [`DisciplineSpec::Metronome`], one pinned worker per queue for the
    /// BusyPoll / InterruptLike / ConstSleep baselines (which ignore the
    /// trylock layer entirely — classic DPDK and XDP have no queue race).
    ///
    /// One `process` closure is shared by every worker. When workers need
    /// per-thread state (a mempool cache, a flow-table shard), use
    /// [`Metronome::start_discipline_scoped`] instead.
    pub fn start_discipline<F>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        process: F,
    ) -> Self
    where
        F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
    {
        let process = Arc::new(process);
        Self::start_discipline_scoped(cfg, spec, queues, move |_worker| {
            let process = Arc::clone(&process);
            move |q: usize, burst: &mut Vec<T>| process(q, burst)
        })
    }

    /// [`Metronome::start_discipline`] with telemetry. The hub must have
    /// one worker slot per spawned worker (`spec.workers(...)`) and
    /// `cfg.n_queues` queue slots.
    pub fn start_discipline_with_telemetry<F>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        process: F,
        hub: &Arc<TelemetryHub>,
    ) -> Self
    where
        F: Fn(usize, &mut Vec<T>) + Send + Sync + 'static,
    {
        let process = Arc::new(process);
        Self::start_discipline_scoped_with_telemetry(
            cfg,
            spec,
            queues,
            move |_worker| {
                let process = Arc::clone(&process);
                move |q: usize, burst: &mut Vec<T>| process(q, burst)
            },
            hub,
        )
    }

    /// [`Metronome::start_discipline`] with a *per-worker* process
    /// factory: `make_process(worker)` is called once per spawned worker
    /// and the returned `FnMut` closure is moved onto that worker's
    /// thread. This is how per-thread state rides into the hot path with
    /// no synchronization — e.g. each worker owning its own mempool cache
    /// for lock-free buffer recycling.
    pub fn start_discipline_scoped<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            |_worker| NullSink,
            |_| NullTrace,
        )
    }

    /// [`Metronome::start_discipline_scoped`] with telemetry. The hub
    /// must have one worker slot per spawned worker (`spec.workers(...)`)
    /// and `cfg.n_queues` queue slots.
    pub fn start_discipline_scoped_with_telemetry<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        assert_eq!(
            hub.n_workers(),
            spec.workers(cfg.m_threads, cfg.n_queues),
            "hub/config worker mismatch"
        );
        assert_eq!(hub.n_queues(), cfg.n_queues, "hub/config queue mismatch");
        let hub = Arc::clone(hub);
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            move |worker| hub.worker_sink(worker),
            |_| NullTrace,
        )
    }

    /// [`Metronome::start_discipline_scoped_with_telemetry`] with
    /// flight-recorder tracing: each worker additionally records compact
    /// binary events (turn verdicts, sleep precision, park/unpark,
    /// drained bursts) into its own lock-free ring inside `trace`, plus
    /// wake-latency and oversleep histograms. The trace hub must have at
    /// least one recorder slot per spawned worker; slots beyond the
    /// worker count stay empty (callers may reserve extras for
    /// control-plane markers).
    pub fn start_discipline_scoped_traced<P>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        make_process: impl FnMut(usize) -> P,
        hub: &Arc<TelemetryHub>,
        trace: &Arc<TraceHub>,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
    {
        let workers = spec.workers(cfg.m_threads, cfg.n_queues);
        assert_eq!(hub.n_workers(), workers, "hub/config worker mismatch");
        assert_eq!(hub.n_queues(), cfg.n_queues, "hub/config queue mismatch");
        assert!(
            trace.n_recorders() >= workers,
            "trace hub has {} recorder slots for {workers} workers",
            trace.n_recorders()
        );
        let hub = Arc::clone(hub);
        let trace = Arc::clone(trace);
        Self::start_with_sinks(
            cfg,
            spec,
            queues,
            make_process,
            move |worker| hub.worker_sink(worker),
            move |worker| trace.recorder(worker),
        )
    }

    /// Shared spawn path: `make_process` builds each worker's owned
    /// process closure, `make_sink` its telemetry view ([`NullSink`] when
    /// telemetry is off, so the plain-`start` worker monomorphizes to the
    /// pre-telemetry loop) and `make_tracer` its flight-recorder view
    /// ([`NullTrace`] when tracing is off — the untraced worker
    /// monomorphizes to a loop with zero record-path cost).
    fn start_with_sinks<P, S, R>(
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        queues: Vec<Q>,
        mut make_process: impl FnMut(usize) -> P,
        make_sink: impl Fn(usize) -> S,
        make_tracer: impl Fn(usize) -> R,
    ) -> Self
    where
        P: FnMut(usize, &mut Vec<T>) + Send + 'static,
        S: TelemetrySink + Send + 'static,
        R: TraceSink + Send + 'static,
    {
        cfg.validate().expect("invalid Metronome configuration");
        assert_eq!(queues.len(), cfg.n_queues, "queue count mismatch");
        let shared = SharedState::new(&cfg);
        let stop = Arc::new(AtomicBool::new(false));
        let sleeper = PreciseSleeper::default();
        let label = spec.kind().label();
        let mut handles = Vec::new();
        for worker in 0..spec.workers(cfg.m_threads, cfg.n_queues) {
            // The same RealtimeBackend the single-threaded harness hands
            // out (the parity test drives exactly this substrate), with
            // this worker's own process closure moved onto its thread.
            let backend =
                RealtimeBackend::new(queues.clone(), Arc::clone(&shared), make_process(worker));
            let stop = Arc::clone(&stop);
            let sink = make_sink(worker);
            let tracer = make_tracer(worker);
            let discipline = spec.build(worker, cfg.n_queues, cfg.burst, &shared.doorbells);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{label}-{worker}"))
                    .spawn(move || run_worker(discipline, backend, sleeper, sink, tracer, &stop))
                    .expect("spawn retrieval worker"),
            );
        }
        Metronome {
            queues,
            stop,
            handles,
            shared,
            cfg,
            _item: PhantomData,
        }
    }

    /// The Rx queues (for producers to push into).
    pub fn queues(&self) -> &[Q] {
        &self.queues
    }

    /// Queue `q`'s wake-up doorbell. A producer feeding an InterruptLike
    /// worker set must ring it after enqueuing (once per burst); for the
    /// other disciplines ringing is harmless and ignored.
    pub fn doorbell(&self, q: usize) -> &Arc<Doorbell> {
        &self.shared.doorbells[q]
    }

    /// Items processed so far on a queue.
    pub fn processed(&self, queue: usize) -> u64 {
        self.shared.processed[queue].load(Ordering::Relaxed)
    }

    /// Current smoothed load estimate of a queue.
    pub fn rho(&self, queue: usize) -> f64 {
        self.shared.controller.lock().rho(queue)
    }

    /// Current adaptive TS of a queue.
    pub fn ts(&self, queue: usize) -> Nanos {
        self.shared.controller.lock().ts(queue)
    }

    /// Stop all workers and collect final statistics.
    pub fn stop(self) -> RealtimeStats {
        self.stop.store(true, Ordering::Relaxed);
        let policies = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        collect_stats(&self.shared, self.cfg.n_queues, policies)
    }
}

/// Drive one retrieval discipline with real sleeps, spins and doorbell
/// parks until `stop` is raised.
///
/// This is the whole worker body: the protocol lives in the discipline's
/// [`RetrievalDiscipline::turn`]; here we only execute the verdicts it
/// yields. Busy/sleep accounting happens at verdict boundaries (never per
/// packet); spans of a worker that never reaches a sleep/park boundary —
/// a spinning busy poller, or any discipline held in a long drain streak
/// by sustained load — are flushed every `SPAN_FLUSH_MASK + 1` turns so
/// windowed duty-cycle sampling stays live without an `Instant` read per
/// turn.
///
/// `tracer` is the worker's flight-recorder view. It sees every verdict,
/// every sleep with its requested/actual/oversleep split (exactly the
/// values the telemetry sink is fed, so trace histograms reconcile with
/// hub counters), every park/unpark with the wake-to-first-poll latency,
/// and — via the [`TracedSink`] wrapper around `sink` — every drained
/// burst the discipline reports. With [`NullTrace`] all of it
/// monomorphizes away.
fn run_worker<B, D, S, R>(
    mut discipline: D,
    mut backend: B,
    sleeper: PreciseSleeper,
    sink: S,
    tracer: R,
    stop: &AtomicBool,
) -> ThreadPolicy
where
    B: Backend,
    D: RetrievalDiscipline,
    S: TelemetrySink,
    R: TraceSink,
{
    /// Boundary-less turns (empty spins or non-empty drains) between
    /// busy-span flushes.
    const SPAN_FLUSH_MASK: u32 = 0x3F;

    // Mirror discipline-internal `retrieved` reports into burst trace
    // events (1:1 with the hub's `bursts` counter by construction).
    let sink = TracedSink::new(sink, &tracer);
    let mut awake_since = Instant::now();
    let mut streak: u32 = 0;
    // Set when a park wake was just recorded; consumed at the top of the
    // next turn as the wake-to-first-poll latency.
    let mut woke_at: Option<Instant> = None;
    loop {
        if let Some(woke) = woke_at.take() {
            tracer.first_poll(Nanos(woke.elapsed().as_nanos() as u64));
        }
        match discipline.turn(&mut backend, &sink) {
            // Real cycles were already spent doing the step; flush the
            // running busy span periodically so a saturated worker's duty
            // cycle shows up in the window it was earned, not in one
            // spike at the streak's end.
            Verdict::Continue => {
                tracer.turn_verdict(TraceVerdict::Continue);
                streak = streak.wrapping_add(1);
                if streak & SPAN_FLUSH_MASK == 0 {
                    sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                    awake_since = Instant::now();
                }
            }
            Verdict::Yield => {
                tracer.turn_verdict(TraceVerdict::Yield);
                // Spin boundary (busy polling): no queue lock is held, so
                // exiting here cannot strand anything.
                if stop.load(Ordering::Relaxed) {
                    sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                    return discipline.into_policy();
                }
                streak = streak.wrapping_add(1);
                if streak & SPAN_FLUSH_MASK == 0 {
                    sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                    awake_since = Instant::now();
                }
                std::hint::spin_loop();
            }
            Verdict::Sleep(dur) => {
                tracer.turn_verdict(TraceVerdict::Sleep);
                sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                // Sleep points are turn boundaries: the queue lock is never
                // held here, so exiting now cannot strand a TryLock or drop
                // an in-flight renewal cycle mid-drain.
                if stop.load(Ordering::Relaxed) {
                    return discipline.into_policy();
                }
                if !dur.is_zero() {
                    let slept_from = Instant::now();
                    let oversleep = sleeper.sleep(Duration::from_nanos(dur.as_nanos()));
                    let measured = Nanos(slept_from.elapsed().as_nanos() as u64);
                    let over = Nanos(oversleep.as_nanos() as u64);
                    sink.slept(measured);
                    sink.overslept(over);
                    // Same values the sink just saw: the trace oversleep
                    // histogram's sum equals the hub's oversleep counter.
                    tracer.sleep(dur, measured, over);
                }
                awake_since = Instant::now();
            }
            Verdict::Wait(dur) => {
                tracer.turn_verdict(TraceVerdict::Wait);
                // Start-up stagger: an exact idle wait with no oversleep
                // semantics (and none recorded — the trace event carries a
                // zero oversleep, keeping histogram sums reconciled).
                sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                if stop.load(Ordering::Relaxed) {
                    return discipline.into_policy();
                }
                if !dur.is_zero() {
                    let slept_from = Instant::now();
                    sleeper.sleep(Duration::from_nanos(dur.as_nanos()));
                    let measured = Nanos(slept_from.elapsed().as_nanos() as u64);
                    sink.slept(measured);
                    tracer.sleep(dur, measured, Nanos::ZERO);
                }
                awake_since = Instant::now();
            }
            Verdict::Park(token) => {
                tracer.turn_verdict(TraceVerdict::Park);
                sink.busy(Nanos(awake_since.elapsed().as_nanos() as u64));
                tracer.park();
                let parked_from = Instant::now();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        sink.slept(Nanos(parked_from.elapsed().as_nanos() as u64));
                        return discipline.into_policy();
                    }
                    if token.wait(PARK_STOP_CHECK) {
                        break;
                    }
                }
                let parked = Nanos(parked_from.elapsed().as_nanos() as u64);
                sink.slept(parked);
                tracer.unpark(parked);
                woke_at = Some(Instant::now());
                awake_since = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleeper_hits_deadline() {
        let s = PreciseSleeper::default();
        for req_us in [50u64, 200, 1_000] {
            let req = Duration::from_micros(req_us);
            let t0 = Instant::now();
            s.sleep(req);
            let actual = t0.elapsed();
            assert!(actual >= req, "woke early: {actual:?} < {req:?}");
            // Generous bound for shared CI machines.
            assert!(
                actual < req + Duration::from_millis(20),
                "woke far too late: {actual:?} for request {req:?}"
            );
        }
    }

    #[test]
    fn processes_everything_exactly_once() {
        let cfg = MetronomeConfig {
            m_threads: 3,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<u64>::new(4096)))
            .collect();
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let m = {
            let seen = Arc::clone(&seen);
            let sum = Arc::clone(&sum);
            Metronome::start(cfg, queues.clone(), move |_q, burst: &mut Vec<u64>| {
                for item in burst.drain(..) {
                    seen.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(item, Ordering::Relaxed);
                }
            })
        };
        // Feed 10k items split across queues.
        let n: u64 = 10_000;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        // Wait for drain (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "lost or stalled items");
        assert_eq!(
            sum.load(Ordering::Relaxed),
            n * (n - 1) / 2,
            "duplicated items"
        );
        assert_eq!(stats.total_processed(), n);
        assert_eq!(stats.wakes.len(), 3);
    }

    #[test]
    fn adaptation_reacts_to_idle() {
        // With no traffic the estimator must stay at/near zero and TS at
        // its maximal (M·V̄ for single queue) value.
        let cfg = MetronomeConfig::default(); // M=3, N=1, V̄=10µs
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = Metronome::start(cfg.clone(), queues, |_q, _i| {});
        std::thread::sleep(Duration::from_millis(300));
        let rho = m.rho(0);
        let ts = m.ts(0);
        let stats = m.stop();
        assert!(rho < 0.2, "idle rho {rho}");
        // TS near M·V̄ = 30µs.
        assert!(
            ts >= Nanos::from_micros(20),
            "idle TS {ts} should be near M·V̄"
        );
        assert!(stats.total_processed() == 0);
        // Threads were actually waking and racing.
        assert!(stats.wakes.iter().sum::<u64>() > 100);
    }

    #[test]
    fn stop_counters_include_the_final_drain() {
        // Stop while workers are mid-turn: a worker only observes the flag
        // at its next sleep boundary, so it finishes draining first — and
        // stop() must report those packets. With a slow processor the
        // final drain is long, which made the old snapshot-before-join
        // bookkeeping visibly undercount.
        let cfg = MetronomeConfig {
            m_threads: 2,
            ..MetronomeConfig::default()
        };
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(1024))];
        let m = Metronome::start(cfg, queues.clone(), |_q, burst: &mut Vec<u64>| {
            // 50 µs of spinning per item, so the final drain is long.
            for _ in burst.drain(..) {
                let t0 = Instant::now();
                while t0.elapsed() < Duration::from_micros(50) {
                    std::hint::spin_loop();
                }
            }
        });
        let n = 512u64;
        for i in 0..n {
            let _ = queues[0].push(i);
        }
        // Give a worker time to win the race and get deep into the burst.
        std::thread::sleep(Duration::from_millis(5));
        let stats = m.stop();
        let mut leftover = 0u64;
        while queues[0].pop().is_some() {
            leftover += 1;
        }
        assert_eq!(
            stats.total_processed() + leftover,
            n,
            "stop() lost the packets processed during the final drain"
        );
    }

    #[test]
    fn stats_expose_race_outcomes() {
        let cfg = MetronomeConfig::default();
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = Metronome::start(cfg, queues, |_q, _i| {});
        std::thread::sleep(Duration::from_millis(200));
        let stats = m.stop();
        let won: u64 = stats.races_won.iter().sum();
        assert!(won > 0, "nobody ever acquired the queue");
        assert_eq!(stats.rho.len(), 1);
        assert_eq!(stats.ts.len(), 1);
        let ctrl = stats.controller.expect("controller snapshot");
        assert_eq!(ctrl.queue(0).total_tries, won);
    }

    #[test]
    fn telemetry_hub_tracks_a_realtime_run() {
        let cfg = MetronomeConfig {
            m_threads: 2,
            n_queues: 1,
            ..MetronomeConfig::default()
        };
        let hub = TelemetryHub::new(2, 1);
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(1024))];
        let m = Metronome::start_with_telemetry(
            cfg,
            queues.clone(),
            |_q, burst: &mut Vec<u64>| {
                burst.drain(..);
            },
            &hub,
        );
        let n = 2_000u64;
        for i in 0..n {
            let mut item = i;
            loop {
                match m.queues()[0].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while m.processed(0) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        // The hub saw exactly what the engine processed and how often the
        // workers woke — same events, counted on two independent paths.
        assert_eq!(hub.total_retrieved(), stats.total_processed());
        assert_eq!(hub.total_wakeups(), stats.wakes.iter().sum::<u64>());
        // Busy/sleep spans were measured and the TS gauge is live.
        assert!(hub.worker(0).busy_nanos.load(Ordering::Relaxed) > 0);
        assert!(
            hub.worker(0).sleep_nanos.load(Ordering::Relaxed)
                + hub.worker(1).sleep_nanos.load(Ordering::Relaxed)
                > 0
        );
        assert!(hub.queue(0).ts_ns.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn precise_sleeper_reports_oversleep() {
        let s = PreciseSleeper::with_spin_threshold(Duration::from_micros(200));
        let req = Duration::from_micros(300);
        let t0 = Instant::now();
        let over = s.sleep(req);
        let actual = t0.elapsed();
        // The report must equal the measured lateness (within the cost of
        // the two Instant reads).
        assert!(actual >= req);
        assert!(
            over <= actual.saturating_sub(req) + Duration::from_micros(50),
            "oversleep {over:?} inconsistent with actual {actual:?}"
        );
    }

    #[test]
    fn traced_run_reconciles_with_hub_counters() {
        let cfg = MetronomeConfig {
            m_threads: 2,
            n_queues: 1,
            ..MetronomeConfig::default()
        };
        let hub = TelemetryHub::new(2, 1);
        let trace = Arc::new(TraceHub::new(2, 4096));
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(1024))];
        let m = Metronome::start_discipline_scoped_traced(
            cfg,
            DisciplineSpec::Metronome,
            queues.clone(),
            |_worker| {
                |_q: usize, burst: &mut Vec<u64>| {
                    burst.drain(..);
                }
            },
            &hub,
            &trace,
        );
        let n = 2_000u64;
        for i in 0..n {
            let mut item = i;
            loop {
                match m.queues()[0].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while m.processed(0) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        m.stop();
        let dump = trace.dump();
        // Every worker recorded something.
        assert!(dump.total_events() > 0);
        for w in &dump.workers {
            assert!(
                w.events.len() as u64 + w.dropped > 0,
                "worker {} recorded nothing",
                w.worker
            );
        }
        // Burst trace events mirror the hub's bursts counter 1:1, and the
        // trace oversleep histogram sums to the hub's oversleep counter —
        // same events, counted on two independent paths.
        use metronome_telemetry::TraceEventKind;
        assert_eq!(
            dump.kind_count(TraceEventKind::Burst),
            hub.queue(0).bursts.load(Ordering::Relaxed),
            "burst events must reconcile with the hub counter"
        );
        let hub_oversleep: u64 = (0..2)
            .map(|w| hub.worker(w).oversleep_nanos.load(Ordering::Relaxed))
            .sum();
        assert_eq!(dump.oversleep().sum(), hub_oversleep as u128);
        // Metronome workers sleep between turns: sleep events carry the
        // requested-vs-actual split.
        assert!(dump.kind_count(TraceEventKind::Sleep) > 0);
    }

    /// Run one baseline discipline end-to-end on real threads: feed items,
    /// assert exactly-once processing, return the final stats.
    fn run_discipline_once(spec: DisciplineSpec, ring: bool) -> RealtimeStats {
        let cfg = MetronomeConfig {
            m_threads: 2,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(ArrayQueue::<u64>::new(4096)))
            .collect();
        let seen = Arc::new(AtomicU64::new(0));
        let m = {
            let seen = Arc::clone(&seen);
            Metronome::start_discipline(
                cfg,
                spec,
                queues.clone(),
                move |_q, burst: &mut Vec<u64>| {
                    seen.fetch_add(burst.drain(..).count() as u64, Ordering::Relaxed);
                },
            )
        };
        let n: u64 = 4_000;
        for i in 0..n {
            let q = (i % 2) as usize;
            let mut item = i;
            loop {
                match m.queues()[q].push(item) {
                    Ok(()) => break,
                    Err(v) => {
                        item = v;
                        std::thread::yield_now();
                    }
                }
            }
            if ring && i % 32 == 0 {
                m.doorbell(q).ring();
            }
        }
        if ring {
            m.doorbell(0).ring();
            m.doorbell(1).ring();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while seen.load(Ordering::Relaxed) < n && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = m.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "lost or stalled items");
        assert_eq!(stats.total_processed(), n);
        stats
    }

    #[test]
    fn busy_poll_discipline_processes_on_real_threads() {
        let stats = run_discipline_once(DisciplineSpec::BusyPoll, false);
        // Busy pollers never sleep, so they record no wakes.
        assert_eq!(stats.wakes.iter().sum::<u64>(), 0);
        assert_eq!(stats.processed.len(), 2);
    }

    #[test]
    fn const_sleep_discipline_processes_on_real_threads() {
        let stats = run_discipline_once(DisciplineSpec::ConstSleep(Nanos::from_micros(200)), false);
        // Fixed-period retrieval wakes on its timer.
        assert!(stats.wakes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn interrupt_discipline_parks_and_wakes_on_doorbell() {
        let stats = run_discipline_once(
            DisciplineSpec::InterruptLike(crate::discipline::ModerationConfig::default()),
            true,
        );
        // Every retrieval episode was interrupt-initiated.
        assert!(stats.wakes.iter().sum::<u64>() > 0);
    }

    #[test]
    fn interrupt_discipline_stop_while_parked_exits() {
        // No traffic, no rings: both workers park. stop() must still join
        // them promptly via the bounded doorbell wait.
        let cfg = MetronomeConfig {
            m_threads: 1,
            n_queues: 1,
            ..MetronomeConfig::default()
        };
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(64))];
        let m = Metronome::start_discipline(
            cfg,
            DisciplineSpec::InterruptLike(crate::discipline::ModerationConfig::default()),
            queues,
            |_q, _b: &mut Vec<u64>| {},
        );
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        let stats = m.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "parked worker did not observe stop"
        );
        assert_eq!(stats.total_processed(), 0);
    }

    #[test]
    fn backend_is_drivable_single_threaded() {
        // The Backend surface must be usable without spawning threads —
        // this is what the sim-vs-realtime parity test leans on.
        let queues = vec![Arc::new(ArrayQueue::<u64>::new(16))];
        let harness = RealtimeHarness::new(
            MetronomeConfig::default(),
            queues.clone(),
            |_q, _burst: &mut Vec<u64>| {},
        );
        let mut b = harness.backend();
        queues[0].push(7).unwrap();
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0), "second acquire must lose the race");
        assert_eq!(b.rx_burst(0, 32), 1);
        let ts = b.release(0);
        assert!(!ts.is_zero(), "release must return the adaptive TS");
        assert!(b.try_acquire(0), "released lock must be re-acquirable");
        b.release(0);
        assert_eq!(harness.processed(0), 1);
        assert_eq!(harness.total_tries(0), 2);
        assert_eq!(harness.busy_tries(0), 1);
    }
}
