//! The receive-queue capability: what a retrieval worker drains.
//!
//! The protocol layer does not care what the Rx queue *is* — a locked
//! MPMC queue, a lock-free SPSC ring, a test double — only that a worker
//! can pop a burst from it. [`RxQueue`] is that seam: `metronome-core`
//! stays free of any dependency on the DPDK-like substrate, and the
//! runtime plugs in `metronome-dpdk`'s ring consumers (via a newtype)
//! while unit tests keep using plain `ArrayQueue`s.

use crossbeam::queue::ArrayQueue;
use std::sync::Arc;

/// A consumer handle on a bounded multi-thread Rx queue.
///
/// Handles are cheap to clone and shareable; every clone drains the same
/// queue. Implementations must tolerate any number of concurrent poppers
/// *without corruption* — serializing them (a lock, a consumer guard) is
/// fine, since the retrieval disciplines already ensure one consumer per
/// queue at a time.
pub trait RxQueue<T>: Clone + Send + Sync + 'static {
    /// Pop the oldest item, if any.
    fn pop(&self) -> Option<T>;

    /// Items currently queued (racy snapshot).
    fn len(&self) -> usize;

    /// True if nothing is queued (racy snapshot).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop up to `max` items into `out` (appended), returning how many
    /// were taken. Implementations with a batched dequeue (one index
    /// update per burst) should override this per-item default.
    fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0usize;
        while taken < max {
            match self.pop() {
                Some(item) => {
                    out.push(item);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }
}

impl<T: Send + 'static> RxQueue<T> for Arc<ArrayQueue<T>> {
    fn pop(&self) -> Option<T> {
        ArrayQueue::pop(self)
    }

    fn len(&self) -> usize {
        ArrayQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        ArrayQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_queue_satisfies_the_capability() {
        let q = Arc::new(ArrayQueue::new(8));
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(RxQueue::len(&q), 5);
        assert!(!RxQueue::is_empty(&q));
        let mut out = Vec::new();
        assert_eq!(q.pop_burst(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.pop_burst(&mut out, 8), 2);
        assert_eq!(RxQueue::pop(&q), None);
        assert!(RxQueue::is_empty(&q));
    }
}
