//! The user-space `trylock()` race primitive.
//!
//! Paper §III-B: "we implemented the race resolution protocol purely at
//! user space via atomic Read-Modify-Write instructions, in particular the
//! CMPXCHG instruction on x86 processors, which has been exploited to build
//! a lightweight trylock() service." Rust's
//! `AtomicBool::compare_exchange` compiles to exactly that instruction on
//! x86-64; the lock is intentionally *non-blocking-only* — there is no
//! contended path, no futex, no parking. A loser immediately goes back to
//! sleep, which is the whole point of the protocol.

use std::sync::atomic::{AtomicBool, Ordering};

/// A non-blocking queue-ownership lock.
///
/// Unlike a mutex there is no blocking acquire: callers either win the
/// CMPXCHG race or give up instantly.
#[derive(Debug, Default)]
pub struct TryLock {
    locked: AtomicBool,
}

impl TryLock {
    /// New unlocked lock.
    pub const fn new() -> Self {
        TryLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Attempt to take the lock. Returns `true` on success. Never blocks.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Release the lock. The caller must hold it (checked in debug builds).
    #[inline]
    pub fn unlock(&self) {
        let was = self.locked.swap(false, Ordering::Release);
        debug_assert!(was, "unlock of an unheld TryLock");
    }

    /// Non-atomically observe whether the lock is currently held
    /// (diagnostics only — the answer may be stale immediately).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic_acquire_release() {
        let l = TryLock::new();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        assert!(l.is_locked());
        assert!(!l.try_lock(), "second acquire must fail");
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn exactly_one_winner_per_race() {
        // N threads race repeatedly; every round exactly one must win.
        let lock = Arc::new(TryLock::new());
        let wins = Arc::new(AtomicU64::new(0));
        let in_critical = Arc::new(AtomicU64::new(0));
        let rounds = 2_000u64;
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let wins = Arc::clone(&wins);
            let crit = Arc::clone(&in_critical);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                for _ in 0..rounds {
                    barrier.wait();
                    if lock.try_lock() {
                        // Mutual exclusion: we must be alone here.
                        assert_eq!(crit.fetch_add(1, Ordering::SeqCst), 0);
                        wins.fetch_add(1, Ordering::Relaxed);
                        crit.fetch_sub(1, Ordering::SeqCst);
                        lock.unlock();
                    }
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let w = wins.load(Ordering::Relaxed);
        // At least one winner per round (the first CAS always succeeds)...
        // exactly-one is enforced by the unlock happening before the second
        // barrier, so wins ∈ [rounds, 4*rounds] but mutual exclusion held.
        assert!(w >= rounds, "wins {w} < rounds {rounds}");
    }

    #[test]
    #[should_panic(expected = "unheld")]
    #[cfg(debug_assertions)]
    fn double_unlock_caught_in_debug() {
        let l = TryLock::new();
        l.unlock();
    }
}
