//! `metronomed` — run the Metronome pipeline as a service.
//!
//! ```text
//! metronomed [--socket PATH] [--http ADDR] [--queues N] [--ring N] [--pool N] [--seed N]
//! ```
//!
//! Control it over the socket with line-delimited JSON (one command per
//! line — see `crates/daemon/src/protocol.rs` for the full grammar):
//!
//! ```text
//! printf '%s\n' '{"cmd":"submit","name":"demo","rate_pps":200000}' | nc -U /tmp/metronomed.sock
//! curl http://127.0.0.1:9184/metrics
//! printf '%s\n' '{"cmd":"shutdown"}' | nc -U /tmp/metronomed.sock
//! ```

use metronome_daemon::{ControlServer, DaemonConfig, MetricsServer, ServiceEngine};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

struct Args {
    socket: PathBuf,
    http: String,
    cfg: DaemonConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: metronomed [--socket PATH] [--http ADDR] [--queues N] [--ring N] [--pool N] [--seed N]\n\
         \n\
         defaults: --socket /tmp/metronomed.sock --http 127.0.0.1:9184 --queues 2 --ring 512"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: PathBuf::from("/tmp/metronomed.sock"),
        http: "127.0.0.1:9184".to_string(),
        cfg: DaemonConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_missing(name));
        match flag.as_str() {
            "--socket" => args.socket = PathBuf::from(value("--socket")),
            "--http" => args.http = value("--http"),
            "--queues" => args.cfg.n_queues = parse_num(&value("--queues"), "--queues"),
            "--ring" => args.cfg.ring_size = parse_num(&value("--ring"), "--ring"),
            "--pool" => args.cfg.pool_population = Some(parse_num(&value("--pool"), "--pool")),
            "--seed" => args.cfg.seed = parse_num(&value("--seed"), "--seed") as u64,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("metronomed: unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn usage_missing(name: &str) -> ! {
    eprintln!("metronomed: {name} needs a value");
    usage()
}

fn parse_num(s: &str, name: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("metronomed: {name} expects a number, got {s:?}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let engine = Arc::new(ServiceEngine::new(args.cfg));
    let metrics = match MetricsServer::start(&args.http, Arc::clone(&engine)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("metronomed: cannot bind {}: {e}", args.http);
            exit(1)
        }
    };
    let control = match ControlServer::start(&args.socket, Arc::clone(&engine)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("metronomed: cannot bind {}: {e}", args.socket.display());
            exit(1)
        }
    };
    println!("metronomed: control socket at {}", args.socket.display());
    println!("metronomed: metrics at http://{}/metrics", metrics.addr());
    println!("metronomed: send {{\"cmd\":\"shutdown\"}} to exit");
    // The process lives until a `shutdown` command flips the engine's
    // flag and both accept loops drain (no signal handling: the control
    // socket *is* the lifecycle interface).
    control.join();
    metrics.join();
}
