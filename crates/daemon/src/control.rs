//! The Unix-domain control socket: line-delimited JSON requests in,
//! line-delimited JSON replies out (see [`crate::protocol`]).
//!
//! The accept loop runs nonblocking with a short poll so it can notice
//! the engine's shutdown flag; each accepted connection gets its own
//! thread. A connection thread reads with a timeout for the same reason
//! — after shutdown it lingers briefly (still answering, which is what
//! makes double-`shutdown` on one connection idempotent) and then hangs
//! up.

use crate::service::ServiceEngine;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accept-loop poll period (shutdown latency bound).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-read timeout on connections (shutdown check cadence).
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// How long an idle connection keeps being served after shutdown.
const SHUTDOWN_LINGER: Duration = Duration::from_secs(1);

/// The control-socket server: owns the listening socket and its accept
/// thread; removes the socket file when the accept loop exits.
pub struct ControlServer {
    path: PathBuf,
    accept: std::thread::JoinHandle<()>,
}

impl ControlServer {
    /// Bind `path` (replacing any stale socket file) and start serving
    /// `engine`. The accept loop exits once the engine reports shutdown.
    pub fn start(path: &Path, engine: Arc<ServiceEngine>) -> std::io::Result<ControlServer> {
        // A daemon that crashed leaves its socket file behind; binding
        // over it is the expected restart behavior.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let sock_path = path.to_path_buf();
        let accept = std::thread::Builder::new()
            .name("metronomed-accept".into())
            .spawn(move || {
                loop {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            let engine = Arc::clone(&engine);
                            let _ = std::thread::Builder::new()
                                .name("metronomed-conn".into())
                                .spawn(move || serve_connection(stream, &engine));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if engine.is_shutdown() {
                                break;
                            }
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => break,
                    }
                }
                let _ = std::fs::remove_file(&sock_path);
            })
            .expect("spawn control accept thread");
        Ok(ControlServer {
            path: path.to_path_buf(),
            accept,
        })
    }

    /// The socket path being served.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Block until the accept loop exits (i.e. until shutdown).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Serve one connection until EOF, error, or post-shutdown linger
/// expiry. One request line → one reply line, always — malformed input
/// gets a typed error reply and the connection (and daemon) stay up.
fn serve_connection(stream: UnixStream, engine: &ServiceEngine) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    let mut shutdown_seen: Option<Instant> = None;
    loop {
        // `line` is NOT cleared on timeout: a read that timed out mid-line
        // has already consumed the partial bytes, and the next read must
        // append to them, not discard them.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let reply = engine.dispatch(line.trim());
                    if writer.write_all(reply.render().as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err()
                        || writer.flush().is_err()
                    {
                        break;
                    }
                }
                line.clear();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if engine.is_shutdown() {
                    let seen = *shutdown_seen.get_or_insert_with(Instant::now);
                    if seen.elapsed() > SHUTDOWN_LINGER {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
}
