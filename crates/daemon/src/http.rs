//! A minimal HTTP/1.1 listener serving the telemetry crate's Prometheus
//! text exposition on `GET /metrics` — just enough protocol for a real
//! `prometheus` scrape job or `curl`, hand-rolled because the vendored
//! build has no HTTP dependency. Every response closes the connection.

use crate::service::ServiceEngine;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Accept-loop poll period (shutdown latency bound).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Most generous request head we read before answering.
const MAX_HEAD: usize = 4096;

/// The metrics listener: owns the TCP socket and its accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// `engine`'s snapshot on `/metrics` until the engine shuts down.
    pub fn start(addr: &str, engine: Arc<ServiceEngine>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let accept = std::thread::Builder::new()
            .name("metronomed-http".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => serve_request(stream, &engine),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if engine.is_shutdown() {
                            break;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            })
            .expect("spawn http accept thread");
        Ok(MetricsServer {
            addr: local,
            accept,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the accept loop exits (i.e. until shutdown).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Answer one request on `stream` and close. Requests are served inline
/// on the accept thread — a scrape is rare and the snapshot is cheap, so
/// one connection at a time is plenty.
fn serve_request(mut stream: TcpStream, engine: &ServiceEngine) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head; the request line is all we
    // route on, but a client that sends headers must have them consumed
    // before some stacks will read the response.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_HEAD {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, target) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            engine.prometheus_text(),
        ),
        ("GET", "/healthz") => (
            "200 OK",
            "application/json; charset=utf-8",
            {
                let mut body = engine.health_json().render();
                body.push('\n');
                body
            },
        ),
        ("GET", "/") => (
            "200 OK",
            "text/plain; charset=utf-8",
            "metronomed\n\nendpoints:\n  GET /metrics  Prometheus text exposition\n  GET /healthz  liveness + engine state (JSON)\n"
                .to_string(),
        ),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
