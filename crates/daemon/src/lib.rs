//! `metronomed` — Metronome's realtime pipeline as a long-running
//! service.
//!
//! The batch runners (`metronome_runtime::run` / `run_realtime`) execute
//! one scenario and exit; this crate keeps the pipeline resident behind
//! two listeners:
//!
//! * a **Unix-domain control socket** speaking line-delimited JSON
//!   ([`protocol`]): submit a scenario, reconfigure its rate / discipline
//!   / `M` live (no restart — the worker set re-arms over the same rings
//!   with counters folded so exported totals stay monotone), read stats,
//!   drain, shut down;
//! * an **HTTP listener** ([`http`]) serving the telemetry crate's
//!   Prometheus text exposition on `GET /metrics`, scrapeable mid-run.
//!
//! Scenarios may carry a [`metronome_traffic::FaultPlan`]; the engine
//! ([`service`]) realizes rate spikes, queue stalls, pool starvation,
//! and jitter bursts against the live pipeline, with every suppressed
//! packet counted by cause so conservation stays exact through any fault
//! schedule. Drain audits the mempool (`in_use == 0`, `cached == 0`,
//! `allocs == frees`) before reporting — a leaked buffer is a failed
//! drain, not a silent loss.
//!
//! ```text
//!  UnixListener ──lines──▶ protocol::Request ─▶ ServiceEngine ─▶ reply line
//!                                                │
//!                              generator thread ─┤ rate spikes / jitter / starvation
//!                              worker set (re-armable) ─ stall pauses
//!                                                │
//!  TcpListener ──GET /metrics──▶ snapshot ─▶ Prometheus text
//! ```

pub mod control;
pub mod http;
pub mod protocol;
pub mod service;

pub use control::ControlServer;
pub use http::MetricsServer;
pub use protocol::{DisciplineChoice, ReconfigureSpec, Request, SubmitSpec};
pub use service::{DaemonConfig, ServiceEngine};
