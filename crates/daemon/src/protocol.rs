//! The `metronomed` control-socket wire protocol: line-delimited JSON.
//!
//! Every request is one JSON object on one line, dispatched on its
//! `"cmd"` field; every reply is one JSON object on one line carrying
//! `"ok": true` plus command-specific fields, or `"ok": false` with an
//! `"error"` string. Parsing goes through the telemetry crate's
//! hand-rolled [`Json`] reader (the vendored build has no serde), and a
//! malformed request is a **typed error reply, never a panic** — the
//! daemon must outlive hostile input on its socket.
//!
//! Commands:
//!
//! | `cmd`         | fields                                                        | effect |
//! |---------------|---------------------------------------------------------------|--------|
//! | `ping`        | —                                                             | liveness probe; replies with the engine state |
//! | `submit`      | `name`, `rate_pps`, `discipline`, `m?`, `seed?`, `faults?`, `exec?`, `shards?`, `ring_path?`, `trace?`, `gen_shards?` | start a scenario on the persistent pipeline |
//! | `reconfigure` | any of `rate_pps`, `discipline`, `m`, `exec` (+ `shards`), `gen_shards` | live-adjust the running scenario (no restart) |
//! | `stats`       | —                                                             | cumulative counters (monotone across reconfigures) |
//! | `trace`       | `path?`                                                       | dump the flight recorder: summary inline, Chrome trace JSON inline or to `path` |
//! | `drain`       | —                                                             | stop generating, drain rings, audit the pool; stay up |
//! | `shutdown`    | —                                                             | drain (if running) and exit; idempotent |
//!
//! `exec` selects the worker backend: `"threads"` (one OS thread per
//! worker, the default) or `"async"` (cooperative tasks on `shards`
//! executor threads, default 1). `ring_path` selects the Rx ring
//! synchronization (`"spsc"` default, `"mpsc"`, `"locked"`) and is
//! **submit-only**: the port persists across re-arms, so a
//! `reconfigure` naming `ring_path` is a typed error — drain and submit
//! a new scenario instead.
//!
//! `trace` (the submit field) arms the flight recorder: per-worker
//! event rings plus wake-latency/oversleep/scheduler-delay histograms.
//! It defaults to **on** (`"trace": false` opts out) — the rings are
//! fixed-capacity and the record path is allocation-free, so an armed
//! recorder costs a few nanoseconds per event, and a daemon you cannot
//! ask "what just happened?" is not much of a daemon. The `trace`
//! *command* reads it back: a summary object inline, plus the full
//! Chrome trace-event JSON either inline (no `path`) or written to
//! `path` (load it in `chrome://tracing` or Perfetto).
//!
//! Fault events (in `submit`'s `"faults"` array) mirror
//! [`metronome_traffic::FaultKind`]:
//!
//! ```json
//! {"kind": "rate-spike",   "at_ms": 100, "duration_ms": 50, "factor": 2.5}
//! {"kind": "queue-stall",  "at_ms": 200, "duration_ms": 30}
//! {"kind": "pool-starve",  "at_ms": 300, "duration_ms": 40, "fraction": 0.5}
//! {"kind": "jitter-burst", "at_ms": 400, "duration_ms": 50, "drop_prob": 0.2}
//! ```

use metronome_core::ExecBackend;
use metronome_dpdk::shared_ring::RingPath;
use metronome_sim::Nanos;
use metronome_telemetry::Json;
use metronome_traffic::{FaultKind, FaultPlan};

/// Default offered rate when `submit` does not name one (packets/s).
pub const DEFAULT_RATE_PPS: f64 = 50_000.0;

/// Retrieval discipline requested over the wire (the daemon-facing face
/// of [`metronome_core::discipline::DisciplineSpec`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DisciplineChoice {
    /// `M` trylock-racing Metronome threads (Listing 2).
    Metronome,
    /// One busy-polling worker pinned per queue.
    BusyPoll,
    /// One doorbell-parked worker per queue.
    InterruptLike,
    /// One fixed-period worker per queue.
    ConstSleep(Nanos),
}

impl DisciplineChoice {
    /// Parse a wire label (plus the `period_us` field `const-sleep`
    /// requires).
    pub fn parse(label: &str, period_us: Option<u64>) -> Result<DisciplineChoice, String> {
        match label {
            "metronome" => Ok(DisciplineChoice::Metronome),
            "busy-poll" => Ok(DisciplineChoice::BusyPoll),
            "interrupt" => Ok(DisciplineChoice::InterruptLike),
            "const-sleep" => {
                let us = period_us.ok_or("const-sleep needs \"period_us\"")?;
                if us == 0 {
                    return Err("const-sleep period must be positive".into());
                }
                Ok(DisciplineChoice::ConstSleep(Nanos::from_micros(us)))
            }
            other => Err(format!(
                "unknown discipline {other:?} (expected metronome, busy-poll, interrupt, or const-sleep)"
            )),
        }
    }

    /// The wire label (inverse of [`DisciplineChoice::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            DisciplineChoice::Metronome => "metronome",
            DisciplineChoice::BusyPoll => "busy-poll",
            DisciplineChoice::InterruptLike => "interrupt",
            DisciplineChoice::ConstSleep(_) => "const-sleep",
        }
    }
}

/// A parsed `submit` command: everything the engine needs to start a
/// scenario on its persistent pipeline.
#[derive(Clone, Debug)]
pub struct SubmitSpec {
    /// Scenario label (echoed in stats and reports).
    pub name: String,
    /// Offered rate, packets per second.
    pub rate_pps: f64,
    /// Retrieval discipline to arm.
    pub discipline: DisciplineChoice,
    /// Metronome thread count `M` (ignored by the 1:1 baselines).
    pub m_threads: usize,
    /// Seed for the generator's flow population and fault coin flips.
    pub seed: u64,
    /// Scheduled fault events (empty plan = clean run).
    pub faults: FaultPlan,
    /// Worker execution backend (OS threads or the sharded async
    /// executor).
    pub exec: ExecBackend,
    /// Rx ring synchronization path for the scenario's port.
    pub ring_path: RingPath,
    /// Arm the flight recorder (per-worker trace rings + latency
    /// histograms). Defaults to true; `"trace": false` opts out.
    pub trace: bool,
    /// Producer shard count for the load generator (`1` = the classic
    /// single generator thread). Shards split the flow population and
    /// produce concurrently onto the port's Rx rings.
    pub gen_shards: usize,
}

/// A parsed `reconfigure` command: each `Some` field is applied to the
/// running scenario, everything else is left as it is.
#[derive(Clone, Debug, Default)]
pub struct ReconfigureSpec {
    /// New offered rate, packets per second.
    pub rate_pps: Option<f64>,
    /// New retrieval discipline (re-arms the worker set).
    pub discipline: Option<DisciplineChoice>,
    /// New Metronome thread count `M` (re-arms the worker set).
    pub m_threads: Option<usize>,
    /// New execution backend (re-arms the worker set). `ring_path` has
    /// no such field on purpose: the port outlives re-arms.
    pub exec: Option<ExecBackend>,
    /// New producer shard count (re-arms the generator set).
    pub gen_shards: Option<usize>,
}

/// One parsed control request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Start a scenario.
    Submit(SubmitSpec),
    /// Live-adjust the running scenario.
    Reconfigure(ReconfigureSpec),
    /// Read cumulative counters.
    Stats,
    /// Dump the flight recorder (summary + Chrome trace JSON, written
    /// to the given path when one is named).
    Trace {
        /// Where to write the Chrome trace-event JSON; `None` returns
        /// it inline in the reply.
        path: Option<String>,
    },
    /// Stop generating, drain, audit; stay up.
    Drain,
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Parse one request line. Every malformed input — bad JSON, missing
    /// or mistyped fields, out-of-range fault parameters — comes back as
    /// `Err(message)` for the server to wrap in an error reply; nothing
    /// in here panics.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        if doc.as_obj().is_none() {
            return Err("request must be a JSON object".into());
        }
        let cmd = doc
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string field \"cmd\"")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "trace" => parse_trace(&doc),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => parse_submit(&doc),
            "reconfigure" => parse_reconfigure(&doc),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

fn field_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("missing number field {key:?}"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or(format!("missing non-negative integer field {key:?}"))
}

fn parse_discipline(doc: &Json) -> Result<Option<DisciplineChoice>, String> {
    match doc.get("discipline").and_then(Json::as_str) {
        None => Ok(None),
        Some(label) => {
            let period = doc.get("period_us").and_then(Json::as_u64);
            DisciplineChoice::parse(label, period).map(Some)
        }
    }
}

/// Parse the `exec` / `shards` pair into a backend choice. `shards`
/// without `"exec": "async"` is an error — it would silently do nothing.
fn parse_exec(doc: &Json) -> Result<Option<ExecBackend>, String> {
    let shards = match doc.get("shards") {
        None => None,
        Some(v) => {
            let s = v.as_u64().ok_or("\"shards\" must be a positive integer")? as usize;
            if s == 0 {
                return Err("\"shards\" must be positive".into());
            }
            Some(s)
        }
    };
    match doc.get("exec").and_then(Json::as_str) {
        None => match shards {
            None => Ok(None),
            Some(_) => Err("\"shards\" requires \"exec\": \"async\"".into()),
        },
        Some("threads") => match shards {
            None => Ok(Some(ExecBackend::Threads)),
            Some(_) => Err("\"shards\" requires \"exec\": \"async\"".into()),
        },
        Some("async") => Ok(Some(ExecBackend::Async {
            shards: shards.unwrap_or(1),
        })),
        Some(other) => Err(format!(
            "unknown exec backend {other:?} (expected threads or async)"
        )),
    }
}

/// Parse the optional `gen_shards` field: a positive integer, `0`
/// rejected (a generator with zero producers cannot offer anything).
fn parse_gen_shards(doc: &Json) -> Result<Option<usize>, String> {
    match doc.get("gen_shards") {
        None => Ok(None),
        Some(v) => {
            let g = v
                .as_u64()
                .ok_or("\"gen_shards\" must be a positive integer")? as usize;
            if g == 0 {
                return Err("\"gen_shards\" must be positive".into());
            }
            Ok(Some(g))
        }
    }
}

fn parse_ring_path(doc: &Json) -> Result<Option<RingPath>, String> {
    match doc.get("ring_path").and_then(Json::as_str) {
        None => match doc.get("ring_path") {
            None => Ok(None),
            Some(_) => Err("\"ring_path\" must be a string".into()),
        },
        Some("spsc") => Ok(Some(RingPath::Spsc)),
        Some("mpsc") => Ok(Some(RingPath::Mpsc)),
        Some("locked") => Ok(Some(RingPath::Locked)),
        Some(other) => Err(format!(
            "unknown ring path {other:?} (expected spsc, mpsc, or locked)"
        )),
    }
}

fn parse_trace(doc: &Json) -> Result<Request, String> {
    let path = match doc.get("path") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("\"path\" must be a string")?.to_string()),
    };
    Ok(Request::Trace { path })
}

fn parse_submit(doc: &Json) -> Result<Request, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("unnamed")
        .to_string();
    let rate_pps = match doc.get("rate_pps") {
        None => DEFAULT_RATE_PPS,
        Some(v) => v.as_f64().ok_or("\"rate_pps\" must be a number")?,
    };
    if !rate_pps.is_finite() || rate_pps < 0.0 {
        return Err("\"rate_pps\" must be finite and non-negative".into());
    }
    let discipline = parse_discipline(doc)?.unwrap_or(DisciplineChoice::Metronome);
    let m_threads = match doc.get("m") {
        None => 0, // engine default: max(n_queues, 1) for Metronome
        Some(v) => v.as_u64().ok_or("\"m\" must be a non-negative integer")? as usize,
    };
    let seed = match doc.get("seed") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or("\"seed\" must be a non-negative integer")?,
    };
    let faults = parse_faults(doc)?;
    let exec = parse_exec(doc)?.unwrap_or_default();
    let ring_path = parse_ring_path(doc)?.unwrap_or_default();
    let trace = match doc.get("trace") {
        None => true,
        Some(v) => v.as_bool().ok_or("\"trace\" must be a boolean")?,
    };
    let gen_shards = parse_gen_shards(doc)?.unwrap_or(1);
    Ok(Request::Submit(SubmitSpec {
        name,
        rate_pps,
        discipline,
        m_threads,
        seed,
        faults,
        exec,
        ring_path,
        trace,
        gen_shards,
    }))
}

fn parse_reconfigure(doc: &Json) -> Result<Request, String> {
    let rate_pps = match doc.get("rate_pps") {
        None => None,
        Some(v) => {
            let r = v.as_f64().ok_or("\"rate_pps\" must be a number")?;
            if !r.is_finite() || r < 0.0 {
                return Err("\"rate_pps\" must be finite and non-negative".into());
            }
            Some(r)
        }
    };
    let m_threads = match doc.get("m") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("\"m\" must be a non-negative integer")? as usize),
    };
    if doc.get("ring_path").is_some() {
        return Err(
            "\"ring_path\" cannot change on reconfigure (the port persists across re-arms); \
             drain and submit a new scenario"
                .into(),
        );
    }
    let spec = ReconfigureSpec {
        rate_pps,
        discipline: parse_discipline(doc)?,
        m_threads,
        exec: parse_exec(doc)?,
        gen_shards: parse_gen_shards(doc)?,
    };
    if spec.rate_pps.is_none()
        && spec.discipline.is_none()
        && spec.m_threads.is_none()
        && spec.exec.is_none()
        && spec.gen_shards.is_none()
    {
        return Err(
            "reconfigure needs at least one of \"rate_pps\", \"discipline\", \"m\", \"exec\", \
             \"gen_shards\""
                .into(),
        );
    }
    Ok(Request::Reconfigure(spec))
}

/// Parse the `"faults"` array into a [`FaultPlan`], validating every
/// parameter *before* it reaches `FaultPlan::push` (which asserts).
fn parse_faults(doc: &Json) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::new();
    let Some(list) = doc.get("faults") else {
        return Ok(plan);
    };
    let arr = list.as_arr().ok_or("\"faults\" must be an array")?;
    for (i, ev) in arr.iter().enumerate() {
        let ctx = |msg: String| format!("fault #{i}: {msg}");
        let label = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string field \"kind\"".into()))?;
        let at = Nanos::from_millis(field_u64(ev, "at_ms").map_err(&ctx)?);
        let duration = Nanos::from_millis(field_u64(ev, "duration_ms").map_err(&ctx)?);
        if duration.is_zero() {
            return Err(ctx("\"duration_ms\" must be positive".into()));
        }
        let kind = match label {
            "rate-spike" => {
                let factor = field_f64(ev, "factor").map_err(&ctx)?;
                if !factor.is_finite() || factor < 0.0 {
                    return Err(ctx("\"factor\" must be finite and non-negative".into()));
                }
                FaultKind::RateSpike { factor }
            }
            "queue-stall" => FaultKind::QueueStall,
            "pool-starve" => {
                let fraction = field_f64(ev, "fraction").map_err(&ctx)?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(ctx("\"fraction\" must be in [0, 1]".into()));
                }
                FaultKind::PoolStarve { fraction }
            }
            "jitter-burst" => {
                let drop_prob = field_f64(ev, "drop_prob").map_err(&ctx)?;
                if !(0.0..=1.0).contains(&drop_prob) {
                    return Err(ctx("\"drop_prob\" must be in [0, 1]".into()));
                }
                let jitter = ev.get("jitter_us").and_then(Json::as_u64).unwrap_or(0);
                FaultKind::JitterBurst {
                    jitter: Nanos::from_micros(jitter),
                    drop_prob,
                }
            }
            other => return Err(ctx(format!("unknown fault kind {other:?}"))),
        };
        plan.push(at, duration, kind);
    }
    Ok(plan)
}

/// A success reply skeleton; append command fields with `.with(...)`.
pub fn ok() -> Json {
    Json::obj().with("ok", true)
}

/// A typed error reply.
pub fn err(message: impl Into<String>) -> Json {
    Json::obj().with("ok", false).with("error", message.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_commands() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"drain"}"#),
            Ok(Request::Drain)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn parses_submit_with_faults() {
        let line = r#"{"cmd":"submit","name":"soak","rate_pps":200000,"discipline":"metronome","m":3,"seed":7,
            "faults":[{"kind":"rate-spike","at_ms":100,"duration_ms":50,"factor":2.0},
                      {"kind":"queue-stall","at_ms":200,"duration_ms":30},
                      {"kind":"pool-starve","at_ms":300,"duration_ms":40,"fraction":0.5},
                      {"kind":"jitter-burst","at_ms":400,"duration_ms":50,"drop_prob":0.2,"jitter_us":20}]}"#
            .replace('\n', " ");
        let Ok(Request::Submit(spec)) = Request::parse(&line) else {
            panic!("submit did not parse");
        };
        assert_eq!(spec.name, "soak");
        assert_eq!(spec.rate_pps, 200_000.0);
        assert_eq!(spec.discipline, DisciplineChoice::Metronome);
        assert_eq!(spec.m_threads, 3);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.faults.len(), 4);
        assert_eq!(spec.faults.distinct_kinds(), 4);
        assert_eq!(spec.exec, ExecBackend::Threads, "threads is the default");
        assert_eq!(spec.ring_path, RingPath::Spsc, "spsc is the default");
        assert!(spec.trace, "tracing defaults to on");
        assert_eq!(spec.gen_shards, 1, "single generator is the default");
    }

    #[test]
    fn parses_gen_shards_on_submit_and_reconfigure() {
        let Ok(Request::Submit(spec)) =
            Request::parse(r#"{"cmd":"submit","gen_shards":4,"ring_path":"mpsc"}"#)
        else {
            panic!("submit did not parse");
        };
        assert_eq!(spec.gen_shards, 4);

        let Ok(Request::Reconfigure(spec)) =
            Request::parse(r#"{"cmd":"reconfigure","gen_shards":2}"#)
        else {
            panic!("reconfigure did not parse");
        };
        assert_eq!(spec.gen_shards, Some(2));
        assert!(spec.rate_pps.is_none() && spec.exec.is_none());
    }

    #[test]
    fn parses_trace_command_and_submit_opt_out() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"trace"}"#),
            Ok(Request::Trace { path: None })
        ));
        let Ok(Request::Trace { path: Some(p) }) =
            Request::parse(r#"{"cmd":"trace","path":"/tmp/t.json"}"#)
        else {
            panic!("trace with path did not parse");
        };
        assert_eq!(p, "/tmp/t.json");

        let Ok(Request::Submit(spec)) = Request::parse(r#"{"cmd":"submit","trace":false}"#) else {
            panic!("submit did not parse");
        };
        assert!(!spec.trace, "explicit opt-out respected");
    }

    #[test]
    fn parses_exec_and_ring_path_on_submit() {
        let Ok(Request::Submit(spec)) =
            Request::parse(r#"{"cmd":"submit","exec":"async","shards":2,"ring_path":"mpsc"}"#)
        else {
            panic!("submit did not parse");
        };
        assert_eq!(spec.exec, ExecBackend::Async { shards: 2 });
        assert_eq!(spec.ring_path, RingPath::Mpsc);

        let Ok(Request::Submit(spec)) =
            Request::parse(r#"{"cmd":"submit","exec":"async","ring_path":"locked"}"#)
        else {
            panic!("submit did not parse");
        };
        assert_eq!(
            spec.exec,
            ExecBackend::Async { shards: 1 },
            "shards default 1"
        );
        assert_eq!(spec.ring_path, RingPath::Locked);

        let Ok(Request::Reconfigure(spec)) =
            Request::parse(r#"{"cmd":"reconfigure","exec":"threads"}"#)
        else {
            panic!("reconfigure did not parse");
        };
        assert_eq!(spec.exec, Some(ExecBackend::Threads));
    }

    #[test]
    fn ring_path_on_reconfigure_is_a_typed_error() {
        let err = Request::parse(r#"{"cmd":"reconfigure","ring_path":"mpsc"}"#).unwrap_err();
        assert!(err.contains("drain and submit"), "unexpected error: {err}");
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"cmd":42}"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"submit","rate_pps":"fast"}"#,
            r#"{"cmd":"submit","rate_pps":-1}"#,
            r#"{"cmd":"submit","discipline":"psychic"}"#,
            r#"{"cmd":"submit","discipline":"const-sleep"}"#,
            r#"{"cmd":"submit","faults":{}}"#,
            r#"{"cmd":"submit","faults":[{"kind":"rate-spike","at_ms":1,"duration_ms":1}]}"#,
            r#"{"cmd":"submit","faults":[{"kind":"rate-spike","at_ms":1,"duration_ms":1,"factor":-2}]}"#,
            r#"{"cmd":"submit","faults":[{"kind":"pool-starve","at_ms":1,"duration_ms":1,"fraction":1.5}]}"#,
            r#"{"cmd":"submit","faults":[{"kind":"jitter-burst","at_ms":1,"duration_ms":1,"drop_prob":2}]}"#,
            r#"{"cmd":"submit","faults":[{"kind":"gamma-ray","at_ms":1,"duration_ms":1}]}"#,
            r#"{"cmd":"reconfigure"}"#,
            r#"{"cmd":"reconfigure","m":-3}"#,
            r#"{"cmd":"submit","exec":"fibers"}"#,
            r#"{"cmd":"submit","exec":"async","shards":0}"#,
            r#"{"cmd":"submit","shards":2}"#,
            r#"{"cmd":"submit","exec":"threads","shards":2}"#,
            r#"{"cmd":"submit","gen_shards":0}"#,
            r#"{"cmd":"submit","gen_shards":"many"}"#,
            r#"{"cmd":"reconfigure","gen_shards":0}"#,
            r#"{"cmd":"submit","ring_path":"quantum"}"#,
            r#"{"cmd":"submit","ring_path":7}"#,
            r#"{"cmd":"reconfigure","ring_path":"mpsc"}"#,
            r#"{"cmd":"submit","trace":"yes"}"#,
            r#"{"cmd":"trace","path":42}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_reply_renders_ok_false() {
        let reply = err("boom").render();
        let doc = Json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
    }
}
