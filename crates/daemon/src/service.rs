//! The service engine behind `metronomed`: a persistent realtime
//! pipeline (mempool → RSS port → retrieval workers) that outlives any
//! single scenario, with live reconfiguration and scheduled fault
//! injection.
//!
//! Where [`metronome_runtime::realtime_runner`] executes one scenario
//! start-to-finish and tears everything down, the engine keeps the
//! infrastructure up between scenarios:
//!
//! * **Submit** builds a fresh [`RssPort`] and worker set over the shared
//!   [`Mempool`] and spawns a rate-driven generator thread.
//! * **Reconfigure** adjusts the offered rate through one atomic store
//!   (the generator reads it every tick), or re-arms the worker set for a
//!   new discipline / `M` without stopping the generator — counters stay
//!   monotone because the retiring hub's totals fold into a cumulative
//!   base before the fresh hub takes over.
//! * **Drain** runs the shutdown state machine: stop the generator (it
//!   releases any fault state it holds on exit), wait for the workers to
//!   catch up with everything the rings accepted, join them (their
//!   mempool caches flush on exit), sweep anything stranded, and audit
//!   the pool — `in_use == 0`, `cached == 0`, `allocs == frees` — before
//!   reporting exact conservation: `offered == processed + dropped`.
//!
//! Fault realization in service mode (the arrival-side realization lives
//! in [`metronome_traffic::PlannedFaults`]; the daemon realizes the same
//! [`FaultPlan`] against real infrastructure):
//!
//! | kind           | realization                                         | shows up as |
//! |----------------|-----------------------------------------------------|-------------|
//! | `rate-spike`   | generator multiplies the offered rate               | ring drops under overload |
//! | `queue-stall`  | workers pause in the process closure; rings back up | ring drops |
//! | `pool-starve`  | generator confiscates pool buffers for the window   | pool drops |
//! | `jitter-burst` | generator coin-flips packet suppression             | fault drops |

use crate::protocol::{self, DisciplineChoice, ReconfigureSpec, Request, SubmitSpec};
use bytes::BytesMut;
use metronome_apps::processor::PacketProcessor;
use metronome_core::discipline::{DisciplineSpec, Doorbell, ModerationConfig};
use metronome_core::executor::WorkerSet;
use metronome_core::{ExecBackend, MetronomeConfig};
use metronome_dpdk::shared_ring::RingPath;
use metronome_dpdk::{Mbuf, Mempool, QueueScatter, RssPort};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_runtime::realtime_runner::{processor_for, WorkerRing};
use metronome_sim::stats::Histogram;
use metronome_sim::{Nanos, Rng};
use metronome_telemetry::export::prometheus::{render, snapshot_metrics};
use metronome_telemetry::{
    CounterSnapshot, DropCause, Json, MarkerKind, TelemetryHub, TelemetrySink, TraceHub,
    TraceRecorder, TraceSink, DEFAULT_RING_CAPACITY,
};
use metronome_traffic::{FaultPlan, FlowSet, WallClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generator wake-up period: batch sizes follow from rate × tick.
const GEN_TICK: Duration = Duration::from_micros(500);

/// Hard cap on one tick's batch (bounds pool demand during catch-up; the
/// clipped remainder is shed, not owed — a daemon must not build debt).
const GEN_MAX_BATCH: usize = 2048;

/// How long the process closure naps between stall-flag polls.
const STALL_POLL: Duration = Duration::from_micros(100);

/// How long `drain` waits for the workers to catch up with everything
/// the rings accepted before sweeping leftovers as stranded.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Flows in the generated population (matches the realtime runner).
const FLOWS_PER_RUN: usize = 256;

/// Destination subnets, matching `L3Fwd::with_sample_routes(4)`.
const L3FWD_SUBNETS: usize = 4;

/// Mbuf dataroom of the daemon's pool.
const MBUF_DATAROOM: usize = 2048;

/// Fixed infrastructure the daemon owns for its whole lifetime.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Rx queues of every scenario the daemon runs.
    pub n_queues: usize,
    /// Descriptors per Rx ring.
    pub ring_size: usize,
    /// Mbuf pool population (`None`: sized for rings + generator bursts).
    pub pool_population: Option<usize>,
    /// App profile every queue processes with (must have a functional
    /// processor — see `processor_for`).
    pub app: &'static str,
    /// Seed for flow population and fault coin flips.
    pub seed: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            n_queues: 2,
            ring_size: 512,
            pool_population: None,
            app: "l3fwd-lpm",
            seed: 1,
        }
    }
}

/// Counter totals folded out of retired telemetry hubs and finished
/// ports, so exported counters stay monotone across reconfigures and
/// scenarios. All fields are lifetime-cumulative.
#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    retrieved: u64,
    wakeups: u64,
    busy_nanos: u64,
    sleep_nanos: u64,
    oversleep_nanos: u64,
    dropped_ring: u64,
    dropped_pool: u64,
    dropped_fault: u64,
    /// Frames offered to retired ports (a port lives for one scenario).
    port_offered: u64,
}

impl Totals {
    /// Fold a hub's counters in (call only after its writers stopped).
    fn fold_hub(&mut self, hub: &TelemetryHub) {
        let mut snap = CounterSnapshot::new(Nanos::ZERO);
        hub.fill_snapshot(&mut snap);
        self.retrieved += snap.retrieved;
        self.wakeups += snap.wakeups;
        self.busy_nanos += snap.busy_nanos;
        self.sleep_nanos += snap.sleep_nanos;
        self.oversleep_nanos += snap.oversleep_nanos;
        self.dropped_ring += snap.dropped_ring;
        self.dropped_pool += snap.dropped_pool;
        self.dropped_fault += snap.dropped_fault;
    }
}

/// What the generator shards share with the engine: the stop flag, the
/// live-reconfigurable rate, and the consumer-pause flag shard 0 drives
/// from the plan's stall windows (the same atomic the process closures
/// poll). One instance per generator generation — a `gen_shards`
/// reconfigure retires it (stop + join) and spawns a fresh one carrying
/// the live rate over.
struct GenShared {
    stop: AtomicBool,
    /// Offered rate as `f64` bits — reconfiguring the rate is one store.
    rate_bits: AtomicU64,
    stall: Arc<AtomicBool>,
}

/// Everything one generator shard thread owns: its slice of the flow
/// population (template index `i % n_shards == shard`), its RNG stream,
/// and its jitter-histogram slot. Shard 0 additionally realizes the
/// run-wide fault state (stall flag, pool confiscation).
struct GenShardCtx {
    shared: Arc<GenShared>,
    port: Arc<RssPort>,
    pool: Mempool,
    plan: FaultPlan,
    gen_hub: Arc<Mutex<Arc<TelemetryHub>>>,
    templates: Arc<Vec<(BytesMut, usize, u32)>>,
    rng: Rng,
    shard: usize,
    n_shards: usize,
    jitter: Arc<Vec<Mutex<Histogram>>>,
}

/// One armed worker set (discipline + hub + halt flag), replaced
/// wholesale on a discipline/M reconfigure.
struct Arm {
    workers: WorkerSet<Mbuf, WorkerRing>,
    hub: Arc<TelemetryHub>,
    /// Overrides the stall pause so a re-arm can join workers that are
    /// mid-stall without waiting out the fault window.
    halt: Arc<AtomicBool>,
    discipline: DisciplineChoice,
    m_threads: usize,
    exec: ExecBackend,
}

/// The flight recorder of a running scenario: the hub the workers'
/// per-worker/per-shard recorders publish into, plus one extra
/// **control recorder** (the hub's last slot) for the daemon's own
/// reconfigure / fault-plan markers. The hub outlives re-arms — a new
/// worker set takes fresh recorders over the same slots — so one
/// `trace` dump shows the marker *and* the behaviour change after it.
struct TraceArm {
    hub: Arc<TraceHub>,
    /// Control-plane recorder (recorders are `Send`, not `Sync`; marker
    /// rates are a few per reconfigure, so a mutex is fine here).
    control: Mutex<TraceRecorder>,
}

impl TraceArm {
    /// A hub sized for `worker_slots` worker/shard recorders plus the
    /// control slot.
    fn new(worker_slots: usize, label: &str) -> TraceArm {
        let hub = Arc::new(TraceHub::labeled(
            worker_slots + 1,
            DEFAULT_RING_CAPACITY,
            label,
        ));
        let control = Mutex::new(hub.recorder(worker_slots));
        TraceArm { hub, control }
    }

    /// Record a control-plane marker and publish it immediately (markers
    /// are rare; a blocking flush here costs nothing).
    fn marker(&self, kind: MarkerKind, a: u64) {
        let control = self.control.lock();
        control.marker(kind, a);
        control.flush();
    }

    /// Worker/shard recorder slots (everything but the control slot).
    fn worker_slots(&self) -> usize {
        self.hub.n_recorders() - 1
    }
}

/// A running scenario on the persistent pipeline.
struct RunState {
    name: String,
    port: Arc<RssPort>,
    arm: Option<Arm>,
    /// Flight recorder, armed at submit (`None` when the scenario opted
    /// out with `"trace": false`).
    trace: Option<TraceArm>,
    gen: Option<(Arc<GenShared>, Vec<std::thread::JoinHandle<()>>)>,
    /// Producer shard count of the live generator set.
    gen_shards: usize,
    /// Frame templates the generator shards slice up (kept so a
    /// `gen_shards` reconfigure can respawn the set without rebuilding
    /// the flow population).
    gen_templates: Arc<Vec<(BytesMut, usize, u32)>>,
    /// The scenario's fault plan (respawned shards re-realize it).
    faults: FaultPlan,
    /// Submit seed (shard RNG streams derive from it).
    seed: u64,
    /// Per-shard generator tick-lateness histograms, merged into
    /// `snapshot()` as `gen_jitter`.
    gen_jitter: Arc<Vec<Mutex<Histogram>>>,
    /// The generator's view of the current hub (swapped on re-arm so no
    /// drop is ever counted against a retired hub after it was folded).
    gen_hub: Arc<Mutex<Arc<TelemetryHub>>>,
    /// Per-queue doorbell slots the port's wake hooks ring through
    /// (re-pointed at the new worker set on re-arm).
    bells: Vec<Arc<Mutex<Option<Arc<Doorbell>>>>>,
    apps: Arc<Vec<Mutex<Box<dyn PacketProcessor>>>>,
    stall: Arc<AtomicBool>,
}

struct EngineState {
    run: Option<RunState>,
    base: Totals,
    /// Scenarios drained to completion since startup.
    completed: u64,
}

/// The daemon's command engine: one per process, shared by the control
/// socket and the metrics listener.
pub struct ServiceEngine {
    cfg: DaemonConfig,
    pool: Mempool,
    started: Instant,
    state: Mutex<EngineState>,
    shutdown: AtomicBool,
}

impl ServiceEngine {
    /// Build the engine and its persistent mempool. Panics if `cfg.app`
    /// has no functional processor — that is a deployment error, not
    /// request input.
    pub fn new(cfg: DaemonConfig) -> ServiceEngine {
        assert!(cfg.n_queues > 0, "need at least one queue");
        assert!(
            processor_for(cfg.app).is_some(),
            "no functional processor wired for app profile '{}'",
            cfg.app
        );
        let population = cfg
            .pool_population
            .unwrap_or(2 * cfg.n_queues * cfg.ring_size + 4 * GEN_MAX_BATCH);
        let pool = Mempool::new(population, MBUF_DATAROOM);
        ServiceEngine {
            cfg,
            pool,
            started: Instant::now(),
            state: Mutex::new(EngineState {
                run: None,
                base: Totals::default(),
                completed: 0,
            }),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The daemon's fixed configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Whether `shutdown` has been requested (servers drain their accept
    /// loops once this reads true).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Parse one request line and execute it: the single entry point for
    /// control connections. Malformed input becomes an error reply.
    pub fn dispatch(&self, line: &str) -> Json {
        match Request::parse(line) {
            Ok(req) => self.handle(req),
            Err(e) => protocol::err(e),
        }
    }

    /// Execute one parsed request.
    pub fn handle(&self, req: Request) -> Json {
        match req {
            Request::Ping => protocol::ok()
                .with("reply", "pong")
                .with("state", self.state_label()),
            Request::Stats => self.stats_reply(),
            Request::Trace { path } => self.trace_reply(path),
            Request::Submit(spec) => self.submit(spec),
            Request::Reconfigure(spec) => self.reconfigure(spec),
            Request::Drain => {
                let mut st = self.state.lock();
                self.drain_locked(&mut st)
            }
            // Shutdown is drain + flag, and idempotent: a second call
            // finds no run, drains trivially, and still replies ok.
            Request::Shutdown => {
                let mut st = self.state.lock();
                let reply = self.drain_locked(&mut st);
                self.shutdown.store(true, Ordering::Release);
                reply.with("shutdown", true)
            }
        }
    }

    fn state_label(&self) -> &'static str {
        if self.is_shutdown() {
            "shutdown"
        } else if self.state.lock().run.is_some() {
            "running"
        } else {
            "idle"
        }
    }

    // ---- worker arming ---------------------------------------------------

    fn worker_shape(
        &self,
        choice: DisciplineChoice,
        m_threads: usize,
    ) -> Result<(MetronomeConfig, DisciplineSpec), String> {
        let cfg = MetronomeConfig {
            m_threads,
            n_queues: self.cfg.n_queues,
            ..MetronomeConfig::default()
        };
        let spec = match choice {
            DisciplineChoice::Metronome => DisciplineSpec::Metronome,
            DisciplineChoice::BusyPoll => DisciplineSpec::BusyPoll,
            DisciplineChoice::InterruptLike => {
                DisciplineSpec::InterruptLike(ModerationConfig::default())
            }
            DisciplineChoice::ConstSleep(p) => DisciplineSpec::ConstSleep(p),
        };
        cfg.validate()?;
        Ok((cfg, spec))
    }

    /// The telemetry hub a worker set of this shape writes into. Created
    /// by the caller (not by [`ServiceEngine::arm_workers`]) so a re-arm
    /// can hand the generator the new hub *before* the old one is folded
    /// — no drop is ever mirrored into an already-folded hub.
    fn hub_for(
        &self,
        choice: DisciplineChoice,
        cfg: &MetronomeConfig,
        spec: &DisciplineSpec,
    ) -> Arc<TelemetryHub> {
        let n_workers = spec.workers(cfg.m_threads, cfg.n_queues);
        TelemetryHub::labeled(n_workers, cfg.n_queues, choice.label())
    }

    /// Spawn a worker set over `port`'s consumers and point the per-queue
    /// doorbell slots at it. The process closure pauses while the stall
    /// flag is up (unless this arm's halt flag overrides it — see
    /// [`Arm::halt`]) and recycles every burst through a worker-local
    /// mempool cache.
    #[allow(clippy::too_many_arguments)]
    fn arm_workers(
        &self,
        port: &Arc<RssPort>,
        apps: &Arc<Vec<Mutex<Box<dyn PacketProcessor>>>>,
        stall: &Arc<AtomicBool>,
        bells: &[Arc<Mutex<Option<Arc<Doorbell>>>>],
        choice: DisciplineChoice,
        cfg: MetronomeConfig,
        spec: DisciplineSpec,
        hub: Arc<TelemetryHub>,
        exec: ExecBackend,
        trace: Option<&Arc<TraceHub>>,
    ) -> Arm {
        let halt = Arc::new(AtomicBool::new(false));
        let worker_burst = cfg.burst as usize;
        let m_threads = cfg.m_threads;
        let consumers: Vec<WorkerRing> = port.consumers().into_iter().map(WorkerRing).collect();
        let make_process = {
            let pool = &self.pool;
            let halt = &halt;
            move |_worker| {
                let apps = Arc::clone(apps);
                let stall = Arc::clone(stall);
                let halt = Arc::clone(halt);
                let mut cache = pool.cache(worker_burst);
                move |q: usize, burst: &mut Vec<Mbuf>| {
                    // A stall window pauses retrieval mid-pipeline:
                    // the rings back up behind this nap and tail-drop,
                    // which is exactly the fault being modeled.
                    while stall.load(Ordering::Relaxed) && !halt.load(Ordering::Relaxed) {
                        std::thread::sleep(STALL_POLL);
                    }
                    let mut slot = apps[q].lock();
                    let _verdicts = slot.process_burst(burst);
                    drop(slot);
                    cache.free_burst(burst.drain(..));
                }
            }
        };
        let workers = match trace {
            Some(trace) => WorkerSet::start_discipline_scoped_traced(
                exec,
                cfg,
                spec.clone(),
                consumers,
                make_process,
                &hub,
                trace,
            ),
            None => WorkerSet::start_discipline_scoped_with_telemetry(
                exec,
                cfg,
                spec.clone(),
                consumers,
                make_process,
                &hub,
            ),
        };
        for (q, slot) in bells.iter().enumerate() {
            *slot.lock() = match spec {
                DisciplineSpec::InterruptLike(_) => Some(Arc::clone(workers.doorbell(q))),
                _ => None,
            };
        }
        Arm {
            workers,
            hub,
            halt,
            discipline: choice,
            m_threads,
            exec,
        }
    }

    // ---- submit ----------------------------------------------------------

    fn submit(&self, spec: SubmitSpec) -> Json {
        if self.is_shutdown() {
            return protocol::err("daemon is shutting down");
        }
        let mut st = self.state.lock();
        if st.run.is_some() {
            return protocol::err("a scenario is already running; reconfigure it or drain first");
        }
        let m_threads = if spec.m_threads == 0 {
            self.cfg.n_queues
        } else {
            spec.m_threads
        };
        let (cfg, disc_spec) = match self.worker_shape(spec.discipline, m_threads) {
            Ok(pair) => pair,
            Err(e) => return protocol::err(e),
        };

        // Shards split the flow population by template index; more
        // shards than flows would leave producers with nothing to send.
        let gen_shards = spec.gen_shards.clamp(1, FLOWS_PER_RUN);
        // Concurrent producers need a multi-producer ring: silently
        // upgrade the default SPSC path (an explicit `locked` is
        // honored — the caller asked to measure that path).
        let ring_path = if gen_shards > 1 && spec.ring_path == RingPath::Spsc {
            RingPath::Mpsc
        } else {
            spec.ring_path
        };

        // Port + doorbell slots. Hooks are installed before the port is
        // shared and ring through a slot, so a re-arm can re-point them
        // without `&mut` access to the port.
        let mut port = RssPort::with_path(self.cfg.n_queues, self.cfg.ring_size, ring_path);
        let bells: Vec<Arc<Mutex<Option<Arc<Doorbell>>>>> = (0..self.cfg.n_queues)
            .map(|_| Arc::new(Mutex::new(None)))
            .collect();
        for (q, slot) in bells.iter().enumerate() {
            let slot = Arc::clone(slot);
            port.set_wake_hook(
                q,
                Arc::new(move || {
                    if let Some(bell) = slot.lock().as_ref() {
                        bell.ring();
                    }
                }),
            );
        }
        let port = Arc::new(port);

        let apps: Arc<Vec<Mutex<Box<dyn PacketProcessor>>>> = Arc::new(
            (0..self.cfg.n_queues)
                .map(|_| Mutex::new(processor_for(self.cfg.app).expect("app checked at startup")))
                .collect(),
        );
        let stall = Arc::new(AtomicBool::new(false));
        let hub = self.hub_for(spec.discipline, &cfg, &disc_spec);
        let trace = spec.trace.then(|| {
            TraceArm::new(
                WorkerSet::<Mbuf, WorkerRing>::trace_recorders(spec.exec, &cfg, disc_spec.clone()),
                &spec.name,
            )
        });
        if let Some(trace) = &trace {
            // Stamp the armed fault plan into the recorder so a later
            // dump shows what was scheduled before what happened.
            if !spec.faults.is_empty() {
                trace.marker(MarkerKind::FaultPlan, spec.faults.len() as u64);
            }
        }
        let arm = self.arm_workers(
            &port,
            &apps,
            &stall,
            &bells,
            spec.discipline,
            cfg,
            disc_spec,
            hub,
            spec.exec,
            trace.as_ref().map(|t| &t.hub),
        );
        let gen_hub = Arc::new(Mutex::new(Arc::clone(&arm.hub)));

        // Frame templates: routable flows, RSS resolved once per flow.
        let flows = FlowSet::routable(FLOWS_PER_RUN, L3FWD_SUBNETS, spec.seed);
        let templates: Arc<Vec<(BytesMut, usize, u32)>> = Arc::new(
            flows
                .flows()
                .iter()
                .map(|t| {
                    let frame =
                        build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS);
                    let input = t.rss_input();
                    (frame, port.queue_for(&input), port.rss_hash(&input))
                })
                .collect(),
        );

        let gen_jitter: Arc<Vec<Mutex<Histogram>>> = Arc::new(
            (0..gen_shards)
                .map(|_| Mutex::new(Histogram::latency()))
                .collect(),
        );
        let shared = Arc::new(GenShared {
            stop: AtomicBool::new(false),
            rate_bits: AtomicU64::new(spec.rate_pps.to_bits()),
            stall: Arc::clone(&stall),
        });
        let handles = self.spawn_generators(
            &shared,
            &port,
            &spec.faults,
            &gen_hub,
            &templates,
            &gen_jitter,
            spec.seed,
            gen_shards,
        );

        let name = spec.name.clone();
        let reply = protocol::ok()
            .with("submitted", name.as_str())
            .with("discipline", spec.discipline.label())
            .with("exec", spec.exec.label())
            .with("ring_path", ring_path.label())
            .with("workers", arm.workers_len() as u64)
            .with("gen_shards", gen_shards as u64)
            .with("rate_pps", spec.rate_pps)
            .with("fault_events", spec.faults.len() as u64)
            .with("fault_kinds", spec.faults.distinct_kinds() as u64)
            .with("trace", trace.is_some());
        st.run = Some(RunState {
            name,
            port,
            arm: Some(arm),
            trace,
            gen: Some((shared, handles)),
            gen_shards,
            gen_templates: templates,
            faults: spec.faults,
            seed: spec.seed,
            gen_jitter,
            gen_hub,
            bells,
            apps,
            stall,
        });
        reply
    }

    /// Spawn one generator thread per shard, each owning its slice of
    /// the flow population and producing concurrently onto the port's Rx
    /// rings (submit with `"ring_path": "mpsc"` or `"locked"` for
    /// multi-producer offers on shared rings).
    #[allow(clippy::too_many_arguments)]
    fn spawn_generators(
        &self,
        shared: &Arc<GenShared>,
        port: &Arc<RssPort>,
        plan: &FaultPlan,
        gen_hub: &Arc<Mutex<Arc<TelemetryHub>>>,
        templates: &Arc<Vec<(BytesMut, usize, u32)>>,
        jitter: &Arc<Vec<Mutex<Histogram>>>,
        seed: u64,
        n_shards: usize,
    ) -> Vec<std::thread::JoinHandle<()>> {
        (0..n_shards)
            .map(|shard| {
                let ctx = GenShardCtx {
                    shared: Arc::clone(shared),
                    port: Arc::clone(port),
                    pool: self.pool.clone(),
                    plan: plan.clone(),
                    gen_hub: Arc::clone(gen_hub),
                    templates: Arc::clone(templates),
                    rng: Rng::new(seed ^ 0x0D4E_3019).stream(7 + shard as u64),
                    shard,
                    n_shards,
                    jitter: Arc::clone(jitter),
                };
                std::thread::Builder::new()
                    .name(format!("metronomed-gen{shard}"))
                    .spawn(move || generator(ctx))
                    .expect("spawn generator thread")
            })
            .collect()
    }

    // ---- reconfigure -----------------------------------------------------

    fn reconfigure(&self, spec: ReconfigureSpec) -> Json {
        let mut st = self.state.lock();
        let Some(run) = st.run.as_mut() else {
            return protocol::err("no scenario is running; submit one first");
        };
        // Validate before anything is applied, so an error reply always
        // means "nothing changed". The port persists across re-arms, so
        // its ring path cannot follow a widening generator: concurrent
        // producers on SPSC rings would break the single-producer
        // contract.
        if spec.gen_shards.is_some_and(|g| g > 1) && run.port.rings()[0].path() == RingPath::Spsc {
            return protocol::err(
                "gen_shards > 1 needs a multi-producer ring path and the port persists \
                 across re-arms; drain and submit with \"ring_path\": \"mpsc\" or \"locked\"",
            );
        }
        let mut changed: Vec<&'static str> = Vec::new();

        if let Some(rate) = spec.rate_pps {
            if let Some((shared, _)) = &run.gen {
                shared.rate_bits.store(rate.to_bits(), Ordering::Relaxed);
                changed.push("rate_pps");
            }
        }

        let rearm = spec.discipline.is_some() || spec.m_threads.is_some() || spec.exec.is_some();
        if rearm {
            let old = run.arm.take().expect("running scenario always has an arm");
            let choice = spec.discipline.unwrap_or(old.discipline);
            let m_threads = spec.m_threads.unwrap_or(old.m_threads);
            let exec = spec.exec.unwrap_or(old.exec);
            let (cfg, disc_spec) = match self.worker_shape(choice, m_threads) {
                Ok(pair) => pair,
                Err(e) => {
                    // Invalid request: keep the old arm running untouched.
                    run.arm = Some(old);
                    return protocol::err(e);
                }
            };
            // Re-arm sequence, ordered so no count is ever lost:
            // 1. swap the generator onto the fresh hub (its next mirrored
            // drop lands there), 2. let mid-stall workers fall through,
            // 3. join them — only now is the retired hub quiescent —
            // 4. fold it, 5. spawn the new set over fresh consumer
            // handles, writing into the hub the generator already holds.
            let new_hub = self.hub_for(choice, &cfg, &disc_spec);
            *run.gen_hub.lock() = Arc::clone(&new_hub);
            old.halt.store(true, Ordering::Release);
            let old_hub = Arc::clone(&old.hub);
            let _stats = old.workers.stop();
            st.base.fold_hub(&old_hub);
            let run = st.run.as_mut().expect("checked above");
            // The trace hub persists across re-arms (markers and recent
            // history survive; the fresh workers take recorders over the
            // same slots) — unless the new shape needs more slots than
            // the hub has, in which case it is rebuilt larger.
            let recorders =
                WorkerSet::<Mbuf, WorkerRing>::trace_recorders(exec, &cfg, disc_spec.clone());
            if let Some(trace) = &run.trace {
                if trace.worker_slots() < recorders {
                    run.trace = Some(TraceArm::new(recorders, &run.name));
                }
            }
            let arm = self.arm_workers(
                &run.port,
                &run.apps,
                &run.stall,
                &run.bells,
                choice,
                cfg,
                disc_spec,
                new_hub,
                exec,
                run.trace.as_ref().map(|t| &t.hub),
            );
            run.arm = Some(arm);
            if spec.discipline.is_some() {
                changed.push("discipline");
            }
            if spec.m_threads.is_some() {
                changed.push("m");
            }
            if spec.exec.is_some() {
                changed.push("exec");
            }
        }

        if let Some(g) = spec.gen_shards {
            let g = g.clamp(1, FLOWS_PER_RUN);
            let run = st.run.as_mut().expect("checked above");
            if g != run.gen_shards {
                // Retire the old generator set (stop + join; shard 0
                // releases confiscated buffers and the stall flag on
                // exit), then respawn at the new width carrying the live
                // rate over. Jitter history folds into the new slot 0 so
                // the exported histogram stays cumulative for the run.
                let rate_bits = match run.gen.take() {
                    Some((old, handles)) => {
                        old.stop.store(true, Ordering::Release);
                        for h in handles {
                            let _ = h.join();
                        }
                        old.rate_bits.load(Ordering::Relaxed)
                    }
                    None => spec
                        .rate_pps
                        .unwrap_or(protocol::DEFAULT_RATE_PPS)
                        .to_bits(),
                };
                let jitter: Arc<Vec<Mutex<Histogram>>> =
                    Arc::new((0..g).map(|_| Mutex::new(Histogram::latency())).collect());
                {
                    let mut base = jitter[0].lock();
                    for shard in run.gen_jitter.iter() {
                        base.merge(&shard.lock());
                    }
                }
                let shared = Arc::new(GenShared {
                    stop: AtomicBool::new(false),
                    rate_bits: AtomicU64::new(rate_bits),
                    stall: Arc::clone(&run.stall),
                });
                let handles = self.spawn_generators(
                    &shared,
                    &run.port,
                    &run.faults,
                    &run.gen_hub,
                    &run.gen_templates,
                    &jitter,
                    run.seed,
                    g,
                );
                run.gen = Some((shared, handles));
                run.gen_shards = g;
                run.gen_jitter = jitter;
            }
            changed.push("gen_shards");
        }

        let run = st.run.as_ref().expect("checked above");
        let arm = run.arm.as_ref().expect("re-armed above");
        // Stamp the reconfigure into the flight recorder so a later dump
        // correlates the marker with the behaviour change around it.
        if let Some(trace) = &run.trace {
            trace.marker(MarkerKind::Reconfigure, changed.len() as u64);
        }
        protocol::ok()
            .with(
                "changed",
                Json::Arr(changed.into_iter().map(Json::from).collect()),
            )
            .with("discipline", arm.discipline.label())
            .with("m", arm.m_threads as u64)
            .with("exec", arm.exec.label())
            .with("gen_shards", run.gen_shards as u64)
            .with(
                "rate_pps",
                run.gen.as_ref().map_or(0.0, |(s, _)| {
                    f64::from_bits(s.rate_bits.load(Ordering::Relaxed))
                }),
            )
    }

    // ---- drain -----------------------------------------------------------

    /// The drain state machine. Idempotent: with nothing running it
    /// reports the (clean) pool audit and `"state": "idle"`.
    fn drain_locked(&self, st: &mut EngineState) -> Json {
        let Some(mut run) = st.run.take() else {
            let (allocs, frees) = self.pool.counters();
            return protocol::ok()
                .with("state", "idle")
                .with("already_drained", true)
                .with("pool_in_use", self.pool.in_use() as u64)
                .with("pool_cached", self.pool.cached() as u64)
                .with("allocs", allocs)
                .with("frees", frees)
                .with(
                    "pool_balanced",
                    self.pool.in_use() == 0 && self.pool.cached() == 0,
                );
        };

        // 1. Stop the generator shards; on exit shard 0 frees confiscated
        //    buffers and clears the stall flag, every shard flushes its
        //    cache.
        if let Some((shared, handles)) = run.gen.take() {
            shared.stop.store(true, Ordering::Release);
            for handle in handles {
                let _ = handle.join();
            }
        }

        // 2. Generation is over, so `accepted` is final; wait for the
        //    workers to catch up, bounded by a grace period.
        let accepted = run.port.total_accepted();
        if let Some(arm) = &run.arm {
            let deadline = Instant::now() + DRAIN_GRACE;
            while arm.hub.total_retrieved() < accepted && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        // 3. Join the workers: counters settle, caches flush.
        let mut stranded = 0u64;
        if let Some(arm) = run.arm.take() {
            arm.halt.store(true, Ordering::Release);
            let hub = Arc::clone(&arm.hub);
            let _stats = arm.workers.stop();
            st.base.fold_hub(&hub);
        }

        // 4. Sweep anything still queued (only possible if the grace
        //    period expired): accepted but never retrieved, counted as
        //    ring drops so conservation stays exact.
        let mut scratch: Vec<Mbuf> = Vec::new();
        for ring in run.port.rings() {
            while ring.pop_burst(&mut scratch, GEN_MAX_BATCH) > 0 {
                stranded += scratch.len() as u64;
                self.pool.free_burst(scratch.drain(..));
            }
        }
        st.base.dropped_ring += stranded;
        st.base.port_offered += run.port.total_offered();
        st.completed += 1;

        // 5. Audit: every buffer home, every packet accounted.
        let (allocs, frees) = self.pool.counters();
        let offered = st.base.port_offered + st.base.dropped_pool + st.base.dropped_fault;
        let dropped = st.base.dropped_ring + st.base.dropped_pool + st.base.dropped_fault;
        let conserved = offered == st.base.retrieved + dropped;
        let pool_balanced = self.pool.in_use() == 0 && self.pool.cached() == 0 && allocs == frees;
        protocol::ok()
            .with("state", "drained")
            .with("scenario", run.name.as_str())
            .with("offered", offered)
            .with("processed", st.base.retrieved)
            .with("dropped", dropped)
            .with("dropped_ring", st.base.dropped_ring)
            .with("dropped_pool", st.base.dropped_pool)
            .with("dropped_fault", st.base.dropped_fault)
            .with("stranded", stranded)
            .with("conserved", conserved)
            .with("pool_in_use", self.pool.in_use() as u64)
            .with("pool_cached", self.pool.cached() as u64)
            .with("allocs", allocs)
            .with("frees", frees)
            .with("pool_balanced", pool_balanced)
    }

    // ---- observability ---------------------------------------------------

    /// One coherent counter snapshot: the live hub plus the cumulative
    /// base, gauges from the live port and pool. This is what both the
    /// `stats` command and the Prometheus endpoint export.
    pub fn snapshot(&self) -> CounterSnapshot {
        let st = self.state.lock();
        let uptime = Nanos(self.started.elapsed().as_nanos() as u64);
        let mut snap = CounterSnapshot::new(uptime);
        let mut port_offered = st.base.port_offered;
        if let Some(run) = &st.run {
            if let Some(arm) = &run.arm {
                arm.hub.fill_snapshot(&mut snap);
                snap.rho = (0..self.cfg.n_queues).map(|q| arm.workers.rho(q)).collect();
            }
            snap.occupancy = run.port.occupancies();
            port_offered += run.port.total_offered();
            // Flight-recorder histograms ride along when tracing is
            // armed, so `/metrics` grows wake-latency / oversleep /
            // scheduler-delay histogram series mid-run.
            if let Some(trace) = &run.trace {
                let dump = trace.hub.dump();
                snap.wake_latency = Some(dump.wake_latency());
                snap.oversleep_hist = Some(dump.oversleep());
                snap.sched_delay = Some(dump.sched_delay());
            }
            // Generator tick lateness, merged across the producer shards
            // (`metronome_gen_jitter_seconds` on /metrics).
            let mut jitter = Histogram::latency();
            for shard in run.gen_jitter.iter() {
                jitter.merge(&shard.lock());
            }
            snap.gen_jitter = Some(jitter);
        }
        snap.retrieved += st.base.retrieved;
        snap.wakeups += st.base.wakeups;
        snap.busy_nanos += st.base.busy_nanos;
        snap.sleep_nanos += st.base.sleep_nanos;
        snap.oversleep_nanos += st.base.oversleep_nanos;
        snap.dropped_ring += st.base.dropped_ring;
        snap.dropped_pool += st.base.dropped_pool;
        snap.dropped_fault += st.base.dropped_fault;
        snap.offered = port_offered + snap.dropped_pool + snap.dropped_fault;
        snap.pool_in_use = self.pool.in_use() as u64;
        snap.pool_cached = self.pool.cached() as u64;
        snap
    }

    /// The Prometheus text exposition of [`ServiceEngine::snapshot`]
    /// (what the HTTP listener serves on `/metrics`).
    pub fn prometheus_text(&self) -> String {
        render(&snapshot_metrics(&self.snapshot()))
    }

    /// The `/healthz` reply body: liveness plus coarse state, cheap
    /// enough for an aggressive prober (no counter walk, no port poll).
    pub fn health_json(&self) -> Json {
        let st = self.state.lock();
        Json::obj()
            .with("status", "ok")
            .with("state", self.state_label_locked(&st))
            .with("uptime_ms", self.started.elapsed().as_millis() as u64)
            .with("completed_runs", st.completed)
    }

    /// The `trace` command: dump the running scenario's flight recorder.
    /// The summary (per-ring event/drop counts, histogram quantiles) is
    /// always inline; the full Chrome trace-event JSON goes inline when
    /// no `path` was named, else to the file at `path`.
    fn trace_reply(&self, path: Option<String>) -> Json {
        let st = self.state.lock();
        let Some(run) = st.run.as_ref() else {
            return protocol::err("no scenario is running; submit one first");
        };
        let Some(trace) = &run.trace else {
            return protocol::err(
                "tracing is disabled for this scenario (it was submitted with \"trace\": false)",
            );
        };
        // Publish any still-buffered control markers; worker recorders
        // flush opportunistically, so their rings may trail by up to one
        // flush interval — the dump is a snapshot, not a barrier.
        trace.control.lock().flush();
        let dump = trace.hub.dump();
        let mut reply = protocol::ok()
            .with("scenario", run.name.as_str())
            .with("workers", dump.workers.len() as u64)
            .with("events", dump.total_events() as u64)
            .with("dropped_events", dump.total_dropped())
            .with("summary", dump.summary_json());
        match path {
            Some(p) => {
                let chrome = dump.chrome_json().render();
                if let Err(e) = std::fs::write(&p, chrome.as_bytes()) {
                    return protocol::err(format!("cannot write {p:?}: {e}"));
                }
                reply.push("written", p.as_str());
                reply.push("bytes", chrome.len() as u64);
            }
            None => {
                reply.push("chrome", dump.chrome_json());
            }
        }
        reply
    }

    fn stats_reply(&self) -> Json {
        let snap = self.snapshot();
        let st = self.state.lock();
        // Effective backend of the live arm (post-clamp shard count from
        // the worker set itself, not the requested figure); idle daemons
        // report "none" / 0 so the fields are always present.
        let (exec_backend, shards) =
            st.run
                .as_ref()
                .and_then(|r| r.arm.as_ref())
                .map_or(("none", 0u64), |arm| match arm.workers.exec() {
                    ExecBackend::Threads => ("threads", 0),
                    ExecBackend::Async { shards } => ("async", shards as u64),
                });
        let mut reply = protocol::ok()
            .with("state", self.state_label_locked(&st))
            .with("uptime_s", snap.at.as_secs_f64())
            .with("uptime_ms", snap.at.as_nanos() / 1_000_000)
            .with("exec_backend", exec_backend)
            .with("shards", shards)
            .with(
                "gen_shards",
                st.run.as_ref().map_or(0u64, |r| r.gen_shards as u64),
            )
            .with("completed_runs", st.completed)
            .with("offered", snap.offered)
            .with("processed", snap.retrieved)
            .with(
                "dropped",
                snap.dropped_ring + snap.dropped_pool + snap.dropped_fault,
            )
            .with("dropped_ring", snap.dropped_ring)
            .with("dropped_pool", snap.dropped_pool)
            .with("dropped_fault", snap.dropped_fault)
            .with("wakeups", snap.wakeups)
            .with("busy_nanos", snap.busy_nanos)
            .with("pool_in_use", snap.pool_in_use)
            .with("pool_cached", snap.pool_cached)
            .with(
                "occupancy",
                Json::Arr(snap.occupancy.iter().map(|&o| o.into()).collect()),
            );
        if let Some(run) = &st.run {
            reply.push("scenario", run.name.as_str());
            reply.push("trace", run.trace.is_some());
            if let Some(arm) = &run.arm {
                reply.push("discipline", arm.discipline.label());
                reply.push("m", arm.m_threads as u64);
                reply.push("exec", arm.exec.label());
            }
            if let Some((shared, _)) = &run.gen {
                reply.push(
                    "rate_pps",
                    f64::from_bits(shared.rate_bits.load(Ordering::Relaxed)),
                );
                reply.push("stalled", shared.stall.load(Ordering::Relaxed));
            }
        }
        reply
    }

    fn state_label_locked(&self, st: &EngineState) -> &'static str {
        if self.is_shutdown() {
            "shutdown"
        } else if st.run.is_some() {
            "running"
        } else {
            "idle"
        }
    }
}

impl Arm {
    fn workers_len(&self) -> usize {
        match self.discipline {
            DisciplineChoice::Metronome => self.m_threads,
            _ => self.hub.n_queues(),
        }
    }
}

/// One generator shard thread: MoonGen's role as a long-running service,
/// split `n_shards` ways by flow. Every tick the shard derives its batch
/// from the live rate × the plan's spike factor (divided evenly across
/// shards), suppresses jitter-burst losses with its own RNG stream, and
/// offers the rest through RSS via a [`QueueScatter`] bucket sort —
/// mirroring every drop into the current hub by cause. Shard 0
/// additionally realizes the run-wide fault state (stall flag, pool
/// confiscation): a single owner keeps those counts exact. On exit
/// (drain or a `gen_shards` re-arm) every shard releases what it holds
/// so the pool audit balances.
fn generator(ctx: GenShardCtx) {
    let GenShardCtx {
        shared,
        port,
        pool,
        plan,
        gen_hub,
        templates,
        mut rng,
        shard,
        n_shards,
        jitter,
    } = ctx;
    let clock = WallClock::start();
    let population = pool.population();
    let mut cache = pool.cache(256);
    let mut confiscated: Vec<Mbuf> = Vec::new();
    let mut carry = 0.0f64;
    let mut last = clock.now();
    let mut seq = 0usize;
    // Per-shard batch cap so the aggregate pool demand during catch-up
    // stays bounded by `GEN_MAX_BATCH` no matter how many shards run.
    let shard_batch = (GEN_MAX_BATCH / n_shards).max(1);
    let mut blanks: Vec<Mbuf> = Vec::with_capacity(shard_batch);
    let mut scatter = QueueScatter::new(port.n_queues());
    // This shard's slice of the flow population. Flow → shard is a pure
    // function of the template index, so every flow has exactly one
    // producer and per-flow order is a single-producer property.
    let my: Vec<usize> = (0..templates.len())
        .filter(|i| i % n_shards == shard)
        .collect();
    let jitter = &jitter[shard];

    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(GEN_TICK);
        let now = clock.now();

        // Fault state first, so this tick's packets see this tick's
        // world. Shard 0 owns it; the others read the same plan for
        // their rate factor and jitter windows.
        if shard == 0 {
            shared.stall.store(plan.stalled(now), Ordering::Release);
            let want = (plan.starve_fraction(now) * population as f64) as usize;
            match want.cmp(&confiscated.len()) {
                std::cmp::Ordering::Greater => {
                    // Starvation window (deepening): confiscate straight
                    // from the shared freelist, bypassing the cache, so
                    // the count is exact.
                    let _ = pool.alloc_burst(want - confiscated.len(), &mut confiscated);
                }
                std::cmp::Ordering::Less => {
                    pool.free_burst(confiscated.drain(want..));
                }
                std::cmp::Ordering::Equal => {}
            }
        }

        let rate = f64::from_bits(shared.rate_bits.load(Ordering::Relaxed)).max(0.0)
            * plan.rate_factor(now)
            / n_shards as f64;
        let dt = now.saturating_sub(last);
        last = now;
        // Generator jitter: how far past its nominal period this tick
        // fired (scheduler preemption, a long previous tick). Recorded
        // per shard, merged into `metronome_gen_jitter_seconds`.
        jitter
            .lock()
            .record(dt.as_nanos().saturating_sub(GEN_TICK.as_nanos() as u64));
        let exact = rate * dt.as_secs_f64() + carry;
        let mut n = exact.floor().max(0.0) as usize;
        carry = exact - n as f64;
        if n > shard_batch {
            n = shard_batch;
            carry = 0.0;
        }
        if n == 0 {
            continue;
        }

        let jitter_drop = plan.jitter_at(now).map_or(0.0, |(_, p)| p);
        let hub = Arc::clone(&gen_hub.lock());
        cache.alloc_burst(n, &mut blanks);
        for _ in 0..n {
            let (frame, q, hash) = &templates[my[seq % my.len()]];
            seq += 1;
            // Jitter-burst suppression: offered load that never reaches
            // the NIC, counted under its own cause so fault windows
            // reconcile exactly.
            if jitter_drop > 0.0 && rng.chance(jitter_drop) {
                hub.dropped(*q, DropCause::Fault, 1);
                continue;
            }
            match blanks.pop() {
                Some(mut mbuf) => {
                    mbuf.refill(frame);
                    mbuf.queue = *q as u16;
                    mbuf.rss_hash = *hash;
                    mbuf.arrival = now;
                    scatter.push(*q, mbuf);
                }
                // Pool exhausted (possibly by a starvation window): a
                // drop cause of its own.
                None => hub.dropped(*q, DropCause::Pool, 1),
            }
        }
        // Blanks not consumed (jitter suppressions) go straight back.
        cache.free_burst(blanks.drain(..));
        scatter.dispatch(|q, frames| {
            port.offer_burst(q, frames);
            // Whatever the ring rejected is tail-dropped; recycle.
            hub.dropped(q, DropCause::Ring, frames.len() as u64);
            cache.free_burst(frames.drain(..));
        });
    }

    // Drain handshake: release everything this thread holds so the
    // post-drain audit sees the pool whole and the workers unstalled.
    if shard == 0 {
        shared.stall.store(false, Ordering::Release);
    }
    pool.free_burst(confiscated.drain(..));
    // `cache` flushes on drop.
}
