//! Control-socket protocol tests against a live in-process daemon: a
//! real `UnixListener`, real connections, real worker threads behind
//! every reply.

use metronome_daemon::{ControlServer, DaemonConfig, MetricsServer, ServiceEngine};
use metronome_telemetry::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TestDaemon {
    engine: Arc<ServiceEngine>,
    control: Option<ControlServer>,
    metrics: Option<MetricsServer>,
    socket: PathBuf,
}

impl TestDaemon {
    fn start(name: &str) -> TestDaemon {
        let socket = std::env::temp_dir().join(format!(
            "metronomed-test-{}-{name}.sock",
            std::process::id()
        ));
        let engine = Arc::new(ServiceEngine::new(DaemonConfig {
            n_queues: 2,
            ring_size: 256,
            ..DaemonConfig::default()
        }));
        let control = ControlServer::start(&socket, Arc::clone(&engine)).expect("bind socket");
        let metrics =
            MetricsServer::start("127.0.0.1:0", Arc::clone(&engine)).expect("bind metrics");
        TestDaemon {
            engine,
            control: Some(control),
            metrics: Some(metrics),
            socket,
        }
    }

    fn connect(&self) -> Client {
        let stream = UnixStream::connect(&self.socket).expect("connect control socket");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            reader,
            writer: stream,
        }
    }

    /// Shut the daemon down (via a fresh connection) and join both
    /// listeners so no threads outlive the test.
    fn finish(mut self) {
        if !self.engine.is_shutdown() {
            let mut c = self.connect();
            let reply = c.send(r#"{"cmd":"shutdown"}"#);
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        }
        self.control.take().unwrap().join();
        self.metrics.take().unwrap().join();
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn send(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        loop {
            match self.reader.read_line(&mut reply) {
                Ok(0) => panic!("daemon hung up mid-reply"),
                Ok(_) => break,
                // Partial-line timeout: keep reading, bytes are retained.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        Json::parse(reply.trim()).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
    }
}

fn assert_ok(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok reply, got {}",
        reply.render()
    );
}

fn assert_err(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected error reply, got {}",
        reply.render()
    );
    assert!(
        reply.get("error").and_then(Json::as_str).is_some(),
        "error reply must carry a message: {}",
        reply.render()
    );
}

#[test]
fn malformed_requests_get_typed_errors_and_daemon_stays_up() {
    let daemon = TestDaemon::start("malformed");
    let mut c = daemon.connect();
    for bad in [
        "not json at all",
        r#"{"cmd":"warp-core"}"#,
        r#"{"no_cmd_field":1}"#,
        r#"{"cmd":"submit","rate_pps":"fast"}"#,
        r#"{"cmd":"submit","faults":[{"kind":"gamma-ray","at_ms":1,"duration_ms":1}]}"#,
        r#"{"cmd":"reconfigure"}"#,
        r#"[1,2,3]"#,
    ] {
        let reply = c.send(bad);
        assert_err(&reply);
    }
    // The daemon survived all of it — on the same connection and a new one.
    assert_eq!(
        c.send(r#"{"cmd":"ping"}"#)
            .get("reply")
            .and_then(Json::as_str),
        Some("pong")
    );
    let mut fresh = daemon.connect();
    assert_ok(&fresh.send(r#"{"cmd":"ping"}"#));
    daemon.finish();
}

#[test]
fn commands_needing_a_run_fail_cleanly_when_idle() {
    let daemon = TestDaemon::start("idle");
    let mut c = daemon.connect();
    assert_err(&c.send(r#"{"cmd":"reconfigure","rate_pps":1000}"#));
    // Drain with nothing running is an ok no-op (idempotent lifecycle).
    let drain = c.send(r#"{"cmd":"drain"}"#);
    assert_ok(&drain);
    assert_eq!(drain.get("state").and_then(Json::as_str), Some("idle"));
    daemon.finish();
}

#[test]
fn reconfigure_under_load_keeps_counters_monotone() {
    let daemon = TestDaemon::start("reconf");
    let mut c = daemon.connect();
    assert_ok(&c.send(
        r#"{"cmd":"submit","name":"reconf-under-load","rate_pps":30000,"discipline":"metronome","m":2,"seed":11}"#,
    ));

    let stats = |c: &mut Client| {
        let s = c.send(r#"{"cmd":"stats"}"#);
        assert_ok(&s);
        (
            s.get("offered").and_then(Json::as_u64).unwrap(),
            s.get("processed").and_then(Json::as_u64).unwrap(),
            s.get("dropped").and_then(Json::as_u64).unwrap(),
        )
    };

    // Let traffic flow, then hammer reconfigures while sampling counters.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats(&mut c).1 == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut prev = stats(&mut c);
    assert!(prev.1 > 0, "no packets processed before reconfigure");

    for (i, cmd) in [
        r#"{"cmd":"reconfigure","rate_pps":60000}"#,
        r#"{"cmd":"reconfigure","discipline":"busy-poll"}"#,
        r#"{"cmd":"reconfigure","discipline":"metronome","m":3}"#,
        r#"{"cmd":"reconfigure","m":2}"#,
    ]
    .iter()
    .enumerate()
    {
        assert_ok(&c.send(cmd));
        std::thread::sleep(Duration::from_millis(120));
        let now = stats(&mut c);
        assert!(
            now.0 >= prev.0 && now.1 >= prev.1 && now.2 >= prev.2,
            "counters regressed after reconfigure #{i}: {prev:?} -> {now:?}"
        );
        prev = now;
    }
    // An invalid reconfigure is rejected and the pipeline keeps running.
    assert_err(&c.send(r#"{"cmd":"reconfigure","discipline":"metronome","m":1}"#)); // M < N
                                                                                    // Widening the generator on an SPSC port is rejected too — the port
                                                                                    // persists across re-arms, and SPSC rings admit one producer.
    assert_err(&c.send(r#"{"cmd":"reconfigure","gen_shards":2}"#));
    let now = stats(&mut c);
    assert!(
        now.1 >= prev.1,
        "counters regressed after rejected reconfigure"
    );

    let drain = c.send(r#"{"cmd":"drain"}"#);
    assert_ok(&drain);
    assert_eq!(drain.get("conserved").and_then(Json::as_bool), Some(true));
    assert_eq!(
        drain.get("pool_balanced").and_then(Json::as_bool),
        Some(true)
    );
    daemon.finish();
}

#[test]
fn sharded_generation_conserves_and_reconfigures() {
    let daemon = TestDaemon::start("gen-shards");
    let mut c = daemon.connect();
    // Two producer shards need a multi-producer ring path.
    let submit = c.send(
        r#"{"cmd":"submit","name":"sharded","rate_pps":40000,"discipline":"metronome","m":2,"seed":3,"ring_path":"mpsc","gen_shards":2}"#,
    );
    assert_ok(&submit);
    assert_eq!(submit.get("gen_shards").and_then(Json::as_u64), Some(2));
    assert_eq!(submit.get("ring_path").and_then(Json::as_str), Some("mpsc"));

    // Both shards produce: wait until packets flow, then check stats.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = c.send(r#"{"cmd":"stats"}"#);
        assert_ok(&s);
        assert_eq!(s.get("gen_shards").and_then(Json::as_u64), Some(2));
        if s.get("processed").and_then(Json::as_u64).unwrap_or(0) > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "no packets processed");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Narrow the generator set live; counters must stay monotone.
    let before = c
        .send(r#"{"cmd":"stats"}"#)
        .get("offered")
        .and_then(Json::as_u64)
        .unwrap();
    let reply = c.send(r#"{"cmd":"reconfigure","gen_shards":1}"#);
    assert_ok(&reply);
    assert_eq!(reply.get("gen_shards").and_then(Json::as_u64), Some(1));
    std::thread::sleep(Duration::from_millis(100));
    let s = c.send(r#"{"cmd":"stats"}"#);
    assert_eq!(s.get("gen_shards").and_then(Json::as_u64), Some(1));
    assert!(
        s.get("offered").and_then(Json::as_u64).unwrap() >= before,
        "offered regressed across a gen_shards reconfigure"
    );

    // Exact conservation and a whole pool after two generator
    // generations (2 shards, then 1) produced on shared MPSC rings.
    let drain = c.send(r#"{"cmd":"drain"}"#);
    assert_ok(&drain);
    assert_eq!(drain.get("conserved").and_then(Json::as_bool), Some(true));
    assert_eq!(
        drain.get("pool_balanced").and_then(Json::as_bool),
        Some(true)
    );
    daemon.finish();
}

/// Plain HTTP/1.1 GET against the metrics listener; returns the raw
/// header block and the body.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut stream, &mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// One header's value out of a raw header block (names matched
/// case-insensitively, as HTTP requires).
fn header<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn trace_dump_covers_workers_and_marks_reconfigures() {
    let daemon = TestDaemon::start("trace");
    let mut c = daemon.connect();
    let submit = c.send(
        r#"{"cmd":"submit","name":"traced","rate_pps":30000,"discipline":"metronome","m":2,"seed":5}"#,
    );
    assert_ok(&submit);
    assert_eq!(
        submit.get("trace").and_then(Json::as_bool),
        Some(true),
        "tracing defaults to on"
    );

    // Let traffic flow so the recorders have something to say.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = c.send(r#"{"cmd":"stats"}"#);
        assert!(
            s.get("uptime_ms").and_then(Json::as_u64).is_some(),
            "stats must carry uptime_ms: {}",
            s.render()
        );
        assert_eq!(
            s.get("exec_backend").and_then(Json::as_str),
            Some("threads"),
            "stats must carry exec_backend"
        );
        assert_eq!(
            s.get("shards").and_then(Json::as_u64),
            Some(0),
            "thread backend has no executor shards"
        );
        assert_eq!(
            s.get("gen_shards").and_then(Json::as_u64),
            Some(1),
            "stats must carry the generator shard count"
        );
        if s.get("processed").and_then(Json::as_u64).unwrap_or(0) > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "no packets processed");
        std::thread::sleep(Duration::from_millis(20));
    }

    // A reconfigure stamps a control-plane marker into the recorder.
    assert_ok(&c.send(r#"{"cmd":"reconfigure","rate_pps":60000}"#));

    let reply = c.send(r#"{"cmd":"trace"}"#);
    assert_ok(&reply);
    assert!(
        reply.get("events").and_then(Json::as_u64).unwrap_or(0) > 0,
        "recorder captured nothing: {}",
        reply.render()
    );
    let chrome = reply.get("chrome").expect("chrome dump rides inline");
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(
            ev.get("ph").and_then(Json::as_str).is_some(),
            "event without ph"
        );
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
    }
    let summary = reply.get("summary").expect("summary rides inline");
    let workers = summary.get("workers").and_then(Json::as_arr).unwrap();
    let kind_total = |kind: &str| -> u64 {
        workers
            .iter()
            .filter_map(|w| {
                w.get("kinds")
                    .and_then(|k| k.get(kind))
                    .and_then(Json::as_u64)
            })
            .sum()
    };
    assert!(
        kind_total("burst") > 0,
        "processed packets but no burst events: {}",
        summary.render()
    );
    assert!(
        kind_total("reconfigure") >= 1,
        "reconfigure marker missing: {}",
        summary.render()
    );

    // Dump-to-file: the written artifact is the same loadable document.
    let path = std::env::temp_dir().join(format!("metronomed-trace-{}.json", std::process::id()));
    let reply = c.send(&format!(r#"{{"cmd":"trace","path":"{}"}}"#, path.display()));
    assert_ok(&reply);
    assert!(reply.get("bytes").and_then(Json::as_u64).unwrap_or(0) > 0);
    let written = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&written).expect("trace file is valid JSON");
    assert!(doc.get("traceEvents").and_then(Json::as_arr).is_some());
    let _ = std::fs::remove_file(&path);

    daemon.finish();
}

#[test]
fn trace_errors_cleanly_when_idle_or_disabled() {
    let daemon = TestDaemon::start("trace-off");
    let mut c = daemon.connect();
    // Idle: nothing to dump.
    assert_err(&c.send(r#"{"cmd":"trace"}"#));
    // Opted out at submit: a typed error, not an empty dump.
    let submit = c.send(r#"{"cmd":"submit","name":"untraced","rate_pps":5000,"trace":false}"#);
    assert_ok(&submit);
    assert_eq!(submit.get("trace").and_then(Json::as_bool), Some(false));
    assert_err(&c.send(r#"{"cmd":"trace"}"#));
    daemon.finish();
}

#[test]
fn http_pins_metrics_content_type_and_serves_healthz() {
    let daemon = TestDaemon::start("http");
    let mut c = daemon.connect();
    assert_ok(&c.send(r#"{"cmd":"submit","name":"scraped","rate_pps":20000}"#));
    std::thread::sleep(Duration::from_millis(100));
    let addr = daemon.metrics.as_ref().unwrap().addr();

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let ctype = header(&head, "Content-Type").expect("Content-Type header");
    assert!(
        ctype.starts_with("text/plain; version=0.0.4"),
        "Prometheus content type must be pinned, got {ctype:?}"
    );
    assert_eq!(
        header(&head, "Content-Length").and_then(|v| v.parse::<usize>().ok()),
        Some(body.len()),
        "Content-Length must match the body exactly"
    );
    // Tracing is on by default, so the flight-recorder histograms are
    // exposed as real histogram series.
    for series in [
        "metronome_wake_latency_seconds_bucket",
        "metronome_oversleep_seconds_sum",
        "metronome_sched_delay_seconds_count",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }

    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let health = Json::parse(body.trim()).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("state").and_then(Json::as_str), Some("running"));
    assert!(health.get("uptime_ms").and_then(Json::as_u64).is_some());

    let (head, _) = http_get(addr, "/warp");
    assert!(head.starts_with("HTTP/1.1 404"), "bad status: {head}");
    daemon.finish();
}

#[test]
fn double_shutdown_is_idempotent() {
    let daemon = TestDaemon::start("double-shutdown");
    let mut c = daemon.connect();
    assert_ok(&c.send(r#"{"cmd":"submit","name":"brief","rate_pps":5000}"#));
    std::thread::sleep(Duration::from_millis(50));

    let first = c.send(r#"{"cmd":"shutdown"}"#);
    assert_ok(&first);
    assert_eq!(first.get("shutdown").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("conserved").and_then(Json::as_bool), Some(true));

    // Same connection, second shutdown: still a clean ok, not a panic,
    // not a hang, nothing double-freed (the drain is a no-op now).
    let second = c.send(r#"{"cmd":"shutdown"}"#);
    assert_ok(&second);
    assert_eq!(
        second.get("already_drained").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        second.get("pool_balanced").and_then(Json::as_bool),
        Some(true)
    );
    daemon.finish();
}

#[test]
fn submit_while_running_is_rejected() {
    let daemon = TestDaemon::start("double-submit");
    let mut c = daemon.connect();
    assert_ok(&c.send(r#"{"cmd":"submit","name":"first","rate_pps":5000}"#));
    assert_err(&c.send(r#"{"cmd":"submit","name":"second","rate_pps":5000}"#));
    assert_ok(&c.send(r#"{"cmd":"drain"}"#));
    // After a drain the pipeline is free again.
    assert_ok(&c.send(r#"{"cmd":"submit","name":"third","rate_pps":5000}"#));
    daemon.finish();
}
