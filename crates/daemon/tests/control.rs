//! Control-socket protocol tests against a live in-process daemon: a
//! real `UnixListener`, real connections, real worker threads behind
//! every reply.

use metronome_daemon::{ControlServer, DaemonConfig, MetricsServer, ServiceEngine};
use metronome_telemetry::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TestDaemon {
    engine: Arc<ServiceEngine>,
    control: Option<ControlServer>,
    metrics: Option<MetricsServer>,
    socket: PathBuf,
}

impl TestDaemon {
    fn start(name: &str) -> TestDaemon {
        let socket = std::env::temp_dir().join(format!(
            "metronomed-test-{}-{name}.sock",
            std::process::id()
        ));
        let engine = Arc::new(ServiceEngine::new(DaemonConfig {
            n_queues: 2,
            ring_size: 256,
            ..DaemonConfig::default()
        }));
        let control = ControlServer::start(&socket, Arc::clone(&engine)).expect("bind socket");
        let metrics =
            MetricsServer::start("127.0.0.1:0", Arc::clone(&engine)).expect("bind metrics");
        TestDaemon {
            engine,
            control: Some(control),
            metrics: Some(metrics),
            socket,
        }
    }

    fn connect(&self) -> Client {
        let stream = UnixStream::connect(&self.socket).expect("connect control socket");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            reader,
            writer: stream,
        }
    }

    /// Shut the daemon down (via a fresh connection) and join both
    /// listeners so no threads outlive the test.
    fn finish(mut self) {
        if !self.engine.is_shutdown() {
            let mut c = self.connect();
            let reply = c.send(r#"{"cmd":"shutdown"}"#);
            assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        }
        self.control.take().unwrap().join();
        self.metrics.take().unwrap().join();
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn send(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        loop {
            match self.reader.read_line(&mut reply) {
                Ok(0) => panic!("daemon hung up mid-reply"),
                Ok(_) => break,
                // Partial-line timeout: keep reading, bytes are retained.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        Json::parse(reply.trim()).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
    }
}

fn assert_ok(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok reply, got {}",
        reply.render()
    );
}

fn assert_err(reply: &Json) {
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected error reply, got {}",
        reply.render()
    );
    assert!(
        reply.get("error").and_then(Json::as_str).is_some(),
        "error reply must carry a message: {}",
        reply.render()
    );
}

#[test]
fn malformed_requests_get_typed_errors_and_daemon_stays_up() {
    let daemon = TestDaemon::start("malformed");
    let mut c = daemon.connect();
    for bad in [
        "not json at all",
        r#"{"cmd":"warp-core"}"#,
        r#"{"no_cmd_field":1}"#,
        r#"{"cmd":"submit","rate_pps":"fast"}"#,
        r#"{"cmd":"submit","faults":[{"kind":"gamma-ray","at_ms":1,"duration_ms":1}]}"#,
        r#"{"cmd":"reconfigure"}"#,
        r#"[1,2,3]"#,
    ] {
        let reply = c.send(bad);
        assert_err(&reply);
    }
    // The daemon survived all of it — on the same connection and a new one.
    assert_eq!(
        c.send(r#"{"cmd":"ping"}"#)
            .get("reply")
            .and_then(Json::as_str),
        Some("pong")
    );
    let mut fresh = daemon.connect();
    assert_ok(&fresh.send(r#"{"cmd":"ping"}"#));
    daemon.finish();
}

#[test]
fn commands_needing_a_run_fail_cleanly_when_idle() {
    let daemon = TestDaemon::start("idle");
    let mut c = daemon.connect();
    assert_err(&c.send(r#"{"cmd":"reconfigure","rate_pps":1000}"#));
    // Drain with nothing running is an ok no-op (idempotent lifecycle).
    let drain = c.send(r#"{"cmd":"drain"}"#);
    assert_ok(&drain);
    assert_eq!(drain.get("state").and_then(Json::as_str), Some("idle"));
    daemon.finish();
}

#[test]
fn reconfigure_under_load_keeps_counters_monotone() {
    let daemon = TestDaemon::start("reconf");
    let mut c = daemon.connect();
    assert_ok(&c.send(
        r#"{"cmd":"submit","name":"reconf-under-load","rate_pps":30000,"discipline":"metronome","m":2,"seed":11}"#,
    ));

    let stats = |c: &mut Client| {
        let s = c.send(r#"{"cmd":"stats"}"#);
        assert_ok(&s);
        (
            s.get("offered").and_then(Json::as_u64).unwrap(),
            s.get("processed").and_then(Json::as_u64).unwrap(),
            s.get("dropped").and_then(Json::as_u64).unwrap(),
        )
    };

    // Let traffic flow, then hammer reconfigures while sampling counters.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats(&mut c).1 == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut prev = stats(&mut c);
    assert!(prev.1 > 0, "no packets processed before reconfigure");

    for (i, cmd) in [
        r#"{"cmd":"reconfigure","rate_pps":60000}"#,
        r#"{"cmd":"reconfigure","discipline":"busy-poll"}"#,
        r#"{"cmd":"reconfigure","discipline":"metronome","m":3}"#,
        r#"{"cmd":"reconfigure","m":2}"#,
    ]
    .iter()
    .enumerate()
    {
        assert_ok(&c.send(cmd));
        std::thread::sleep(Duration::from_millis(120));
        let now = stats(&mut c);
        assert!(
            now.0 >= prev.0 && now.1 >= prev.1 && now.2 >= prev.2,
            "counters regressed after reconfigure #{i}: {prev:?} -> {now:?}"
        );
        prev = now;
    }
    // An invalid reconfigure is rejected and the pipeline keeps running.
    assert_err(&c.send(r#"{"cmd":"reconfigure","discipline":"metronome","m":1}"#)); // M < N
    let now = stats(&mut c);
    assert!(
        now.1 >= prev.1,
        "counters regressed after rejected reconfigure"
    );

    let drain = c.send(r#"{"cmd":"drain"}"#);
    assert_ok(&drain);
    assert_eq!(drain.get("conserved").and_then(Json::as_bool), Some(true));
    assert_eq!(
        drain.get("pool_balanced").and_then(Json::as_bool),
        Some(true)
    );
    daemon.finish();
}

#[test]
fn double_shutdown_is_idempotent() {
    let daemon = TestDaemon::start("double-shutdown");
    let mut c = daemon.connect();
    assert_ok(&c.send(r#"{"cmd":"submit","name":"brief","rate_pps":5000}"#));
    std::thread::sleep(Duration::from_millis(50));

    let first = c.send(r#"{"cmd":"shutdown"}"#);
    assert_ok(&first);
    assert_eq!(first.get("shutdown").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("conserved").and_then(Json::as_bool), Some(true));

    // Same connection, second shutdown: still a clean ok, not a panic,
    // not a hang, nothing double-freed (the drain is a no-op now).
    let second = c.send(r#"{"cmd":"shutdown"}"#);
    assert_ok(&second);
    assert_eq!(
        second.get("already_drained").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        second.get("pool_balanced").and_then(Json::as_bool),
        Some(true)
    );
    daemon.finish();
}

#[test]
fn submit_while_running_is_rejected() {
    let daemon = TestDaemon::start("double-submit");
    let mut c = daemon.connect();
    assert_ok(&c.send(r#"{"cmd":"submit","name":"first","rate_pps":5000}"#));
    assert_err(&c.send(r#"{"cmd":"submit","name":"second","rate_pps":5000}"#));
    assert_ok(&c.send(r#"{"cmd":"drain"}"#));
    // After a drain the pipeline is free again.
    assert_ok(&c.send(r#"{"cmd":"submit","name":"third","rate_pps":5000}"#));
    daemon.finish();
}
