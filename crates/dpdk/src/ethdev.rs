//! Transmit-side batching (`rte_eth_tx_buffer` analogue).
//!
//! DPDK amortizes PCIe doorbells by moving descriptors to the Tx queue only
//! once a batch threshold is reached. The paper calls this out as a latency
//! factor for Metronome (§V-C): "as our system periodically experiments a
//! vacation period some packets may remain in the transmission buffer for a
//! long period of time without actually being sent"; setting the batch to 1
//! fixed low-rate variance at the price of "a 2-3% increase in CPU
//! utilization at line rate". [`TxBuffer`] reproduces exactly that
//! behaviour and cost trade-off; the ablation bench compares batch 32 vs 1.

use crate::mbuf::Mbuf;

/// Default DPDK Tx batch ("usually set to 32" — paper Appendix II).
pub const DEFAULT_TX_BATCH: usize = 32;

/// A buffered transmit queue that flushes in batches.
pub struct TxBuffer {
    batch: usize,
    pending: Vec<Mbuf>,
    sent: u64,
    flushes: u64,
}

impl TxBuffer {
    /// Buffer flushing every `batch` packets (1 disables batching).
    pub fn new(batch: usize) -> Self {
        assert!(batch >= 1, "batch must be >= 1");
        TxBuffer {
            batch,
            pending: Vec::with_capacity(batch),
            sent: 0,
            flushes: 0,
        }
    }

    /// Configured batch threshold.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Packets waiting for a flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Queue a packet for transmission. If the batch threshold is reached
    /// the buffer flushes into `wire` and returns the number of packets
    /// sent (0 if still buffering).
    pub fn buffer(&mut self, mbuf: Mbuf, wire: &mut Vec<Mbuf>) -> usize {
        self.pending.push(mbuf);
        if self.pending.len() >= self.batch {
            self.flush(wire)
        } else {
            0
        }
    }

    /// Force out everything pending (called by applications when their Rx
    /// queue goes idle — Metronome threads flush before sleeping).
    pub fn flush(&mut self, wire: &mut Vec<Mbuf>) -> usize {
        let n = self.pending.len();
        wire.append(&mut self.pending);
        self.sent += n as u64;
        if n > 0 {
            self.flushes += 1;
        }
        n
    }

    /// (packets sent, flush operations) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.sent, self.flushes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn mbuf() -> Mbuf {
        Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]))
    }

    #[test]
    fn batches_at_threshold() {
        let mut tx = TxBuffer::new(4);
        let mut wire = Vec::new();
        assert_eq!(tx.buffer(mbuf(), &mut wire), 0);
        assert_eq!(tx.buffer(mbuf(), &mut wire), 0);
        assert_eq!(tx.buffer(mbuf(), &mut wire), 0);
        assert_eq!(tx.pending(), 3);
        assert_eq!(tx.buffer(mbuf(), &mut wire), 4);
        assert_eq!(wire.len(), 4);
        assert_eq!(tx.pending(), 0);
    }

    #[test]
    fn batch_one_sends_immediately() {
        let mut tx = TxBuffer::new(1);
        let mut wire = Vec::new();
        assert_eq!(tx.buffer(mbuf(), &mut wire), 1);
        assert_eq!(wire.len(), 1);
        assert_eq!(tx.pending(), 0);
    }

    #[test]
    fn explicit_flush_drains_partial_batch() {
        let mut tx = TxBuffer::new(32);
        let mut wire = Vec::new();
        for _ in 0..5 {
            tx.buffer(mbuf(), &mut wire);
        }
        assert!(wire.is_empty(), "below threshold, nothing sent");
        assert_eq!(tx.flush(&mut wire), 5);
        assert_eq!(wire.len(), 5);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut tx = TxBuffer::new(32);
        let mut wire = Vec::new();
        assert_eq!(tx.flush(&mut wire), 0);
        assert_eq!(tx.counters(), (0, 0));
    }

    #[test]
    fn counters_track_sent_and_flushes() {
        let mut tx = TxBuffer::new(2);
        let mut wire = Vec::new();
        for _ in 0..5 {
            tx.buffer(mbuf(), &mut wire);
        }
        tx.flush(&mut wire);
        // 5 packets: two automatic flushes (2+2) + one explicit (1).
        assert_eq!(tx.counters(), (5, 3));
    }

    #[test]
    #[should_panic(expected = "batch must be")]
    fn zero_batch_rejected() {
        TxBuffer::new(0);
    }
}
