//! Lock-free bounded rings (`rte_ring` analogue): the concurrency
//! primitives behind [`crate::shared_ring::SharedRing`]'s fast paths.
//!
//! DPDK's whole premise — the one the Metronome paper leans on — is that
//! retrieval cost dominates the hot path, so `rte_ring` never takes a
//! lock: producers and consumers move batched head/tail indices with
//! relaxed loads and acquire/release publications. This module reproduces
//! that design for the two topologies the pipeline actually runs:
//!
//! * [`SpscRing`] — single producer, single consumer *at a time*: the
//!   common shape (one RSS generator feeding one retrieval worker per
//!   queue; Metronome's racing workers are serialized per queue by the
//!   trylock, so "single consumer at a time" holds there too). Each side
//!   owns its index exclusively and publishes it with a release store;
//!   the opposite side reads it with an acquire load **once per burst**,
//!   through a cached copy that is only refreshed when the cached view
//!   runs out of space/items — the batched head/tail update of
//!   `__rte_ring_move_prod_head`.
//! * [`MpscRing`] — multiple producers (the elastic-fleet direction:
//!   several generator threads feeding one queue), single consumer at a
//!   time. Producers claim slots with a CAS on the tail and publish each
//!   slot with a per-slot sequence number (Vyukov's bounded queue), so a
//!   consumer never observes a claimed-but-unwritten slot.
//!
//! **Soundness under misuse.** Both rings are shared through `Arc` and
//! expose `&self` methods, so the type system cannot prove the
//! single-producer/single-consumer discipline. Instead of an `unsafe`
//! contract leaking into callers, each exclusive side is protected by a
//! one-word spin guard acquired **once per operation** (not per item):
//! in the intended topology the CAS never spins — it is a single
//! uncontended atomic exchange, the same cost DPDK pays to move a head
//! index — and under misuse the guard serializes instead of corrupting.
//! This mirrors DPDK's own MP path, where a producer spins waiting for
//! earlier producers' tail updates.
//!
//! **Ordering contract** (the table DESIGN.md §2 records):
//!
//! | operation | loads | stores |
//! |---|---|---|
//! | SPSC push burst | own tail `Relaxed`; head `Acquire` only on apparent-full | slots plain; tail `Release` |
//! | SPSC pop burst | own head `Relaxed`; tail `Acquire` only on apparent-shortfall | slots plain; head `Release` |
//! | MPSC push | tail `Relaxed` + CAS; slot seq `Acquire` | value plain; slot seq `Release` |
//! | MPSC pop | slot seq `Acquire` | slot seq `Release` (reuse), head `Relaxed` |
//! | guards | CAS `Acquire` | `Release` (publishes cached indices to the next owner) |
//!
//! The memory-safety argument is confined to this module; the rest of the
//! crate remains `#[deny(unsafe_code)]`-clean.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Pad-and-align to a cache line so the producer and consumer indices
/// never false-share (the `rte_ring` layout; real crossbeam calls this
/// `CachePadded`).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// A one-word spin guard over one *side* (producer or consumer) of a
/// ring: acquired once per burst, free in the intended single-owner
/// topology, serializing under misuse. Releasing publishes everything the
/// owner wrote (cached indices included) to the next owner.
#[derive(Debug, Default)]
struct SideGuard(AtomicBool);

impl SideGuard {
    #[inline]
    fn acquire(&self) {
        while self
            .0
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn release(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Assert a power-of-two ring capacity (mask indexing, like `rte_ring`).
fn check_capacity(capacity: usize) -> usize {
    assert!(
        capacity > 0 && capacity.is_power_of_two(),
        "ring capacity must be a non-zero power of two, got {capacity}"
    );
    capacity
}

// ---------------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------------

/// One producer side: the tail index it owns, plus its cached view of the
/// consumer's head (refreshed with one acquire load per apparent-full).
#[derive(Debug, Default)]
struct ProducerSide {
    /// Next slot to write; monotonically increasing, masked on use.
    tail: AtomicUsize,
    /// The producer's last acquire-read of the consumer head.
    head_cache: AtomicUsize,
    guard: SideGuard,
}

/// One consumer side, mirrored.
#[derive(Debug, Default)]
struct ConsumerSide {
    /// Next slot to read; monotonically increasing, masked on use.
    head: AtomicUsize,
    /// The consumer's last acquire-read of the producer tail.
    tail_cache: AtomicUsize,
    guard: SideGuard,
}

/// A bounded single-producer single-consumer ring with batched
/// acquire/release head/tail updates — the lock-free fast path of
/// [`crate::shared_ring::SharedRing`].
///
/// "Single" means *at a time*: distinct threads may take turns on either
/// side (the guard hands the cached indices over with release/acquire
/// ordering), which is exactly the discipline Metronome's trylock
/// enforces on the consumer side.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    prod: CacheLine<ProducerSide>,
    cons: CacheLine<ConsumerSide>,
}

// SAFETY: the ring transfers owned `T`s between threads (so `T: Send` is
// required); every slot is written by exactly one side while the indices
// and side guards serialize access to it, so `&SpscRing` may be shared.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Ring holding up to `capacity` items.
    ///
    /// # Panics
    /// If `capacity` is zero or not a power of two.
    pub fn new(capacity: usize) -> Self {
        let capacity = check_capacity(capacity);
        SpscRing {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            mask: capacity - 1,
            prod: CacheLine::default(),
            cons: CacheLine::default(),
        }
    }

    /// Maximum items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued (a racy snapshot, like `rte_ring_count`).
    pub fn len(&self) -> usize {
        let tail = self.prod.0.tail.load(Ordering::Acquire);
        let head = self.cons.0.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True if nothing is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the ring is at capacity (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Move the first items of `src` into the ring, in order, as one
    /// batched index update: free space is computed once (refreshing the
    /// cached consumer head only if the cached view looks too full), the
    /// accepted prefix is drained out of `src`, and the new tail is
    /// published with a single release store. Returns how many items were
    /// accepted; the rejected remainder stays in `src`.
    pub fn push_burst(&self, src: &mut Vec<T>) -> usize {
        let want = src.len();
        if want == 0 {
            return 0;
        }
        let side = &self.prod.0;
        side.guard.acquire();
        let tail = side.tail.load(Ordering::Relaxed);
        let mut head = side.head_cache.load(Ordering::Relaxed);
        if self.capacity() - tail.wrapping_sub(head) < want {
            head = self.cons.0.head.load(Ordering::Acquire);
            side.head_cache.store(head, Ordering::Relaxed);
        }
        let free = self.capacity() - tail.wrapping_sub(head);
        let n = want.min(free);
        for (i, value) in src.drain(..n).enumerate() {
            // SAFETY: slots [tail, tail+n) are at or past the consumer
            // head plus capacity, so the consumer is done with them; the
            // producer guard makes us the only writer.
            unsafe {
                (*self.slots[tail.wrapping_add(i) & self.mask].get()).write(value);
            }
        }
        // Publish the filled slots: pairs with the consumer's acquire
        // load of the tail.
        side.tail.store(tail.wrapping_add(n), Ordering::Release);
        side.guard.release();
        n
    }

    /// Push one item, or hand it back if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let side = &self.prod.0;
        side.guard.acquire();
        let tail = side.tail.load(Ordering::Relaxed);
        let mut head = side.head_cache.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) == self.capacity() {
            head = self.cons.0.head.load(Ordering::Acquire);
            side.head_cache.store(head, Ordering::Relaxed);
        }
        let result = if tail.wrapping_sub(head) == self.capacity() {
            Err(value)
        } else {
            // SAFETY: as in `push_burst` — slot is consumer-free and the
            // guard makes us the only writer.
            unsafe {
                (*self.slots[tail & self.mask].get()).write(value);
            }
            side.tail.store(tail.wrapping_add(1), Ordering::Release);
            Ok(())
        };
        side.guard.release();
        result
    }

    /// Pop up to `max` items into `out` (appended), in order, as one
    /// batched index update: availability is computed once (refreshing the
    /// cached producer tail only if the cached view falls short of `max`),
    /// and the new head is published with a single release store. Returns
    /// how many items were taken.
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let side = &self.cons.0;
        side.guard.acquire();
        let head = side.head.load(Ordering::Relaxed);
        let mut tail = side.tail_cache.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) < max {
            tail = self.prod.0.tail.load(Ordering::Acquire);
            side.tail_cache.store(tail, Ordering::Relaxed);
        }
        let n = tail.wrapping_sub(head).min(max);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: slots [head, head+n) are at or before the
            // acquire-observed producer tail, so their writes are visible
            // and complete; the consumer guard makes us the only reader,
            // and advancing the head below transfers ownership out.
            unsafe {
                out.push((*self.slots[head.wrapping_add(i) & self.mask].get()).assume_init_read());
            }
        }
        // Publish the freed slots: pairs with the producer's acquire load
        // of the head.
        side.head.store(head.wrapping_add(n), Ordering::Release);
        side.guard.release();
        n
    }

    /// Pop the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        let side = &self.cons.0;
        side.guard.acquire();
        let head = side.head.load(Ordering::Relaxed);
        let mut tail = side.tail_cache.load(Ordering::Relaxed);
        if tail == head {
            tail = self.prod.0.tail.load(Ordering::Acquire);
            side.tail_cache.store(tail, Ordering::Relaxed);
        }
        let result = if tail == head {
            None
        } else {
            // SAFETY: as in `pop_burst`.
            let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
            side.head.store(head.wrapping_add(1), Ordering::Release);
            Some(value)
        };
        side.guard.release();
        result
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent access; drop whatever is still queued.
        let head = self.cons.0.head.load(Ordering::Relaxed);
        let tail = self.prod.0.tail.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: [head, tail) are exactly the initialized,
            // not-yet-consumed slots.
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

impl<T> std::fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// MPSC
// ---------------------------------------------------------------------------

/// A slot with its publication sequence (Vyukov's bounded MPMC design,
/// restricted here to many producers and one consumer at a time).
struct Seqslot<T> {
    /// `pos` ⇒ free for the producer claiming position `pos`;
    /// `pos + 1` ⇒ holds the value enqueued at position `pos`;
    /// advanced by `capacity` on dequeue for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer single-consumer ring: producers claim slots
/// with one CAS on the shared tail and publish them with per-slot
/// sequence numbers, so any number of generator threads can feed one
/// queue without a lock — the MPSC fast path of
/// [`crate::shared_ring::SharedRing`] (the elastic-fleet topology).
pub struct MpscRing<T> {
    slots: Box<[Seqslot<T>]>,
    mask: usize,
    /// Producer claim index (CAS-advanced; masked on use).
    tail: CacheLine<AtomicUsize>,
    cons: CacheLine<ConsumerSide>,
}

// SAFETY: as for `SpscRing` — owned values cross threads (`T: Send`), and
// slot publication sequences plus the consumer guard serialize every slot
// access.
unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    /// Ring holding up to `capacity` items.
    ///
    /// # Panics
    /// If `capacity` is zero or not a power of two.
    pub fn new(capacity: usize) -> Self {
        let capacity = check_capacity(capacity);
        MpscRing {
            slots: (0..capacity)
                .map(|i| Seqslot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: capacity - 1,
            tail: CacheLine(AtomicUsize::new(0)),
            cons: CacheLine::default(),
        }
    }

    /// Maximum items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.cons.0.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True if nothing is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one item, or hand it back if the ring is full. Any number of
    /// threads may push concurrently.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let lag = (seq as isize).wrapping_sub(pos as isize);
            if lag == 0 {
                // Slot is free for position `pos`: claim it.
                match self.tail.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made us the unique claimant of
                        // `pos`; the consumer will not read the slot until
                        // the sequence store below publishes it.
                        unsafe {
                            (*slot.value.get()).write(value);
                        }
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if lag < 0 {
                // The slot still holds last lap's value: ring full.
                return Err(value);
            } else {
                // Another producer claimed `pos`; chase the tail.
                pos = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Move the first items of `src` into the ring, in order, stopping at
    /// the first full rejection. Returns how many were accepted; the
    /// remainder stays in `src` (shifted to the front), preserving the
    /// offer-burst contract of [`SpscRing::push_burst`].
    pub fn push_burst(&self, src: &mut Vec<T>) -> usize {
        let len = src.len();
        let ptr = src.as_mut_ptr();
        // SAFETY: the vector's elements are moved out by raw reads below;
        // zeroing the length first means a panic cannot double-drop them
        // (`push` contains no panicking paths, so the leak window is
        // theoretical). Every index in [0, len) is either consumed by a
        // successful `push`, written back by the `Err` arm, or untouched;
        // the surviving range [accepted, len) is shifted to the front and
        // the length restored to cover exactly those live elements.
        unsafe {
            src.set_len(0);
            let mut accepted = 0usize;
            while accepted < len {
                let value = std::ptr::read(ptr.add(accepted));
                match self.push(value) {
                    Ok(()) => accepted += 1,
                    Err(back) => {
                        std::ptr::write(ptr.add(accepted), back);
                        break;
                    }
                }
            }
            std::ptr::copy(ptr.add(accepted), ptr, len - accepted);
            src.set_len(len - accepted);
            accepted
        }
    }

    /// Pop the oldest item, if any (single consumer at a time).
    pub fn pop(&self) -> Option<T> {
        let side = &self.cons.0;
        side.guard.acquire();
        let result = self.pop_locked();
        side.guard.release();
        result
    }

    /// Pop up to `max` items into `out` (appended), under one consumer
    /// guard acquisition. Returns how many were taken.
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let side = &self.cons.0;
        side.guard.acquire();
        let mut taken = 0usize;
        while taken < max {
            match self.pop_locked() {
                Some(value) => {
                    out.push(value);
                    taken += 1;
                }
                None => break,
            }
        }
        side.guard.release();
        taken
    }

    /// One dequeue with the consumer guard already held.
    fn pop_locked(&self) -> Option<T> {
        let side = &self.cons.0;
        let pos = side.head.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if (seq as isize).wrapping_sub(pos.wrapping_add(1) as isize) < 0 {
            // The producer at `pos` has not published yet: empty (or a
            // claimed slot still being written — same answer).
            return None;
        }
        // SAFETY: seq == pos + 1 means the producer's release store
        // published a complete value; the consumer guard makes us the only
        // reader, and bumping seq below hands the slot to the next lap's
        // producer only after the value is moved out.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        slot.seq
            .store(pos.wrapping_add(self.capacity()), Ordering::Release);
        side.head.store(pos.wrapping_add(1), Ordering::Relaxed);
        Some(value)
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent access; drop whatever is published
        // and unconsumed.
        while self.pop_locked().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_fifo_and_boundaries() {
        let r = SpscRing::new(4);
        assert!(r.is_empty());
        assert!(r.push(1).is_ok());
        assert!(r.push(2).is_ok());
        assert!(r.push(3).is_ok());
        assert!(r.push(4).is_ok());
        assert!(r.is_full());
        assert_eq!(r.push(5), Err(5));
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(5).is_ok(), "freed slot must be reusable");
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), Some(5));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn spsc_burst_roundtrip_wraps() {
        let r = SpscRing::new(8);
        let mut out = Vec::new();
        // Many laps around the ring to exercise index wrapping.
        let mut next = 0u64;
        for _ in 0..100 {
            let mut burst: Vec<u64> = (next..next + 6).collect();
            assert_eq!(r.push_burst(&mut burst), 6);
            assert!(burst.is_empty());
            next += 6;
            assert_eq!(r.pop_burst(&mut out, 6), 6);
        }
        assert_eq!(out.len(), 600);
        assert!(out.windows(2).all(|w| w[1] == w[0] + 1), "FIFO violated");
    }

    #[test]
    fn spsc_burst_rejects_overflow_in_src() {
        let r = SpscRing::new(4);
        let mut burst: Vec<u32> = (0..7).collect();
        assert_eq!(r.push_burst(&mut burst), 4);
        assert_eq!(burst, vec![4, 5, 6], "rejected tail must stay in src");
        let mut out = Vec::new();
        assert_eq!(r.pop_burst(&mut out, 16), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn spsc_two_threads_conserve_and_order() {
        const N: u64 = 200_000;
        let r = Arc::new(SpscRing::new(64));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut pending: Vec<u64> = Vec::new();
                let mut next = 0u64;
                while next < N || !pending.is_empty() {
                    while pending.len() < 32 && next < N {
                        pending.push(next);
                        next += 1;
                    }
                    if r.push_burst(&mut pending) == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut got = Vec::with_capacity(N as usize);
        let mut scratch = Vec::new();
        while got.len() < N as usize {
            if r.pop_burst(&mut scratch, 32) == 0 {
                std::thread::yield_now();
            }
            got.append(&mut scratch);
        }
        producer.join().unwrap();
        assert_eq!(got.len() as u64, N);
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1), "FIFO violated");
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn spsc_drops_queued_items_on_drop() {
        // Drop counting via Arc strong counts.
        let tracker = Arc::new(());
        {
            let r = SpscRing::new(8);
            for _ in 0..5 {
                r.push(Arc::clone(&tracker)).unwrap();
            }
            let _ = r.pop();
            assert_eq!(Arc::strong_count(&tracker), 5);
        }
        assert_eq!(Arc::strong_count(&tracker), 1, "queued items leaked");
    }

    #[test]
    fn mpsc_fifo_and_boundaries() {
        let r = MpscRing::new(4);
        assert!(r.push(1).is_ok());
        assert!(r.push(2).is_ok());
        assert!(r.push(3).is_ok());
        assert!(r.push(4).is_ok());
        assert_eq!(r.push(5), Err(5));
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(5).is_ok());
        let mut out = Vec::new();
        assert_eq!(r.pop_burst(&mut out, 16), 4);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn mpsc_push_burst_leaves_rejects() {
        let r = MpscRing::new(4);
        let mut burst: Vec<u32> = (0..6).collect();
        assert_eq!(r.push_burst(&mut burst), 4);
        assert_eq!(burst, vec![4, 5]);
        let mut out = Vec::new();
        r.pop_burst(&mut out, 8);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mpsc_many_producers_conserve() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 50_000;
        let r = Arc::new(MpscRing::new(128));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let mut v = p * PER + i;
                        loop {
                            match r.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let total = PRODUCERS * PER;
        let mut got: Vec<u64> = Vec::with_capacity(total as usize);
        let mut scratch = Vec::new();
        while got.len() < total as usize {
            if r.pop_burst(&mut scratch, 64) == 0 {
                std::thread::yield_now();
            }
            got.append(&mut scratch);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len() as u64, total);
        // Conservation: every value exactly once.
        got.sort_unstable();
        assert!(got.iter().copied().eq(0..total), "lost or duplicated items");
        // Per-producer FIFO is the MPSC contract (checked in the root
        // lockfree stress suite with interleaving-sensitive payloads).
    }

    #[test]
    fn mpsc_drops_queued_items_on_drop() {
        let tracker = Arc::new(());
        {
            let r = MpscRing::new(8);
            for _ in 0..6 {
                r.push(Arc::clone(&tracker)).unwrap();
            }
            let _ = r.pop();
            assert_eq!(Arc::strong_count(&tracker), 6);
        }
        assert_eq!(Arc::strong_count(&tracker), 1, "queued items leaked");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn spsc_rejects_non_power_of_two() {
        SpscRing::<u32>::new(48);
    }
}
