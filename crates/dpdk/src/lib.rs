//! # metronome-dpdk — the DPDK-like substrate
//!
//! A from-scratch stand-in for the slice of DPDK the Metronome paper
//! depends on. Real DPDK binds physical NICs via userspace drivers; this
//! crate reproduces the *interfaces and semantics* that Metronome's
//! algorithm and the paper's evaluation observe:
//!
//! * [`mbuf::Mbuf`] — packet buffers with Rx metadata (port, queue,
//!   RSS hash, arrival timestamp).
//! * [`mempool::Mempool`] — bounded pre-allocated buffer pools with
//!   exhaustion accounting: `Arc`-shared handles, atomic counters, and
//!   burst alloc/free that take the freelist lock once per burst (the
//!   per-lcore-cache amortization of `rte_mempool`).
//! * [`ring::Ring`] — Rx descriptor rings with burst dequeue and tail-drop,
//!   plus [`ring::RxRingModel`], the allocation-free occupancy model the
//!   discrete-event simulator uses (property-tested to agree with `Ring`).
//! * [`nic`] — framing math (64 B ⇒ 14.88 Mpps at 10 G), device profiles
//!   (X520, XL710 with its 37 Mpps silicon cap) and an RSS-dispatching
//!   functional [`nic::Port`].
//! * [`ethdev::TxBuffer`] — Tx batching with the exact latency-vs-CPU
//!   trade-off the paper measures when lowering the batch from 32 to 1.
//! * [`random::RteRand`] — the lock-free shared PRNG backup threads use to
//!   pick their next queue (paper Appendix II).
//! * [`shared_ring`] — the concurrent Rx side for the real-thread
//!   pipeline: [`shared_ring::SharedRing`] (bounded mbuf ring with
//!   tail-drop accounting and `offer_burst`/`pop_burst` batch APIs that
//!   hand rejected buffers back for recycling, lock-free SPSC/MPSC fast
//!   paths and a locked fallback) and [`shared_ring::RssPort`] (`N`
//!   rings behind one Toeplitz hasher).
//! * [`fastring`] — the lock-free bounded rings behind those fast paths
//!   ([`fastring::SpscRing`], [`fastring::MpscRing`]), `rte_ring`'s
//!   batched acquire/release head/tail design.
//! * [`scatter::QueueScatter`] — the generator-side scatter arena: one
//!   stable counting sort maps a produced batch onto per-queue bursts in
//!   `O(batch + touched_queues)`, independent of the queue count.

#![warn(missing_docs)]
// Everything except `fastring` is unsafe-free. That one module holds the
// `rte_ring`-style lock-free rings, whose slot ownership argument the
// borrow checker cannot express; its invariants are documented inline and
// it alone carries `#![allow(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod ethdev;
pub mod fastring;
pub mod mbuf;
pub mod mempool;
pub mod nic;
pub mod random;
pub mod ring;
pub mod scatter;
pub mod shared_ring;

pub use ethdev::TxBuffer;
pub use mbuf::Mbuf;
pub use mempool::{Mempool, MempoolCache, MempoolStats};
pub use nic::{NicProfile, Port};
pub use random::RteRand;
pub use ring::{Ring, RxRingModel};
pub use scatter::QueueScatter;
pub use shared_ring::{RingConsumer, RingPath, RssPort, SharedRing};
