//! Packet buffer (`rte_mbuf` analogue).
//!
//! An [`Mbuf`] owns the frame bytes plus the receive metadata a DPDK
//! application reads: ingress port/queue, the NIC-computed RSS hash, and
//! the arrival timestamp (our NIC model timestamps on DMA completion, which
//! is what MoonGen's hardware timestamping measures against).

use bytes::BytesMut;
use metronome_sim::Nanos;

/// A packet buffer with receive metadata.
#[derive(Debug, Clone)]
pub struct Mbuf {
    data: BytesMut,
    /// Ingress port id.
    pub port: u16,
    /// Ingress Rx queue index (RSS decision).
    pub queue: u16,
    /// RSS hash as computed by the NIC.
    pub rss_hash: u32,
    /// Arrival (DMA completion) timestamp.
    pub arrival: Nanos,
}

impl Mbuf {
    /// Wrap frame bytes with zeroed metadata.
    pub fn from_bytes(data: BytesMut) -> Self {
        Mbuf {
            data,
            port: 0,
            queue: 0,
            rss_hash: 0,
            arrival: Nanos::ZERO,
        }
    }

    /// Frame length in bytes (without wire overhead).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable frame bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable frame bytes (headers are rewritten in place, as in DPDK).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Replace the frame contents, keeping metadata (used by encapsulating
    /// applications like the IPsec gateway).
    pub fn replace_data(&mut self, data: BytesMut) {
        self.data = data;
    }

    /// Take the buffer out, leaving an empty mbuf (zero-copy handoff).
    pub fn take_data(&mut self) -> BytesMut {
        core::mem::take(&mut self.data)
    }

    /// Overwrite the frame contents with `frame`, keeping the underlying
    /// buffer (the template-fill path of the pooled datapath: one `memcpy`
    /// into an already-allocated buffer, no heap traffic as long as the
    /// frame fits the buffer's capacity — which pooled buffers guarantee
    /// by construction).
    pub fn refill(&mut self, frame: &[u8]) {
        debug_assert!(
            frame.len() <= self.data.capacity() || self.data.capacity() == 0,
            "refill beyond buffer capacity would reallocate"
        );
        self.data.clear();
        self.data.extend_from_slice(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_bytes() {
        let m = Mbuf::from_bytes(BytesMut::from(&b"hello"[..]));
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.bytes(), b"hello");
    }

    #[test]
    fn mutation_in_place() {
        let mut m = Mbuf::from_bytes(BytesMut::from(&[0u8; 4][..]));
        m.bytes_mut()[0] = 0xFF;
        assert_eq!(m.bytes()[0], 0xFF);
    }

    #[test]
    fn refill_reuses_capacity() {
        let mut m = Mbuf::from_bytes(BytesMut::with_capacity(16));
        m.refill(b"first frame");
        assert_eq!(m.bytes(), b"first frame");
        m.refill(b"second");
        assert_eq!(m.bytes(), b"second");
        assert!(m.len() == 6);
    }

    #[test]
    fn replace_and_take() {
        let mut m = Mbuf::from_bytes(BytesMut::from(&b"aa"[..]));
        m.replace_data(BytesMut::from(&b"bbbb"[..]));
        assert_eq!(m.len(), 4);
        let d = m.take_data();
        assert_eq!(&d[..], b"bbbb");
        assert!(m.is_empty());
    }
}
