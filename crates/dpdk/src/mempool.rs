//! Shared packet-buffer pool (`rte_mempool` analogue) with per-worker
//! caches.
//!
//! DPDK pre-allocates all mbufs from hugepage-backed pools shared by every
//! lcore; running out of pool buffers is a first-class failure mode (Rx
//! stalls even though the ring has descriptors). The pool here reproduces
//! that bounded-allocation discipline for the whole pipeline: a fixed
//! population of buffers of fixed capacity, O(1) alloc/free, exhaustion
//! accounting — and, since the realtime pipeline allocates on the producer
//! thread and recycles on the worker threads, the pool is a cheaply
//! clonable handle ([`Mempool`] is `Arc`-shared internally) whose every
//! method takes `&self`.
//!
//! **Burst discipline.** The freelist sits behind one short-critical-
//! section lock; all counters are atomics read lock-free. The shared
//! burst paths — [`Mempool::alloc_burst`] and [`Mempool::free_burst`] —
//! take the freelist lock *once per burst*.
//!
//! **Per-worker caches.** The lock-free tier above that is
//! [`MempoolCache`] (`rte_mempool`'s per-lcore cache): each thread owns a
//! private stack of buffers, so its alloc/free is a plain `Vec` push/pop
//! plus a handful of relaxed counter updates — no lock, no contention.
//! The cache refills from and spills to the shared freelist in
//! cache-sized chunks (refill pulls up to `2C`, spill triggers at `1.5C`
//! and drains back to `C`, DPDK's flush-threshold scheme), so the lock is
//! touched once per *C buffers*, not once per burst. Accounting stays
//! exact: in-flight = population − freelist − Σ cached, and
//! [`Mempool::available`] counts cached buffers as available, exactly
//! like `rte_mempool_avail_count`.

use crate::mbuf::Mbuf;
use bytes::BytesMut;
use metronome_telemetry::OccupancyProbe;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of a pool's counters (for reports: pool sizing visibility).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Total buffers the pool owns.
    pub population: u64,
    /// Successful allocations so far.
    pub allocs: u64,
    /// Buffers returned so far.
    pub frees: u64,
    /// Allocations that failed because the pool was empty.
    pub alloc_failures: u64,
    /// Highest number of buffers simultaneously handed out.
    pub in_use_peak: u64,
    /// Buffers currently parked in per-worker caches.
    pub cached: u64,
}

/// The sampler-visible gauge of one per-worker cache (how many buffers it
/// currently parks). Written only by the owning cache thread with plain
/// relaxed stores; read by anyone.
struct CacheSlot {
    cached: AtomicU64,
}

struct PoolShared {
    free: Mutex<Vec<BytesMut>>,
    /// Lock-free mirror of `free.len()`, updated inside every freelist
    /// critical section. Readers get a racy-but-bounded snapshot without
    /// ever touching the lock (telemetry sampling must not contend with
    /// the hot path).
    free_count: AtomicU64,
    /// Σ buffers currently parked in per-worker caches (cached buffers
    /// are *available*, not in flight — `rte_mempool_avail_count`
    /// semantics).
    cached_total: AtomicU64,
    /// Live per-cache gauges, for telemetry enumeration.
    caches: Mutex<Vec<Arc<CacheSlot>>>,
    buf_capacity: usize,
    population: usize,
    in_use: AtomicU64,
    in_use_peak: AtomicU64,
    alloc_failures: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

/// Fixed-population shared buffer pool. Cloning the handle shares the
/// pool, like passing an `rte_mempool*` between lcores.
#[derive(Clone)]
pub struct Mempool {
    shared: Arc<PoolShared>,
}

impl Mempool {
    /// Pool of `population` buffers, each able to hold `buf_capacity` bytes
    /// (DPDK's default dataroom is 2048).
    pub fn new(population: usize, buf_capacity: usize) -> Self {
        assert!(population > 0, "empty pool");
        Mempool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(
                    (0..population)
                        .map(|_| BytesMut::with_capacity(buf_capacity))
                        .collect(),
                ),
                free_count: AtomicU64::new(population as u64),
                cached_total: AtomicU64::new(0),
                caches: Mutex::new(Vec::new()),
                buf_capacity,
                population,
                in_use: AtomicU64::new(0),
                in_use_peak: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                frees: AtomicU64::new(0),
            }),
        }
    }

    /// Total buffers the pool owns.
    pub fn population(&self) -> usize {
        self.shared.population
    }

    /// Per-buffer byte capacity (the dataroom).
    pub fn buf_capacity(&self) -> usize {
        self.shared.buf_capacity
    }

    /// Buffers currently available — on the shared freelist or parked in
    /// per-worker caches (`rte_mempool_avail_count` counts both). A
    /// lock-free read: two relaxed loads, never the freelist lock, so
    /// telemetry sampling cannot contend with the hot path. Concurrent
    /// refill/spill may skew the snapshot by a chunk transiently.
    pub fn available(&self) -> usize {
        (self.shared.free_count.load(Ordering::Relaxed)
            + self.shared.cached_total.load(Ordering::Relaxed)) as usize
    }

    /// Buffers currently parked in per-worker caches (lock-free read).
    pub fn cached(&self) -> usize {
        self.shared.cached_total.load(Ordering::Relaxed) as usize
    }

    /// Per-cache occupancy gauges, one per live [`MempoolCache`], in
    /// registration order (the telemetry sampler's cache column).
    pub fn cached_per_cache(&self) -> Vec<u64> {
        self.shared
            .caches
            .lock()
            .iter()
            .map(|slot| slot.cached.load(Ordering::Relaxed))
            .collect()
    }

    /// Buffers currently handed out.
    pub fn in_use(&self) -> usize {
        self.shared.in_use.load(Ordering::Relaxed) as usize
    }

    /// Highest number of buffers simultaneously handed out so far.
    pub fn in_use_peak(&self) -> usize {
        self.shared.in_use_peak.load(Ordering::Relaxed) as usize
    }

    /// Times an allocation failed because the pool was empty.
    pub fn alloc_failures(&self) -> u64 {
        self.shared.alloc_failures.load(Ordering::Relaxed)
    }

    /// (allocations, frees) counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.allocs.load(Ordering::Relaxed),
            self.shared.frees.load(Ordering::Relaxed),
        )
    }

    /// All counters in one snapshot (for reports).
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            population: self.shared.population as u64,
            allocs: self.shared.allocs.load(Ordering::Relaxed),
            frees: self.shared.frees.load(Ordering::Relaxed),
            alloc_failures: self.shared.alloc_failures.load(Ordering::Relaxed),
            in_use_peak: self.shared.in_use_peak.load(Ordering::Relaxed),
            cached: self.shared.cached_total.load(Ordering::Relaxed),
        }
    }

    /// A per-worker cache of up to ~`2 * size` buffers (DPDK's per-lcore
    /// cache; `size` is `C` in the refill/spill scheme). Hand one to each
    /// thread that allocates or frees on the hot path; drop it (or
    /// [`MempoolCache::flush`]) to return the parked buffers. Sized so
    /// `size` matches the thread's burst: a warm cache then serves whole
    /// bursts without touching the freelist lock.
    pub fn cache(&self, size: usize) -> MempoolCache {
        assert!(size > 0, "zero-sized mempool cache");
        let slot = Arc::new(CacheSlot {
            cached: AtomicU64::new(0),
        });
        self.shared.caches.lock().push(Arc::clone(&slot));
        MempoolCache {
            pool: self.clone(),
            slot,
            stack: Vec::with_capacity(2 * size),
            size,
        }
    }

    /// Record `n` hand-outs. `in_use` RMWs on one atomic serialize in its
    /// modification order, and every buffer's free (`fetch_sub`) is
    /// ordered before its next hand-out's `fetch_add` — same thread for a
    /// cache hit, freelist-lock ordering for a refill — so `in_use` (and
    /// therefore `in_use_peak`) can never transiently exceed the
    /// population.
    fn account_allocs(&self, n: u64) {
        if n > 0 {
            self.shared.allocs.fetch_add(n, Ordering::Relaxed);
            let now = self.shared.in_use.fetch_add(n, Ordering::Relaxed) + n;
            self.shared.in_use_peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    fn account_failures(&self, shortfall: u64) {
        if shortfall > 0 {
            self.shared
                .alloc_failures
                .fetch_add(shortfall, Ordering::Relaxed);
        }
    }

    /// Allocate an empty mbuf, or `None` if the pool is exhausted.
    pub fn alloc(&self) -> Option<Mbuf> {
        let buf = {
            let mut free = self.shared.free.lock();
            let buf = free.pop();
            if buf.is_some() {
                self.shared.free_count.fetch_sub(1, Ordering::Relaxed);
                self.account_allocs(1);
            }
            buf
        };
        match buf {
            Some(mut buf) => {
                buf.clear();
                Some(Mbuf::from_bytes(buf))
            }
            None => {
                self.account_failures(1);
                None
            }
        }
    }

    /// Allocate and fill with `frame` bytes. Fails if the pool is empty or
    /// the frame exceeds the pool's buffer capacity (a too-long frame does
    /// not consume a buffer and is not counted as an exhaustion failure).
    pub fn alloc_with(&self, frame: &[u8]) -> Option<Mbuf> {
        if frame.len() > self.shared.buf_capacity {
            return None;
        }
        let mut m = self.alloc()?;
        m.refill(frame);
        Some(m)
    }

    /// Allocate up to `n` empty mbufs in one freelist critical section,
    /// appending them to `out`. Returns how many were obtained; the
    /// shortfall is counted as exhaustion failures.
    pub fn alloc_burst(&self, n: usize, out: &mut Vec<Mbuf>) -> usize {
        let mut got = 0usize;
        {
            let mut free = self.shared.free.lock();
            while got < n {
                match free.pop() {
                    Some(mut buf) => {
                        buf.clear();
                        out.push(Mbuf::from_bytes(buf));
                        got += 1;
                    }
                    None => break,
                }
            }
            self.shared
                .free_count
                .fetch_sub(got as u64, Ordering::Relaxed);
            self.account_allocs(got as u64);
        }
        self.account_failures((n - got) as u64);
        got
    }

    /// Return an mbuf's buffer to the pool.
    ///
    /// # Panics
    /// In debug builds, if more buffers are freed than were allocated
    /// (double free).
    pub fn free(&self, mbuf: Mbuf) {
        self.free_burst(std::iter::once(mbuf));
    }

    /// Return any number of mbufs in one freelist critical section (the
    /// recycle half of the burst discipline). Buffers are cleared before
    /// they re-enter the freelist.
    ///
    /// The iterator is consumed *while the freelist lock is held*: it
    /// must not call back into this pool (alloc, free, or even a cache
    /// spill) or it will self-deadlock on the non-reentrant mutex. Pass
    /// plain ownership transfers — `vec.drain(..)`, `once(mbuf)` — as
    /// every in-tree caller does.
    ///
    /// # Panics
    /// In debug builds, if the freelist would exceed the population
    /// (double free).
    pub fn free_burst(&self, mbufs: impl IntoIterator<Item = Mbuf>) {
        let mut n = 0u64;
        {
            let mut free = self.shared.free.lock();
            for mut mbuf in mbufs {
                debug_assert!(
                    free.len() < self.shared.population,
                    "mempool over-free (double free?)"
                );
                let mut buf = mbuf.take_data();
                buf.clear();
                free.push(buf);
                n += 1;
            }
            // Decrement in-use before the lock is released: once the
            // buffers are re-allocatable, their hand-back has already been
            // counted, so `in_use` never exceeds true in-flight.
            if n > 0 {
                self.shared.free_count.fetch_add(n, Ordering::Relaxed);
                self.shared.frees.fetch_add(n, Ordering::Relaxed);
                self.shared.in_use.fetch_sub(n, Ordering::Relaxed);
            }
        }
    }

    /// Move up to `want` raw buffers from the freelist into a cache stack
    /// (one critical section). Returns how many moved.
    fn refill_cache(&self, stack: &mut Vec<BytesMut>, want: usize) -> usize {
        let mut moved = 0usize;
        let mut free = self.shared.free.lock();
        while moved < want {
            match free.pop() {
                Some(buf) => {
                    stack.push(buf);
                    moved += 1;
                }
                None => break,
            }
        }
        // Both gauges move inside the critical section so `available()`
        // readers see at most one chunk of skew.
        self.shared
            .cached_total
            .fetch_add(moved as u64, Ordering::Relaxed);
        self.shared
            .free_count
            .fetch_sub(moved as u64, Ordering::Relaxed);
        moved
    }

    /// Return `count` raw buffers from a cache stack to the freelist (one
    /// critical section).
    fn spill_cache(&self, stack: &mut Vec<BytesMut>, count: usize) {
        let count = count.min(stack.len());
        if count == 0 {
            return;
        }
        let mut free = self.shared.free.lock();
        for buf in stack.drain(stack.len() - count..) {
            debug_assert!(
                free.len() < self.shared.population,
                "mempool over-free (double free?)"
            );
            free.push(buf);
        }
        self.shared
            .free_count
            .fetch_add(count as u64, Ordering::Relaxed);
        self.shared
            .cached_total
            .fetch_sub(count as u64, Ordering::Relaxed);
    }
}

/// The sampler-facing gauge view of a pool: "occupancy" is buffers
/// currently handed out (in use). Reads are atomic loads — the freelist
/// lock is never taken.
impl OccupancyProbe for Mempool {
    fn occupancy(&self) -> u64 {
        self.shared.in_use.load(Ordering::Relaxed)
    }

    fn capacity(&self) -> u64 {
        self.shared.population as u64
    }
}

/// A per-worker allocation cache (`rte_mempool`'s per-lcore cache): a
/// thread-private stack of pool buffers. Alloc and free on a warm cache
/// are a `Vec` pop/push plus relaxed counter updates — no lock. The cache
/// exchanges buffers with the shared freelist in chunks: an empty cache
/// refills to `size` beyond the current need; a cache past `1.5 * size`
/// spills down to `size` (DPDK's flush threshold). Bursts larger than
/// `2 * size` bypass the cache entirely and hit the shared burst path.
///
/// Owned, not clonable: one per thread, like one per lcore. Dropping it
/// flushes the parked buffers back to the freelist, so a worker that
/// exits returns everything it held — pool audits (`in_use() == 0` at
/// quiescence) hold without extra ceremony.
pub struct MempoolCache {
    pool: Mempool,
    slot: Arc<CacheSlot>,
    stack: Vec<BytesMut>,
    size: usize,
}

impl MempoolCache {
    /// The pool this cache draws from.
    pub fn pool(&self) -> &Mempool {
        &self.pool
    }

    /// Buffers currently parked in this cache.
    pub fn cached(&self) -> usize {
        self.stack.len()
    }

    /// The cache's nominal size `C` (refill target and spill floor).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Publish the new stack depth to the sampler-visible gauge (a plain
    /// relaxed store; this thread is the only writer).
    fn publish_gauge(&self) {
        self.slot
            .cached
            .store(self.stack.len() as u64, Ordering::Relaxed);
    }

    /// Top up the stack so it holds at least `need` buffers (plus `size`
    /// headroom beyond the need, so the next bursts are lock-free).
    /// Returns the buffers actually on hand, which may fall short when
    /// the pool is drained.
    fn ensure(&mut self, need: usize) -> usize {
        if self.stack.len() < need {
            let want = need + self.size - self.stack.len();
            self.pool.refill_cache(&mut self.stack, want);
            self.publish_gauge();
        }
        self.stack.len()
    }

    /// Spill down to `size` if the stack has grown past the flush
    /// threshold (`1.5 * size`).
    fn maybe_spill(&mut self) {
        if self.stack.len() > self.size + self.size / 2 {
            let excess = self.stack.len() - self.size;
            self.pool.spill_cache(&mut self.stack, excess);
        }
        self.publish_gauge();
    }

    /// Allocate an empty mbuf from the cache (lock-free when warm), or
    /// `None` if cache and pool are both exhausted.
    pub fn alloc(&mut self) -> Option<Mbuf> {
        if self.ensure(1) == 0 {
            self.pool.account_failures(1);
            return None;
        }
        let mut buf = self.stack.pop().expect("ensured non-empty");
        self.publish_gauge();
        // Out of the cache = in flight, not available.
        self.pool
            .shared
            .cached_total
            .fetch_sub(1, Ordering::Relaxed);
        self.pool.account_allocs(1);
        buf.clear();
        Some(Mbuf::from_bytes(buf))
    }

    /// Allocate and fill with `frame` bytes (see [`Mempool::alloc_with`]).
    pub fn alloc_with(&mut self, frame: &[u8]) -> Option<Mbuf> {
        if frame.len() > self.pool.buf_capacity() {
            return None;
        }
        let mut m = self.alloc()?;
        m.refill(frame);
        Some(m)
    }

    /// Allocate up to `n` empty mbufs, appending them to `out`: from the
    /// cache when `n` is burst-sized (lock-free when warm, one refill
    /// otherwise), straight from the shared pool when `n > 2 * size`.
    /// Returns how many were obtained; the shortfall is counted as
    /// exhaustion failures.
    pub fn alloc_burst(&mut self, n: usize, out: &mut Vec<Mbuf>) -> usize {
        if n > 2 * self.size {
            return self.pool.alloc_burst(n, out);
        }
        let have = self.ensure(n);
        let got = have.min(n);
        for mut buf in self.stack.drain(have - got..) {
            buf.clear();
            out.push(Mbuf::from_bytes(buf));
        }
        self.publish_gauge();
        // Out of the cache = in flight, not available.
        self.pool
            .shared
            .cached_total
            .fetch_sub(got as u64, Ordering::Relaxed);
        self.pool.account_allocs(got as u64);
        self.pool.account_failures((n - got) as u64);
        got
    }

    /// Return one mbuf to the cache (lock-free below the flush
    /// threshold).
    pub fn free(&mut self, mbuf: Mbuf) {
        self.free_burst(std::iter::once(mbuf));
    }

    /// Return any number of mbufs to the cache, spilling past the flush
    /// threshold in one critical section. Buffers are cleared before they
    /// re-enter circulation.
    pub fn free_burst(&mut self, mbufs: impl IntoIterator<Item = Mbuf>) {
        let mut n = 0u64;
        for mut mbuf in mbufs {
            let mut buf = mbuf.take_data();
            buf.clear();
            self.stack.push(buf);
            n += 1;
        }
        if n > 0 {
            // Freed into the cache = no longer in flight: count the
            // hand-back first (see `Mempool::account_allocs`), then make
            // the buffers available.
            self.pool.shared.frees.fetch_add(n, Ordering::Relaxed);
            self.pool.shared.in_use.fetch_sub(n, Ordering::Relaxed);
            self.pool
                .shared
                .cached_total
                .fetch_add(n, Ordering::Relaxed);
        }
        self.maybe_spill();
    }

    /// Return every parked buffer to the shared freelist (the cache stays
    /// usable and will refill on the next alloc).
    pub fn flush(&mut self) {
        let all = self.stack.len();
        self.pool.spill_cache(&mut self.stack, all);
        self.publish_gauge();
    }
}

impl Drop for MempoolCache {
    fn drop(&mut self) {
        self.flush();
        let slot = &self.slot;
        self.pool
            .shared
            .caches
            .lock()
            .retain(|s| !Arc::ptr_eq(s, slot));
    }
}

impl std::fmt::Debug for MempoolCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MempoolCache")
            .field("size", &self.size)
            .field("cached", &self.stack.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let p = Mempool::new(2, 64);
        assert_eq!(p.available(), 2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.available(), 0);
        assert_eq!(p.in_use(), 2);
        assert!(p.alloc().is_none());
        assert_eq!(p.alloc_failures(), 1);
        p.free(a);
        assert_eq!(p.available(), 1);
        assert!(p.alloc().is_some());
        p.free(b);
    }

    #[test]
    fn alloc_with_copies_frame() {
        let p = Mempool::new(1, 64);
        let m = p.alloc_with(b"abcd").unwrap();
        assert_eq!(m.bytes(), b"abcd");
    }

    #[test]
    fn alloc_with_rejects_oversized() {
        let p = Mempool::new(1, 4);
        assert!(p.alloc_with(b"too long for four").is_none());
        // The failed oversized alloc must not leak a buffer or count as
        // pool exhaustion.
        assert_eq!(p.available(), 1);
        assert_eq!(p.alloc_failures(), 0);
    }

    #[test]
    fn recycled_buffers_are_clean() {
        let p = Mempool::new(1, 64);
        let m = p.alloc_with(b"dirty").unwrap();
        p.free(m);
        let m2 = p.alloc().unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn counters_track() {
        let p = Mempool::new(4, 64);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        p.free(a);
        p.free(b);
        assert_eq!(p.counters(), (2, 2));
        assert_eq!(p.in_use_peak(), 2);
    }

    #[test]
    fn burst_alloc_free_round_trip() {
        let p = Mempool::new(8, 64);
        let mut burst = Vec::new();
        assert_eq!(p.alloc_burst(6, &mut burst), 6);
        assert_eq!(p.in_use(), 6);
        // Shortfall: only 2 left, asking for 5 gets 2 and counts 3 failures.
        let mut more = Vec::new();
        assert_eq!(p.alloc_burst(5, &mut more), 2);
        assert_eq!(p.alloc_failures(), 3);
        assert_eq!(p.available(), 0);
        p.free_burst(burst.drain(..));
        p.free_burst(more.drain(..));
        assert_eq!(p.available(), 8);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.in_use_peak(), 8);
    }

    #[test]
    fn clones_share_the_pool() {
        let p = Mempool::new(2, 64);
        let q = p.clone();
        let a = p.alloc().unwrap();
        assert_eq!(q.in_use(), 1);
        q.free(a);
        assert_eq!(p.available(), 2);
        assert_eq!(p.counters(), (1, 1));
    }

    #[test]
    fn stats_snapshot() {
        let p = Mempool::new(2, 64);
        let a = p.alloc().unwrap();
        assert!(p.alloc_with(&[0u8; 65]).is_none());
        p.free(a);
        let s = p.stats();
        assert_eq!(s.population, 2);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.alloc_failures, 0);
        assert_eq!(s.in_use_peak, 1);
        assert_eq!(s.cached, 0);
    }

    #[test]
    fn cache_alloc_free_keeps_accounting_exact() {
        let p = Mempool::new(16, 64);
        let mut c = p.cache(4);
        let m = c.alloc().unwrap();
        // Refill pulled need + size = 5, handed out 1, parked 4.
        assert_eq!(p.in_use(), 1);
        assert_eq!(c.cached(), 4);
        assert_eq!(p.cached(), 4);
        assert_eq!(p.available(), 15, "cached buffers stay available");
        c.free(m);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.counters(), (1, 1));
        assert_eq!(p.available(), 16);
        drop(c);
        assert_eq!(p.cached(), 0, "drop must flush the cache");
        assert_eq!(p.available(), 16);
    }

    #[test]
    fn cache_burst_hits_are_lock_free_and_exact() {
        let p = Mempool::new(64, 64);
        let mut c = p.cache(8);
        let mut burst = Vec::new();
        assert_eq!(c.alloc_burst(8, &mut burst), 8);
        assert_eq!(p.in_use(), 8);
        assert_eq!(p.available(), 56);
        c.free_burst(burst.drain(..));
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.available(), 64);
        assert_eq!(p.in_use_peak(), 8);
        // Warm cache: the next burst is served without touching the
        // freelist (observable as the freelist count standing still).
        let freelist_before = p.shared.free_count.load(Ordering::Relaxed);
        assert_eq!(c.alloc_burst(8, &mut burst), 8);
        c.free_burst(burst.drain(..));
        assert_eq!(p.shared.free_count.load(Ordering::Relaxed), freelist_before);
    }

    #[test]
    fn cache_spills_past_flush_threshold() {
        let p = Mempool::new(64, 64);
        let mut direct = Vec::new();
        p.alloc_burst(32, &mut direct);
        let mut c = p.cache(8);
        // Free 32 into a C=8 cache: threshold 12 forces spills; the cache
        // must end at or below the flush threshold with the rest back on
        // the freelist.
        c.free_burst(direct.drain(..));
        assert!(c.cached() <= 12, "cache kept {} > threshold", c.cached());
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.available(), 64);
        assert_eq!(p.cached(), c.cached());
    }

    #[test]
    fn cache_bypasses_for_giant_bursts() {
        let p = Mempool::new(64, 64);
        let mut c = p.cache(4);
        let mut burst = Vec::new();
        // n > 2C goes straight to the shared pool: nothing parked.
        assert_eq!(c.alloc_burst(32, &mut burst), 32);
        assert_eq!(c.cached(), 0);
        assert_eq!(p.in_use(), 32);
        p.free_burst(burst.drain(..));
        assert_eq!(p.available(), 64);
    }

    #[test]
    fn cache_shortfall_counts_failures() {
        let p = Mempool::new(4, 64);
        let mut c = p.cache(4);
        let mut burst = Vec::new();
        assert_eq!(c.alloc_burst(4, &mut burst), 4);
        // Pool and cache both empty now.
        assert_eq!(c.alloc_burst(3, &mut burst), 0);
        assert_eq!(p.alloc_failures(), 3);
        assert!(c.alloc().is_none());
        assert_eq!(p.alloc_failures(), 4);
        c.free_burst(burst.drain(..));
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn two_caches_share_exactly() {
        let p = Mempool::new(32, 64);
        let mut a = p.cache(4);
        let mut b = p.cache(4);
        let ma = a.alloc().unwrap();
        let mb = b.alloc().unwrap();
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.cached_per_cache().len(), 2);
        // Cross-cache recycling: a's buffer freed through b.
        b.free(ma);
        a.free(mb);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.available(), 32);
        drop(a);
        assert_eq!(p.cached_per_cache().len(), 1);
        drop(b);
        assert_eq!(p.cached(), 0);
        assert_eq!(p.counters(), (2, 2));
    }

    #[test]
    fn cache_alloc_with_fills_and_respects_dataroom() {
        let p = Mempool::new(8, 8);
        let mut c = p.cache(2);
        let m = c.alloc_with(b"abc").unwrap();
        assert_eq!(m.bytes(), b"abc");
        assert!(c.alloc_with(b"way too long for 8").is_none());
        c.free(m);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn cache_rejects_zero_size() {
        let p = Mempool::new(4, 64);
        let _ = p.cache(0);
    }
}
