//! Bounded packet-buffer pool (`rte_mempool` analogue).
//!
//! DPDK pre-allocates all mbufs from hugepage-backed pools; running out of
//! pool buffers is a first-class failure mode (Rx stalls even though the
//! ring has descriptors). The pool here reproduces that bounded-allocation
//! discipline: a fixed population of buffers of fixed capacity, O(1)
//! alloc/free, and counters for exhaustion events.

use crate::mbuf::Mbuf;
use bytes::BytesMut;

/// Fixed-population buffer pool.
pub struct Mempool {
    free: Vec<BytesMut>,
    buf_capacity: usize,
    population: usize,
    alloc_failures: u64,
    allocs: u64,
    frees: u64,
}

impl Mempool {
    /// Pool of `population` buffers, each able to hold `buf_capacity` bytes
    /// (DPDK's default dataroom is 2048).
    pub fn new(population: usize, buf_capacity: usize) -> Self {
        assert!(population > 0, "empty pool");
        Mempool {
            free: (0..population)
                .map(|_| BytesMut::with_capacity(buf_capacity))
                .collect(),
            buf_capacity,
            population,
            alloc_failures: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Total buffers the pool owns.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Buffers currently handed out.
    pub fn in_use(&self) -> usize {
        self.population - self.free.len()
    }

    /// Times an allocation failed because the pool was empty.
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Allocate an empty mbuf, or `None` if the pool is exhausted.
    pub fn alloc(&mut self) -> Option<Mbuf> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.allocs += 1;
                Some(Mbuf::from_bytes(buf))
            }
            None => {
                self.alloc_failures += 1;
                None
            }
        }
    }

    /// Allocate and fill with `frame` bytes. Fails if the pool is empty or
    /// the frame exceeds the pool's buffer capacity.
    pub fn alloc_with(&mut self, frame: &[u8]) -> Option<Mbuf> {
        if frame.len() > self.buf_capacity {
            return None;
        }
        let mut m = self.alloc()?;
        let mut data = m.take_data();
        data.extend_from_slice(frame);
        m.replace_data(data);
        Some(m)
    }

    /// Return an mbuf's buffer to the pool.
    ///
    /// # Panics
    /// In debug builds, if more buffers are freed than were allocated
    /// (double free).
    pub fn free(&mut self, mut mbuf: Mbuf) {
        debug_assert!(
            self.free.len() < self.population,
            "mempool over-free (double free?)"
        );
        let mut buf = mbuf.take_data();
        buf.clear();
        self.free.push(buf);
        self.frees += 1;
    }

    /// (allocations, frees) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = Mempool::new(2, 64);
        assert_eq!(p.available(), 2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.available(), 0);
        assert_eq!(p.in_use(), 2);
        assert!(p.alloc().is_none());
        assert_eq!(p.alloc_failures(), 1);
        p.free(a);
        assert_eq!(p.available(), 1);
        assert!(p.alloc().is_some());
        p.free(b);
    }

    #[test]
    fn alloc_with_copies_frame() {
        let mut p = Mempool::new(1, 64);
        let m = p.alloc_with(b"abcd").unwrap();
        assert_eq!(m.bytes(), b"abcd");
    }

    #[test]
    fn alloc_with_rejects_oversized() {
        let mut p = Mempool::new(1, 4);
        assert!(p.alloc_with(b"too long for four").is_none());
        // The failed oversized alloc must not leak a buffer.
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn recycled_buffers_are_clean() {
        let mut p = Mempool::new(1, 64);
        let m = p.alloc_with(b"dirty").unwrap();
        p.free(m);
        let m2 = p.alloc().unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn counters_track() {
        let mut p = Mempool::new(4, 64);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        p.free(a);
        p.free(b);
        assert_eq!(p.counters(), (2, 2));
    }
}
