//! Shared packet-buffer pool (`rte_mempool` analogue).
//!
//! DPDK pre-allocates all mbufs from hugepage-backed pools shared by every
//! lcore; running out of pool buffers is a first-class failure mode (Rx
//! stalls even though the ring has descriptors). The pool here reproduces
//! that bounded-allocation discipline for the whole pipeline: a fixed
//! population of buffers of fixed capacity, O(1) alloc/free, exhaustion
//! accounting — and, since the realtime pipeline allocates on the producer
//! thread and recycles on the worker threads, the pool is a cheaply
//! clonable handle ([`Mempool`] is `Arc`-shared internally) whose every
//! method takes `&self`.
//!
//! **Burst discipline.** The freelist sits behind one short-critical-
//! section lock; all counters are atomics read lock-free. The hot paths
//! are the burst ones — [`Mempool::alloc_burst`] and
//! [`Mempool::free_burst`] take the freelist lock *once per burst*, the
//! same amortization DPDK gets from per-lcore mempool caches, so the
//! per-packet cost on the datapath is a template `memcpy` into an already
//! allocated buffer and nothing else. (With the vendored `parking_lot`
//! shim the lock is an OS mutex; the real crate makes it a futex-free
//! spinlock — either way the burst ops bound it to one acquisition per
//! burst.)

use crate::mbuf::Mbuf;
use bytes::BytesMut;
use metronome_telemetry::OccupancyProbe;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of a pool's counters (for reports: pool sizing visibility).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Total buffers the pool owns.
    pub population: u64,
    /// Successful allocations so far.
    pub allocs: u64,
    /// Buffers returned so far.
    pub frees: u64,
    /// Allocations that failed because the pool was empty.
    pub alloc_failures: u64,
    /// Highest number of buffers simultaneously handed out.
    pub in_use_peak: u64,
}

struct PoolShared {
    free: Mutex<Vec<BytesMut>>,
    buf_capacity: usize,
    population: usize,
    in_use: AtomicU64,
    in_use_peak: AtomicU64,
    alloc_failures: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

/// Fixed-population shared buffer pool. Cloning the handle shares the
/// pool, like passing an `rte_mempool*` between lcores.
#[derive(Clone)]
pub struct Mempool {
    shared: Arc<PoolShared>,
}

impl Mempool {
    /// Pool of `population` buffers, each able to hold `buf_capacity` bytes
    /// (DPDK's default dataroom is 2048).
    pub fn new(population: usize, buf_capacity: usize) -> Self {
        assert!(population > 0, "empty pool");
        Mempool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(
                    (0..population)
                        .map(|_| BytesMut::with_capacity(buf_capacity))
                        .collect(),
                ),
                buf_capacity,
                population,
                in_use: AtomicU64::new(0),
                in_use_peak: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                frees: AtomicU64::new(0),
            }),
        }
    }

    /// Total buffers the pool owns.
    pub fn population(&self) -> usize {
        self.shared.population
    }

    /// Per-buffer byte capacity (the dataroom).
    pub fn buf_capacity(&self) -> usize {
        self.shared.buf_capacity
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.shared.free.lock().len()
    }

    /// Buffers currently handed out.
    pub fn in_use(&self) -> usize {
        self.shared.in_use.load(Ordering::Relaxed) as usize
    }

    /// Highest number of buffers simultaneously handed out so far.
    pub fn in_use_peak(&self) -> usize {
        self.shared.in_use_peak.load(Ordering::Relaxed) as usize
    }

    /// Times an allocation failed because the pool was empty.
    pub fn alloc_failures(&self) -> u64 {
        self.shared.alloc_failures.load(Ordering::Relaxed)
    }

    /// (allocations, frees) counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.allocs.load(Ordering::Relaxed),
            self.shared.frees.load(Ordering::Relaxed),
        )
    }

    /// All counters in one snapshot (for reports).
    pub fn stats(&self) -> MempoolStats {
        MempoolStats {
            population: self.shared.population as u64,
            allocs: self.shared.allocs.load(Ordering::Relaxed),
            frees: self.shared.frees.load(Ordering::Relaxed),
            alloc_failures: self.shared.alloc_failures.load(Ordering::Relaxed),
            in_use_peak: self.shared.in_use_peak.load(Ordering::Relaxed),
        }
    }

    /// Record `n` hand-outs. MUST be called while holding the freelist
    /// lock: `in_use` mutations are serialized with the pops/pushes they
    /// describe, so `in_use` (and therefore `in_use_peak`) can never
    /// transiently exceed the population — a free that has re-stocked the
    /// list has also already decremented.
    fn account_allocs_locked(&self, n: u64) {
        if n > 0 {
            self.shared.allocs.fetch_add(n, Ordering::Relaxed);
            let now = self.shared.in_use.fetch_add(n, Ordering::Relaxed) + n;
            self.shared.in_use_peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    fn account_failures(&self, shortfall: u64) {
        if shortfall > 0 {
            self.shared
                .alloc_failures
                .fetch_add(shortfall, Ordering::Relaxed);
        }
    }

    /// Allocate an empty mbuf, or `None` if the pool is exhausted.
    pub fn alloc(&self) -> Option<Mbuf> {
        let buf = {
            let mut free = self.shared.free.lock();
            let buf = free.pop();
            if buf.is_some() {
                self.account_allocs_locked(1);
            }
            buf
        };
        match buf {
            Some(mut buf) => {
                buf.clear();
                Some(Mbuf::from_bytes(buf))
            }
            None => {
                self.account_failures(1);
                None
            }
        }
    }

    /// Allocate and fill with `frame` bytes. Fails if the pool is empty or
    /// the frame exceeds the pool's buffer capacity (a too-long frame does
    /// not consume a buffer and is not counted as an exhaustion failure).
    pub fn alloc_with(&self, frame: &[u8]) -> Option<Mbuf> {
        if frame.len() > self.shared.buf_capacity {
            return None;
        }
        let mut m = self.alloc()?;
        m.refill(frame);
        Some(m)
    }

    /// Allocate up to `n` empty mbufs in one freelist critical section,
    /// appending them to `out`. Returns how many were obtained; the
    /// shortfall is counted as exhaustion failures.
    pub fn alloc_burst(&self, n: usize, out: &mut Vec<Mbuf>) -> usize {
        let mut got = 0usize;
        {
            let mut free = self.shared.free.lock();
            while got < n {
                match free.pop() {
                    Some(mut buf) => {
                        buf.clear();
                        out.push(Mbuf::from_bytes(buf));
                        got += 1;
                    }
                    None => break,
                }
            }
            self.account_allocs_locked(got as u64);
        }
        self.account_failures((n - got) as u64);
        got
    }

    /// Return an mbuf's buffer to the pool.
    ///
    /// # Panics
    /// In debug builds, if more buffers are freed than were allocated
    /// (double free).
    pub fn free(&self, mbuf: Mbuf) {
        self.free_burst(std::iter::once(mbuf));
    }

    /// Return any number of mbufs in one freelist critical section (the
    /// recycle half of the burst discipline). Buffers are cleared before
    /// they re-enter the freelist.
    ///
    /// The iterator is consumed *while the freelist lock is held*: it
    /// must not call back into this pool (alloc, free, or even
    /// `available`) or it will self-deadlock on the non-reentrant mutex.
    /// Pass plain ownership transfers — `vec.drain(..)`, `once(mbuf)` —
    /// as every in-tree caller does.
    ///
    /// # Panics
    /// In debug builds, if the freelist would exceed the population
    /// (double free).
    pub fn free_burst(&self, mbufs: impl IntoIterator<Item = Mbuf>) {
        let mut n = 0u64;
        {
            let mut free = self.shared.free.lock();
            for mut mbuf in mbufs {
                debug_assert!(
                    free.len() < self.shared.population,
                    "mempool over-free (double free?)"
                );
                let mut buf = mbuf.take_data();
                buf.clear();
                free.push(buf);
                n += 1;
            }
            // Decrement under the lock (see `account_allocs_locked`): the
            // re-stocked buffers and the counter move as one transaction.
            if n > 0 {
                self.shared.frees.fetch_add(n, Ordering::Relaxed);
                self.shared.in_use.fetch_sub(n, Ordering::Relaxed);
            }
        }
    }
}

/// The sampler-facing gauge view of a pool: "occupancy" is buffers
/// currently handed out (in use). Reads are atomic loads — the freelist
/// lock is never taken.
impl OccupancyProbe for Mempool {
    fn occupancy(&self) -> u64 {
        self.shared.in_use.load(Ordering::Relaxed)
    }

    fn capacity(&self) -> u64 {
        self.shared.population as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let p = Mempool::new(2, 64);
        assert_eq!(p.available(), 2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.available(), 0);
        assert_eq!(p.in_use(), 2);
        assert!(p.alloc().is_none());
        assert_eq!(p.alloc_failures(), 1);
        p.free(a);
        assert_eq!(p.available(), 1);
        assert!(p.alloc().is_some());
        p.free(b);
    }

    #[test]
    fn alloc_with_copies_frame() {
        let p = Mempool::new(1, 64);
        let m = p.alloc_with(b"abcd").unwrap();
        assert_eq!(m.bytes(), b"abcd");
    }

    #[test]
    fn alloc_with_rejects_oversized() {
        let p = Mempool::new(1, 4);
        assert!(p.alloc_with(b"too long for four").is_none());
        // The failed oversized alloc must not leak a buffer or count as
        // pool exhaustion.
        assert_eq!(p.available(), 1);
        assert_eq!(p.alloc_failures(), 0);
    }

    #[test]
    fn recycled_buffers_are_clean() {
        let p = Mempool::new(1, 64);
        let m = p.alloc_with(b"dirty").unwrap();
        p.free(m);
        let m2 = p.alloc().unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn counters_track() {
        let p = Mempool::new(4, 64);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        p.free(a);
        p.free(b);
        assert_eq!(p.counters(), (2, 2));
        assert_eq!(p.in_use_peak(), 2);
    }

    #[test]
    fn burst_alloc_free_round_trip() {
        let p = Mempool::new(8, 64);
        let mut burst = Vec::new();
        assert_eq!(p.alloc_burst(6, &mut burst), 6);
        assert_eq!(p.in_use(), 6);
        // Shortfall: only 2 left, asking for 5 gets 2 and counts 3 failures.
        let mut more = Vec::new();
        assert_eq!(p.alloc_burst(5, &mut more), 2);
        assert_eq!(p.alloc_failures(), 3);
        assert_eq!(p.available(), 0);
        p.free_burst(burst.drain(..));
        p.free_burst(more.drain(..));
        assert_eq!(p.available(), 8);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.in_use_peak(), 8);
    }

    #[test]
    fn clones_share_the_pool() {
        let p = Mempool::new(2, 64);
        let q = p.clone();
        let a = p.alloc().unwrap();
        assert_eq!(q.in_use(), 1);
        q.free(a);
        assert_eq!(p.available(), 2);
        assert_eq!(p.counters(), (1, 1));
    }

    #[test]
    fn stats_snapshot() {
        let p = Mempool::new(2, 64);
        let a = p.alloc().unwrap();
        assert!(p.alloc_with(&[0u8; 65]).is_none());
        p.free(a);
        let s = p.stats();
        assert_eq!(s.population, 2);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.alloc_failures, 0);
        assert_eq!(s.in_use_peak, 1);
    }
}
