//! NIC models: link framing math, device profiles, RSS dispatch.
//!
//! The paper evaluates on two devices we reproduce as profiles:
//!
//! * **Intel X520** (82599, `ixgbe`): 10 GbE, line rate at 64 B frames is
//!   14.88 Mpps; single Rx queue in the paper's §V-A..V-E tests.
//! * **Intel XL710** (`i40e`): 40 GbE, but "limited by a maximum processing
//!   rate of 37 Mpps" (paper §V-F, citing the XL710 spec update) — the
//!   silicon cap binds before the 40 G link does at 64 B (59.52 Mpps).
//!
//! Framing math: an Ethernet frame of `len` bytes (FCS included) occupies
//! `len + 20` bytes on the wire (7 preamble + 1 SFD + 12 IFG), so
//! 10 Gb/s ÷ (84 B × 8) = 14.88 Mpps at 64 B.

use crate::mbuf::Mbuf;
use crate::ring::Ring;
use metronome_net::toeplitz::Toeplitz;
use metronome_net::FiveTuple;

/// Per-frame wire overhead: preamble (7) + SFD (1) + inter-frame gap (12).
pub const WIRE_OVERHEAD_BYTES: u64 = 20;
/// The canonical worst-case frame size used throughout the evaluation.
pub const FRAME_64B: u32 = 64;
/// 10 GbE line rate at 64 B frames, packets per second.
pub const LINE_RATE_10G_64B_PPS: f64 = 14_880_952.38;

/// Maximum packets per second a link of `gbps` sustains at `frame_len`
/// bytes per frame (FCS included).
pub fn line_rate_pps(gbps: f64, frame_len: u32) -> f64 {
    let bits_per_frame = (frame_len as u64 + WIRE_OVERHEAD_BYTES) * 8;
    gbps * 1e9 / bits_per_frame as f64
}

/// Convert offered bandwidth to packets per second at a frame size.
pub fn gbps_to_pps(gbps: f64, frame_len: u32) -> f64 {
    line_rate_pps(gbps, frame_len)
}

/// Convert packets per second to occupied bandwidth at a frame size.
pub fn pps_to_gbps(pps: f64, frame_len: u32) -> f64 {
    pps * ((frame_len as u64 + WIRE_OVERHEAD_BYTES) * 8) as f64 / 1e9
}

/// Static description of a NIC device type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicProfile {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Link speed in Gb/s.
    pub link_gbps: f64,
    /// Packet-processing cap of the silicon, if it binds before the link
    /// (packets per second).
    pub silicon_max_pps: Option<f64>,
    /// Maximum number of Rx queues the device exposes.
    pub max_rx_queues: usize,
}

impl NicProfile {
    /// Intel X520 / 82599 (ixgbe): 10 GbE, no silicon cap below line rate.
    pub const X520: NicProfile = NicProfile {
        name: "Intel X520 (82599)",
        link_gbps: 10.0,
        silicon_max_pps: None,
        max_rx_queues: 16,
    };

    /// Intel XL710 (i40e): 40 GbE with a 37 Mpps processing cap
    /// (XL710 spec update §2 clarification #13, cited by the paper).
    pub const XL710: NicProfile = NicProfile {
        name: "Intel XL710",
        link_gbps: 40.0,
        silicon_max_pps: Some(37_000_000.0),
        max_rx_queues: 64,
    };

    /// Achievable receive rate at `frame_len`-byte frames: the binding
    /// minimum of link rate and silicon cap.
    pub fn max_pps(&self, frame_len: u32) -> f64 {
        let link = line_rate_pps(self.link_gbps, frame_len);
        match self.silicon_max_pps {
            Some(cap) => link.min(cap),
            None => link,
        }
    }
}

/// A functional NIC port: RSS-dispatches delivered frames into per-queue
/// descriptor rings. Used by the functional/real-thread path; the
/// discrete-event simulator models queues with `RxRingModel` instead.
pub struct Port {
    profile: NicProfile,
    rss: Toeplitz,
    queues: Vec<Ring>,
}

impl Port {
    /// Port with `n_queues` Rx queues of `ring_size` descriptors each.
    ///
    /// # Panics
    /// If `n_queues` is zero or exceeds the profile's queue count.
    pub fn new(profile: NicProfile, n_queues: usize, ring_size: usize) -> Self {
        assert!(
            n_queues >= 1 && n_queues <= profile.max_rx_queues,
            "queue count {n_queues} unsupported by {}",
            profile.name
        );
        Port {
            profile,
            rss: Toeplitz::default(),
            queues: (0..n_queues).map(|_| Ring::new(ring_size)).collect(),
        }
    }

    /// Device profile.
    pub fn profile(&self) -> &NicProfile {
        &self.profile
    }

    /// Number of configured Rx queues.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// The RSS queue a flow maps to.
    pub fn rss_queue(&self, tuple: &FiveTuple) -> usize {
        if self.queues.len() == 1 {
            0
        } else {
            self.rss.queue_for(&tuple.rss_input(), self.queues.len())
        }
    }

    /// Deliver a received frame: computes RSS, stamps metadata, enqueues
    /// into the owning queue (tail-dropping if full). Returns the queue
    /// index, or `None` if the packet was dropped.
    pub fn deliver(&mut self, mut mbuf: Mbuf, tuple: &FiveTuple) -> Option<usize> {
        let q = self.rss_queue(tuple);
        mbuf.queue = q as u16;
        mbuf.rss_hash = self.rss.hash(&tuple.rss_input());
        if self.queues[q].enqueue(mbuf) {
            Some(q)
        } else {
            None
        }
    }

    /// Burst-receive from a queue (DPDK `rte_eth_rx_burst`).
    pub fn rx_burst(&mut self, queue: usize, max: usize, out: &mut Vec<Mbuf>) -> usize {
        self.queues[queue].dequeue_burst(max, out)
    }

    /// Occupancy of a queue.
    pub fn queue_len(&self, queue: usize) -> usize {
        self.queues[queue].len()
    }

    /// (enqueued, dequeued, dropped) counters of a queue.
    pub fn queue_counters(&self, queue: usize) -> (u64, u64, u64) {
        self.queues[queue].counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::net::Ipv4Addr;

    #[test]
    fn line_rate_matches_paper_numbers() {
        // 14.88 Mpps at 10G/64B — the number quoted everywhere in §V.
        let pps = line_rate_pps(10.0, 64);
        assert!((pps - 14_880_952.38).abs() < 1.0, "{pps}");
        // 40G/64B would be 59.52 Mpps, but XL710 caps at 37 Mpps.
        assert!((line_rate_pps(40.0, 64) - 59_523_809.5).abs() < 10.0);
        assert!((NicProfile::XL710.max_pps(64) - 37e6).abs() < 1.0);
        assert!((NicProfile::X520.max_pps(64) - 14_880_952.38).abs() < 1.0);
    }

    #[test]
    fn timestamped_64b_frames_line_rate() {
        // §V footnote 5: latency tests add a 20B timestamp, i.e. 84B frames.
        // 10^10 / ((84+20)*8) = 12.02 Mpps.
        let pps = line_rate_pps(10.0, 84);
        assert!((pps - 12_019_230.77).abs() < 1.0, "{pps}");
    }

    #[test]
    fn pps_gbps_round_trip() {
        let pps = gbps_to_pps(5.0, 64);
        let gbps = pps_to_gbps(pps, 64);
        assert!((gbps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rss_dispatch_is_flow_stable() {
        let mut port = Port::new(NicProfile::XL710, 4, 512);
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let q1 = port.rss_queue(&t);
        let m = Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]));
        let q2 = port.deliver(m, &t).unwrap();
        assert_eq!(q1, q2);
        // Same flow always lands on the same queue.
        for _ in 0..10 {
            assert_eq!(port.rss_queue(&t), q1);
        }
    }

    #[test]
    fn single_queue_skips_rss() {
        let port = Port::new(NicProfile::X520, 1, 512);
        let t = FiveTuple::udp(Ipv4Addr::new(1, 2, 3, 4), 9, Ipv4Addr::new(5, 6, 7, 8), 10);
        assert_eq!(port.rss_queue(&t), 0);
    }

    #[test]
    fn rx_burst_drains_fifo() {
        let mut port = Port::new(NicProfile::X520, 1, 32);
        let t = FiveTuple::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2);
        for _ in 0..5 {
            let m = Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]));
            port.deliver(m, &t);
        }
        let mut out = Vec::new();
        assert_eq!(port.rx_burst(0, 32, &mut out), 5);
        assert_eq!(port.queue_len(0), 0);
    }

    #[test]
    fn drop_counted_when_ring_full() {
        let mut port = Port::new(NicProfile::X520, 1, 32);
        let t = FiveTuple::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2);
        for _ in 0..40 {
            let m = Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]));
            port.deliver(m, &t);
        }
        let (enq, _, drop) = port.queue_counters(0);
        assert_eq!(enq, 32);
        assert_eq!(drop, 8);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn too_many_queues_rejected() {
        Port::new(NicProfile::X520, 17, 512);
    }
}
