//! Thread-safe PRNG (`rte_random` analogue).
//!
//! The paper's Appendix II: "Metronome needs to generate a random value
//! without compromising the system performance. We leverage the DPDK's
//! builtin Thread-safe High Performance Pseudo-random Number Generation
//! library `rte_random`." Backup threads use it to pick their next queue
//! in the multiqueue policy (§IV-E).
//!
//! This version is a lock-free SplitMix64 over an atomic state: wait-free,
//! a single `fetch_add` per draw, statistically solid for scheduling
//! decisions (not cryptographic).

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free shared PRNG.
pub struct RteRand {
    state: AtomicU64,
}

impl RteRand {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        RteRand {
            state: AtomicU64::new(seed),
        }
    }

    /// Next 64-bit value. Safe to call concurrently from any thread; each
    /// caller observes a distinct counter value, so draws never repeat
    /// across racing threads.
    pub fn next(&self) -> u64 {
        // SplitMix64 over an atomically incremented Weyl sequence.
        let s = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (slightly biased for huge bounds;
    /// fine for queue picking where bound ≤ 64).
    pub fn below(&self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deterministic_sequence_given_seed() {
        let a = RteRand::new(5);
        let b = RteRand::new(5);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn below_bound() {
        let r = RteRand::new(7);
        for _ in 0..10_000 {
            assert!(r.below(3) < 3);
        }
    }

    #[test]
    fn covers_small_range() {
        let r = RteRand::new(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn concurrent_draws_unique() {
        // Racing threads must all make progress and produce distinct draws
        // (SplitMix64 is a bijection over a strictly increasing counter).
        let r = Arc::new(RteRand::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                (0..1_000).map(|_| r.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "duplicate draws across threads");
    }
}
