//! Rx/Tx descriptor rings.
//!
//! Two views of the same concept live here:
//!
//! * [`Ring`] — a real bounded FIFO of [`Mbuf`]s with burst enqueue/dequeue
//!   and tail-drop, used by the functional path (unit tests, examples, the
//!   real-thread Metronome runtime).
//! * [`RxRingModel`] — the counting model the discrete-event simulator
//!   uses: it tracks occupancy, accepted and dropped packets without
//!   materializing buffers, so line-rate minutes stay cheap. Its semantics
//!   (tail-drop at capacity, FIFO drain) mirror `Ring` exactly; a property
//!   test in the runtime crate drives both with the same schedule and
//!   checks they agree.
//!
//! Ring sizes on Intel X520/XL710 are configurable between 32 and 4096
//! descriptors (paper Appendix II); the evaluation behaviour of Table I
//! (loss onset between target vacation 10 µs and 20 µs at line rate)
//! pins the effective size at 512 — see `metronome-runtime::calib`.

use crate::mbuf::Mbuf;
use std::collections::VecDeque;

/// Supported descriptor-ring sizes: powers of two in 32..=4096 (Intel
/// X520/XL710 constraint).
pub fn valid_ring_size(n: usize) -> bool {
    n.is_power_of_two() && (32..=4096).contains(&n)
}

/// Bounded FIFO of packet buffers with burst operations and drop counting.
pub struct Ring {
    queue: VecDeque<Mbuf>,
    capacity: usize,
    enqueued: u64,
    dequeued: u64,
    dropped: u64,
}

impl Ring {
    /// Ring with the given descriptor count.
    ///
    /// # Panics
    /// If `capacity` is not a valid NIC ring size.
    pub fn new(capacity: usize) -> Self {
        assert!(valid_ring_size(capacity), "invalid ring size {capacity}");
        Ring {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            dequeued: 0,
            dropped: 0,
        }
    }

    /// Descriptor count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied descriptors.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Free descriptors.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Enqueue one packet; on a full ring the packet is tail-dropped and
    /// `false` is returned.
    pub fn enqueue(&mut self, mbuf: Mbuf) -> bool {
        if self.queue.len() == self.capacity {
            self.dropped += 1;
            false
        } else {
            self.queue.push_back(mbuf);
            self.enqueued += 1;
            true
        }
    }

    /// Dequeue up to `max` packets (DPDK `rx_burst` semantics: returns what
    /// is there, never blocks).
    pub fn dequeue_burst(&mut self, max: usize, out: &mut Vec<Mbuf>) -> usize {
        let n = max.min(self.queue.len());
        for _ in 0..n {
            out.push(self.queue.pop_front().expect("len checked"));
        }
        self.dequeued += n as u64;
        n
    }

    /// (enqueued, dequeued, dropped) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.enqueued, self.dequeued, self.dropped)
    }
}

/// Counting model of an Rx descriptor ring for the simulator.
///
/// Occupancy-only: `offer(n)` adds arrivals with tail-drop, `take(n)`
/// drains in FIFO order. All counters are u64; the model never allocates.
#[derive(Clone, Debug)]
pub struct RxRingModel {
    capacity: u64,
    occupancy: u64,
    accepted: u64,
    dropped: u64,
    drained: u64,
}

impl RxRingModel {
    /// Model with the given descriptor count.
    pub fn new(capacity: usize) -> Self {
        assert!(valid_ring_size(capacity), "invalid ring size {capacity}");
        RxRingModel {
            capacity: capacity as u64,
            occupancy: 0,
            accepted: 0,
            dropped: 0,
            drained: 0,
        }
    }

    /// Descriptor count.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Packets currently queued.
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Free descriptors.
    pub fn free_slots(&self) -> u64 {
        self.capacity - self.occupancy
    }

    /// Offer `n` arrivals; returns how many were accepted (the rest are
    /// tail-dropped and counted).
    pub fn offer(&mut self, n: u64) -> u64 {
        let take = n.min(self.free_slots());
        self.occupancy += take;
        self.accepted += take;
        self.dropped += n - take;
        take
    }

    /// Drain up to `n` packets; returns how many were actually taken.
    pub fn take(&mut self, n: u64) -> u64 {
        let take = n.min(self.occupancy);
        self.occupancy -= take;
        self.drained += take;
        take
    }

    /// Packets accepted into the ring since creation.
    pub fn total_accepted(&self) -> u64 {
        self.accepted
    }

    /// Packets tail-dropped since creation.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets drained since creation.
    pub fn total_drained(&self) -> u64 {
        self.drained
    }

    /// Loss fraction over everything offered so far (0 if nothing offered).
    pub fn loss_fraction(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

/// The simulation ring model answers the same gauge questions as the
/// concurrent [`crate::shared_ring::SharedRing`], so the telemetry
/// sampler reads either backend's rings through one trait.
impl metronome_telemetry::OccupancyProbe for RxRingModel {
    fn occupancy(&self) -> u64 {
        self.occupancy
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn mbuf() -> Mbuf {
        Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]))
    }

    #[test]
    fn ring_size_validation() {
        assert!(valid_ring_size(32));
        assert!(valid_ring_size(512));
        assert!(valid_ring_size(4096));
        assert!(!valid_ring_size(0));
        assert!(!valid_ring_size(31));
        assert!(!valid_ring_size(100));
        assert!(!valid_ring_size(8192));
    }

    #[test]
    #[should_panic(expected = "invalid ring size")]
    fn ring_rejects_bad_size() {
        Ring::new(100);
    }

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(32);
        for i in 0..3u8 {
            let mut m = mbuf();
            m.bytes_mut()[0] = i;
            r.enqueue(m);
        }
        let mut out = Vec::new();
        assert_eq!(r.dequeue_burst(10, &mut out), 3);
        let firsts: Vec<u8> = out.iter().map(|m| m.bytes()[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2]);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut r = Ring::new(32);
        for _ in 0..32 {
            assert!(r.enqueue(mbuf()));
        }
        assert!(!r.enqueue(mbuf()));
        assert_eq!(r.counters(), (32, 0, 1));
        assert_eq!(r.free_slots(), 0);
    }

    #[test]
    fn burst_respects_max() {
        let mut r = Ring::new(64);
        for _ in 0..40 {
            r.enqueue(mbuf());
        }
        let mut out = Vec::new();
        assert_eq!(r.dequeue_burst(32, &mut out), 32);
        assert_eq!(r.len(), 8);
        assert_eq!(r.dequeue_burst(32, &mut out), 8);
        assert!(r.is_empty());
    }

    #[test]
    fn model_offer_take() {
        let mut m = RxRingModel::new(512);
        assert_eq!(m.offer(500), 500);
        assert_eq!(m.offer(100), 12);
        assert_eq!(m.total_dropped(), 88);
        assert_eq!(m.occupancy(), 512);
        assert_eq!(m.take(32), 32);
        assert_eq!(m.occupancy(), 480);
        assert_eq!(m.take(1000), 480);
        assert!(m.is_empty());
        assert_eq!(m.total_drained(), 512);
    }

    #[test]
    fn model_loss_fraction() {
        let mut m = RxRingModel::new(32);
        assert_eq!(m.loss_fraction(), 0.0);
        m.offer(32);
        m.offer(8);
        assert!((m.loss_fraction() - 8.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn model_matches_ring_on_random_schedule() {
        // Drive both implementations with the same offer/take schedule.
        let mut ring = Ring::new(64);
        let mut model = RxRingModel::new(64);
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        let mut out = Vec::new();
        for _ in 0..1_000 {
            let n = next() % 20;
            let mut ring_accepted = 0u64;
            for _ in 0..n {
                if ring.enqueue(mbuf()) {
                    ring_accepted += 1;
                }
            }
            assert_eq!(model.offer(n as u64), ring_accepted);
            let k = next() % 20;
            out.clear();
            let took = ring.dequeue_burst(k, &mut out) as u64;
            assert_eq!(model.take(k as u64), took);
            assert_eq!(model.occupancy(), ring.len() as u64);
        }
        let (enq, deq, drop) = ring.counters();
        assert_eq!(model.total_accepted(), enq);
        assert_eq!(model.total_drained(), deq);
        assert_eq!(model.total_dropped(), drop);
    }
}
