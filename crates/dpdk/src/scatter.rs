//! Scatter-gather dispatch of a generated batch across queue rings.
//!
//! The generator produces one batch of mbufs per pacing turn, destined for
//! up to `N` Rx queues. The naive staging structure — one `Vec<Mbuf>` per
//! queue — costs `O(N)` per batch just to walk the (mostly empty) queue
//! list, and keeps `N` warm allocations alive; at `N = 1024` queues that
//! walk dominates the batch itself.
//!
//! [`QueueScatter`] replaces it with a counting sort into one flat arena:
//!
//! 1. **push** — mbufs land in a flat staging buffer in arrival order,
//!    tagged with their destination queue (`O(1)` each, no per-queue
//!    allocation). First touch of a queue records it in a `touched` list.
//! 2. **dispatch** — one pass computes per-queue offsets from the counts,
//!    one pass moves each mbuf to its queue's contiguous run in the arena
//!    (the counting sort is *stable*, so per-queue — and therefore
//!    per-flow — arrival order is preserved), then each touched queue's
//!    run is handed to the caller as one burst.
//!
//! Total cost is `O(batch + touched_queues)` regardless of `N`; the only
//! allocations are the buffers themselves, which are reused across batches.
//! The module is unsafe-free (the crate-level `deny(unsafe_code)` applies).

use crate::mbuf::Mbuf;

/// Reusable scatter arena mapping one generated batch onto per-queue bursts.
///
/// See the [module docs](self) for the algorithm. A `QueueScatter` is owned
/// by exactly one producer (a generator shard); it is not shared.
#[derive(Debug)]
pub struct QueueScatter {
    n_queues: usize,
    /// Staged `(queue, mbuf)` pairs in arrival order.
    staged: Vec<(u32, Mbuf)>,
    /// Per-queue count for the current batch. Reset via `touched`.
    counts: Vec<u32>,
    /// Queues with at least one staged mbuf, in first-touch order.
    touched: Vec<u32>,
    /// Per-queue write cursor during the placement pass.
    cursors: Vec<u32>,
    /// The flat arena the counting sort scatters into.
    arena: Vec<Option<Mbuf>>,
    /// Scratch burst handed to the dispatch callback; reused across queues.
    scratch: Vec<Mbuf>,
}

impl QueueScatter {
    /// An empty scatter arena for `n_queues` destination queues.
    pub fn new(n_queues: usize) -> Self {
        QueueScatter {
            n_queues,
            staged: Vec::new(),
            counts: vec![0; n_queues],
            touched: Vec::new(),
            cursors: vec![0; n_queues],
            arena: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of destination queues this arena was built for.
    #[inline]
    pub fn n_queues(&self) -> usize {
        self.n_queues
    }

    /// Stage one mbuf for queue `q`. Panics if `q >= n_queues`.
    #[inline]
    pub fn push(&mut self, q: usize, mbuf: Mbuf) {
        if self.counts[q] == 0 {
            self.touched.push(q as u32);
        }
        self.counts[q] += 1;
        self.staged.push((q as u32, mbuf));
    }

    /// Mbufs staged since the last [`dispatch`](Self::dispatch).
    #[inline]
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Distinct queues touched by the staged batch.
    #[inline]
    pub fn touched(&self) -> usize {
        self.touched.len()
    }

    /// Scatter the staged batch and hand each queue's run to `deliver` as
    /// one burst, in first-touch order.
    ///
    /// `deliver(q, burst)` receives the queue index and a `&mut Vec<Mbuf>`
    /// holding that queue's mbufs in arrival order — the exact shape
    /// `RssPort::offer_burst` consumes. The callback **must drain the
    /// vector** (offer what fits, recycle the rest): mbufs left behind
    /// would escape the mempool's `allocs == frees` accounting, so leftover
    /// frames are a contract violation (debug-asserted).
    ///
    /// After `dispatch` returns the arena is empty and ready for the next
    /// batch; all internal buffers keep their capacity.
    pub fn dispatch<F>(&mut self, mut deliver: F)
    where
        F: FnMut(usize, &mut Vec<Mbuf>),
    {
        if self.staged.is_empty() {
            return;
        }

        // Prefix sums: cursors[q] = start of queue q's run in the arena,
        // visiting only touched queues.
        let mut offset = 0u32;
        for &q in &self.touched {
            self.cursors[q as usize] = offset;
            offset += self.counts[q as usize];
        }

        // Stable placement pass: arrival order in, arrival order per run.
        self.arena.clear();
        self.arena.resize_with(self.staged.len(), || None);
        for (q, mbuf) in self.staged.drain(..) {
            let at = self.cursors[q as usize] as usize;
            self.cursors[q as usize] += 1;
            self.arena[at] = Some(mbuf);
        }

        // Hand out runs. After the placement pass each queue's cursor sits
        // one past its run, so the run is `[cursor - count, cursor)`.
        for &q in &self.touched {
            let (count, end) = (self.counts[q as usize], self.cursors[q as usize]);
            let start = (end - count) as usize;
            self.scratch.clear();
            self.scratch.extend(
                self.arena[start..end as usize]
                    .iter_mut()
                    .map(|slot| slot.take().expect("arena slot filled exactly once")),
            );
            deliver(q as usize, &mut self.scratch);
            debug_assert!(
                self.scratch.is_empty(),
                "dispatch callback left {} mbufs behind for queue {q}",
                self.scratch.len()
            );
            // Recycle leftovers defensively in release builds: dropping
            // them on the floor would corrupt pool accounting for longer.
            self.scratch.clear();
            self.counts[q as usize] = 0;
        }
        self.touched.clear();
        self.arena.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn mbuf(tag: u32) -> Mbuf {
        let mut m = Mbuf::from_bytes(BytesMut::from(&tag.to_le_bytes()[..]));
        m.rss_hash = tag;
        m
    }

    #[test]
    fn scatters_to_runs_in_arrival_order() {
        let mut sc = QueueScatter::new(8);
        // Interleave three queues; per-queue order must be preserved.
        for i in 0..30u32 {
            sc.push((i % 3) as usize, mbuf(i));
        }
        assert_eq!(sc.len(), 30);
        assert_eq!(sc.touched(), 3);

        let mut seen: Vec<(usize, Vec<u32>)> = Vec::new();
        sc.dispatch(|q, burst| {
            seen.push((q, burst.iter().map(|m| m.rss_hash).collect()));
            burst.clear();
        });
        assert!(sc.is_empty());
        assert_eq!(seen.len(), 3);
        for (q, tags) in &seen {
            let expect: Vec<u32> = (0..30).filter(|i| (*i % 3) as usize == *q).collect();
            assert_eq!(tags, &expect, "queue {q} run out of order");
        }
    }

    #[test]
    fn dispatch_skips_untouched_queues() {
        let mut sc = QueueScatter::new(1024);
        sc.push(7, mbuf(1));
        sc.push(900, mbuf(2));
        sc.push(7, mbuf(3));
        let mut queues = Vec::new();
        sc.dispatch(|q, burst| {
            queues.push((q, burst.len()));
            burst.clear();
        });
        assert_eq!(queues, vec![(7, 2), (900, 1)]);
    }

    #[test]
    fn reusable_across_batches() {
        let mut sc = QueueScatter::new(4);
        for round in 0..5u32 {
            for i in 0..17u32 {
                sc.push((i % 4) as usize, mbuf(round * 100 + i));
            }
            let mut total = 0;
            sc.dispatch(|_, burst| {
                total += burst.len();
                burst.clear();
            });
            assert_eq!(total, 17, "round {round} lost mbufs");
            assert!(sc.is_empty());
            assert_eq!(sc.touched(), 0);
        }
    }

    #[test]
    fn empty_dispatch_is_a_noop() {
        let mut sc = QueueScatter::new(4);
        sc.dispatch(|_, _| panic!("nothing staged"));
    }

    #[test]
    fn multiset_preserved() {
        let mut sc = QueueScatter::new(16);
        let mut pushed: Vec<u32> = Vec::new();
        // A skewed distribution: queue = high bits so runs are uneven.
        for i in 0..100u32 {
            let q = ((i * i) % 16) as usize;
            pushed.push(i);
            sc.push(q, mbuf(i));
        }
        let mut popped: Vec<u32> = Vec::new();
        sc.dispatch(|_, burst| popped.extend(burst.drain(..).map(|m| m.rss_hash)));
        pushed.sort_unstable();
        popped.sort_unstable();
        assert_eq!(pushed, popped);
    }
}
