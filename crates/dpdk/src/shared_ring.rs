//! Thread-safe Rx rings for the real-thread pipeline.
//!
//! [`crate::ring::Ring`] is the single-threaded descriptor ring; the
//! realtime pipeline needs the concurrent analogue of `rte_ring` + RSS:
//!
//! * [`SharedRing`] — a bounded mbuf ring with NIC-style tail-drop
//!   accounting: a producer that offers into a full ring loses the frame
//!   and the drop is counted, exactly like descriptors exhausting on an
//!   X520/XL710. The transport under the accounting is chosen by
//!   [`RingPath`]: a lock-free SPSC ring (the default — one RSS producer,
//!   one retrieval consumer at a time, `rte_ring`'s batched
//!   acquire/release head/tail design), a lock-free MPSC ring (several
//!   generator threads, the elastic-fleet direction), or the locked MPMC
//!   queue kept as a fallback. Counters, wake hooks, burst semantics and
//!   the [`OccupancyProbe`] are identical across paths.
//! * [`RssPort`] — `N` shared rings behind one Toeplitz hasher: the
//!   receive side of a NIC port with RSS enabled. The load generator
//!   resolves each flow to a queue once (`queue_for`), then offers frames;
//!   Metronome workers drain [`RingConsumer`] handles obtained via
//!   [`RssPort::consumers`].
//!
//! Conservation is the contract tests rely on: for every ring,
//! `offered = accepted + dropped`, and whatever was accepted is either
//! still queued or was popped by a consumer — nothing is double-counted
//! because `offer` is the only producer path.

use crate::fastring::{MpscRing, SpscRing};
use crate::mbuf::Mbuf;
use crate::ring::valid_ring_size;
use bytes::BytesMut;
use crossbeam::queue::ArrayQueue;
use metronome_net::toeplitz::Toeplitz;
use metronome_telemetry::OccupancyProbe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A producer-side wake-up callback: invoked once per offer that accepted
/// at least one frame (the "raise the IRQ line" hook an interrupt-driven
/// consumer arms — e.g. ringing a `metronome_core` `Doorbell`).
pub type WakeHook = Arc<dyn Fn() + Send + Sync>;

/// Which transport a [`SharedRing`] runs on. The accounting, wake hooks
/// and burst APIs are identical across paths; only the synchronization
/// underneath changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RingPath {
    /// Lock-free single-producer single-consumer fast path (the default):
    /// one RSS generator feeding one retrieval worker per queue, the
    /// common Metronome topology. "Single" means *at a time* — see
    /// [`SpscRing`] for the hand-over guarantees.
    #[default]
    Spsc,
    /// Lock-free multi-producer single-consumer path: several generator
    /// threads feeding one queue (the elastic-fleet direction).
    Mpsc,
    /// The mutex-protected MPMC queue, kept as a fallback and as the
    /// contention baseline the `ring_path` bench measures against.
    Locked,
}

impl RingPath {
    /// Short label for bench output and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            RingPath::Spsc => "spsc",
            RingPath::Mpsc => "mpsc",
            RingPath::Locked => "locked",
        }
    }
}

/// The transport under a [`SharedRing`], shared with its consumers.
#[derive(Clone)]
enum Backend {
    Spsc(Arc<SpscRing<Mbuf>>),
    Mpsc(Arc<MpscRing<Mbuf>>),
    Locked(Arc<ArrayQueue<Mbuf>>),
}

impl Backend {
    fn new(path: RingPath, capacity: usize) -> Self {
        match path {
            RingPath::Spsc => Backend::Spsc(Arc::new(SpscRing::new(capacity))),
            RingPath::Mpsc => Backend::Mpsc(Arc::new(MpscRing::new(capacity))),
            RingPath::Locked => Backend::Locked(Arc::new(ArrayQueue::new(capacity))),
        }
    }

    fn path(&self) -> RingPath {
        match self {
            Backend::Spsc(_) => RingPath::Spsc,
            Backend::Mpsc(_) => RingPath::Mpsc,
            Backend::Locked(_) => RingPath::Locked,
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Spsc(r) => r.len(),
            Backend::Mpsc(r) => r.len(),
            Backend::Locked(q) => q.len(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            Backend::Spsc(r) => r.capacity(),
            Backend::Mpsc(r) => r.capacity(),
            Backend::Locked(q) => q.capacity(),
        }
    }

    fn push(&self, mbuf: Mbuf) -> Result<(), Mbuf> {
        match self {
            Backend::Spsc(r) => r.push(mbuf),
            Backend::Mpsc(r) => r.push(mbuf),
            Backend::Locked(q) => q.push(mbuf),
        }
    }

    /// Move the leading accepted frames of `src` into the ring; the
    /// rejected remainder stays in `src`. One batched index update on the
    /// lock-free paths, per-item pushes with in-place compaction on the
    /// locked path.
    fn push_burst(&self, src: &mut Vec<Mbuf>) -> usize {
        match self {
            Backend::Spsc(r) => r.push_burst(src),
            Backend::Mpsc(r) => r.push_burst(src),
            Backend::Locked(q) => {
                // Rejected frames are compacted in place (swap with an
                // empty, heap-free placeholder): the drop path allocates
                // nothing, in keeping with the burst discipline.
                let total = src.len();
                let mut rejected = 0usize;
                for read in 0..total {
                    let m = std::mem::replace(&mut src[read], Mbuf::from_bytes(BytesMut::new()));
                    match q.push(m) {
                        Ok(()) => {}
                        Err(back) => {
                            src[rejected] = back;
                            rejected += 1;
                        }
                    }
                }
                src.truncate(rejected);
                total - rejected
            }
        }
    }

    fn pop(&self) -> Option<Mbuf> {
        match self {
            Backend::Spsc(r) => r.pop(),
            Backend::Mpsc(r) => r.pop(),
            Backend::Locked(q) => q.pop(),
        }
    }

    fn pop_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        match self {
            Backend::Spsc(r) => r.pop_burst(out, max),
            Backend::Mpsc(r) => r.pop_burst(out, max),
            Backend::Locked(q) => {
                let mut taken = 0usize;
                while taken < max {
                    match q.pop() {
                        Some(m) => {
                            out.push(m);
                            taken += 1;
                        }
                        None => break,
                    }
                }
                taken
            }
        }
    }
}

/// A bounded mbuf ring with tail-drop accounting and a [`RingPath`]-chosen
/// transport (lock-free SPSC by default).
pub struct SharedRing {
    backend: Backend,
    accepted: AtomicU64,
    dropped: AtomicU64,
    /// Rung after every accepting offer; `None` (the default) costs one
    /// predictable branch per burst.
    wake_hook: Option<WakeHook>,
}

impl SharedRing {
    /// Ring with the given descriptor count on the default lock-free SPSC
    /// path.
    ///
    /// # Panics
    /// If `capacity` is not a valid NIC ring size (power of two in
    /// 32..=4096).
    pub fn new(capacity: usize) -> Self {
        SharedRing::with_path(capacity, RingPath::default())
    }

    /// Ring with an explicit transport path (see [`RingPath`]).
    ///
    /// # Panics
    /// If `capacity` is not a valid NIC ring size (power of two in
    /// 32..=4096).
    pub fn with_path(capacity: usize, path: RingPath) -> Self {
        assert!(valid_ring_size(capacity), "invalid ring size {capacity}");
        SharedRing {
            backend: Backend::new(path, capacity),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            wake_hook: None,
        }
    }

    /// Which transport this ring runs on.
    pub fn path(&self) -> RingPath {
        self.backend.path()
    }

    /// A consumer handle (what a Metronome worker drains). Cheap to
    /// clone; all clones drain the same ring. On the SPSC/MPSC paths, at
    /// most one handle may be popping at a time (concurrent pops
    /// serialize on the consumer guard, they do not corrupt) — which is
    /// exactly the discipline the per-queue trylock already enforces.
    pub fn consumer(&self) -> RingConsumer {
        RingConsumer {
            backend: self.backend.clone(),
        }
    }

    /// Arm the producer-side doorbell hook: `hook` runs after every offer
    /// that accepted at least one frame (once per burst, never per
    /// packet). Install it before producers start offering — the hook is
    /// how an interrupt-driven retrieval discipline learns that packets
    /// arrived while it was parked.
    pub fn set_wake_hook(&mut self, hook: WakeHook) {
        self.wake_hook = Some(hook);
    }

    fn wake(&self) {
        if let Some(hook) = &self.wake_hook {
            hook();
        }
    }

    /// Offer one frame; on a full ring it is tail-dropped and `false` is
    /// returned.
    pub fn offer(&self, mbuf: Mbuf) -> bool {
        match self.backend.push(mbuf) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.wake();
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer a whole burst, in order, with one accounting update per burst
    /// (the `rte_eth_rx_burst` producer-side analogue). Frames the full
    /// ring rejects are tail-dropped *as accounting* but their buffers are
    /// handed back: after the call, `frames` holds exactly the rejected
    /// mbufs (possibly none) so the caller can recycle them to the
    /// mempool — a drop loses the packet, never the buffer.
    ///
    /// Returns how many frames the ring accepted.
    pub fn offer_burst(&self, frames: &mut Vec<Mbuf>) -> usize {
        let total = frames.len();
        let accepted = self.backend.push_burst(frames);
        if accepted > 0 {
            self.accepted.fetch_add(accepted as u64, Ordering::Relaxed);
            self.wake();
        }
        let rejected = total - accepted;
        if rejected > 0 {
            self.dropped.fetch_add(rejected as u64, Ordering::Relaxed);
        }
        accepted
    }

    /// Pop up to `max` frames into the caller-provided buffer (appended),
    /// returning how many were taken. This is the consumer half of the
    /// burst discipline: one call per retrieval burst, reusing the
    /// caller's scratch buffer so the hot path never allocates.
    pub fn pop_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        self.backend.pop_burst(out, max)
    }

    /// Frames accepted into the ring so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Frames tail-dropped at the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames offered (accepted + dropped).
    pub fn offered(&self) -> u64 {
        self.accepted() + self.dropped()
    }

    /// Frames currently queued.
    pub fn occupancy(&self) -> usize {
        self.backend.len()
    }

    /// Descriptor count.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }
}

/// The sampler-facing gauge view of a ring (see
/// [`metronome_telemetry::OccupancyProbe`]); reads are lock-free on the
/// fast paths.
impl OccupancyProbe for SharedRing {
    fn occupancy(&self) -> u64 {
        self.backend.len() as u64
    }

    fn capacity(&self) -> u64 {
        self.backend.capacity() as u64
    }
}

/// The consumer end of a [`SharedRing`]: the handle a retrieval worker
/// drains. Cheap to clone (an `Arc` under the hood); on the lock-free
/// paths, concurrent pops from clones serialize on the ring's consumer
/// guard rather than corrupting state.
#[derive(Clone)]
pub struct RingConsumer {
    backend: Backend,
}

impl RingConsumer {
    /// Pop the oldest frame, if any.
    pub fn pop(&self) -> Option<Mbuf> {
        self.backend.pop()
    }

    /// Pop up to `max` frames into `out` (appended), returning how many
    /// were taken — one batched index update on the fast paths.
    pub fn pop_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        self.backend.pop_burst(out, max)
    }

    /// Frames currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True if nothing is queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// Descriptor count.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }
}

impl std::fmt::Debug for RingConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("path", &self.backend.path())
            .field("len", &self.backend.len())
            .field("capacity", &self.backend.capacity())
            .finish()
    }
}

/// The receive side of an RSS-enabled NIC port: `N` shared rings behind
/// one Toeplitz hasher.
pub struct RssPort {
    toeplitz: Toeplitz,
    rings: Vec<SharedRing>,
}

impl RssPort {
    /// Port with `n_queues` rings of `ring_size` descriptors each, hashing
    /// with the Intel default RSS key, on the default SPSC fast path.
    pub fn new(n_queues: usize, ring_size: usize) -> Self {
        RssPort::with_path(n_queues, ring_size, RingPath::default())
    }

    /// Port with an explicit per-ring transport path (see [`RingPath`]).
    pub fn with_path(n_queues: usize, ring_size: usize, path: RingPath) -> Self {
        assert!(n_queues > 0, "need at least one queue");
        RssPort {
            toeplitz: Toeplitz::default(),
            rings: (0..n_queues)
                .map(|_| SharedRing::with_path(ring_size, path))
                .collect(),
        }
    }

    /// Number of Rx queues.
    pub fn n_queues(&self) -> usize {
        self.rings.len()
    }

    /// The RSS hash of a flow's hash input (see `FiveTuple::rss_input`).
    pub fn rss_hash(&self, rss_input: &[u8]) -> u32 {
        self.toeplitz.hash(rss_input)
    }

    /// The queue RSS steers a flow to. Stable per flow — resolve once per
    /// flow, not per packet, like a NIC's indirection table.
    pub fn queue_for(&self, rss_input: &[u8]) -> usize {
        self.toeplitz.queue_for(rss_input, self.rings.len())
    }

    /// Arm queue `q`'s doorbell hook (see [`SharedRing::set_wake_hook`]):
    /// the hook runs after every accepting offer into that ring, which is
    /// how an InterruptLike consumer parked on the queue gets woken.
    pub fn set_wake_hook(&mut self, q: usize, hook: WakeHook) {
        self.rings[q].set_wake_hook(hook);
    }

    /// Offer a frame to queue `q` (its metadata should carry the RSS
    /// decision); `false` means the ring tail-dropped it.
    pub fn offer(&self, q: usize, mbuf: Mbuf) -> bool {
        self.rings[q].offer(mbuf)
    }

    /// Offer a whole burst to queue `q` (see [`SharedRing::offer_burst`]):
    /// returns the accepted count and leaves the tail-dropped mbufs in
    /// `frames` for the caller to recycle.
    pub fn offer_burst(&self, q: usize, frames: &mut Vec<Mbuf>) -> usize {
        self.rings[q].offer_burst(frames)
    }

    /// The per-queue rings (for counters and occupancy checks).
    pub fn rings(&self) -> &[SharedRing] {
        &self.rings
    }

    /// Per-queue ring occupancies in one pass (the telemetry sampler's
    /// gauge column; each read is lock-free on the fast paths).
    pub fn occupancies(&self) -> Vec<u64> {
        self.rings.iter().map(OccupancyProbe::occupancy).collect()
    }

    /// Consumer handles for the workers, one per queue.
    pub fn consumers(&self) -> Vec<RingConsumer> {
        self.rings.iter().map(SharedRing::consumer).collect()
    }

    /// Total frames offered across queues.
    pub fn total_offered(&self) -> u64 {
        self.rings.iter().map(SharedRing::offered).sum()
    }

    /// Total frames accepted across queues.
    pub fn total_accepted(&self) -> u64 {
        self.rings.iter().map(SharedRing::accepted).sum()
    }

    /// Total frames tail-dropped across queues.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(SharedRing::dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use metronome_net::FiveTuple;
    use std::net::Ipv4Addr;

    const ALL_PATHS: [RingPath; 3] = [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked];

    fn frame() -> Mbuf {
        Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]))
    }

    #[test]
    fn shared_ring_conserves_and_counts_drops() {
        for path in ALL_PATHS {
            let r = SharedRing::with_path(32, path);
            assert_eq!(r.path(), path);
            for _ in 0..40 {
                r.offer(frame());
            }
            assert_eq!(r.accepted(), 32, "{path:?}");
            assert_eq!(r.dropped(), 8, "{path:?}");
            assert_eq!(r.offered(), 40, "{path:?}");
            assert_eq!(r.occupancy(), 32, "{path:?}");
            let q = r.consumer();
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            assert_eq!(popped, 32, "{path:?}");
            assert_eq!(r.occupancy(), 0, "{path:?}");
            // Space freed: offers succeed again.
            assert!(r.offer(frame()), "{path:?}");
            assert_eq!(r.accepted(), 33, "{path:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid ring size")]
    fn shared_ring_rejects_bad_size() {
        SharedRing::new(33);
    }

    #[test]
    fn offer_burst_accounts_and_returns_rejects() {
        for path in ALL_PATHS {
            let r = SharedRing::with_path(32, path);
            let mut burst: Vec<Mbuf> = (0..40).map(|_| frame()).collect();
            let accepted = r.offer_burst(&mut burst);
            assert_eq!(accepted, 32, "{path:?}");
            assert_eq!(
                burst.len(),
                8,
                "rejected mbufs must be handed back ({path:?})"
            );
            assert_eq!(r.accepted(), 32, "{path:?}");
            assert_eq!(r.dropped(), 8, "{path:?}");
            assert_eq!(r.offered(), 40, "{path:?}");
            // Rejected buffers are real mbufs the caller can recycle.
            assert!(burst.iter().all(|m| m.len() == 60), "{path:?}");
        }
    }

    #[test]
    fn pop_burst_drains_into_scratch() {
        for path in ALL_PATHS {
            let r = SharedRing::with_path(32, path);
            let mut burst: Vec<Mbuf> = (0..10).map(|_| frame()).collect();
            r.offer_burst(&mut burst);
            let mut out = Vec::new();
            assert_eq!(r.pop_burst(&mut out, 4), 4, "{path:?}");
            assert_eq!(r.pop_burst(&mut out, 32), 6, "{path:?}");
            assert_eq!(out.len(), 10, "{path:?}");
            assert_eq!(
                r.pop_burst(&mut out, 32),
                0,
                "ring must be empty ({path:?})"
            );
            assert_eq!(r.occupancy(), 0, "{path:?}");
        }
    }

    #[test]
    fn burst_and_single_offer_agree_on_accounting() {
        for path in ALL_PATHS {
            let single = SharedRing::with_path(32, path);
            let burst = SharedRing::with_path(32, path);
            for _ in 0..40 {
                single.offer(frame());
            }
            let mut frames: Vec<Mbuf> = (0..40).map(|_| frame()).collect();
            burst.offer_burst(&mut frames);
            assert_eq!(single.accepted(), burst.accepted(), "{path:?}");
            assert_eq!(single.dropped(), burst.dropped(), "{path:?}");
            assert_eq!(single.occupancy(), burst.occupancy(), "{path:?}");
        }
    }

    #[test]
    fn wake_hook_fires_once_per_accepting_offer() {
        use std::sync::atomic::AtomicUsize;

        for path in ALL_PATHS {
            let rings = Arc::new(AtomicUsize::new(0));
            let mut r = SharedRing::with_path(32, path);
            let counter = Arc::clone(&rings);
            r.set_wake_hook(Arc::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
            // Single offers: one ring each.
            r.offer(frame());
            r.offer(frame());
            assert_eq!(rings.load(Ordering::Relaxed), 2, "{path:?}");
            // A burst rings once, not per packet.
            let mut burst: Vec<Mbuf> = (0..10).map(|_| frame()).collect();
            r.offer_burst(&mut burst);
            assert_eq!(rings.load(Ordering::Relaxed), 3, "{path:?}");
            // A fully rejected burst (ring full) must not ring.
            let mut fill: Vec<Mbuf> = (0..32).map(|_| frame()).collect();
            r.offer_burst(&mut fill);
            let before = rings.load(Ordering::Relaxed);
            let mut rejected: Vec<Mbuf> = (0..4).map(|_| frame()).collect();
            assert_eq!(r.offer_burst(&mut rejected), 0, "{path:?}");
            assert_eq!(rings.load(Ordering::Relaxed), before, "{path:?}");
        }
    }

    #[test]
    fn consumer_handles_share_the_ring() {
        let r = SharedRing::new(32);
        let a = r.consumer();
        let b = a.clone();
        assert!(a.is_empty());
        r.offer(frame());
        r.offer(frame());
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert!(a.pop().is_some());
        assert!(b.pop().is_some());
        assert!(a.pop().is_none());
        assert_eq!(b.capacity(), 32);
    }

    #[test]
    fn rss_port_spreads_flows_stably() {
        let port = RssPort::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..400u32 {
            let t = FiveTuple::udp(
                Ipv4Addr::from(0x0a00_0000 + i),
                (1000 + i) as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            let q = port.queue_for(&t.rss_input());
            assert_eq!(q, port.queue_for(&t.rss_input()), "flow must be stable");
            assert!(q < 4);
            counts[q] += 1;
        }
        assert!(counts.iter().all(|&c| c > 40), "skewed spread: {counts:?}");
    }

    #[test]
    fn rss_port_accounts_per_queue_and_total() {
        for path in ALL_PATHS {
            let port = RssPort::with_path(2, 32, path);
            for _ in 0..40 {
                port.offer(0, frame());
            }
            port.offer(1, frame());
            assert_eq!(port.rings()[0].dropped(), 8, "{path:?}");
            assert_eq!(port.rings()[1].dropped(), 0, "{path:?}");
            assert_eq!(port.total_accepted(), 33, "{path:?}");
            assert_eq!(port.total_dropped(), 8, "{path:?}");
            assert_eq!(port.total_offered(), 41, "{path:?}");
            assert_eq!(port.consumers().len(), 2, "{path:?}");
        }
    }
}
