//! Thread-safe Rx rings for the real-thread pipeline.
//!
//! [`crate::ring::Ring`] is the single-threaded descriptor ring; the
//! realtime pipeline needs the concurrent analogue of `rte_ring` + RSS:
//!
//! * [`SharedRing`] — a bounded MPMC mbuf ring (backed by
//!   `crossbeam::queue::ArrayQueue`) with NIC-style tail-drop accounting:
//!   a producer that offers into a full ring loses the frame and the drop
//!   is counted, exactly like descriptors exhausting on an X520/XL710.
//! * [`RssPort`] — `N` shared rings behind one Toeplitz hasher: the
//!   receive side of a NIC port with RSS enabled. The load generator
//!   resolves each flow to a queue once (`queue_for`), then offers frames;
//!   Metronome workers drain the raw `ArrayQueue`s via
//!   [`RssPort::worker_queues`].
//!
//! Conservation is the contract tests rely on: for every ring,
//! `offered = accepted + dropped`, and whatever was accepted is either
//! still queued or was popped by a consumer — nothing is double-counted
//! because `offer` is the only producer path.

use crate::mbuf::Mbuf;
use crate::ring::valid_ring_size;
use bytes::BytesMut;
use crossbeam::queue::ArrayQueue;
use metronome_net::toeplitz::Toeplitz;
use metronome_telemetry::OccupancyProbe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A producer-side wake-up callback: invoked once per offer that accepted
/// at least one frame (the "raise the IRQ line" hook an interrupt-driven
/// consumer arms — e.g. ringing a `metronome_core` `Doorbell`).
pub type WakeHook = Arc<dyn Fn() + Send + Sync>;

/// A bounded multi-producer multi-consumer mbuf ring with tail-drop
/// accounting.
pub struct SharedRing {
    queue: Arc<ArrayQueue<Mbuf>>,
    accepted: AtomicU64,
    dropped: AtomicU64,
    /// Rung after every accepting offer; `None` (the default) costs one
    /// predictable branch per burst.
    wake_hook: Option<WakeHook>,
}

impl SharedRing {
    /// Ring with the given descriptor count.
    ///
    /// # Panics
    /// If `capacity` is not a valid NIC ring size (power of two in
    /// 32..=4096).
    pub fn new(capacity: usize) -> Self {
        assert!(valid_ring_size(capacity), "invalid ring size {capacity}");
        SharedRing {
            queue: Arc::new(ArrayQueue::new(capacity)),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            wake_hook: None,
        }
    }

    /// The consumer-side queue (what a Metronome worker drains).
    pub fn queue(&self) -> Arc<ArrayQueue<Mbuf>> {
        Arc::clone(&self.queue)
    }

    /// Arm the producer-side doorbell hook: `hook` runs after every offer
    /// that accepted at least one frame (once per burst, never per
    /// packet). Install it before producers start offering — the hook is
    /// how an interrupt-driven retrieval discipline learns that packets
    /// arrived while it was parked.
    pub fn set_wake_hook(&mut self, hook: WakeHook) {
        self.wake_hook = Some(hook);
    }

    fn wake(&self) {
        if let Some(hook) = &self.wake_hook {
            hook();
        }
    }

    /// Offer one frame; on a full ring it is tail-dropped and `false` is
    /// returned.
    pub fn offer(&self, mbuf: Mbuf) -> bool {
        match self.queue.push(mbuf) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                self.wake();
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer a whole burst, in order, with one accounting update per burst
    /// (the `rte_eth_rx_burst` producer-side analogue). Frames the full
    /// ring rejects are tail-dropped *as accounting* but their buffers are
    /// handed back: after the call, `frames` holds exactly the rejected
    /// mbufs (possibly none) so the caller can recycle them to the
    /// mempool — a drop loses the packet, never the buffer.
    ///
    /// Returns how many frames the ring accepted.
    pub fn offer_burst(&self, frames: &mut Vec<Mbuf>) -> usize {
        // Rejected frames are compacted in place (swap with an empty,
        // heap-free placeholder): the drop path allocates nothing, in
        // keeping with the burst discipline.
        let total = frames.len();
        let mut rejected = 0usize;
        for read in 0..total {
            let m = std::mem::replace(&mut frames[read], Mbuf::from_bytes(BytesMut::new()));
            match self.queue.push(m) {
                Ok(()) => {}
                Err(back) => {
                    frames[rejected] = back;
                    rejected += 1;
                }
            }
        }
        frames.truncate(rejected);
        let accepted = total - rejected;
        if accepted > 0 {
            self.accepted.fetch_add(accepted as u64, Ordering::Relaxed);
            self.wake();
        }
        if rejected > 0 {
            self.dropped.fetch_add(rejected as u64, Ordering::Relaxed);
        }
        accepted
    }

    /// Pop up to `max` frames into the caller-provided buffer (appended),
    /// returning how many were taken. This is the consumer half of the
    /// burst discipline: one call per retrieval burst, reusing the
    /// caller's scratch buffer so the hot path never allocates.
    pub fn pop_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        let mut taken = 0usize;
        while taken < max {
            match self.queue.pop() {
                Some(m) => {
                    out.push(m);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Frames accepted into the ring so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Frames tail-dropped at the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames offered (accepted + dropped).
    pub fn offered(&self) -> u64 {
        self.accepted() + self.dropped()
    }

    /// Frames currently queued.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Descriptor count.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }
}

/// The sampler-facing gauge view of a ring (see
/// [`metronome_telemetry::OccupancyProbe`]); reads are lock-free.
impl OccupancyProbe for SharedRing {
    fn occupancy(&self) -> u64 {
        self.queue.len() as u64
    }

    fn capacity(&self) -> u64 {
        self.queue.capacity() as u64
    }
}

/// The receive side of an RSS-enabled NIC port: `N` shared rings behind
/// one Toeplitz hasher.
pub struct RssPort {
    toeplitz: Toeplitz,
    rings: Vec<SharedRing>,
}

impl RssPort {
    /// Port with `n_queues` rings of `ring_size` descriptors each, hashing
    /// with the Intel default RSS key.
    pub fn new(n_queues: usize, ring_size: usize) -> Self {
        assert!(n_queues > 0, "need at least one queue");
        RssPort {
            toeplitz: Toeplitz::default(),
            rings: (0..n_queues).map(|_| SharedRing::new(ring_size)).collect(),
        }
    }

    /// Number of Rx queues.
    pub fn n_queues(&self) -> usize {
        self.rings.len()
    }

    /// The RSS hash of a flow's hash input (see `FiveTuple::rss_input`).
    pub fn rss_hash(&self, rss_input: &[u8]) -> u32 {
        self.toeplitz.hash(rss_input)
    }

    /// The queue RSS steers a flow to. Stable per flow — resolve once per
    /// flow, not per packet, like a NIC's indirection table.
    pub fn queue_for(&self, rss_input: &[u8]) -> usize {
        self.toeplitz.queue_for(rss_input, self.rings.len())
    }

    /// Arm queue `q`'s doorbell hook (see [`SharedRing::set_wake_hook`]):
    /// the hook runs after every accepting offer into that ring, which is
    /// how an InterruptLike consumer parked on the queue gets woken.
    pub fn set_wake_hook(&mut self, q: usize, hook: WakeHook) {
        self.rings[q].set_wake_hook(hook);
    }

    /// Offer a frame to queue `q` (its metadata should carry the RSS
    /// decision); `false` means the ring tail-dropped it.
    pub fn offer(&self, q: usize, mbuf: Mbuf) -> bool {
        self.rings[q].offer(mbuf)
    }

    /// Offer a whole burst to queue `q` (see [`SharedRing::offer_burst`]):
    /// returns the accepted count and leaves the tail-dropped mbufs in
    /// `frames` for the caller to recycle.
    pub fn offer_burst(&self, q: usize, frames: &mut Vec<Mbuf>) -> usize {
        self.rings[q].offer_burst(frames)
    }

    /// The per-queue rings (for counters and occupancy checks).
    pub fn rings(&self) -> &[SharedRing] {
        &self.rings
    }

    /// Per-queue ring occupancies in one pass (the telemetry sampler's
    /// gauge column; each read is lock-free).
    pub fn occupancies(&self) -> Vec<u64> {
        self.rings.iter().map(OccupancyProbe::occupancy).collect()
    }

    /// Consumer handles for the workers, one per queue.
    pub fn worker_queues(&self) -> Vec<Arc<ArrayQueue<Mbuf>>> {
        self.rings.iter().map(SharedRing::queue).collect()
    }

    /// Total frames offered across queues.
    pub fn total_offered(&self) -> u64 {
        self.rings.iter().map(SharedRing::offered).sum()
    }

    /// Total frames accepted across queues.
    pub fn total_accepted(&self) -> u64 {
        self.rings.iter().map(SharedRing::accepted).sum()
    }

    /// Total frames tail-dropped across queues.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(SharedRing::dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use metronome_net::FiveTuple;
    use std::net::Ipv4Addr;

    fn frame() -> Mbuf {
        Mbuf::from_bytes(BytesMut::from(&[0u8; 60][..]))
    }

    #[test]
    fn shared_ring_conserves_and_counts_drops() {
        let r = SharedRing::new(32);
        for _ in 0..40 {
            r.offer(frame());
        }
        assert_eq!(r.accepted(), 32);
        assert_eq!(r.dropped(), 8);
        assert_eq!(r.offered(), 40);
        assert_eq!(r.occupancy(), 32);
        let q = r.queue();
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 32);
        assert_eq!(r.occupancy(), 0);
        // Space freed: offers succeed again.
        assert!(r.offer(frame()));
        assert_eq!(r.accepted(), 33);
    }

    #[test]
    #[should_panic(expected = "invalid ring size")]
    fn shared_ring_rejects_bad_size() {
        SharedRing::new(33);
    }

    #[test]
    fn offer_burst_accounts_and_returns_rejects() {
        let r = SharedRing::new(32);
        let mut burst: Vec<Mbuf> = (0..40).map(|_| frame()).collect();
        let accepted = r.offer_burst(&mut burst);
        assert_eq!(accepted, 32);
        assert_eq!(burst.len(), 8, "rejected mbufs must be handed back");
        assert_eq!(r.accepted(), 32);
        assert_eq!(r.dropped(), 8);
        assert_eq!(r.offered(), 40);
        // Rejected buffers are real mbufs the caller can recycle.
        assert!(burst.iter().all(|m| m.len() == 60));
    }

    #[test]
    fn pop_burst_drains_into_scratch() {
        let r = SharedRing::new(32);
        let mut burst: Vec<Mbuf> = (0..10).map(|_| frame()).collect();
        r.offer_burst(&mut burst);
        let mut out = Vec::new();
        assert_eq!(r.pop_burst(&mut out, 4), 4);
        assert_eq!(r.pop_burst(&mut out, 32), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(r.pop_burst(&mut out, 32), 0, "ring must be empty");
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn burst_and_single_offer_agree_on_accounting() {
        let single = SharedRing::new(32);
        let burst = SharedRing::new(32);
        for _ in 0..40 {
            single.offer(frame());
        }
        let mut frames: Vec<Mbuf> = (0..40).map(|_| frame()).collect();
        burst.offer_burst(&mut frames);
        assert_eq!(single.accepted(), burst.accepted());
        assert_eq!(single.dropped(), burst.dropped());
        assert_eq!(single.occupancy(), burst.occupancy());
    }

    #[test]
    fn wake_hook_fires_once_per_accepting_offer() {
        use std::sync::atomic::AtomicUsize;

        let rings = AtomicUsize::new(0);
        let rings = Arc::new(rings);
        let mut r = SharedRing::new(32);
        let counter = Arc::clone(&rings);
        r.set_wake_hook(Arc::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        // Single offers: one ring each.
        r.offer(frame());
        r.offer(frame());
        assert_eq!(rings.load(Ordering::Relaxed), 2);
        // A burst rings once, not per packet.
        let mut burst: Vec<Mbuf> = (0..10).map(|_| frame()).collect();
        r.offer_burst(&mut burst);
        assert_eq!(rings.load(Ordering::Relaxed), 3);
        // A fully rejected burst (ring full) must not ring.
        let mut fill: Vec<Mbuf> = (0..32).map(|_| frame()).collect();
        r.offer_burst(&mut fill);
        let before = rings.load(Ordering::Relaxed);
        let mut rejected: Vec<Mbuf> = (0..4).map(|_| frame()).collect();
        assert_eq!(r.offer_burst(&mut rejected), 0);
        assert_eq!(rings.load(Ordering::Relaxed), before);
    }

    #[test]
    fn rss_port_spreads_flows_stably() {
        let port = RssPort::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..400u32 {
            let t = FiveTuple::udp(
                Ipv4Addr::from(0x0a00_0000 + i),
                (1000 + i) as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            let q = port.queue_for(&t.rss_input());
            assert_eq!(q, port.queue_for(&t.rss_input()), "flow must be stable");
            assert!(q < 4);
            counts[q] += 1;
        }
        assert!(counts.iter().all(|&c| c > 40), "skewed spread: {counts:?}");
    }

    #[test]
    fn rss_port_accounts_per_queue_and_total() {
        let port = RssPort::new(2, 32);
        for _ in 0..40 {
            port.offer(0, frame());
        }
        port.offer(1, frame());
        assert_eq!(port.rings()[0].dropped(), 8);
        assert_eq!(port.rings()[1].dropped(), 0);
        assert_eq!(port.total_accepted(), 33);
        assert_eq!(port.total_dropped(), 8);
        assert_eq!(port.total_offered(), 41);
        assert_eq!(port.worker_queues().len(), 2);
    }
}
