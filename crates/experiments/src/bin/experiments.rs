//! Command-line harness regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--full] [--realtime] [--json] [--seed N] [--out DIR]
//!             [all | fig1 | fig4 | table1 | fig5 | fig6 | fig7 | fig8 |
//!              fig9 | fig10 | fig11 | fig12 | table2 | fig13 | fig14 |
//!              fig15 | table3 | fig16]...
//! ```
//!
//! `--realtime` switches the Metronome points of fig15/fig16 to the
//! real-thread pipeline (×1000-scaled rates; see `ExpConfig::realtime`).
//!
//! Prints paper-style tables to stdout and writes CSV series under the
//! output directory (default `results/`). With `--json`, every raw
//! `RunReport` behind a table cell is additionally written as
//! machine-readable JSON (`<label>.json`, via the telemetry JSON
//! writer), including the windowed telemetry series when the experiment
//! sampled one.

use metronome_experiments::{run_experiment, ExpConfig, ALL_EXPERIMENTS};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn main() {
    let mut cfg = ExpConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => cfg.full = true,
            "--realtime" => cfg.realtime = true,
            "--json" => json = true,
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--full] [--realtime] [--json] [--seed N] [--out DIR] [all | {}]",
                    ALL_EXPERIMENTS.join(" | ")
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // fig12 produces table2, fig13 produces fig14 — dedup by module.
    let mut done: BTreeSet<&'static str> = BTreeSet::new();
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for id in &wanted {
        let Some(out) = run_experiment(id, &cfg) else {
            eprintln!("unknown experiment: {id} (try --help)");
            continue;
        };
        if !done.insert(out.id) {
            continue;
        }
        println!("==============================================================");
        println!(
            "{} [{}]",
            out.title,
            if cfg.full { "full" } else { "quick" }
        );
        println!("==============================================================");
        println!("{}", out.table);
        for (name, content) in &out.csvs {
            let path = out_dir.join(name);
            std::fs::write(&path, content).expect("write csv");
            println!("  -> {}", path.display());
        }
        if json {
            for (label, report) in &out.reports {
                let path = out_dir.join(format!("{label}.json"));
                std::fs::write(&path, report.to_json()).expect("write report json");
                println!("  -> {}", path.display());
            }
        }
        println!();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
