//! Figure 1: `hr_sleep()` vs `nanosleep()` latency boxplots at 1/10/100 µs.
//!
//! Paper targets (§III-A, Fig. 1): hr_sleep resumes after ≈3.85 / 13.46 /
//! 108.45 µs with tight IQRs; nanosleep with the minimal 1 µs slack is
//! slightly slower and noisier at every granularity.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_os::config::TimerSlack;
use metronome_os::sleep::{SleepModel, SleepService};
use metronome_sim::stats::Boxplot;
use metronome_sim::{Nanos, Rng};

/// Sample the resume-latency distribution of one service/request pair.
fn sample(service: SleepService, request: Nanos, n: usize, seed: u64) -> Boxplot {
    // Fig. 1 was measured on an otherwise idle NUMA node.
    let model = SleepModel::idle_calibration();
    let mut rng = Rng::new(seed);
    let samples: Vec<f64> = (0..n)
        .map(|_| {
            model
                .actual_sleep(service, request, &mut rng)
                .as_micros_f64()
        })
        .collect();
    Boxplot::from_samples(&samples).expect("nonempty")
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    // Paper: "a million samples ... are collected".
    let n = if cfg.full { 1_000_000 } else { 100_000 };
    let services = [
        ("hr_sleep", SleepService::HrSleep),
        (
            "nanosleep(slack=1us)",
            SleepService::Nanosleep(TimerSlack::MinimalOneMicro),
        ),
        (
            "nanosleep(default slack)",
            SleepService::Nanosleep(TimerSlack::DefaultFifty),
        ),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for req_us in [1u64, 10, 100] {
        for (name, svc) in &services {
            let bp = sample(*svc, Nanos::from_micros(req_us), n, cfg.seed ^ req_us);
            rows.push(vec![
                format!("{req_us}"),
                name.to_string(),
                format!("{:.3}", bp.mean),
                format!("{:.3}", bp.q1),
                format!("{:.3}", bp.median),
                format!("{:.3}", bp.q3),
                format!("{:.4}", bp.std_dev),
            ]);
            csv_rows.push(vec![
                req_us.to_string(),
                name.to_string(),
                bp.mean.to_string(),
                bp.q1.to_string(),
                bp.median.to_string(),
                bp.q3.to_string(),
                bp.std_dev.to_string(),
            ]);
        }
    }
    let headers = [
        "request_us",
        "service",
        "mean_us",
        "q1_us",
        "median_us",
        "q3_us",
        "std_us",
    ];
    ExpOutput {
        id: "fig1",
        title: "Figure 1: hr_sleep vs nanosleep resume latency (boxplots)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig1_sleep_services.csv".into(),
            render_csv(&headers, &csv_rows),
        )],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1_ordering() {
        let hr = sample(SleepService::HrSleep, Nanos::from_micros(10), 20_000, 1);
        let nano = sample(
            SleepService::Nanosleep(TimerSlack::MinimalOneMicro),
            Nanos::from_micros(10),
            20_000,
            1,
        );
        assert!((hr.mean - 13.46).abs() < 0.2, "hr mean {}", hr.mean);
        assert!(nano.mean > hr.mean);
        assert!(nano.std_dev > hr.std_dev);
    }

    #[test]
    fn output_has_nine_rows() {
        let out = run(&ExpConfig {
            full: false,
            seed: 7,
            ..ExpConfig::default()
        });
        assert_eq!(out.table.lines().count(), 2 + 9);
        assert_eq!(out.csvs.len(), 1);
    }
}
