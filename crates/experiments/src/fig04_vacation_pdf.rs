//! Figure 4: vacation-period PDF, analysis vs experiment, TS = TL = 50 µs.
//!
//! The paper validates its decorrelation assumption by comparing measured
//! vacation periods against the analytical PDF of eq. (9),
//! `f(x) = (M−1)/TL·(1−x/TL)^{M−2}`, for M ∈ {2, 3, 5} threads with both
//! timeouts pinned at 50 µs. Rare samples beyond TL appear because of
//! OS-daemon interference — visible for M = 2, negligible from M = 3 on.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::{model, MetronomeConfig};
use metronome_runtime::{run as run_scenario, Scenario, TrafficSpec};
use metronome_sim::Nanos;

const TIMEOUT_US: f64 = 50.0;

/// Collect vacation samples with TS = TL = 50 µs and M threads.
fn vacation_samples(m: usize, cfg: &ExpConfig) -> Vec<f64> {
    let mcfg = MetronomeConfig {
        m_threads: m,
        fixed_ts: Some(Nanos::from_micros(50)),
        t_long: Nanos::from_micros(50),
        ..MetronomeConfig::default()
    };
    // Near-idle load. Two reasons, both from the paper's own model: (i)
    // with B ≪ TS every vacation ends at the first wake-up, the regime of
    // eq. (9)'s minimum-of-uniforms; (ii) at higher loads the drain time
    // grows with the preceding vacation, which couples the threads' wake
    // phases (a bunching attractor) — the decorrelation assumption only
    // holds when that pull (∝ λ/µ per cycle) is far below the wake noise.
    let sc = Scenario::metronome(format!("fig4-m{m}"), mcfg, TrafficSpec::CbrGbps(0.1))
        .with_duration(cfg.dur(3.0, 20.0))
        .with_seed(cfg.seed ^ m as u64);
    // Daemon interference stays ON: it produces the beyond-TL tail the
    // paper points out.
    run_scenario(&sc).vacation_samples_us
}

/// Histogram a sample set into `bins` over [0, hi), returning densities.
fn density(samples: &[f64], hi: f64, bins: usize) -> Vec<f64> {
    let mut counts = vec![0u64; bins];
    let width = hi / bins as f64;
    for &s in samples {
        let idx = (s / width) as usize;
        if idx < bins {
            counts[idx] += 1;
        }
    }
    let n = samples.len().max(1) as f64;
    counts.iter().map(|&c| c as f64 / n / width).collect()
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let bins = 25;
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for m in [2usize, 3, 5] {
        let samples = vacation_samples(m, cfg);
        let emp = density(&samples, TIMEOUT_US, bins);
        let width = TIMEOUT_US / bins as f64;
        for (i, &e) in emp.iter().enumerate() {
            let x = (i as f64 + 0.5) * width;
            let th = model::vacation_pdf_equal_timeouts(x * 1e-6, TIMEOUT_US * 1e-6, m) * 1e-6;
            csv_rows.push(vec![
                m.to_string(),
                format!("{x:.2}"),
                format!("{e:.6}"),
                format!("{th:.6}"),
            ]);
        }
        // Kolmogorov–Smirnov distance between the empirical distribution
        // (oversleep stretches wakes ~11% past the nominal timeout, so we
        // compare against the theory CDF with samples scaled back to the
        // nominal [0, TL] support) and eq. (5) with TS = TL.
        let stretch = 1.0 + 0.0565 + 2.3 / TIMEOUT_US; // drift + base, µs
        let mut sorted: Vec<f64> = samples.iter().map(|s| s / stretch).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut ks = 0.0f64;
        for (i, &s) in sorted.iter().enumerate() {
            let emp_cdf = (i + 1) as f64 / sorted.len() as f64;
            let th_cdf = model::vacation_cdf_high_load(
                (s * 1e-6).max(0.0),
                TIMEOUT_US * 1e-6,
                TIMEOUT_US * 1e-6,
                m,
            );
            ks = ks.max((emp_cdf - th_cdf).abs());
        }
        let beyond = samples.iter().filter(|&&s| s > TIMEOUT_US).count() as f64
            / samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        let theory_mean =
            model::vacation_mean_high_load(TIMEOUT_US * 1e-6, TIMEOUT_US * 1e-6, m) * 1e6;
        rows.push(vec![
            m.to_string(),
            samples.len().to_string(),
            format!("{mean:.2}"),
            format!("{theory_mean:.2}"),
            format!("{ks:.3}"),
            format!("{:.3}%", beyond * 100.0),
        ]);
    }
    let headers = [
        "M",
        "samples",
        "mean_V_us",
        "theory_mean_us",
        "ks_distance",
        "beyond_TL",
    ];
    ExpOutput {
        id: "fig4",
        title: "Figure 4: vacation PDF, experiment vs eq. (9), TS=TL=50µs".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig4_vacation_pdf.csv".into(),
            render_csv(
                &["m", "x_us", "empirical_density", "theory_density"],
                &csv_rows,
            ),
        )],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_normalizes() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 * 0.05).collect();
        let d = density(&samples, 50.0, 25);
        let integral: f64 = d.iter().sum::<f64>() * 2.0;
        assert!((integral - 1.0).abs() < 0.05, "{integral}");
    }

    #[test]
    fn more_threads_shorter_vacations() {
        let cfg = ExpConfig {
            full: false,
            seed: 3,
            ..ExpConfig::default()
        };
        let v2 = vacation_samples(2, &cfg);
        let v5 = vacation_samples(5, &cfg);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!v2.is_empty() && !v5.is_empty());
        assert!(
            mean(&v5) < mean(&v2),
            "5 threads must yield shorter vacations ({} vs {})",
            mean(&v5),
            mean(&v2)
        );
    }
}
