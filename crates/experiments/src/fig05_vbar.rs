//! Figure 5: latency and CPU usage vs target vacation time.
//!
//! Paper shape (M = 3, V̄ ∈ {2, 5, 7, 10} µs at 10 and 5 Gbps): the shorter
//! the target vacation, the lower the latency and the higher the CPU —
//! the knob that trades latency for CPU (§IV-D).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for gbps in [10.0f64, 5.0] {
        for v_us in [2u64, 5, 7, 10] {
            let mcfg = MetronomeConfig {
                v_target: Nanos::from_micros(v_us),
                ..MetronomeConfig::default()
            };
            let sc = Scenario::metronome(
                format!("fig5-{gbps}g-v{v_us}"),
                mcfg,
                TrafficSpec::CbrGbps(gbps),
            )
            .with_duration(cfg.dur(1.5, 30.0))
            .with_latency()
            .with_seed(cfg.seed ^ (v_us << 8) ^ gbps as u64);
            let r = run_scenario(&sc);
            let lat = r.latency_us.expect("latency sampled");
            rows.push(vec![
                format!("{gbps}"),
                v_us.to_string(),
                format!("{:.2}", lat.mean),
                format!("{:.2}", lat.median),
                format!("{:.1}", r.cpu_total_pct),
                format!("{:.4}", r.loss_permille()),
            ]);
        }
    }
    let headers = [
        "gbps",
        "target_V_us",
        "latency_mean_us",
        "latency_median_us",
        "cpu_pct",
        "loss_permille",
    ];
    ExpOutput {
        id: "fig5",
        title: "Figure 5: latency and CPU vs target vacation (10/5 Gbps)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig5_vbar_tradeoff.csv".into(), render_csv(&headers, &rows))],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_runtime::run as run_scenario;

    fn one(v_us: u64, gbps: f64) -> (f64, f64) {
        let mcfg = MetronomeConfig {
            v_target: Nanos::from_micros(v_us),
            ..MetronomeConfig::default()
        };
        let sc = Scenario::metronome("t", mcfg, TrafficSpec::CbrGbps(gbps))
            .with_duration(Nanos::from_secs(1))
            .with_latency()
            .with_seed(5);
        let r = run_scenario(&sc);
        (r.latency_us.unwrap().mean, r.cpu_total_pct)
    }

    #[test]
    fn tradeoff_direction_holds() {
        let (lat2, cpu2) = one(2, 10.0);
        let (lat10, cpu10) = one(10, 10.0);
        assert!(lat2 < lat10, "latency {lat2} !< {lat10}");
        assert!(cpu2 > cpu10, "cpu {cpu2} !> {cpu10}");
    }
}
