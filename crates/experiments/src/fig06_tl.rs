//! Figure 6: busy tries and CPU usage versus `TL`.
//!
//! Paper shape: longer backup timeouts cut both the fraction of failed
//! trylock attempts and the wasted CPU, with most of the gain before
//! TL = 500 µs ("between 500 and 700 µs we experimented a difference of
//! only 1% in CPU usage and around 2% in busy tries").

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// One line-rate run at a given TL.
pub fn run_tl(tl_us: u64, cfg: &ExpConfig) -> RunReport {
    let mcfg = MetronomeConfig {
        t_long: Nanos::from_micros(tl_us),
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome(format!("fig6-tl{tl_us}"), mcfg, TrafficSpec::CbrGbps(10.0))
        .with_duration(cfg.dur(1.5, 30.0))
        .with_seed(cfg.seed ^ tl_us);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for tl in [100u64, 300, 500, 700] {
        let r = run_tl(tl, cfg);
        rows.push(vec![
            tl.to_string(),
            format!("{:.1}", r.busy_try_fraction * 100.0),
            format!("{:.1}", r.cpu_total_pct),
            format!("{:.4}", r.loss_permille()),
        ]);
    }
    let headers = ["TL_us", "busy_tries_pct", "cpu_pct", "loss_permille"];
    ExpOutput {
        id: "fig6",
        title: "Figure 6: busy tries and CPU vs TL (line rate)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig6_tl_sweep.csv".into(), render_csv(&headers, &rows))],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tries_fall_with_tl() {
        let cfg = ExpConfig {
            full: false,
            seed: 21,
            ..ExpConfig::default()
        };
        let short = run_tl(100, &cfg);
        let long = run_tl(700, &cfg);
        assert!(
            short.busy_try_fraction > long.busy_try_fraction,
            "busy tries {} !> {}",
            short.busy_try_fraction,
            long.busy_try_fraction
        );
        assert!(short.cpu_total_pct > long.cpu_total_pct);
    }
}
