//! Figure 7: busy tries and CPU usage versus the thread count `M`.
//!
//! Paper shape: "the percentage of busy tries increases linearly with the
//! number of threads, along with a slight cost increase in terms of CPU
//! usage" — more threads mostly just means more wasted wake-ups.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// One line-rate run with M threads.
pub fn run_m(m: usize, cfg: &ExpConfig) -> RunReport {
    let mcfg = MetronomeConfig {
        m_threads: m,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome(format!("fig7-m{m}"), mcfg, TrafficSpec::CbrGbps(10.0))
        .with_duration(cfg.dur(1.5, 30.0))
        .with_seed(cfg.seed ^ (m as u64) << 4);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for m in 2usize..=6 {
        let r = run_m(m, cfg);
        rows.push(vec![
            m.to_string(),
            format!("{:.1}", r.busy_try_fraction * 100.0),
            format!("{:.1}", r.cpu_total_pct),
            format!("{:.4}", r.loss_permille()),
        ]);
    }
    let headers = ["M", "busy_tries_pct", "cpu_pct", "loss_permille"];
    ExpOutput {
        id: "fig7",
        title: "Figure 7: busy tries and CPU vs number of threads M (line rate)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig7_m_sweep.csv".into(), render_csv(&headers, &rows))],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tries_grow_with_m() {
        let cfg = ExpConfig {
            full: false,
            seed: 31,
            ..ExpConfig::default()
        };
        let m2 = run_m(2, &cfg);
        let m6 = run_m(6, &cfg);
        assert!(
            m6.busy_try_fraction > m2.busy_try_fraction,
            "{} !> {}",
            m6.busy_try_fraction,
            m2.busy_try_fraction
        );
        // CPU stays roughly flat (the paper's "slight cost increase"): the
        // extra wake-ups are offset by the longer TS eq. (13) assigns.
        assert!((m6.cpu_total_pct - m2.cpu_total_pct).abs() < 12.0);
    }
}
