//! Figure 8: latency versus the thread count `M` at 10 and 1 Gbps.
//!
//! Paper shape: adding threads *hurts* latency — eq. (13) stretches `TS`
//! with `M`, and primaries hand off to backups more often, so both the
//! mean (at 10 Gbps) and especially the variance (at 1 Gbps) grow.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, Scenario, TrafficSpec};
use metronome_sim::stats::Boxplot;

/// One latency run with M threads at a rate.
pub fn run_m(m: usize, gbps: f64, cfg: &ExpConfig) -> Boxplot {
    let mcfg = MetronomeConfig {
        m_threads: m,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome(
        format!("fig8-m{m}-{gbps}g"),
        mcfg,
        TrafficSpec::CbrGbps(gbps),
    )
    .with_duration(cfg.dur(1.5, 30.0))
    .with_latency_stride(if gbps < 2.0 { 61 } else { 509 })
    .with_seed(cfg.seed ^ ((m as u64) << 12) ^ gbps as u64);
    run_scenario(&sc).latency_us.expect("latency sampled")
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for gbps in [10.0f64, 1.0] {
        for m in 2usize..=6 {
            let bp = run_m(m, gbps, cfg);
            rows.push(vec![
                format!("{gbps}"),
                m.to_string(),
                format!("{:.2}", bp.mean),
                format!("{:.2}", bp.q1),
                format!("{:.2}", bp.median),
                format!("{:.2}", bp.q3),
                format!("{:.2}", bp.std_dev),
            ]);
        }
    }
    let headers = [
        "gbps",
        "M",
        "mean_us",
        "q1_us",
        "median_us",
        "q3_us",
        "std_us",
    ];
    ExpOutput {
        id: "fig8",
        title: "Figure 8: latency vs number of threads M (10/1 Gbps)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig8_latency_vs_m.csv".into(), render_csv(&headers, &rows))],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_m_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 41,
            ..ExpConfig::default()
        };
        let m2 = run_m(2, 10.0, &cfg);
        let m6 = run_m(6, 10.0, &cfg);
        assert!(
            m6.mean > m2.mean,
            "latency must grow with M: {} !> {}",
            m6.mean,
            m2.mean
        );
    }
}
