//! Figure 9: adaptation to a varying load (the MoonGen staircase).
//!
//! Paper shape: the rate estimate `ρ̂·µ` tracks the true staircase up to
//! 14 Mpps and back down; `TS` moves inversely (≈28 µs at the valleys,
//! ≈17–18 µs at the peak for V̄ = 10 µs, M = 3); CPU rises from ≈20% at
//! idle to ≈60% near line rate, and ρ tracks the load.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// Run the staircase scenario.
pub fn run_ramp(cfg: &ExpConfig) -> RunReport {
    // Paper: +~0.93 Mpps every 2 s for 30 s, then back down. Quick mode
    // compresses the step to 400 ms (adaptation settles in ~ms anyway).
    let step = if cfg.full {
        Nanos::from_secs(2)
    } else {
        Nanos::from_millis(400)
    };
    let n_steps = 15;
    let total = step.scaled(2 * n_steps as u64);
    let sc = Scenario::metronome(
        "fig9-ramp",
        MetronomeConfig::default(),
        TrafficSpec::RampUpDown {
            peak_pps: 14e6,
            n_steps,
            step,
        },
    )
    .with_duration(total)
    .with_series(step / 2)
    .with_seed(cfg.seed);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = run_ramp(cfg);
    let headers = ["t_s", "true_mpps", "est_mpps", "ts_us", "rho", "cpu_pct"];
    let csv_rows: Vec<Vec<String>> = r
        .series
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.t_s),
                format!("{:.3}", p.true_mpps),
                format!("{:.3}", p.est_mpps),
                format!("{:.2}", p.ts_us),
                format!("{:.4}", p.rho),
                format!("{:.1}", p.cpu_pct),
            ]
        })
        .collect();
    // The printed table shows every 4th point to stay readable.
    let rows: Vec<Vec<String>> = csv_rows.iter().step_by(4).cloned().collect();
    ExpOutput {
        id: "fig9",
        title: "Figure 9: rate/TS estimation and CPU/rho tracking on the ramp".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig9_adaptation.csv".into(),
            render_csv(&headers, &csv_rows),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_and_ts_inverts() {
        let r = run_ramp(&ExpConfig {
            full: false,
            seed: 51,
            ..ExpConfig::default()
        });
        assert!(r.series.len() > 20);
        // Peak sample: estimate within 25% of true rate, TS compressed.
        let peak = r
            .series
            .iter()
            .max_by(|a, b| a.true_mpps.partial_cmp(&b.true_mpps).unwrap())
            .unwrap();
        assert!(peak.true_mpps > 13.0);
        assert!(
            (peak.est_mpps - peak.true_mpps).abs() / peak.true_mpps < 0.25,
            "estimate {} vs true {}",
            peak.est_mpps,
            peak.true_mpps
        );
        let valley = &r.series[1];
        assert!(valley.ts_us > peak.ts_us, "TS must compress under load");
        // CPU must rise from the valley to the peak.
        assert!(peak.cpu_pct > valley.cpu_pct + 10.0);
    }
}
