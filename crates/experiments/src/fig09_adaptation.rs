//! Figure 9: adaptation to a varying load (the MoonGen staircase).
//!
//! Paper shape: the rate estimate `ρ̂·µ` tracks the true staircase up to
//! 14 Mpps and back down; `TS` moves inversely (≈28 µs at the valleys,
//! ≈17–18 µs at the peak for V̄ = 10 µs, M = 3); CPU rises from ≈20% at
//! idle to ≈60% near line rate, and ρ tracks the load.
//!
//! The output is a **per-window time series**, not run-level averages:
//! each row is one telemetry window (duty cycle, windowed throughput,
//! retrieved/dropped counts, `TS`/ρ at window end) joined with the
//! estimator trajectory, so the adaptation claim — `TS` compresses within
//! a bounded number of windows of a rate step — is directly visible (and
//! asserted by a test below).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// Run the staircase scenario.
pub fn run_ramp(cfg: &ExpConfig) -> RunReport {
    // Paper: +~0.93 Mpps every 2 s for 30 s, then back down. Quick mode
    // compresses the step to 400 ms (adaptation settles in ~ms anyway).
    let step = if cfg.full {
        Nanos::from_secs(2)
    } else {
        Nanos::from_millis(400)
    };
    let n_steps = 15;
    let total = step.scaled(2 * n_steps as u64);
    let sc = Scenario::metronome(
        "fig9-ramp",
        MetronomeConfig::default(),
        TrafficSpec::RampUpDown {
            peak_pps: 14e6,
            n_steps,
            step,
        },
    )
    .with_duration(total)
    .with_series(step / 2)
    .with_seed(cfg.seed);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = run_ramp(cfg);
    let ts = r
        .timeseries
        .as_ref()
        .expect("the ramp scenario requests windowed sampling");
    let headers = [
        "t_s",
        "true_mpps",
        "est_mpps",
        "ts_us",
        "rho",
        "cpu_pct",
        "duty_cycle",
        "win_tput_mpps",
        "retrieved",
        "dropped",
    ];
    // The estimator trajectory (RampPoint) and the telemetry windows are
    // sampled at the same scheduled boundaries, so they join 1:1.
    assert_eq!(r.series.len(), ts.len(), "series/window boundary mismatch");
    let csv_rows: Vec<Vec<String>> = r
        .series
        .iter()
        .zip(&ts.windows)
        .map(|(p, w)| {
            vec![
                format!("{:.2}", p.t_s),
                format!("{:.3}", p.true_mpps),
                format!("{:.3}", p.est_mpps),
                format!("{:.2}", w.ts_us()),
                format!("{:.4}", w.rho0()),
                format!("{:.1}", p.cpu_pct),
                format!("{:.4}", w.duty_cycle()),
                format!("{:.3}", w.throughput_mpps()),
                format!("{}", w.retrieved),
                format!("{}", w.dropped()),
            ]
        })
        .collect();
    // The printed table shows every 4th point to stay readable.
    let rows: Vec<Vec<String>> = csv_rows.iter().step_by(4).cloned().collect();
    ExpOutput {
        id: "fig9",
        title: "Figure 9: per-window rate/TS adaptation and CPU/rho tracking on the ramp".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig9_adaptation.csv".into(),
            render_csv(&headers, &csv_rows),
        )],
        reports: vec![("fig9_ramp".into(), r)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_and_ts_inverts() {
        let r = run_ramp(&ExpConfig {
            full: false,
            seed: 51,
            ..ExpConfig::default()
        });
        assert!(r.series.len() > 20);
        // Peak sample: estimate within 25% of true rate, TS compressed.
        let peak = r
            .series
            .iter()
            .max_by(|a, b| a.true_mpps.partial_cmp(&b.true_mpps).unwrap())
            .unwrap();
        assert!(peak.true_mpps > 13.0);
        assert!(
            (peak.est_mpps - peak.true_mpps).abs() / peak.true_mpps < 0.25,
            "estimate {} vs true {}",
            peak.est_mpps,
            peak.true_mpps
        );
        let valley = &r.series[1];
        assert!(valley.ts_us > peak.ts_us, "TS must compress under load");
        // CPU must rise from the valley to the peak.
        assert!(peak.cpu_pct > valley.cpu_pct + 10.0);
    }

    #[test]
    fn ts_compresses_within_bounded_windows_of_a_rate_step() {
        let r = run_ramp(&ExpConfig {
            full: false,
            seed: 52,
            ..ExpConfig::default()
        });
        let ts = r.timeseries.expect("ramp requests windowed sampling");
        assert_eq!(ts.len(), r.series.len());

        // Locate the first window where the staircase has stepped up to
        // its peak rate. Adaptation settles in milliseconds, so within a
        // bounded number of 200 ms windows of that step the TS trajectory
        // must have compressed well below its valley value (eq. (13):
        // ρ ≈ 0.5 at 14 Mpps ⇒ TS ≈ 18 µs vs ≈ 29–30 µs at the valley).
        let first_peak = r
            .series
            .iter()
            .position(|p| p.true_mpps > 13.0)
            .expect("the staircase reaches peak rate");
        let valley_ts = ts.windows[1].ts_us();
        const SETTLE_WINDOWS: usize = 4;
        let settled = &ts.windows[first_peak..(first_peak + SETTLE_WINDOWS).min(ts.len())];
        assert!(
            settled.iter().any(|w| w.ts_us() < 0.8 * valley_ts),
            "TS did not shrink within {SETTLE_WINDOWS} windows of the rate step to peak: \
             valley {valley_ts} µs, after {:?}",
            settled.iter().map(|w| w.ts_us()).collect::<Vec<_>>()
        );

        // The windowed columns are real per-window measurements: the peak
        // window forwards at more than half of peak rate and burns more
        // duty cycle than the first valley window.
        let peak_w = ts
            .windows
            .iter()
            .max_by(|a, b| a.retrieved.cmp(&b.retrieved))
            .unwrap();
        assert!(
            peak_w.throughput_mpps() > 7.0,
            "peak window throughput {}",
            peak_w.throughput_mpps()
        );
        assert!(peak_w.duty_cycle() > ts.windows[0].duty_cycle());

        // Window conservation: per-window deltas telescope to the final
        // aggregates the report carries.
        assert_eq!(ts.column_sum(|w| w.retrieved), r.forwarded);
        assert_eq!(
            ts.column_sum(|w| w.dropped_ring + w.dropped_pool),
            r.dropped
        );
    }
}
