//! Figure 10: l3fwd under static DPDK, Metronome and XDP — latency and CPU.
//!
//! Paper shapes at {10, 5, 1, 0.5} Gbps:
//! * latency: static lowest (≈7–10 µs) and tight; Metronome ≈2× static
//!   with more variance; XDP comparable at low rates but worst at line
//!   rate (moderation + softirq batching);
//! * CPU: static pinned at 100%; Metronome proportional (≈60% → ≈19%);
//!   XDP highest under load (≈200%+ over its 4 cores) yet exactly 0 at
//!   idle. XDP runs on 4 cores at 10/5 Gbps and 1 core at 1/0.5 Gbps —
//!   the paper's "minimal number of cores ... in order not to lose
//!   packets".

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// Systems compared by the figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// Busy-polling DPDK.
    Static,
    /// The paper's contribution.
    Metronome,
    /// Interrupt-driven XDP.
    Xdp,
}

/// One cell of the figure.
pub fn run_cell(system: System, gbps: f64, cfg: &ExpConfig) -> RunReport {
    let traffic = TrafficSpec::CbrGbps(gbps);
    let dur = cfg.dur(1.5, 30.0);
    let stride = if gbps < 2.0 { 61 } else { 509 };
    let seed = cfg.seed ^ ((gbps * 16.0) as u64) ^ ((system as u64) << 24);
    let sc = match system {
        System::Static => Scenario::static_dpdk(format!("fig10-static-{gbps}g"), 1, traffic),
        System::Metronome => Scenario::metronome(
            format!("fig10-metronome-{gbps}g"),
            MetronomeConfig::default(),
            traffic,
        ),
        System::Xdp => {
            // Minimal cores not to lose packets: one XDP core caps at
            // ≈6.7 Mpps, so 10/5 Gbps need 4 queues (as in the paper),
            // lower rates run on one.
            let queues = if gbps >= 5.0 { 4 } else { 1 };
            Scenario::xdp(format!("fig10-xdp-{gbps}g"), queues, traffic)
        }
    };
    run_scenario(
        &sc.with_duration(dur)
            .with_latency_stride(stride)
            .with_seed(seed),
    )
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for gbps in [10.0f64, 5.0, 1.0, 0.5] {
        for (name, system) in [
            ("static", System::Static),
            ("metronome", System::Metronome),
            ("xdp", System::Xdp),
        ] {
            let r = run_cell(system, gbps, cfg);
            let lat = *r.latency_us.as_ref().expect("latency sampled");
            rows.push(vec![
                format!("{gbps}"),
                name.into(),
                format!("{:.2}", lat.mean),
                format!("{:.2}", lat.q1),
                format!("{:.2}", lat.median),
                format!("{:.2}", lat.q3),
                format!("{:.1}", r.cpu_total_pct),
                format!("{:.4}", r.loss_permille()),
                format!("{:.2}", r.throughput_mpps),
            ]);
            reports.push((format!("fig10_{gbps}g_{name}"), r));
        }
    }
    let headers = [
        "gbps",
        "system",
        "lat_mean_us",
        "lat_q1_us",
        "lat_median_us",
        "lat_q3_us",
        "cpu_pct",
        "loss_permille",
        "tput_mpps",
    ];
    ExpOutput {
        id: "fig10",
        title: "Figure 10: static DPDK vs Metronome vs XDP (latency, CPU)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig10_three_way.csv".into(), render_csv(&headers, &rows))],
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_ordering_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 61,
            ..ExpConfig::default()
        };
        let st = run_cell(System::Static, 10.0, &cfg);
        let me = run_cell(System::Metronome, 10.0, &cfg);
        let xd = run_cell(System::Xdp, 10.0, &cfg);
        // Metronome < static < XDP (total CPU), everyone at line rate.
        assert!(me.cpu_total_pct < st.cpu_total_pct);
        assert!(st.cpu_total_pct < xd.cpu_total_pct);
        for r in [&st, &me, &xd] {
            assert!(r.loss < 1e-3, "{} lost {}", r.name, r.loss);
        }
    }

    #[test]
    fn latency_ordering_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 62,
            ..ExpConfig::default()
        };
        let st = run_cell(System::Static, 10.0, &cfg).latency_us.unwrap();
        let me = run_cell(System::Metronome, 10.0, &cfg).latency_us.unwrap();
        let xd = run_cell(System::Xdp, 10.0, &cfg).latency_us.unwrap();
        assert!(
            st.mean < me.mean,
            "static {} !< metronome {}",
            st.mean,
            me.mean
        );
        assert!(
            me.mean < xd.mean,
            "metronome {} !< xdp {}",
            me.mean,
            xd.mean
        );
    }
}
