//! Figure 10: l3fwd under static DPDK, Metronome and XDP — latency and CPU.
//!
//! Paper shapes at {10, 5, 1, 0.5} Gbps:
//! * latency: static lowest (≈7–10 µs) and tight; Metronome ≈2× static
//!   with more variance; XDP comparable at low rates but worst at line
//!   rate (moderation + softirq batching);
//! * CPU: static pinned at 100%; Metronome proportional (≈60% → ≈19%);
//!   XDP highest under load (≈200%+ over its 4 cores) yet exactly 0 at
//!   idle. XDP runs on 4 cores at 10/5 Gbps and 1 core at 1/0.5 Gbps —
//!   the paper's "minimal number of cores ... in order not to lose
//!   packets".
//!
//! With [`ExpConfig::realtime`] set, every cell runs on real threads at a
//! ×1000-scaled rate: static DPDK becomes a pinned `BusyPoll` worker (CPU
//! ≈ 100% per queue), Metronome runs the Listing 2 engine (CPU strictly
//! lower and proportional), XDP becomes a doorbell-parked `InterruptLike`
//! worker set — and an extra 0 Gbps row shows the interrupt discipline's
//! ≈0% idle CPU. The Fig. 10 shape, measured instead of simulated.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_dpdk::nic::gbps_to_pps;
use metronome_runtime::{run as run_scenario, run_realtime, RunReport, Scenario, TrafficSpec};

/// Systems compared by the figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// Busy-polling DPDK.
    Static,
    /// The paper's contribution.
    Metronome,
    /// Interrupt-driven XDP.
    Xdp,
}

/// One cell of the figure.
pub fn run_cell(system: System, gbps: f64, cfg: &ExpConfig) -> RunReport {
    let seed = cfg.seed ^ ((gbps * 16.0) as u64) ^ ((system as u64) << 24);
    // Minimal cores not to lose packets: one XDP core caps at ≈6.7 Mpps,
    // so 10/5 Gbps need 4 queues (as in the paper), lower rates run on
    // one.
    let xdp_queues = if gbps >= 5.0 { 4 } else { 1 };
    if cfg.realtime {
        // Real threads at ×1000-scaled rates (see ExpConfig::realtime):
        // the same three-way comparison, with each system mapped onto its
        // retrieval discipline by the realtime runner.
        let traffic = if gbps == 0.0 {
            TrafficSpec::Silent
        } else {
            TrafficSpec::CbrPps(gbps_to_pps(gbps, 64) / 1e3)
        };
        let sc = match system {
            System::Static => Scenario::static_dpdk(format!("fig10-static-rt-{gbps}g"), 1, traffic),
            System::Metronome => Scenario::metronome(
                format!("fig10-metronome-rt-{gbps}g"),
                MetronomeConfig::default(),
                traffic,
            ),
            System::Xdp => Scenario::xdp(format!("fig10-xdp-rt-{gbps}g"), xdp_queues, traffic),
        };
        return run_realtime(
            &sc.with_duration(cfg.realtime_dur())
                .with_latency()
                .with_seed(seed),
        );
    }
    let traffic = TrafficSpec::CbrGbps(gbps);
    let dur = cfg.dur(1.5, 30.0);
    let stride = if gbps < 2.0 { 61 } else { 509 };
    let sc = match system {
        System::Static => Scenario::static_dpdk(format!("fig10-static-{gbps}g"), 1, traffic),
        System::Metronome => Scenario::metronome(
            format!("fig10-metronome-{gbps}g"),
            MetronomeConfig::default(),
            traffic,
        ),
        System::Xdp => Scenario::xdp(format!("fig10-xdp-{gbps}g"), xdp_queues, traffic),
    };
    run_scenario(
        &sc.with_duration(dur)
            .with_latency_stride(stride)
            .with_seed(seed),
    )
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    // The realtime sweep appends a 0 Gbps (idle) row: the interrupt-driven
    // discipline's defining bar — ≈0% CPU with no traffic — measured on a
    // parked worker rather than asserted by the simulator's model.
    let rates: &[f64] = if cfg.realtime {
        &[10.0, 5.0, 1.0, 0.5, 0.0]
    } else {
        &[10.0, 5.0, 1.0, 0.5]
    };
    for &gbps in rates {
        for (name, system) in [
            ("static", System::Static),
            ("metronome", System::Metronome),
            ("xdp", System::Xdp),
        ] {
            let r = run_cell(system, gbps, cfg);
            // Idle cells record no latency samples; render them empty.
            let lat_cell = |f: &dyn Fn(&metronome_sim::stats::Boxplot) -> f64| match &r.latency_us {
                Some(lat) => format!("{:.2}", f(lat)),
                None => "-".into(),
            };
            rows.push(vec![
                format!("{gbps}"),
                name.into(),
                lat_cell(&|l| l.mean),
                lat_cell(&|l| l.q1),
                lat_cell(&|l| l.median),
                lat_cell(&|l| l.q3),
                format!("{:.1}", r.cpu_total_pct),
                format!("{:.4}", r.loss_permille()),
                format!("{:.2}", r.throughput_mpps),
            ]);
            reports.push((format!("fig10_{gbps}g_{name}"), r));
        }
    }
    let headers = [
        "gbps",
        "system",
        "lat_mean_us",
        "lat_q1_us",
        "lat_median_us",
        "lat_q3_us",
        "cpu_pct",
        "loss_permille",
        "tput_mpps",
    ];
    ExpOutput {
        id: "fig10",
        title: "Figure 10: static DPDK vs Metronome vs XDP (latency, CPU)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig10_three_way.csv".into(), render_csv(&headers, &rows))],
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_ordering_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 61,
            ..ExpConfig::default()
        };
        let st = run_cell(System::Static, 10.0, &cfg);
        let me = run_cell(System::Metronome, 10.0, &cfg);
        let xd = run_cell(System::Xdp, 10.0, &cfg);
        // Metronome < static < XDP (total CPU), everyone at line rate.
        assert!(me.cpu_total_pct < st.cpu_total_pct);
        assert!(st.cpu_total_pct < xd.cpu_total_pct);
        for r in [&st, &me, &xd] {
            assert!(r.loss < 1e-3, "{} lost {}", r.name, r.loss);
        }
    }

    #[test]
    fn latency_ordering_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 62,
            ..ExpConfig::default()
        };
        let st = run_cell(System::Static, 10.0, &cfg).latency_us.unwrap();
        let me = run_cell(System::Metronome, 10.0, &cfg).latency_us.unwrap();
        let xd = run_cell(System::Xdp, 10.0, &cfg).latency_us.unwrap();
        assert!(
            st.mean < me.mean,
            "static {} !< metronome {}",
            st.mean,
            me.mean
        );
        assert!(
            me.mean < xd.mean,
            "metronome {} !< xdp {}",
            me.mean,
            xd.mean
        );
    }
}
