//! Figure 11: power vs CPU under the `ondemand` and `performance`
//! governors at {10, 1, 0} Gbps.
//!
//! Paper shapes: "except for the 10Gbps throughput under the performance
//! power governor scenario, Metronome achieves less power consumption than
//! the traditional DPDK does, with the maximum gain reached when operating
//! under no traffic with the ondemand governor (around 27%)" — and under
//! ondemand Metronome's CPU usage is *higher* than under performance
//! (lower clocks stretch the same work).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_os::Governor;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// One cell: system × governor × rate.
pub fn run_cell(metronome: bool, governor: Governor, gbps: f64, cfg: &ExpConfig) -> RunReport {
    let traffic = if gbps == 0.0 {
        TrafficSpec::Silent
    } else {
        TrafficSpec::CbrGbps(gbps)
    };
    let sc = if metronome {
        Scenario::metronome(
            format!("fig11-met-{governor:?}-{gbps}g"),
            MetronomeConfig::default(),
            traffic,
        )
    } else {
        Scenario::static_dpdk(format!("fig11-static-{governor:?}-{gbps}g"), 1, traffic)
    };
    run_scenario(
        &sc.with_duration(cfg.dur(1.5, 30.0))
            .with_governor(governor)
            .with_seed(cfg.seed ^ (gbps as u64) << 3),
    )
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for governor in [Governor::Ondemand, Governor::Performance] {
        for gbps in [10.0f64, 1.0, 0.0] {
            for (name, metronome) in [("static", false), ("metronome", true)] {
                let r = run_cell(metronome, governor, gbps, cfg);
                rows.push(vec![
                    format!("{governor:?}").to_lowercase(),
                    format!("{gbps}"),
                    name.into(),
                    format!("{:.1}", r.cpu_total_pct),
                    format!("{:.2}", r.power_watts),
                    format!("{:.4}", r.loss_permille()),
                ]);
            }
        }
    }
    let headers = [
        "governor",
        "gbps",
        "system",
        "cpu_pct",
        "power_w",
        "loss_permille",
    ];
    ExpOutput {
        id: "fig11",
        title: "Figure 11: power vs CPU for ondemand/performance governors".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig11_power_governors.csv".into(),
            render_csv(&headers, &rows),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metronome_power_gain_largest_idle_ondemand() {
        let cfg = ExpConfig {
            full: false,
            seed: 71,
            ..ExpConfig::default()
        };
        let st = run_cell(false, Governor::Ondemand, 0.0, &cfg);
        let me = run_cell(true, Governor::Ondemand, 0.0, &cfg);
        let gain = 1.0 - me.power_watts / st.power_watts;
        // Paper: ≈27% package-power gain at zero traffic under ondemand.
        assert!(
            (0.10..0.45).contains(&gain),
            "idle ondemand gain {gain} (static {} W, metronome {} W)",
            st.power_watts,
            me.power_watts
        );
    }

    #[test]
    fn ondemand_raises_metronome_cpu_but_cuts_power() {
        let cfg = ExpConfig {
            full: false,
            seed: 72,
            ..ExpConfig::default()
        };
        let perf = run_cell(true, Governor::Performance, 1.0, &cfg);
        let onde = run_cell(true, Governor::Ondemand, 1.0, &cfg);
        assert!(
            onde.cpu_total_pct > perf.cpu_total_pct,
            "ondemand cpu {} !> performance cpu {}",
            onde.cpu_total_pct,
            perf.cpu_total_pct
        );
        assert!(
            onde.power_watts < perf.power_watts,
            "ondemand power {} !< performance power {}",
            onde.power_watts,
            perf.power_watts
        );
    }
}
