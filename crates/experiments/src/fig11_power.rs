//! Figure 11: power vs CPU under the `ondemand` and `performance`
//! governors at {10, 1, 0} Gbps.
//!
//! Paper shapes: "except for the 10Gbps throughput under the performance
//! power governor scenario, Metronome achieves less power consumption than
//! the traditional DPDK does, with the maximum gain reached when operating
//! under no traffic with the ondemand governor (around 27%)" — and under
//! ondemand Metronome's CPU usage is *higher* than under performance
//! (lower clocks stretch the same work).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_os::Governor;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// Windows per cell: each run is sampled into this many telemetry
/// windows, so power/CPU are reported per window, not as one run average.
const WINDOWS_PER_CELL: u64 = 10;

/// One cell: system × governor × rate.
pub fn run_cell(metronome: bool, governor: Governor, gbps: f64, cfg: &ExpConfig) -> RunReport {
    let traffic = if gbps == 0.0 {
        TrafficSpec::Silent
    } else {
        TrafficSpec::CbrGbps(gbps)
    };
    let sc = if metronome {
        Scenario::metronome(
            format!("fig11-met-{governor:?}-{gbps}g"),
            MetronomeConfig::default(),
            traffic,
        )
    } else {
        Scenario::static_dpdk(format!("fig11-static-{governor:?}-{gbps}g"), 1, traffic)
    };
    let dur = cfg.dur(1.5, 30.0);
    run_scenario(
        &sc.with_duration(dur)
            .with_series(dur / WINDOWS_PER_CELL)
            .with_governor(governor)
            .with_seed(cfg.seed ^ (gbps as u64) << 3),
    )
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    let mut window_rows = Vec::new();
    let mut reports = Vec::new();
    for governor in [Governor::Ondemand, Governor::Performance] {
        for gbps in [10.0f64, 1.0, 0.0] {
            for (name, metronome) in [("static", false), ("metronome", true)] {
                let r = run_cell(metronome, governor, gbps, cfg);
                let gov = format!("{governor:?}").to_lowercase();
                rows.push(vec![
                    gov.clone(),
                    format!("{gbps}"),
                    name.into(),
                    format!("{:.1}", r.cpu_total_pct),
                    format!("{:.2}", r.power_watts),
                    format!("{:.4}", r.loss_permille()),
                ]);
                // Per-window companion series: the paper's Fig. 11 bars
                // are run averages, but the claim behind them (power
                // follows the duty cycle the governor sees) is a
                // time-series statement — exported per window here.
                for w in &r
                    .timeseries
                    .as_ref()
                    .expect("cell requests sampling")
                    .windows
                {
                    window_rows.push(vec![
                        gov.clone(),
                        format!("{gbps}"),
                        name.into(),
                        format!("{}", w.index),
                        format!("{:.3}", w.end.as_secs_f64()),
                        format!("{:.1}", w.duty_cycle() * 100.0),
                        format!("{:.2}", w.power_watts),
                        format!("{:.3}", w.throughput_mpps()),
                    ]);
                }
                reports.push((format!("fig11_{gov}_{gbps}g_{name}"), r));
            }
        }
    }
    let headers = [
        "governor",
        "gbps",
        "system",
        "cpu_pct",
        "power_w",
        "loss_permille",
    ];
    let window_headers = [
        "governor",
        "gbps",
        "system",
        "window",
        "t_s",
        "duty_pct",
        "power_w",
        "tput_mpps",
    ];
    ExpOutput {
        id: "fig11",
        title: "Figure 11: power vs CPU for ondemand/performance governors".into(),
        table: render_table(&headers, &rows),
        csvs: vec![
            (
                "fig11_power_governors.csv".into(),
                render_csv(&headers, &rows),
            ),
            (
                "fig11_power_windows.csv".into(),
                render_csv(&window_headers, &window_rows),
            ),
        ],
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metronome_power_gain_largest_idle_ondemand() {
        let cfg = ExpConfig {
            full: false,
            seed: 71,
            ..ExpConfig::default()
        };
        let st = run_cell(false, Governor::Ondemand, 0.0, &cfg);
        let me = run_cell(true, Governor::Ondemand, 0.0, &cfg);
        let gain = 1.0 - me.power_watts / st.power_watts;
        // Paper: ≈27% package-power gain at zero traffic under ondemand.
        assert!(
            (0.10..0.45).contains(&gain),
            "idle ondemand gain {gain} (static {} W, metronome {} W)",
            st.power_watts,
            me.power_watts
        );
    }

    #[test]
    fn windowed_power_telescopes_to_the_run_average() {
        let cfg = ExpConfig {
            full: false,
            seed: 73,
            ..ExpConfig::default()
        };
        let r = run_cell(true, Governor::Ondemand, 1.0, &cfg);
        let ts = r.timeseries.as_ref().expect("cell requests sampling");
        assert_eq!(ts.len() as u64, WINDOWS_PER_CELL);
        // Per-window watts are energy deltas over the window span, so the
        // time-weighted mean reconstructs the run-level average power.
        let energy: f64 = ts
            .windows
            .iter()
            .map(|w| w.power_watts * w.span().as_secs_f64())
            .sum();
        let mean = energy / r.duration.as_secs_f64();
        assert!(
            (mean - r.power_watts).abs() / r.power_watts < 0.02,
            "windowed mean {mean} W vs run average {} W",
            r.power_watts
        );
        // The loaded cell's windows actually burn duty cycle.
        assert!(ts.windows.iter().all(|w| w.power_watts > 0.0));
    }

    #[test]
    fn ondemand_raises_metronome_cpu_but_cuts_power() {
        let cfg = ExpConfig {
            full: false,
            seed: 72,
            ..ExpConfig::default()
        };
        let perf = run_cell(true, Governor::Performance, 1.0, &cfg);
        let onde = run_cell(true, Governor::Ondemand, 1.0, &cfg);
        assert!(
            onde.cpu_total_pct > perf.cpu_total_pct,
            "ondemand cpu {} !> performance cpu {}",
            onde.cpu_total_pct,
            perf.cpu_total_pct
        );
        assert!(
            onde.power_watts < perf.power_watts,
            "ondemand power {} !< performance power {}",
            onde.power_watts,
            perf.power_watts
        );
    }
}
