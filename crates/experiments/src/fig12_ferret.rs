//! Figure 12 + Table II: co-existence with the `ferret` co-tenant.
//!
//! Paper shapes:
//! * Fig. 12 — sharing a core with static DPDK roughly *triples* ferret's
//!   completion time; sharing three cores with Metronome adds only ≈10%;
//! * Table II — static DPDK's throughput halves next to ferret
//!   (14.88 → 7.34 Mpps) while Metronome keeps full line rate
//!   (14.88 → 14.88).
//!
//! Scheduling setup follows §V-E: the Metronome case gives the packet
//! threads a "slight scheduling advantage" (nice −20 vs the VM's 19); the
//! static comparison runs both at default priority (the static poller
//! never yields anyway — priorities only decide who starves).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, FerretSpec, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// The four runs of the experiment.
pub struct FerretRuns {
    /// ferret alone on one core.
    pub alone_1core: RunReport,
    /// ferret alone on three cores.
    pub alone_3core: RunReport,
    /// ferret + static DPDK on the same single core.
    pub with_static: RunReport,
    /// ferret (3 workers) + Metronome (3 threads) on the same three cores.
    pub with_metronome: RunReport,
    /// static DPDK alone at line rate (Table II reference).
    pub static_alone: RunReport,
    /// Metronome alone at line rate (Table II reference).
    pub metronome_alone: RunReport,
}

/// Execute all runs.
pub fn run_all(cfg: &ExpConfig) -> FerretRuns {
    let standalone = if cfg.full {
        Nanos::from_secs(4)
    } else {
        Nanos::from_millis(500)
    };
    let horizon = standalone.scaled(5);
    let line = TrafficSpec::CbrGbps(10.0);

    let ferret = |workers: usize, nice: i8| FerretSpec {
        n_workers: workers,
        standalone,
        nice,
        on_net_cores: true,
    };

    let alone_1core = run_scenario(
        &Scenario::idle("fig12-ferret-alone-1c")
            .with_duration(horizon)
            .with_ferret(FerretSpec {
                n_workers: 1,
                standalone,
                nice: 0,
                on_net_cores: false,
            })
            .with_seed(cfg.seed ^ 1),
    );
    let alone_3core = run_scenario(
        &Scenario::idle("fig12-ferret-alone-3c")
            .with_duration(horizon)
            .with_ferret(FerretSpec {
                n_workers: 3,
                standalone,
                nice: 0,
                on_net_cores: false,
            })
            .with_seed(cfg.seed ^ 2),
    );
    let with_static = run_scenario(
        &Scenario::static_dpdk("fig12-static+ferret", 1, line.clone())
            .with_duration(horizon)
            .with_ferret(ferret(1, 0))
            .with_seed(cfg.seed ^ 3),
    );
    let with_metronome = run_scenario(
        &Scenario::metronome(
            "fig12-metronome+ferret",
            MetronomeConfig::default(),
            line.clone(),
        )
        .with_duration(horizon)
        .with_ferret(ferret(3, 19))
        .with_seed(cfg.seed ^ 4),
    );
    let static_alone = run_scenario(
        &Scenario::static_dpdk("tab2-static-alone", 1, line.clone())
            .with_duration(cfg.dur(1.5, 30.0))
            .with_seed(cfg.seed ^ 5),
    );
    let metronome_alone = run_scenario(
        &Scenario::metronome("tab2-metronome-alone", MetronomeConfig::default(), line)
            .with_duration(cfg.dur(1.5, 30.0))
            .with_seed(cfg.seed ^ 6),
    );
    FerretRuns {
        alone_1core,
        alone_3core,
        with_static,
        with_metronome,
        static_alone,
        metronome_alone,
    }
}

fn secs(n: Option<Nanos>) -> String {
    match n {
        Some(t) => format!("{:.3}", t.as_secs_f64()),
        None => "did-not-finish".into(),
    }
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = run_all(cfg);
    let fig12_headers = ["setup", "cores", "ferret_time_s", "slowdown"];
    let slowdown = |rep: &RunReport| {
        rep.ferret_slowdown()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".into())
    };
    let fig12_rows = vec![
        vec![
            "ferret alone".into(),
            "1".into(),
            secs(r.alone_1core.ferret_completion),
            slowdown(&r.alone_1core),
        ],
        vec![
            "ferret + static DPDK".into(),
            "1".into(),
            secs(r.with_static.ferret_completion),
            slowdown(&r.with_static),
        ],
        vec![
            "ferret alone".into(),
            "3".into(),
            secs(r.alone_3core.ferret_completion),
            slowdown(&r.alone_3core),
        ],
        vec![
            "ferret + Metronome".into(),
            "3".into(),
            secs(r.with_metronome.ferret_completion),
            slowdown(&r.with_metronome),
        ],
    ];
    let tab2_headers = ["system", "alone_mpps", "with_ferret_mpps"];
    let tab2_rows = vec![
        vec![
            "static DPDK".into(),
            format!("{:.2}", r.static_alone.throughput_mpps),
            format!("{:.2}", r.with_static.throughput_mpps),
        ],
        vec![
            "Metronome".into(),
            format!("{:.2}", r.metronome_alone.throughput_mpps),
            format!("{:.2}", r.with_metronome.throughput_mpps),
        ],
    ];
    let mut table = String::from("Figure 12 — ferret execution time:\n");
    table.push_str(&render_table(&fig12_headers, &fig12_rows));
    table.push_str("\nTable II — throughput (Mpps):\n");
    table.push_str(&render_table(&tab2_headers, &tab2_rows));
    ExpOutput {
        id: "fig12",
        title: "Figure 12 + Table II: CPU sharing with ferret".into(),
        table,
        csvs: vec![
            (
                "fig12_ferret.csv".into(),
                render_csv(&fig12_headers, &fig12_rows),
            ),
            (
                "table2_sharing_throughput.csv".into(),
                render_csv(&tab2_headers, &tab2_rows),
            ),
        ],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes_hold() {
        let r = run_all(&ExpConfig {
            full: false,
            seed: 81,
            ..ExpConfig::default()
        });
        // Table II: static halves, Metronome keeps line rate.
        assert!(r.static_alone.throughput_mpps > 14.5);
        assert!(r.with_static.throughput_mpps < 11.0);
        assert!(r.metronome_alone.throughput_mpps > 14.5);
        assert!(r.with_metronome.throughput_mpps > 14.5);
        // Fig. 12: static sharing inflates ferret far more than Metronome.
        let s_static = r
            .with_static
            .ferret_slowdown()
            .expect("static run finished");
        let s_metro = r
            .with_metronome
            .ferret_slowdown()
            .expect("metronome run finished");
        assert!(s_static > 2.0, "static slowdown {s_static}");
        assert!(s_metro < 1.8, "metronome slowdown {s_metro}");
        assert!(s_static > s_metro + 0.8);
        // Alone runs complete in their standalone time (within daemon
        // noise).
        let a1 = r.alone_1core.ferret_slowdown().unwrap();
        assert!((0.95..1.15).contains(&a1), "alone slowdown {a1}");
    }
}
