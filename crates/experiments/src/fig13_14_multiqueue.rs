//! Figures 13 & 14: the multiqueue grid on the XL710 (37 Mpps).
//!
//! For N ∈ {2, 3, 4} Rx queues, both governors, and M from N to 8 threads,
//! measure CPU, package power (Fig. 13), busy tries and ρ (Fig. 14), with
//! static DPDK (N busy cores) as the reference line.
//!
//! Paper shapes: more queues ⇒ lower per-queue ρ ⇒ fewer busy tries and a
//! bigger Metronome win; more threads ⇒ linearly more busy tries;
//! ondemand trades some CPU time for power, with ρ higher because slower
//! clocks stretch the busy periods.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_dpdk::NicProfile;
use metronome_os::Governor;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// Metronome cell: N queues, M threads, governor.
pub fn run_metronome(n: usize, m: usize, governor: Governor, cfg: &ExpConfig) -> RunReport {
    let mcfg = MetronomeConfig::multiqueue(m, n);
    let sc = Scenario::metronome(
        format!("fig13-met-n{n}-m{m}-{governor:?}"),
        mcfg,
        TrafficSpec::CbrPps(37e6),
    )
    .with_nic(NicProfile::XL710)
    .with_duration(cfg.dur(1.0, 20.0))
    .with_governor(governor)
    .with_seed(cfg.seed ^ ((n as u64) << 16) ^ ((m as u64) << 8));
    run_scenario(&sc)
}

/// Static reference: N busy-poll threads.
pub fn run_static(n: usize, governor: Governor, cfg: &ExpConfig) -> RunReport {
    let sc = Scenario::static_dpdk(
        format!("fig13-static-n{n}-{governor:?}"),
        n,
        TrafficSpec::CbrPps(37e6),
    )
    .with_nic(NicProfile::XL710)
    .with_duration(cfg.dur(1.0, 20.0))
    .with_governor(governor)
    .with_seed(cfg.seed ^ ((n as u64) << 20));
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for governor in [Governor::Performance, Governor::Ondemand] {
        for n in [2usize, 3, 4] {
            let st = run_static(n, governor, cfg);
            rows.push(vec![
                format!("{governor:?}").to_lowercase(),
                n.to_string(),
                "static".into(),
                format!("{:.0}", st.cpu_total_pct),
                format!("{:.2}", st.power_watts),
                "-".into(),
                "-".into(),
                format!("{:.2}", st.throughput_mpps),
                format!("{:.3}", st.loss_permille()),
            ]);
            for m in n..=8 {
                let r = run_metronome(n, m, governor, cfg);
                rows.push(vec![
                    format!("{governor:?}").to_lowercase(),
                    n.to_string(),
                    format!("M={m}"),
                    format!("{:.0}", r.cpu_total_pct),
                    format!("{:.2}", r.power_watts),
                    format!("{:.1}", r.busy_try_fraction * 100.0),
                    format!("{:.3}", r.mean_rho()),
                    format!("{:.2}", r.throughput_mpps),
                    format!("{:.3}", r.loss_permille()),
                ]);
            }
        }
    }
    let headers = [
        "governor",
        "queues",
        "system",
        "cpu_pct",
        "power_w",
        "busy_tries_pct",
        "rho",
        "tput_mpps",
        "loss_permille",
    ];
    ExpOutput {
        id: "fig13",
        title: "Figures 13/14: multiqueue XL710 grid — CPU, power, busy tries, rho".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "fig13_14_multiqueue_grid.csv".into(),
            render_csv(&headers, &rows),
        )],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_queues_lower_rho_and_busy_tries() {
        let cfg = ExpConfig {
            full: false,
            seed: 91,
            ..ExpConfig::default()
        };
        let n2 = run_metronome(2, 4, Governor::Performance, &cfg);
        let n4 = run_metronome(4, 4, Governor::Performance, &cfg);
        assert!(
            n4.mean_rho() < n2.mean_rho(),
            "rho {} !< {}",
            n4.mean_rho(),
            n2.mean_rho()
        );
        assert!(n2.throughput_mpps > 35.0, "{}", n2.throughput_mpps);
        assert!(n4.throughput_mpps > 36.5, "{}", n4.throughput_mpps);
    }

    #[test]
    fn metronome_beats_static_cpu_on_4_queues() {
        let cfg = ExpConfig {
            full: false,
            seed: 92,
            ..ExpConfig::default()
        };
        let st = run_static(4, Governor::Performance, &cfg);
        let me = run_metronome(4, 5, Governor::Performance, &cfg);
        assert!(
            (395.0..405.0).contains(&st.cpu_total_pct),
            "{}",
            st.cpu_total_pct
        );
        assert!(
            me.cpu_total_pct < st.cpu_total_pct * 0.6,
            "metronome {} vs static {}",
            me.cpu_total_pct,
            st.cpu_total_pct
        );
    }

    #[test]
    fn more_threads_more_busy_tries() {
        let cfg = ExpConfig {
            full: false,
            seed: 93,
            ..ExpConfig::default()
        };
        let m2 = run_metronome(2, 2, Governor::Performance, &cfg);
        let m8 = run_metronome(2, 8, Governor::Performance, &cfg);
        assert!(m8.busy_try_fraction > m2.busy_try_fraction);
    }
}
