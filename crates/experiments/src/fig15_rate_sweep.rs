//! Figure 15: multiqueue CPU and power under different loads.
//!
//! XL710, 4 Rx queues, Metronome with M = 5 and V̄ = 15 µs vs static DPDK
//! (4 busy cores), rates {37, 30, 20, 15, 10, 0} Mpps, `performance`
//! governor. Paper shape: Metronome "saves more than half of static
//! DPDK's CPU cycles while maintaining the same line-rate throughput",
//! improving further at lower rates, with a consistent 2–3 W power edge.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_dpdk::NicProfile;
use metronome_runtime::{run as run_scenario, run_realtime, RunReport, Scenario, TrafficSpec};

/// One rate point for either system.
///
/// With [`ExpConfig::realtime`] set, both systems execute on the realtime
/// backend at a ×1000-scaled rate (kpps instead of Mpps — see the flag's
/// docs): Metronome as M = 5 racing workers, static DPDK as four pinned
/// busy-polling workers.
pub fn run_point(metronome: bool, mpps: f64, cfg: &ExpConfig) -> RunReport {
    if cfg.realtime {
        let traffic = if mpps == 0.0 {
            TrafficSpec::Silent
        } else {
            TrafficSpec::CbrPps(mpps * 1e3)
        };
        let sc = if metronome {
            Scenario::metronome(
                format!("fig15-met-rt-{mpps}kpps"),
                MetronomeConfig::multiqueue(5, 4),
                traffic,
            )
        } else {
            Scenario::static_dpdk(format!("fig15-static-rt-{mpps}kpps"), 4, traffic)
        };
        let sc = sc
            .with_nic(NicProfile::XL710)
            .with_latency()
            .with_duration(cfg.realtime_dur())
            .with_seed(cfg.seed ^ (mpps as u64) << 2);
        return run_realtime(&sc);
    }
    let traffic = if mpps == 0.0 {
        TrafficSpec::Silent
    } else {
        TrafficSpec::CbrPps(mpps * 1e6)
    };
    let sc = if metronome {
        Scenario::metronome(
            format!("fig15-met-{mpps}mpps"),
            MetronomeConfig::multiqueue(5, 4),
            traffic,
        )
    } else {
        Scenario::static_dpdk(format!("fig15-static-{mpps}mpps"), 4, traffic)
    };
    run_scenario(
        &sc.with_nic(NicProfile::XL710)
            .with_duration(cfg.dur(1.0, 20.0))
            .with_seed(cfg.seed ^ (mpps as u64) << 2),
    )
}

/// Run the experiment.
///
/// The drop-cause columns split `loss` by where the packet died: `ring`
/// is descriptor tail-drop, `pool` is mempool exhaustion (realtime
/// backend only — the sim does not model the pool), and `pool_peak/pop`
/// shows how much of the mbuf pool the run actually needed, so pool
/// sizing is visible next to the loss it prevents.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for mpps in [37.0f64, 30.0, 20.0, 15.0, 10.0, 0.0] {
        for (name, metronome) in [("static", false), ("metronome", true)] {
            let r = run_point(metronome, mpps, cfg);
            let pool_use = match &r.mempool {
                Some(m) => format!("{}/{}", m.in_use_peak, m.population),
                None => "-".into(),
            };
            rows.push(vec![
                format!("{mpps}"),
                name.into(),
                format!("{:.0}", r.cpu_total_pct),
                format!("{:.2}", r.power_watts),
                format!("{:.2}", r.throughput_mpps),
                format!("{:.3}", r.loss_permille()),
                format!("{}", r.dropped_ring),
                format!("{}", r.dropped_pool),
                pool_use,
            ]);
            reports.push((format!("fig15_{mpps}mpps_{name}"), r));
        }
    }
    let headers = [
        "rate_mpps",
        "system",
        "cpu_pct",
        "power_w",
        "tput_mpps",
        "loss_permille",
        "ring_drops",
        "pool_drops",
        "pool_peak/pop",
    ];
    ExpOutput {
        id: "fig15",
        title: "Figure 15: multiqueue CPU and power vs rate (XL710, N=4, M=5)".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig15_rate_sweep.csv".into(), render_csv(&headers, &rows))],
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metronome_halves_cpu_at_line_rate() {
        let cfg = ExpConfig {
            full: false,
            seed: 101,
            ..ExpConfig::default()
        };
        let st = run_point(false, 37.0, &cfg);
        let me = run_point(true, 37.0, &cfg);
        assert!(me.throughput_mpps > 36.5, "{}", me.throughput_mpps);
        assert!(
            me.cpu_total_pct < st.cpu_total_pct / 2.0 * 1.2,
            "metronome {} vs static {}",
            me.cpu_total_pct,
            st.cpu_total_pct
        );
        assert!(me.power_watts < st.power_watts);
    }

    #[test]
    fn cpu_proportional_to_load() {
        let cfg = ExpConfig {
            full: false,
            seed: 102,
            ..ExpConfig::default()
        };
        let hi = run_point(true, 37.0, &cfg);
        let lo = run_point(true, 10.0, &cfg);
        let idle = run_point(true, 0.0, &cfg);
        assert!(hi.cpu_total_pct > lo.cpu_total_pct);
        assert!(lo.cpu_total_pct > idle.cpu_total_pct);
    }
}
