//! Figure 16: CPU usage of the other applications (single Rx queue).
//!
//! * IPsec Security Gateway — static saturates one core for any rate; the
//!   Metronome port reaches the same 5.61 Mpps ceiling (one thread ends up
//!   holding the lock permanently) and "clearly outperforms the static
//!   approach as rates get decreased".
//! * FloWatcher — "a 50% gain even under line rate traffic and almost a 5x
//!   gain with 0.5 Mpps traffic".

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{
    run as run_scenario, run_realtime, AppProfile, RunReport, Scenario, TrafficSpec,
};

/// One rate point for one app and system.
///
/// With [`ExpConfig::realtime`] set, both systems run the *functional*
/// application (real ESP encapsulation, real flow tables) on real threads
/// at a ×1000-scaled rate: Metronome as the Listing 2 engine, static DPDK
/// as a pinned busy-polling worker.
pub fn run_point(app: AppProfile, metronome: bool, mpps: f64, cfg: &ExpConfig) -> RunReport {
    if cfg.realtime {
        let traffic = TrafficSpec::CbrPps(mpps * 1e3);
        let sc = if metronome {
            Scenario::metronome(
                format!("fig16-{}-met-rt-{mpps}kpps", app.name),
                MetronomeConfig::default(),
                traffic,
            )
        } else {
            Scenario::static_dpdk(
                format!("fig16-{}-static-rt-{mpps}kpps", app.name),
                1,
                traffic,
            )
        };
        let sc = sc
            .with_app(app)
            .with_latency()
            .with_duration(cfg.realtime_dur())
            .with_seed(cfg.seed ^ (mpps * 8.0) as u64);
        return run_realtime(&sc);
    }
    let traffic = TrafficSpec::CbrPps(mpps * 1e6);
    let sc = if metronome {
        Scenario::metronome(
            format!("fig16-{}-met-{mpps}mpps", app.name),
            MetronomeConfig::default(),
            traffic,
        )
    } else {
        Scenario::static_dpdk(format!("fig16-{}-static-{mpps}mpps", app.name), 1, traffic)
    };
    run_scenario(
        &sc.with_app(app)
            .with_duration(cfg.dur(1.0, 20.0))
            .with_seed(cfg.seed ^ (mpps * 8.0) as u64),
    )
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let ipsec_rates = [5.61f64, 3.0, 1.0, 0.5, 0.1];
    let flow_rates = [14.88f64, 10.0, 5.0, 1.0, 0.5];
    for (app, rates) in [
        (AppProfile::ipsec(), &ipsec_rates[..]),
        (AppProfile::flowatcher(), &flow_rates[..]),
    ] {
        for &mpps in rates {
            for (name, metronome) in [("static", false), ("metronome", true)] {
                let r = run_point(app, metronome, mpps, cfg);
                rows.push(vec![
                    app.name.into(),
                    format!("{mpps}"),
                    name.into(),
                    format!("{:.1}", r.cpu_total_pct),
                    format!("{:.2}", r.throughput_mpps),
                    format!("{:.3}", r.loss_permille()),
                ]);
                reports.push((format!("fig16_{}_{mpps}mpps_{name}", app.name), r));
            }
        }
    }
    let headers = [
        "app",
        "rate_mpps",
        "system",
        "cpu_pct",
        "tput_mpps",
        "loss_permille",
    ];
    ExpOutput {
        id: "fig16",
        title: "Figure 16: IPsec gateway and FloWatcher CPU usage".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("fig16_applications.csv".into(), render_csv(&headers, &rows))],
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipsec_metronome_matches_static_ceiling() {
        let cfg = ExpConfig {
            full: false,
            seed: 121,
            ..ExpConfig::default()
        };
        let st = run_point(AppProfile::ipsec(), false, 5.61, &cfg);
        let me = run_point(AppProfile::ipsec(), true, 5.61, &cfg);
        // Both systems reach (nearly) the same ceiling.
        assert!(
            (me.throughput_mpps - st.throughput_mpps).abs() < 0.3,
            "metronome {} vs static {}",
            me.throughput_mpps,
            st.throughput_mpps
        );
        // At the ceiling one Metronome thread polls continuously, so CPU
        // is comparable to static.
        assert!(me.cpu_total_pct > 80.0);
    }

    #[test]
    fn ipsec_metronome_wins_at_low_rates() {
        let cfg = ExpConfig {
            full: false,
            seed: 122,
            ..ExpConfig::default()
        };
        let st = run_point(AppProfile::ipsec(), false, 0.5, &cfg);
        let me = run_point(AppProfile::ipsec(), true, 0.5, &cfg);
        assert!((99.0..101.0).contains(&st.cpu_total_pct));
        assert!(me.cpu_total_pct < 50.0, "{}", me.cpu_total_pct);
    }

    #[test]
    fn flowatcher_gains_match_paper() {
        let cfg = ExpConfig {
            full: false,
            seed: 123,
            ..ExpConfig::default()
        };
        // "a 50% gain even under line rate traffic"
        let me_line = run_point(AppProfile::flowatcher(), true, 14.88, &cfg);
        assert!(me_line.loss < 1e-3, "loss {}", me_line.loss);
        assert!(
            (35.0..75.0).contains(&me_line.cpu_total_pct),
            "line-rate CPU {}",
            me_line.cpu_total_pct
        );
        // "almost a 5x gain with 0.5 Mpps traffic"
        let me_low = run_point(AppProfile::flowatcher(), true, 0.5, &cfg);
        assert!(me_low.cpu_total_pct < 33.0, "{}", me_low.cpu_total_pct);
    }
}
