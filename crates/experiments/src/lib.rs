//! # metronome-experiments — regenerate the paper's evaluation
//!
//! One module per table/figure of Metronome's §V (see DESIGN.md §4 for the
//! experiment index). Each module exposes `run(&ExpConfig) -> ExpOutput`:
//! a paper-style text table plus CSV series for plotting.
//!
//! Two fidelity levels:
//! * **quick** (default) — seconds-long simulations; every shape the paper
//!   reports is already stable at this scale;
//! * **full** (`--full` / [`ExpConfig::full`]) — paper-faithful durations
//!   (60 s line-rate runs, the 60 s ramp, the 3-minute unbalanced test).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig01_sleep;
pub mod fig04_vacation_pdf;
pub mod fig05_vbar;
pub mod fig06_tl;
pub mod fig07_m;
pub mod fig08_latency_m;
pub mod fig09_adaptation;
pub mod fig10_three_way;
pub mod fig11_power;
pub mod fig12_ferret;
pub mod fig13_14_multiqueue;
pub mod fig15_rate_sweep;
pub mod fig16_applications;
pub mod tab1_vacation_targets;
pub mod tab3_unbalanced;

use metronome_runtime::RunReport;
use metronome_sim::Nanos;

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Paper-faithful durations instead of quick ones.
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Run the comparative experiments on the realtime backend
    /// (`--realtime`): real threads, wall-clock paced load generation,
    /// functional packet processors, with every system mapped onto its
    /// retrieval discipline — Metronome (Listing 2), static DPDK
    /// (busy-polling `BusyPoll` workers), XDP (doorbell-parked
    /// `InterruptLike` workers). fig10 runs all three systems this way
    /// (plus an idle row); fig15/fig16 run both of theirs. Rates are
    /// scaled down ×1000 (kpps instead of Mpps) — an in-process generator
    /// cannot pace tens of Mpps — so realtime rows validate the pipeline
    /// and relative shapes, not absolute line-rate numbers. Experiments
    /// without a realtime path ignore it.
    pub realtime: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            full: false,
            seed: 0x4E72_0520,
            realtime: false,
        }
    }
}

impl ExpConfig {
    /// Pick a duration depending on fidelity.
    pub fn dur(&self, quick_s: f64, full_s: f64) -> Nanos {
        Nanos::from_secs_f64(if self.full { full_s } else { quick_s })
    }

    /// Duration for realtime runs (wall-clock seconds, so much shorter).
    pub fn realtime_dur(&self) -> Nanos {
        Nanos::from_secs_f64(if self.full { 2.0 } else { 0.25 })
    }
}

/// The rendered result of one experiment.
#[derive(Clone, Debug)]
pub struct ExpOutput {
    /// Short id: "fig10", "table1", ...
    pub id: &'static str,
    /// Human title quoting what the paper shows.
    pub title: String,
    /// Paper-style text table.
    pub table: String,
    /// (filename, content) CSVs for plotting.
    pub csvs: Vec<(String, String)>,
    /// (label, report) pairs for the machine-readable path: the raw
    /// [`RunReport`] behind each cell of the table, serialized to JSON by
    /// the `experiments` binary when `--json` is passed. Modules that only
    /// derive scalar sweeps leave this empty.
    pub reports: Vec<(String, RunReport)>,
}

/// Render an aligned ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Simple CSV rendering.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1", "fig4", "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "table2", "fig13", "fig14", "fig15", "table3", "fig16",
];

/// Run one experiment by id (table2 is produced by fig12's module; fig14 by
/// fig13's).
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> Option<ExpOutput> {
    match id {
        "fig1" => Some(fig01_sleep::run(cfg)),
        "fig4" => Some(fig04_vacation_pdf::run(cfg)),
        "table1" => Some(tab1_vacation_targets::run(cfg)),
        "fig5" => Some(fig05_vbar::run(cfg)),
        "fig6" => Some(fig06_tl::run(cfg)),
        "fig7" => Some(fig07_m::run(cfg)),
        "fig8" => Some(fig08_latency_m::run(cfg)),
        "fig9" => Some(fig09_adaptation::run(cfg)),
        "fig10" => Some(fig10_three_way::run(cfg)),
        "fig11" => Some(fig11_power::run(cfg)),
        "fig12" | "table2" => Some(fig12_ferret::run(cfg)),
        "fig13" | "fig14" => Some(fig13_14_multiqueue::run(cfg)),
        "fig15" => Some(fig15_rate_sweep::run(cfg)),
        "table3" => Some(tab3_unbalanced::run(cfg)),
        "fig16" => Some(fig16_applications::run(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    fn csv_renders() {
        let c = render_csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", &ExpConfig::default()).is_none());
    }
}
