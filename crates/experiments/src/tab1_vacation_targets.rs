//! Table I: mean busy & vacation period, NV and loss per target vacation.
//!
//! Paper values at 14.88 Mpps line rate (X520, M = 3):
//!
//! | target V̄ | measured V | measured B | NV     | loss (‰) |
//! |----------|------------|------------|--------|----------|
//! |  5 µs    | 11.67      | 13.40      | 172.39 | 0        |
//! | 10 µs    | 19.55      | 20.24      | 287.77 | 0        |
//! | 12 µs    | 21.99      | 22.86      | 326.30 | 0.0037   |
//! | 15 µs    | 26.23      | 27.25      | 385.18 | 0.023    |
//! | 20 µs    | 33.28      | 38.32      | 494.39 | 1.180    |
//!
//! The shape to reproduce: measured V ≈ target + sleep/dispatch overhead
//! (≈2× at small targets), B tracks V (ρ ≈ 0.5), NV grows linearly with V,
//! and loss turns on between V̄ = 10 and V̄ = 20 µs as NV approaches the
//! 512-descriptor ring.

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};
use metronome_sim::Nanos;

/// One line-rate run at a target vacation.
pub fn run_target(v_target_us: u64, cfg: &ExpConfig) -> RunReport {
    let mcfg = MetronomeConfig {
        v_target: Nanos::from_micros(v_target_us),
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome(
        format!("tab1-v{v_target_us}"),
        mcfg,
        TrafficSpec::CbrGbps(10.0),
    )
    .with_duration(cfg.dur(2.0, 60.0))
    .with_seed(cfg.seed ^ v_target_us);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let mut rows = Vec::new();
    for v in [5u64, 10, 12, 15, 20] {
        let r = run_target(v, cfg);
        rows.push(vec![
            v.to_string(),
            format!("{:.2}", r.mean_vacation_us()),
            format!("{:.2}", r.mean_busy_us()),
            format!("{:.2}", r.mean_nv()),
            format!("{:.4}", r.loss_permille()),
        ]);
    }
    let headers = [
        "target_V_us",
        "measured_V_us",
        "measured_B_us",
        "NV",
        "loss_permille",
    ];
    ExpOutput {
        id: "table1",
        title: "Table I: busy/vacation periods, NV and loss vs target vacation".into(),
        table: render_table(&headers, &rows),
        csvs: vec![(
            "table1_vacation_targets.csv".into(),
            render_csv(&headers, &rows.to_vec()),
        )],
        reports: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_onset_matches_table1() {
        let cfg = ExpConfig {
            full: false,
            seed: 11,
            ..ExpConfig::default()
        };
        let low = run_target(10, &cfg);
        let high = run_target(20, &cfg);
        // Near-zero loss at V̄ = 10 µs (sub-‰, seed-dependent daemon tail
        // hits); orders of magnitude more at V̄ = 20 µs where NV rides the
        // 512-descriptor ring.
        assert!(low.loss_permille() < 0.5, "{}", low.loss_permille());
        assert!(high.loss_permille() > 5.0, "{}", high.loss_permille());
        assert!(high.loss_permille() > 50.0 * low.loss_permille().max(0.01));
        // NV grows with the target.
        assert!(high.mean_nv() > low.mean_nv());
        // Measured V exceeds the target by the sleep overhead.
        assert!(low.mean_vacation_us() > 10.0);
        assert!(low.mean_vacation_us() < 30.0);
    }
}
