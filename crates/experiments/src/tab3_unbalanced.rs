//! Table III: the unbalanced-traffic multiqueue test.
//!
//! A looped 1000-packet trace, 30% on one UDP flow and 70% random, sent at
//! line rate over 3 RSS queues. Paper statistics:
//!
//! | queue | busy tries | total tries | ρ      |
//! |-------|-----------|-------------|--------|
//! | #1    | 1.94%     | 5,970,660   | 0.3208 |
//! | #2    | 4.39%     | 2,625,007   | 0.7269 |
//! | #3    | 2.02%     | 5,704,167   | 0.3552 |
//!
//! Shape: the hot queue (≈53% of traffic) has the highest busy-try
//! percentage and ρ but *less than half the lock tries* of the cold
//! queues — a busy queue keeps one primary, idle queues see many
//! primaries (§IV-A validated in §V-F.4).

use crate::{render_csv, render_table, ExpConfig, ExpOutput};
use metronome_core::MetronomeConfig;
use metronome_dpdk::NicProfile;
use metronome_runtime::{run as run_scenario, RunReport, Scenario, TrafficSpec};

/// Run the unbalanced scenario (N = 3 queues, M = 4 threads, XL710 at its
/// 37 Mpps cap).
pub fn run_unbalanced(cfg: &ExpConfig) -> RunReport {
    let sc = Scenario::metronome(
        "tab3-unbalanced",
        MetronomeConfig::multiqueue(4, 3),
        TrafficSpec::Unbalanced { total_pps: 37e6 },
    )
    .with_nic(NicProfile::XL710)
    .with_duration(cfg.dur(2.0, 180.0))
    .with_seed(cfg.seed);
    run_scenario(&sc)
}

/// Run the experiment.
pub fn run(cfg: &ExpConfig) -> ExpOutput {
    let r = run_unbalanced(cfg);
    let mut rows = Vec::new();
    for (i, q) in r.queues.iter().enumerate() {
        rows.push(vec![
            format!("#{}", i + 1),
            format!("{:.2}", q.busy_try_fraction * 100.0),
            (q.total_tries + q.busy_tries).to_string(),
            format!("{:.4}", q.rho),
            // queue_share guards the zero-forwarded case (never NaN).
            format!("{:.2}", r.queue_share(i) * 100.0),
        ]);
    }
    rows.push(vec![
        "loss".into(),
        format!("{:.4}‰", r.loss_permille()),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let headers = [
        "queue",
        "busy_tries_pct",
        "lock_tries",
        "rho",
        "traffic_share_pct",
    ];
    ExpOutput {
        id: "table3",
        title: "Table III: per-queue statistics under unbalanced traffic".into(),
        table: render_table(&headers, &rows),
        csvs: vec![("table3_unbalanced.csv".into(), render_csv(&headers, &rows))],
        reports: vec![("table3_unbalanced".into(), r)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_queue_has_high_rho_but_fewer_tries() {
        let r = run_unbalanced(&ExpConfig {
            full: false,
            seed: 111,
            ..ExpConfig::default()
        });
        assert_eq!(r.queues.len(), 3);
        let hot = r
            .queues
            .iter()
            .max_by(|a, b| a.rho.partial_cmp(&b.rho).unwrap())
            .unwrap();
        let cold: Vec<_> = r.queues.iter().filter(|q| q.rho < hot.rho).collect();
        assert_eq!(cold.len(), 2, "expected one hot queue");
        // Hot queue: ρ well above the cold ones...
        for c in &cold {
            assert!(hot.rho > c.rho + 0.15, "hot {} vs cold {}", hot.rho, c.rho);
            // ...but fewer lock tries (paper: less than half).
            let hot_tries = hot.total_tries + hot.busy_tries;
            let cold_tries = c.total_tries + c.busy_tries;
            assert!(
                (hot_tries as f64) < 0.75 * cold_tries as f64,
                "hot tries {hot_tries} vs cold {cold_tries}"
            );
            // Hot queue busy-try share is the largest.
            assert!(hot.busy_try_fraction >= c.busy_try_fraction);
        }
        assert!(r.loss < 0.01, "loss {}", r.loss);
    }
}
