//! AES-128 block cipher and CBC mode, implemented from FIPS-197.
//!
//! The paper's IPsec Security Gateway "performs encryption of the incoming
//! packets through the AES-CBC 128-bit algorithm" (§V-G). On the authors'
//! testbed the cipher runs in NIC offload; here the gateway application
//! charges an offload-calibrated *cycle cost* for timing, but the bytes are
//! really transformed by this implementation so the encap/decap round-trip
//! is functionally verifiable.
//!
//! Table-based (S-box + xtime), no hardware intrinsics, not constant-time —
//! this is a simulation substrate, not a production cryptography library.

/// AES block size in bytes.
pub const BLOCK: usize = 16;

/// Forward S-box from FIPS-197 §5.1.1.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box from FIPS-197 §5.3.2.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

#[inline]
fn mul(a: u8, mut b: u8) -> u8 {
    // GF(2^8) multiply by Russian-peasant method.
    let mut a = a;
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Expanded AES-128 key schedule: 11 round keys.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: byte (row r, col c) at index 4c + r.
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = mul(2, col[0]) ^ mul(3, col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ mul(2, col[1]) ^ mul(3, col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ mul(2, col[2]) ^ mul(3, col[3]);
            state[4 * c + 3] = mul(3, col[0]) ^ col[1] ^ col[2] ^ mul(2, col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = mul(14, col[0]) ^ mul(11, col[1]) ^ mul(13, col[2]) ^ mul(9, col[3]);
            state[4 * c + 1] = mul(9, col[0]) ^ mul(14, col[1]) ^ mul(11, col[2]) ^ mul(13, col[3]);
            state[4 * c + 2] = mul(13, col[0]) ^ mul(9, col[1]) ^ mul(14, col[2]) ^ mul(11, col[3]);
            state[4 * c + 3] = mul(11, col[0]) ^ mul(13, col[1]) ^ mul(9, col[2]) ^ mul(14, col[3]);
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        for round in (1..10).rev() {
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
        }
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// CBC-encrypt `data` in place. Length must be a multiple of 16
    /// (ESP handles padding before calling this).
    pub fn cbc_encrypt(&self, iv: &[u8; 16], data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK), "CBC needs whole blocks");
        let mut prev = *iv;
        for chunk in data.chunks_exact_mut(BLOCK) {
            for i in 0..BLOCK {
                chunk[i] ^= prev[i];
            }
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            self.encrypt_block(block);
            prev = *block;
        }
    }

    /// CBC-decrypt `data` in place.
    pub fn cbc_decrypt(&self, iv: &[u8; 16], data: &mut [u8]) {
        assert!(data.len().is_multiple_of(BLOCK), "CBC needs whole blocks");
        let mut prev = *iv;
        for chunk in data.chunks_exact_mut(BLOCK) {
            let cipher: [u8; 16] = chunk.try_into().unwrap();
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            self.decrypt_block(block);
            for i in 0..BLOCK {
                chunk[i] ^= prev[i];
            }
            prev = cipher;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c,
        // plaintext 3243f6a8885a308d313198a2e0370734
        // -> ciphertext 3925841d02dc09fbdc118597196a0b32.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn nist_sp800_38a_cbc_vector() {
        // NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), first two blocks.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut data = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51,
        ];
        let aes = Aes128::new(&key);
        aes.cbc_encrypt(&iv, &mut data);
        assert_eq!(
            &data[..16],
            &[
                0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9, 0x8e, 0x9b, 0x12, 0xe9,
                0x19, 0x7d
            ]
        );
        assert_eq!(
            &data[16..],
            &[
                0x50, 0x86, 0xcb, 0x9b, 0x50, 0x72, 0x19, 0xee, 0x95, 0xdb, 0x11, 0x3a, 0x91, 0x76,
                0x78, 0xb2
            ]
        );
    }

    #[test]
    fn cbc_round_trip() {
        let key = [7u8; 16];
        let iv = [9u8; 16];
        let aes = Aes128::new(&key);
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        aes.cbc_encrypt(&iv, &mut data);
        assert_ne!(data, original);
        aes.cbc_decrypt(&iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn cbc_chains_blocks() {
        // Identical plaintext blocks must yield distinct ciphertext blocks.
        let aes = Aes128::new(&[1u8; 16]);
        let mut data = [0xAAu8; 48];
        aes.cbc_encrypt(&[0u8; 16], &mut data);
        assert_ne!(&data[0..16], &data[16..32]);
        assert_ne!(&data[16..32], &data[32..48]);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn cbc_rejects_partial_block() {
        let aes = Aes128::new(&[0u8; 16]);
        let mut data = [0u8; 15];
        aes.cbc_encrypt(&[0u8; 16], &mut data);
    }

    #[test]
    fn gf_multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(2, a), xtime(a));
        }
    }
}
