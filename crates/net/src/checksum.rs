//! RFC 1071 Internet checksum.

/// One's-complement sum folded to 16 bits over `data`.
///
/// Odd-length inputs are zero-padded on the right, per RFC 1071.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(raw_sum(data))
}

/// Running (unfolded) one's-complement sum; compose with [`finish`] to build
/// checksums over discontiguous regions (e.g. pseudo-header + payload).
pub fn raw_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    sum
}

/// Fold a 32-bit running sum to 16 bits.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Complete a checksum from a running sum.
pub fn finish(sum: u32) -> u16 {
    !fold(sum)
}

/// Verify a region whose checksum field is already populated: the folded
/// sum over the whole region must be 0xFFFF.
pub fn verify(data: &[u8]) -> bool {
    fold(raw_sum(data)) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2 (before ~).
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(raw_sum(&data)), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_right() {
        assert_eq!(raw_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn verify_round_trip() {
        // A fake header with a checksum field at offset 2.
        let mut h = [0x45u8, 0x00, 0x00, 0x00, 0x12, 0x34, 0xab, 0xcd];
        let cks = internet_checksum(&h);
        h[2..4].copy_from_slice(&cks.to_be_bytes());
        assert!(verify(&h));
        h[7] ^= 0xFF;
        assert!(!verify(&h));
    }

    #[test]
    fn fold_handles_large_sums() {
        assert_eq!(fold(0x0001_FFFF), 1); // 0xFFFF + 1 carries twice
        assert_eq!(fold(0xFFFF_FFFF), 0xFFFF);
    }
}
