//! Exact-match flow table (DPDK `l3fwd` EM mode / `rte_hash` analogue).
//!
//! A bucketed cuckoo-light hash keyed on the 5-tuple. l3fwd's EM mode and
//! FloWatcher's per-flow statistics both need constant-time tuple lookup;
//! we implement open addressing with 8-entry buckets and a single
//! displacement pass — enough to hold the evaluation's flow populations at
//! high load factors without unbounded probe chains.

use crate::flow::FiveTuple;

const BUCKET_ENTRIES: usize = 8;

#[derive(Clone)]
struct Slot<V> {
    key: FiveTuple,
    value: V,
}

/// Errors from table insertion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmError {
    /// Both candidate buckets are full and displacement failed.
    Full,
}

/// Exact-match table from [`FiveTuple`] to `V`.
///
/// Two hash-derived candidate buckets per key (power of two choices); on
/// insertion pressure one entry may be displaced to its alternate bucket
/// (one displacement hop, no recursive cuckoo walk — bounded worst case).
pub struct ExactMatch<V> {
    buckets: Vec<Vec<Slot<V>>>,
    bucket_mask: usize,
    len: usize,
}

impl<V> ExactMatch<V> {
    /// Table with capacity for roughly `capacity` flows (rounded up to a
    /// power-of-two bucket count at 8 entries/bucket).
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity / BUCKET_ENTRIES + 1).next_power_of_two().max(2);
        ExactMatch {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            bucket_mask: buckets - 1,
            len: 0,
        }
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table holds no flows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_pair(&self, key: &FiveTuple) -> (usize, usize) {
        let h = key.id_hash();
        let b1 = (h as usize) & self.bucket_mask;
        // Derive the alternate bucket from the high half so the pair is
        // stable for a key regardless of which bucket it currently sits in.
        let b2 = ((h >> 32) as usize ^ 0x5bd1_e995) & self.bucket_mask;
        (b1, b2)
    }

    /// Look up a flow.
    #[inline]
    pub fn get(&self, key: &FiveTuple) -> Option<&V> {
        let (b1, b2) = self.bucket_pair(key);
        self.buckets[b1]
            .iter()
            .chain(self.buckets[b2].iter())
            .find(|s| s.key == *key)
            .map(|s| &s.value)
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: &FiveTuple) -> Option<&mut V> {
        let (b1, b2) = self.bucket_pair(key);
        // Two-phase to satisfy the borrow checker.
        if self.buckets[b1].iter().any(|s| s.key == *key) {
            return self.buckets[b1]
                .iter_mut()
                .find(|s| s.key == *key)
                .map(|s| &mut s.value);
        }
        self.buckets[b2]
            .iter_mut()
            .find(|s| s.key == *key)
            .map(|s| &mut s.value)
    }

    /// Insert or overwrite. Returns the previous value if the key existed.
    pub fn insert(&mut self, key: FiveTuple, value: V) -> Result<Option<V>, EmError> {
        let (b1, b2) = self.bucket_pair(&key);
        // Overwrite in place if present.
        for b in [b1, b2] {
            if let Some(slot) = self.buckets[b].iter_mut().find(|s| s.key == key) {
                return Ok(Some(core::mem::replace(&mut slot.value, value)));
            }
        }
        // Insert into the emptier candidate bucket.
        let target = if self.buckets[b1].len() <= self.buckets[b2].len() {
            b1
        } else {
            b2
        };
        if self.buckets[target].len() < BUCKET_ENTRIES {
            self.buckets[target].push(Slot { key, value });
            self.len += 1;
            return Ok(None);
        }
        // Both full: try displacing one occupant of b1 to its alternate.
        for victim_idx in 0..self.buckets[b1].len() {
            let (v1, v2) = self.bucket_pair(&self.buckets[b1][victim_idx].key);
            let alt = if v1 == b1 { v2 } else { v1 };
            if alt != b1 && self.buckets[alt].len() < BUCKET_ENTRIES {
                let victim = self.buckets[b1].swap_remove(victim_idx);
                self.buckets[alt].push(victim);
                self.buckets[b1].push(Slot { key, value });
                self.len += 1;
                return Ok(None);
            }
        }
        Err(EmError::Full)
    }

    /// Insert if absent, then return a mutable reference to the value.
    pub fn entry_or_insert_with(
        &mut self,
        key: FiveTuple,
        default: impl FnOnce() -> V,
    ) -> Result<&mut V, EmError> {
        if self.get(&key).is_none() {
            self.insert(key, default())?;
        }
        Ok(self.get_mut(&key).expect("just inserted"))
    }

    /// Remove a flow, returning its value.
    pub fn remove(&mut self, key: &FiveTuple) -> Option<V> {
        let (b1, b2) = self.bucket_pair(key);
        for b in [b1, b2] {
            if let Some(pos) = self.buckets[b].iter().position(|s| s.key == *key) {
                self.len -= 1;
                return Some(self.buckets[b].swap_remove(pos).value);
            }
        }
        None
    }

    /// Iterate over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|s| (&s.key, &s.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(i: u32) -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::from(0x0a00_0000 | i),
            (i % 60_000) as u16 + 1,
            Ipv4Addr::new(10, 200, 0, 1),
            80,
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut t = ExactMatch::with_capacity(128);
        assert!(t.is_empty());
        assert_eq!(t.insert(tuple(1), "a").unwrap(), None);
        assert_eq!(t.get(&tuple(1)), Some(&"a"));
        assert_eq!(t.insert(tuple(1), "b").unwrap(), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&tuple(1)), Some("b"));
        assert_eq!(t.get(&tuple(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_mutates() {
        let mut t = ExactMatch::with_capacity(16);
        t.insert(tuple(3), 10u64).unwrap();
        *t.get_mut(&tuple(3)).unwrap() += 5;
        assert_eq!(t.get(&tuple(3)), Some(&15));
    }

    #[test]
    fn entry_api() {
        let mut t: ExactMatch<u64> = ExactMatch::with_capacity(16);
        *t.entry_or_insert_with(tuple(9), || 0).unwrap() += 1;
        *t.entry_or_insert_with(tuple(9), || 0).unwrap() += 1;
        assert_eq!(t.get(&tuple(9)), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn holds_many_flows() {
        let n = 10_000;
        let mut t = ExactMatch::with_capacity(n);
        for i in 0..n as u32 {
            t.insert(tuple(i), i as u64).unwrap();
        }
        assert_eq!(t.len(), n);
        for i in 0..n as u32 {
            assert_eq!(t.get(&tuple(i)), Some(&(i as u64)), "flow {i}");
        }
    }

    #[test]
    fn iter_sees_all() {
        let mut t = ExactMatch::with_capacity(64);
        for i in 0..20u32 {
            t.insert(tuple(i), i).unwrap();
        }
        let mut seen: Vec<u32> = t.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn reports_full_rather_than_looping() {
        // Tiny table: 2 buckets * 8 entries = 16 slots max; inserting far
        // more must eventually return Full, never hang.
        let mut t = ExactMatch::with_capacity(1);
        let mut full_seen = false;
        for i in 0..1000u32 {
            if t.insert(tuple(i), i).is_err() {
                full_seen = true;
                break;
            }
        }
        assert!(full_seen, "expected Full on a saturated table");
        assert!(t.len() <= 16);
    }

    #[test]
    fn missing_key_lookups() {
        let mut t = ExactMatch::with_capacity(16);
        t.insert(tuple(1), 1).unwrap();
        assert_eq!(t.get(&tuple(2)), None);
        assert_eq!(t.get_mut(&tuple(2)), None);
        assert_eq!(t.remove(&tuple(2)), None);
    }
}
