//! ESP (IPsec Encapsulating Security Payload) tunnel-mode encap/decap.
//!
//! The paper's second application is DPDK's IPsec Security Gateway sample,
//! acting as "an IPsec end tunnel for both inbound and outbound network
//! trafﬁc ... encryption of the incoming packets through the AES-CBC
//! 128-bit algorithm as packets are later sent to the unprotected port"
//! (§V-G). This module provides the packet transformation that gateway
//! performs: RFC 4303 ESP framing in tunnel mode with AES-128-CBC, without
//! authentication (matching the sample's cipher-only configuration used in
//! the paper's throughput test).

use crate::aes::{Aes128, BLOCK};
use crate::checksum::internet_checksum;
use crate::flow::IpProto;
use crate::headers::{ETH_HEADER_LEN, IPV4_HEADER_LEN};
use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

/// ESP header: SPI (4) + sequence number (4).
pub const ESP_HEADER_LEN: usize = 8;
/// IV length for AES-CBC.
pub const ESP_IV_LEN: usize = 16;
/// Trailer: pad length (1) + next header (1), inside the encrypted payload.
pub const ESP_TRAILER_LEN: usize = 2;

/// A unidirectional Security Association.
#[derive(Clone)]
pub struct SecurityAssociation {
    /// Security Parameter Index carried in the ESP header.
    pub spi: u32,
    /// Tunnel outer source address.
    pub tunnel_src: Ipv4Addr,
    /// Tunnel outer destination address.
    pub tunnel_dst: Ipv4Addr,
    cipher: Aes128,
    next_seq: u32,
}

/// Errors from ESP processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EspError {
    /// Packet too short to carry the claimed structure.
    Truncated,
    /// Encrypted payload not block-aligned.
    BadAlignment,
    /// Pad-length byte inconsistent with payload size (wrong key or
    /// corrupted packet).
    BadPadding,
    /// SPI in the packet does not match this SA.
    WrongSpi,
}

impl SecurityAssociation {
    /// Create an SA with the given SPI, tunnel endpoints and AES-128 key.
    pub fn new(spi: u32, tunnel_src: Ipv4Addr, tunnel_dst: Ipv4Addr, key: &[u8; 16]) -> Self {
        SecurityAssociation {
            spi,
            tunnel_src,
            tunnel_dst,
            cipher: Aes128::new(key),
            next_seq: 1,
        }
    }

    /// Tunnel-mode encapsulation of a full Ethernet frame.
    ///
    /// The inner IPv4 packet (everything after the Ethernet header) is
    /// padded, encrypted and wrapped in `outer IPv4 | ESP | IV | ciphertext`;
    /// the original Ethernet header is re-used for the outer frame.
    /// `iv` is caller-provided (deterministic tests; a real gateway uses an
    /// unpredictable IV per packet).
    pub fn encapsulate(
        &mut self,
        frame: &[u8],
        iv: &[u8; ESP_IV_LEN],
    ) -> Result<BytesMut, EspError> {
        if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
            return Err(EspError::Truncated);
        }
        let inner_ip = &frame[ETH_HEADER_LEN..];

        // Plaintext = inner IP packet + padding + pad_len + next_header.
        let content_len = inner_ip.len() + ESP_TRAILER_LEN;
        let padded_len = content_len.div_ceil(BLOCK) * BLOCK;
        let pad_len = padded_len - content_len;
        let mut plaintext = Vec::with_capacity(padded_len);
        plaintext.extend_from_slice(inner_ip);
        // RFC 4303 monotonic padding 1,2,3,...
        for i in 0..pad_len {
            plaintext.push((i + 1) as u8);
        }
        plaintext.push(pad_len as u8);
        plaintext.push(4); // next header: 4 = IPv4 (tunnel mode)

        self.cipher.cbc_encrypt(iv, &mut plaintext);

        let esp_payload_len = ESP_HEADER_LEN + ESP_IV_LEN + plaintext.len();
        let outer_total = IPV4_HEADER_LEN + esp_payload_len;
        let mut out = BytesMut::with_capacity(ETH_HEADER_LEN + outer_total);

        // Outer Ethernet: reuse the original header (the gateway rewrites
        // MACs separately when forwarding).
        out.put_slice(&frame[..ETH_HEADER_LEN]);

        // Outer IPv4.
        let ip_start = out.len();
        out.put_u8(0x45);
        out.put_u8(0);
        out.put_u16(outer_total as u16);
        out.put_u16(0);
        out.put_u16(0);
        out.put_u8(64);
        out.put_u8(IpProto::Esp.number());
        out.put_u16(0);
        out.put_slice(&self.tunnel_src.octets());
        out.put_slice(&self.tunnel_dst.octets());
        let cks = internet_checksum(&out[ip_start..ip_start + IPV4_HEADER_LEN]);
        out[ip_start + 10..ip_start + 12].copy_from_slice(&cks.to_be_bytes());

        // ESP header + IV + ciphertext.
        out.put_u32(self.spi);
        out.put_u32(self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(1);
        out.put_slice(iv);
        out.put_slice(&plaintext);

        Ok(out)
    }

    /// Tunnel-mode decapsulation: returns the inner Ethernet frame
    /// (outer Ethernet header + decrypted inner IP packet).
    pub fn decapsulate(&self, frame: &[u8]) -> Result<BytesMut, EspError> {
        let esp_start = ETH_HEADER_LEN + IPV4_HEADER_LEN;
        if frame.len() < esp_start + ESP_HEADER_LEN + ESP_IV_LEN + BLOCK {
            return Err(EspError::Truncated);
        }
        let spi = u32::from_be_bytes(frame[esp_start..esp_start + 4].try_into().unwrap());
        if spi != self.spi {
            return Err(EspError::WrongSpi);
        }
        let iv_start = esp_start + ESP_HEADER_LEN;
        let iv: [u8; ESP_IV_LEN] = frame[iv_start..iv_start + ESP_IV_LEN].try_into().unwrap();
        let mut ciphertext = frame[iv_start + ESP_IV_LEN..].to_vec();
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK) {
            return Err(EspError::BadAlignment);
        }
        self.cipher.cbc_decrypt(&iv, &mut ciphertext);

        // Validate and strip the trailer.
        let next_header = ciphertext[ciphertext.len() - 1];
        let pad_len = ciphertext[ciphertext.len() - 2] as usize;
        if next_header != 4 || pad_len + ESP_TRAILER_LEN > ciphertext.len() {
            return Err(EspError::BadPadding);
        }
        // Verify the monotonic pad bytes — catches wrong-key decrypts early.
        let pad_start = ciphertext.len() - ESP_TRAILER_LEN - pad_len;
        for (i, &b) in ciphertext[pad_start..ciphertext.len() - ESP_TRAILER_LEN]
            .iter()
            .enumerate()
        {
            if b != (i + 1) as u8 {
                return Err(EspError::BadPadding);
            }
        }
        let inner_ip = &ciphertext[..pad_start];

        let mut out = BytesMut::with_capacity(ETH_HEADER_LEN + inner_ip.len());
        out.put_slice(&frame[..ETH_HEADER_LEN]);
        out.put_slice(inner_ip);
        Ok(out)
    }

    /// Current outbound sequence number (next to be used).
    pub fn next_sequence(&self) -> u32 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::headers::{build_udp_frame, parse_frame, Mac};

    fn sa() -> SecurityAssociation {
        SecurityAssociation::new(
            0x1001,
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(172, 16, 0, 2),
            &[0x42; 16],
        )
    }

    fn plain_frame() -> BytesMut {
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1111,
            Ipv4Addr::new(10, 0, 0, 2),
            2222,
        );
        build_udp_frame(Mac::local(1), Mac::local(2), &t, b"secret payload!", 64)
    }

    #[test]
    fn encap_decap_round_trip() {
        let mut out_sa = sa();
        let in_sa = sa();
        let original = plain_frame();
        let iv = [0x17; 16];
        let encrypted = out_sa.encapsulate(&original, &iv).unwrap();
        let recovered = in_sa.decapsulate(&encrypted).unwrap();
        assert_eq!(&recovered[..], &original[..]);
    }

    #[test]
    fn outer_header_is_esp_tunnel() {
        let mut out_sa = sa();
        let encrypted = out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        let p = parse_frame(&encrypted).unwrap();
        assert_eq!(p.tuple.proto, IpProto::Esp);
        assert_eq!(p.tuple.src_ip, Ipv4Addr::new(172, 16, 0, 1));
        assert_eq!(p.tuple.dst_ip, Ipv4Addr::new(172, 16, 0, 2));
    }

    #[test]
    fn ciphertext_hides_payload() {
        let mut out_sa = sa();
        let original = plain_frame();
        let encrypted = out_sa.encapsulate(&original, &[0x55; 16]).unwrap();
        // The inner UDP payload bytes must not appear in the ESP packet.
        let needle = b"secret payload!";
        let hay = &encrypted[..];
        assert!(
            !hay.windows(needle.len()).any(|w| w == needle),
            "plaintext leaked"
        );
    }

    #[test]
    fn sequence_increments() {
        let mut out_sa = sa();
        assert_eq!(out_sa.next_sequence(), 1);
        out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        assert_eq!(out_sa.next_sequence(), 3);
    }

    #[test]
    fn wrong_spi_rejected() {
        let mut out_sa = sa();
        let encrypted = out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        let other = SecurityAssociation::new(
            0x2002,
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(172, 16, 0, 2),
            &[0x42; 16],
        );
        assert_eq!(other.decapsulate(&encrypted), Err(EspError::WrongSpi));
    }

    #[test]
    fn wrong_key_rejected_via_padding() {
        let mut out_sa = sa();
        let encrypted = out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        let wrong_key = SecurityAssociation::new(
            0x1001,
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(172, 16, 0, 2),
            &[0x43; 16],
        );
        assert_eq!(wrong_key.decapsulate(&encrypted), Err(EspError::BadPadding));
    }

    #[test]
    fn truncated_rejected() {
        let in_sa = sa();
        assert_eq!(in_sa.decapsulate(&[0u8; 30]), Err(EspError::Truncated));
    }

    #[test]
    fn corrupted_ciphertext_rejected() {
        let mut out_sa = sa();
        let mut encrypted = out_sa.encapsulate(&plain_frame(), &[0; 16]).unwrap();
        let n = encrypted.len();
        encrypted[n - 1] ^= 0xFF; // flips trailer after decrypt
        let in_sa = sa();
        assert!(in_sa.decapsulate(&encrypted).is_err());
    }
}
