//! Flow identity: the classic 5-tuple.
//!
//! The 5-tuple is what RSS hashes over (so it decides which Rx queue a
//! packet lands in), what FloWatcher keys its per-flow statistics on, and
//! what the unbalanced-traffic experiment (paper Table III) skews.

use core::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers used by the workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum IpProto {
    /// TCP (6).
    Tcp = 6,
    /// UDP (17). The paper's traffic is UDP.
    Udp = 17,
    /// ESP (50), produced by the IPsec gateway.
    Esp = 50,
}

impl IpProto {
    /// Wire value.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Parse from the wire value.
    pub fn from_number(n: u8) -> Option<IpProto> {
        match n {
            6 => Some(IpProto::Tcp),
            17 => Some(IpProto::Udp),
            50 => Some(IpProto::Esp),
            _ => None,
        }
    }
}

/// Connection 5-tuple: source/destination address and port plus protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

impl FiveTuple {
    /// Convenience constructor for UDP flows (the evaluation traffic).
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProto::Udp,
        }
    }

    /// The reverse direction of this flow.
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Serialize in the byte order Toeplitz hashing consumes
    /// (src ip, dst ip, src port, dst port — all big-endian).
    pub fn rss_input(&self) -> [u8; 12] {
        let mut buf = [0u8; 12];
        buf[0..4].copy_from_slice(&self.src_ip.octets());
        buf[4..8].copy_from_slice(&self.dst_ip.octets());
        buf[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        buf[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        buf
    }

    /// A fast non-cryptographic 64-bit identity hash (FNV-1a over the
    /// canonical byte serialization). Stable across runs; used as a compact
    /// flow id by generators and monitors.
    pub fn id_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in self.rss_input() {
            feed(b);
        }
        feed(self.proto.number());
        h
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            2000,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let f = ft();
        let r = f.reversed();
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn rss_input_layout() {
        let f = ft();
        let b = f.rss_input();
        assert_eq!(&b[0..4], &[10, 0, 0, 1]);
        assert_eq!(&b[4..8], &[10, 0, 0, 2]);
        assert_eq!(&b[8..10], &1000u16.to_be_bytes());
        assert_eq!(&b[10..12], &2000u16.to_be_bytes());
    }

    #[test]
    fn id_hash_distinguishes_flows() {
        let f = ft();
        assert_ne!(f.id_hash(), f.reversed().id_hash());
        assert_eq!(f.id_hash(), ft().id_hash());
    }

    #[test]
    fn proto_round_trip() {
        for p in [IpProto::Tcp, IpProto::Udp, IpProto::Esp] {
            assert_eq!(IpProto::from_number(p.number()), Some(p));
        }
        assert_eq!(IpProto::from_number(99), None);
    }
}
