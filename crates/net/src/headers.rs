//! Ethernet / IPv4 / UDP header construction and parsing.
//!
//! The evaluation traffic is 64-byte UDP-in-IPv4-in-Ethernet frames (the
//! 10 GbE worst case: 14.88 Mpps). These builders produce real wire-format
//! bytes so the applications (l3fwd rewrites MACs and decrements TTL, the
//! IPsec gateway re-encapsulates, FloWatcher parses tuples) operate on
//! genuine packets rather than opaque tokens.

use crate::checksum::{finish, internet_checksum, raw_sum};
use crate::flow::{FiveTuple, IpProto};
use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

/// Length of an Ethernet header (no VLAN).
pub const ETH_HEADER_LEN: usize = 14;
/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;
/// Minimum Ethernet frame (without FCS) — 64B frames on the wire carry a
/// 4-byte FCS, so the buildable portion is 60 bytes.
pub const MIN_FRAME_NO_FCS: usize = 60;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The broadcast address.
    pub const BROADCAST: Mac = Mac([0xFF; 6]);

    /// A locally administered address derived from a small integer id —
    /// handy for synthetic topologies.
    pub fn local(id: u32) -> Mac {
        let b = id.to_be_bytes();
        Mac([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

/// Errors from packet parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Frame shorter than the headers it claims to carry.
    Truncated,
    /// EtherType other than IPv4.
    NotIpv4,
    /// IPv4 version/IHL invalid or options present where unsupported.
    BadIpHeader,
    /// IPv4 header checksum mismatch.
    BadChecksum,
    /// Transport protocol we don't parse.
    UnsupportedProto(u8),
}

/// Build a complete UDP/IPv4/Ethernet frame for `tuple` with `payload_len`
/// bytes of zeroed payload, padding the result to at least `frame_len`
/// (FCS excluded). Returns the wire bytes.
///
/// `frame_len` is what the paper calls packet size (64B tests build 60 bytes
/// here + 4 FCS on the wire).
pub fn build_udp_frame(
    src_mac: Mac,
    dst_mac: Mac,
    tuple: &FiveTuple,
    payload: &[u8],
    frame_len: usize,
) -> BytesMut {
    let ip_len = IPV4_HEADER_LEN + UDP_HEADER_LEN + payload.len();
    let mut buf = BytesMut::with_capacity(frame_len.max(ETH_HEADER_LEN + ip_len));

    // Ethernet.
    buf.put_slice(&dst_mac.0);
    buf.put_slice(&src_mac.0);
    buf.put_u16(ETHERTYPE_IPV4);

    // IPv4.
    let ip_start = buf.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_len as u16);
    buf.put_u16(0); // identification
    buf.put_u16(0); // flags/fragment
    buf.put_u8(64); // TTL
    buf.put_u8(tuple.proto.number());
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&tuple.src_ip.octets());
    buf.put_slice(&tuple.dst_ip.octets());
    let cks = internet_checksum(&buf[ip_start..ip_start + IPV4_HEADER_LEN]);
    buf[ip_start + 10..ip_start + 12].copy_from_slice(&cks.to_be_bytes());

    // UDP.
    let udp_start = buf.len();
    buf.put_u16(tuple.src_port);
    buf.put_u16(tuple.dst_port);
    buf.put_u16((UDP_HEADER_LEN + payload.len()) as u16);
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(payload);
    let udp_cks = udp_checksum(tuple, &buf[udp_start..]);
    buf[udp_start + 6..udp_start + 8].copy_from_slice(&udp_cks.to_be_bytes());

    // Pad to the requested frame length (Ethernet padding bytes).
    while buf.len() < frame_len {
        buf.put_u8(0);
    }
    buf
}

/// UDP checksum with the IPv4 pseudo-header. Returns 0xFFFF instead of 0
/// (RFC 768: transmitted 0 means "no checksum").
pub fn udp_checksum(tuple: &FiveTuple, udp_segment: &[u8]) -> u16 {
    let mut sum = 0u32;
    sum += raw_sum(&tuple.src_ip.octets());
    sum += raw_sum(&tuple.dst_ip.octets());
    sum += IpProto::Udp.number() as u32;
    sum += udp_segment.len() as u32;
    // Zero the checksum field for computation.
    sum += raw_sum(&udp_segment[..6]);
    sum += raw_sum(&udp_segment[8..]);
    let c = finish(sum);
    if c == 0 {
        0xFFFF
    } else {
        c
    }
}

/// Parsed view of a UDP/IPv4 frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsedFrame {
    /// Source MAC.
    pub src_mac: Mac,
    /// Destination MAC.
    pub dst_mac: Mac,
    /// Flow tuple (ports are zero for non-TCP/UDP protocols such as ESP).
    pub tuple: FiveTuple,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Offset of the IPv4 payload (transport header) within the frame.
    pub l4_offset: usize,
    /// Total IPv4 length field.
    pub ip_total_len: usize,
}

/// Parse an Ethernet/IPv4 frame; UDP and TCP get ports extracted, ESP gets
/// zero ports (flow identity for ESP is the SPI, handled by the IPsec app).
pub fn parse_frame(frame: &[u8]) -> Result<ParsedFrame, ParseError> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
        return Err(ParseError::Truncated);
    }
    let dst_mac = Mac(frame[0..6].try_into().unwrap());
    let src_mac = Mac(frame[6..12].try_into().unwrap());
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::NotIpv4);
    }
    let ip = &frame[ETH_HEADER_LEN..];
    if ip[0] != 0x45 {
        return Err(ParseError::BadIpHeader);
    }
    if !crate::checksum::verify(&ip[..IPV4_HEADER_LEN]) {
        return Err(ParseError::BadChecksum);
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if total_len < IPV4_HEADER_LEN || frame.len() < ETH_HEADER_LEN + total_len {
        return Err(ParseError::Truncated);
    }
    let ttl = ip[8];
    let proto_num = ip[9];
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let proto = IpProto::from_number(proto_num).ok_or(ParseError::UnsupportedProto(proto_num))?;
    let l4 = &ip[IPV4_HEADER_LEN..];
    let (src_port, dst_port) = match proto {
        IpProto::Udp | IpProto::Tcp => {
            if l4.len() < 4 {
                return Err(ParseError::Truncated);
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
            )
        }
        IpProto::Esp => (0, 0),
    };
    Ok(ParsedFrame {
        src_mac,
        dst_mac,
        tuple: FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        },
        ttl,
        l4_offset: ETH_HEADER_LEN + IPV4_HEADER_LEN,
        ip_total_len: total_len,
    })
}

/// In-place L3 forwarding rewrite: swap in new MACs, decrement TTL, and
/// incrementally update the IPv4 checksum (RFC 1624). This is what DPDK's
/// `l3fwd` does per packet.
///
/// Returns `false` (drop) if the TTL would reach zero.
pub fn l3fwd_rewrite(frame: &mut [u8], new_src: Mac, new_dst: Mac) -> bool {
    debug_assert!(frame.len() >= ETH_HEADER_LEN + IPV4_HEADER_LEN);
    let ttl = frame[ETH_HEADER_LEN + 8];
    if ttl <= 1 {
        return false;
    }
    frame[0..6].copy_from_slice(&new_dst.0);
    frame[6..12].copy_from_slice(&new_src.0);
    frame[ETH_HEADER_LEN + 8] = ttl - 1;
    // RFC 1624 incremental update: HC' = ~(~HC + ~m + m').
    let cks_off = ETH_HEADER_LEN + 10;
    let old = u16::from_be_bytes([frame[cks_off], frame[cks_off + 1]]);
    let old_word = u16::from_be_bytes([ttl, frame[ETH_HEADER_LEN + 9]]);
    let new_word = u16::from_be_bytes([ttl - 1, frame[ETH_HEADER_LEN + 9]]);
    let sum = (!old as u32) + (!old_word as u32) + new_word as u32;
    let new = !crate::checksum::fold(sum);
    frame[cks_off..cks_off + 2].copy_from_slice(&new.to_be_bytes());
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(192, 168, 1, 10),
            5555,
            Ipv4Addr::new(10, 0, 0, 1),
            53,
        )
    }

    #[test]
    fn build_then_parse_round_trip() {
        let f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[1, 2, 3, 4], 64);
        assert_eq!(f.len(), 64);
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.tuple, tuple());
        assert_eq!(p.src_mac, Mac::local(1));
        assert_eq!(p.dst_mac, Mac::local(2));
        assert_eq!(p.ttl, 64);
        assert_eq!(p.ip_total_len, 20 + 8 + 4);
    }

    #[test]
    fn min_frame_is_padded() {
        let f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 60);
        assert_eq!(f.len(), 60);
        parse_frame(&f).unwrap();
    }

    #[test]
    fn large_frame() {
        let payload = vec![0xAB; 1400];
        let f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &payload, 1442);
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.ip_total_len, 20 + 8 + 1400);
    }

    #[test]
    fn parse_rejects_truncated() {
        assert_eq!(parse_frame(&[0u8; 10]), Err(ParseError::Truncated));
    }

    #[test]
    fn parse_rejects_non_ipv4() {
        let mut f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 64);
        f[12] = 0x86;
        f[13] = 0xDD; // IPv6 ethertype
        assert_eq!(parse_frame(&f), Err(ParseError::NotIpv4));
    }

    #[test]
    fn parse_rejects_corrupt_checksum() {
        let mut f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 64);
        f[ETH_HEADER_LEN + 12] ^= 0xFF; // corrupt source IP
        assert_eq!(parse_frame(&f), Err(ParseError::BadChecksum));
    }

    #[test]
    fn l3fwd_rewrite_updates_ttl_and_checksum() {
        let mut f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 64);
        assert!(l3fwd_rewrite(&mut f, Mac::local(7), Mac::local(8)));
        let p = parse_frame(&f).expect("checksum must still verify");
        assert_eq!(p.ttl, 63);
        assert_eq!(p.src_mac, Mac::local(7));
        assert_eq!(p.dst_mac, Mac::local(8));
    }

    #[test]
    fn l3fwd_rewrite_many_hops_checksum_stays_valid() {
        let mut f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 64);
        for _ in 0..60 {
            assert!(l3fwd_rewrite(&mut f, Mac::local(7), Mac::local(8)));
            parse_frame(&f).expect("incremental checksum drifted");
        }
    }

    #[test]
    fn l3fwd_drops_ttl_expired() {
        let mut f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[], 64);
        f[ETH_HEADER_LEN + 8] = 1;
        // Fix the checksum for the modified TTL so parse would pass...
        // rewrite must refuse regardless of checksum state.
        assert!(!l3fwd_rewrite(&mut f, Mac::local(7), Mac::local(8)));
    }

    #[test]
    fn udp_checksum_nonzero() {
        // RFC 768: a computed 0 must be transmitted as 0xFFFF; in all cases
        // the field must be nonzero for a checksummed packet.
        let f = build_udp_frame(Mac::local(1), Mac::local(2), &tuple(), &[0x55; 9], 64);
        let udp = &f[ETH_HEADER_LEN + IPV4_HEADER_LEN..];
        let cks = u16::from_be_bytes([udp[6], udp[7]]);
        assert_ne!(cks, 0);
    }

    #[test]
    fn mac_local_distinct() {
        assert_ne!(Mac::local(1), Mac::local(2));
        assert_eq!(Mac::local(3), Mac::local(3));
    }
}
