//! # metronome-net — packet and protocol substrate
//!
//! From-scratch implementations of everything the Metronome reproduction
//! needs below the NIC abstraction:
//!
//! * [`flow`] — 5-tuples and flow identity.
//! * [`headers`] — Ethernet/IPv4/UDP wire format, parsing, and the l3fwd
//!   rewrite (MAC swap + TTL decrement + RFC 1624 incremental checksum).
//! * [`checksum`] — RFC 1071 Internet checksum.
//! * [`toeplitz`] — the real RSS hash (validated against the Microsoft
//!   verification-suite vectors) that decides per-flow Rx-queue placement.
//! * [`lpm`] — DIR-24-8 longest-prefix match (DPDK `rte_lpm` geometry).
//! * [`em`] — exact-match flow table (l3fwd EM mode, FloWatcher state).
//! * [`aes`] / [`esp`] — FIPS-197 AES-128 + CBC and RFC 4303 tunnel-mode
//!   ESP for the IPsec Security Gateway application.
//! * [`pcap`] — classic libpcap read/write so synthetic traces (e.g. the
//!   Table III unbalanced mix) can be exported to standard tooling.
//!
//! Everything here is deterministic, allocation-conscious, and validated
//! against published test vectors where they exist (FIPS-197, SP 800-38A,
//! Microsoft RSS).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aes;
pub mod checksum;
pub mod em;
pub mod esp;
pub mod flow;
pub mod headers;
pub mod lpm;
pub mod pcap;
pub mod toeplitz;

pub use em::ExactMatch;
pub use flow::{FiveTuple, IpProto};
pub use headers::{Mac, ParsedFrame};
pub use lpm::Lpm;
pub use toeplitz::Toeplitz;
