//! Longest-prefix-match table, DIR-24-8 style (DPDK `rte_lpm`).
//!
//! The paper's flagship application is `l3fwd` in LPM mode ("we chose the
//! LPM approach as it is the most computation-expensive one"). DPDK's LPM is
//! the DIR-24-8 two-stage trie: a directly indexed 2^24-entry first stage
//! (one lookup resolves any prefix ≤ /24) plus second-stage groups for
//! longer prefixes. Lookup is one memory access for short routes and two
//! for long ones — constant time, which is what keeps the per-packet cost
//! of the forwarder flat.
//!
//! The first-stage width is configurable (24 bits reproduces DPDK exactly;
//! tests use narrower widths to keep allocations cheap). The second stage
//! always resolves all remaining `32 - first_bits` bits, so route depth is
//! unrestricted for any configuration.

use std::net::Ipv4Addr;

/// Entry encoding: bit 31 = valid, bit 30 = "points to second stage",
/// low 16 bits = next hop or group index.
const VALID: u32 = 1 << 31;
const GROUP: u32 = 1 << 30;
const DATA_MASK: u32 = 0xFFFF;

/// Second-stage group covering one first-stage slot.
#[derive(Clone)]
struct TblGroup {
    /// `VALID | next_hop` per suffix, plus the depth that installed each
    /// entry so that more-specific routes override less-specific ones
    /// regardless of insertion order.
    entries: Vec<u32>,
    depths: Vec<u8>,
}

impl TblGroup {
    fn new(size: usize, seed_entry: u32, seed_depth: u8) -> Self {
        TblGroup {
            entries: vec![seed_entry; size],
            depths: vec![seed_depth; size],
        }
    }
}

/// Errors from route manipulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpmError {
    /// Prefix depth outside 1..=32.
    BadDepth,
    /// All second-stage groups in use.
    TblGroupsExhausted,
}

/// DIR-24-8 longest-prefix-match table mapping IPv4 prefixes to 16-bit
/// next-hop ids.
pub struct Lpm {
    first_bits: u32,
    tbl24: Vec<u32>,
    /// Depth that installed each non-group tbl24 entry (0 = none).
    depths24: Vec<u8>,
    groups: Vec<TblGroup>,
    max_groups: u16,
    route_count: usize,
}

impl Lpm {
    /// DPDK-faithful geometry: 24-bit first stage, 8-bit second stage.
    /// `max_groups` bounds the number of distinct /25+ slot expansions
    /// (DPDK defaults to 256).
    pub fn new_dir24_8(max_groups: u16) -> Self {
        Lpm::with_first_stage_bits(24, max_groups)
    }

    /// Table with a custom first-stage width (8..=24 bits).
    pub fn with_first_stage_bits(first_bits: u32, max_groups: u16) -> Self {
        assert!((8..=24).contains(&first_bits), "first stage 8..=24 bits");
        let size = 1usize << first_bits;
        Lpm {
            first_bits,
            tbl24: vec![0; size],
            depths24: vec![0; size],
            groups: Vec::new(),
            max_groups,
            route_count: 0,
        }
    }

    /// Number of successful `add` calls (duplicate prefixes overwrite the
    /// next hop but still count as an add).
    pub fn len(&self) -> usize {
        self.route_count
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.route_count == 0
    }

    #[inline]
    fn first_index(&self, ip: u32) -> usize {
        (ip >> (32 - self.first_bits)) as usize
    }

    #[inline]
    fn rest_bits(&self) -> u32 {
        32 - self.first_bits
    }

    #[inline]
    fn suffix(&self, ip: u32) -> usize {
        (ip & ((1u32 << self.rest_bits()) - 1)) as usize
    }

    /// Install `prefix/depth -> next_hop`. Re-adding a prefix overwrites its
    /// next hop.
    pub fn add(&mut self, prefix: Ipv4Addr, depth: u8, next_hop: u16) -> Result<(), LpmError> {
        if depth == 0 || depth > 32 {
            return Err(LpmError::BadDepth);
        }
        let ip = u32::from(prefix) & mask(depth);
        if (depth as u32) <= self.first_bits {
            // Covered entirely by the first stage: fill every slot the
            // prefix spans, respecting deeper already-installed routes.
            let span = 1usize << (self.first_bits - depth as u32);
            let base = self.first_index(ip);
            for i in base..base + span {
                if self.tbl24[i] & GROUP != 0 {
                    let g = (self.tbl24[i] & DATA_MASK) as usize;
                    let grp = &mut self.groups[g];
                    for j in 0..grp.entries.len() {
                        if grp.depths[j] <= depth {
                            grp.entries[j] = VALID | next_hop as u32;
                            grp.depths[j] = depth;
                        }
                    }
                } else if self.depths24[i] <= depth {
                    self.tbl24[i] = VALID | next_hop as u32;
                    self.depths24[i] = depth;
                }
            }
        } else {
            // Deeper than the first stage: expand the slot into a group.
            let idx = self.first_index(ip);
            let g = if self.tbl24[idx] & GROUP != 0 {
                (self.tbl24[idx] & DATA_MASK) as usize
            } else {
                if self.groups.len() >= self.max_groups as usize {
                    return Err(LpmError::TblGroupsExhausted);
                }
                // Seed the new group with the covering first-stage route.
                let (seed_entry, seed_depth) = if self.tbl24[idx] & VALID != 0 {
                    (self.tbl24[idx], self.depths24[idx])
                } else {
                    (0, 0)
                };
                let g = self.groups.len();
                self.groups.push(TblGroup::new(
                    1usize << self.rest_bits(),
                    seed_entry,
                    seed_depth,
                ));
                self.tbl24[idx] = VALID | GROUP | g as u32;
                g
            };
            let start = self.suffix(ip);
            let span = 1usize << (32 - depth as u32);
            let grp = &mut self.groups[g];
            for j in start..start + span {
                if grp.depths[j] <= depth {
                    grp.entries[j] = VALID | next_hop as u32;
                    grp.depths[j] = depth;
                }
            }
        }
        self.route_count += 1;
        Ok(())
    }

    /// Look up the next hop for `ip`, or `None` for no matching route.
    #[inline]
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<u16> {
        let ip = u32::from(ip);
        let e = self.tbl24[self.first_index(ip)];
        if e & VALID == 0 {
            return None;
        }
        if e & GROUP == 0 {
            return Some((e & DATA_MASK) as u16);
        }
        let g = (e & DATA_MASK) as usize;
        let ge = self.groups[g].entries[self.suffix(ip)];
        if ge & VALID == 0 {
            None
        } else {
            Some((ge & DATA_MASK) as u16)
        }
    }

    /// Look up a whole burst of destinations, appending one result per
    /// input to `out` (the `rte_lpm_lookup_bulk` analogue). Keeping the
    /// first-stage probes in one tight loop is what lets a forwarder pay
    /// the table's cache misses once per burst instead of interleaving
    /// them with header parsing and rewriting.
    pub fn lookup_bulk(&self, dsts: &[Ipv4Addr], out: &mut Vec<Option<u16>>) {
        out.reserve(dsts.len());
        for &ip in dsts {
            out.push(self.lookup(ip));
        }
    }
}

fn mask(depth: u8) -> u32 {
    if depth == 0 {
        0
    } else {
        u32::MAX << (32 - depth as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn small() -> Lpm {
        Lpm::with_first_stage_bits(16, 64)
    }

    #[test]
    fn empty_lookup_misses() {
        let l = small();
        assert_eq!(l.lookup(ip("1.2.3.4")), None);
        assert!(l.is_empty());
    }

    #[test]
    fn bulk_lookup_matches_scalar() {
        let mut l = small();
        l.add(ip("10.0.0.0"), 8, 1).unwrap();
        l.add(ip("10.1.0.0"), 16, 2).unwrap();
        let dsts = [ip("10.0.0.1"), ip("10.1.2.3"), ip("192.168.0.1")];
        let mut bulk = Vec::new();
        l.lookup_bulk(&dsts, &mut bulk);
        let scalar: Vec<_> = dsts.iter().map(|&d| l.lookup(d)).collect();
        assert_eq!(bulk, scalar);
        assert_eq!(bulk, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn depth_bounds() {
        let mut l = small();
        assert_eq!(l.add(ip("10.0.0.0"), 0, 1), Err(LpmError::BadDepth));
        assert_eq!(l.add(ip("10.0.0.0"), 33, 1), Err(LpmError::BadDepth));
        assert!(l.add(ip("10.0.0.0"), 32, 1).is_ok());
        assert!(l.add(ip("10.0.0.0"), 1, 2).is_ok());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn short_prefix_lookup() {
        let mut l = small();
        l.add(ip("10.0.0.0"), 8, 7).unwrap();
        assert_eq!(l.lookup(ip("10.1.2.3")), Some(7));
        assert_eq!(l.lookup(ip("10.255.255.255")), Some(7));
        assert_eq!(l.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn longest_prefix_wins_first_stage() {
        let mut l = small();
        l.add(ip("10.0.0.0"), 8, 1).unwrap();
        l.add(ip("10.128.0.0"), 9, 2).unwrap();
        assert_eq!(l.lookup(ip("10.128.0.1")), Some(2));
        assert_eq!(l.lookup(ip("10.0.0.1")), Some(1));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = small();
        a.add(ip("10.0.0.0"), 8, 1).unwrap();
        a.add(ip("10.128.0.0"), 9, 2).unwrap();
        a.add(ip("10.128.7.0"), 24, 3).unwrap();
        let mut b = small();
        b.add(ip("10.128.7.0"), 24, 3).unwrap();
        b.add(ip("10.128.0.0"), 9, 2).unwrap();
        b.add(ip("10.0.0.0"), 8, 1).unwrap();
        for probe in ["10.128.0.1", "10.0.0.1", "10.200.3.4", "10.128.7.9"] {
            assert_eq!(a.lookup(ip(probe)), b.lookup(ip(probe)), "{probe}");
        }
    }

    #[test]
    fn long_prefix_uses_second_stage() {
        let mut l = small();
        l.add(ip("10.1.0.0"), 16, 1).unwrap();
        l.add(ip("10.1.2.0"), 24, 2).unwrap();
        l.add(ip("10.1.2.3"), 32, 3).unwrap();
        assert_eq!(l.lookup(ip("10.1.9.9")), Some(1));
        assert_eq!(l.lookup(ip("10.1.2.9")), Some(2));
        assert_eq!(l.lookup(ip("10.1.2.3")), Some(3));
    }

    #[test]
    fn group_seeded_with_covering_route() {
        let mut l = small();
        l.add(ip("10.1.0.0"), 16, 1).unwrap();
        // Expanding with a /32 must preserve /16 behaviour elsewhere in the
        // same first-stage slot.
        l.add(ip("10.1.0.77"), 32, 9).unwrap();
        assert_eq!(l.lookup(ip("10.1.0.77")), Some(9));
        assert_eq!(l.lookup(ip("10.1.0.78")), Some(1));
        assert_eq!(l.lookup(ip("10.1.200.1")), Some(1));
    }

    #[test]
    fn shorter_route_added_after_group_expansion() {
        let mut l = small();
        l.add(ip("10.1.0.77"), 32, 9).unwrap();
        l.add(ip("10.1.0.0"), 16, 1).unwrap();
        assert_eq!(l.lookup(ip("10.1.0.77")), Some(9));
        assert_eq!(l.lookup(ip("10.1.0.78")), Some(1));
    }

    #[test]
    fn dir24_8_full_width() {
        let mut l = Lpm::new_dir24_8(16);
        l.add(ip("192.168.0.0"), 16, 5).unwrap();
        l.add(ip("192.168.1.0"), 24, 6).unwrap();
        l.add(ip("192.168.1.128"), 25, 7).unwrap();
        assert_eq!(l.lookup(ip("192.168.2.1")), Some(5));
        assert_eq!(l.lookup(ip("192.168.1.1")), Some(6));
        assert_eq!(l.lookup(ip("192.168.1.200")), Some(7));
        assert_eq!(l.lookup(ip("192.169.0.1")), None);
    }

    #[test]
    fn group_exhaustion_reported() {
        let mut l = Lpm::with_first_stage_bits(16, 1);
        l.add(ip("10.0.0.0"), 24, 1).unwrap();
        // A different first-stage slot needs a second group.
        assert_eq!(
            l.add(ip("10.1.0.0"), 24, 2),
            Err(LpmError::TblGroupsExhausted)
        );
        // But the same slot reuses the existing group.
        assert!(l.add(ip("10.0.1.0"), 24, 3).is_ok());
    }

    #[test]
    fn matches_naive_oracle_randomized() {
        use std::collections::BTreeMap;
        // Naive oracle: scan all routes for the longest matching prefix.
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        let mut l = small();
        let mut dedup: BTreeMap<(u32, u8), u16> = BTreeMap::new();
        for hop in 0..200u16 {
            let depth = (next() % 32 + 1) as u8;
            let prefix = next() & mask(depth);
            if l.add(Ipv4Addr::from(prefix), depth, hop).is_ok() {
                dedup.insert((prefix, depth), hop);
            }
        }
        let oracle = |ip_u: u32| -> Option<u16> {
            dedup
                .iter()
                .filter(|&(&(p, d), _)| ip_u & mask(d) == p)
                .max_by_key(|&(&(_, d), _)| d)
                .map(|(_, &h)| h)
        };
        for _ in 0..2_000 {
            let probe = next();
            assert_eq!(
                l.lookup(Ipv4Addr::from(probe)),
                oracle(probe),
                "probe {:?}",
                Ipv4Addr::from(probe)
            );
        }
    }
}
