//! Minimal libpcap file writer.
//!
//! The evaluation's unbalanced test replays "an unbalanced pcap file ...
//! composed by 1000 packets" (§V-F.4). This module lets the repo
//! materialize its synthetic traces as real pcap files — inspectable in
//! Wireshark, replayable by any standard tool — and parse them back, so
//! the `UnbalancedTrace` is not locked inside this codebase.
//!
//! Classic pcap format (not pcapng): 24-byte global header, then per
//! packet a 16-byte record header + bytes. Little-endian, microsecond
//! timestamps, LINKTYPE_ETHERNET.

/// Magic for little-endian, microsecond-resolution pcap.
const MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;

/// Errors from pcap parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PcapError {
    /// File shorter than its headers claim.
    Truncated,
    /// Unknown magic number (we only write/read LE-µs classic pcap).
    BadMagic,
}

/// A packet record: timestamp in microseconds plus frame bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp, microseconds since the epoch of the trace.
    pub ts_micros: u64,
    /// Frame bytes (without FCS, as captured).
    pub frame: Vec<u8>,
}

/// Serialize records into a classic pcap byte stream.
pub fn write_pcap(records: &[PcapRecord]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(24 + records.iter().map(|r| 16 + r.frame.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE.to_le_bytes());
    for r in records {
        let secs = (r.ts_micros / 1_000_000) as u32;
        let micros = (r.ts_micros % 1_000_000) as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&micros.to_le_bytes());
        out.extend_from_slice(&(r.frame.len() as u32).to_le_bytes());
        out.extend_from_slice(&(r.frame.len() as u32).to_le_bytes());
        out.extend_from_slice(&r.frame);
    }
    out
}

/// Parse a classic pcap byte stream back into records.
pub fn read_pcap(data: &[u8]) -> Result<Vec<PcapRecord>, PcapError> {
    if data.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(PcapError::BadMagic);
    }
    let mut records = Vec::new();
    let mut off = 24;
    while off < data.len() {
        if off + 16 > data.len() {
            return Err(PcapError::Truncated);
        }
        let secs = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as u64;
        let micros = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap()) as u64;
        let incl = u32::from_le_bytes(data[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16;
        if off + incl > data.len() {
            return Err(PcapError::Truncated);
        }
        records.push(PcapRecord {
            ts_micros: secs * 1_000_000 + micros,
            frame: data[off..off + incl].to_vec(),
        });
        off += incl;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::headers::{build_udp_frame, parse_frame, Mac};
    use std::net::Ipv4Addr;

    fn record(i: u64) -> PcapRecord {
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000 + i as u16,
            Ipv4Addr::new(10, 0, 0, 2),
            2000,
        );
        PcapRecord {
            ts_micros: i * 67,
            frame: build_udp_frame(Mac::local(1), Mac::local(2), &t, &[], 60).to_vec(),
        }
    }

    #[test]
    fn round_trip() {
        let records: Vec<PcapRecord> = (0..100).map(record).collect();
        let bytes = write_pcap(&records);
        let back = read_pcap(&bytes).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn header_is_canonical() {
        let bytes = write_pcap(&[]);
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &MAGIC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
    }

    #[test]
    fn frames_stay_parseable() {
        let bytes = write_pcap(&[record(3)]);
        let back = read_pcap(&bytes).unwrap();
        let parsed = parse_frame(&back[0].frame).unwrap();
        assert_eq!(parsed.tuple.src_port, 1003);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(read_pcap(&[0u8; 10]), Err(PcapError::Truncated));
        let mut bytes = write_pcap(&[record(1)]);
        bytes[0] ^= 0xFF;
        assert_eq!(read_pcap(&bytes), Err(PcapError::BadMagic));
        let good = write_pcap(&[record(1)]);
        assert_eq!(
            read_pcap(&good[..good.len() - 3]),
            Err(PcapError::Truncated)
        );
    }

    #[test]
    fn timestamps_carry_seconds_and_micros() {
        let r = PcapRecord {
            ts_micros: 3_000_042,
            frame: vec![1, 2, 3],
        };
        let back = read_pcap(&write_pcap(std::slice::from_ref(&r))).unwrap();
        assert_eq!(back[0].ts_micros, 3_000_042);
    }
}
