//! Toeplitz hashing — the RSS algorithm Intel NICs implement.
//!
//! The paper's multiqueue experiments (§IV-E, §V-F) rely on the NIC's RSS
//! feature to spread flows across Rx queues: "Traffic is distributed equally
//! among the RX queues through RSS". We implement the real Microsoft/Intel
//! Toeplitz construction so that (a) per-flow queue affinity is faithful —
//! a flow never migrates between queues, which is what makes the Table III
//! unbalanced-traffic experiment meaningful — and (b) the hash matches
//! published test vectors.

/// The default 40-byte RSS key Intel ships (ixgbe/i40e default; also the
/// key in Microsoft's RSS verification suite).
pub const INTEL_DEFAULT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A symmetric variant (repeating 0x6d5a) that hashes both directions of a
/// flow identically — useful for monitors that must see request and reply
/// on the same queue.
pub const SYMMETRIC_KEY: [u8; 40] = {
    let mut k = [0u8; 40];
    let mut i = 0;
    while i < 40 {
        k[i] = if i % 2 == 0 { 0x6d } else { 0x5a };
        i += 1;
    }
    k
};

/// Toeplitz hasher over a fixed key.
#[derive(Clone, Debug)]
pub struct Toeplitz {
    key: [u8; 40],
}

impl Default for Toeplitz {
    fn default() -> Self {
        Toeplitz {
            key: INTEL_DEFAULT_KEY,
        }
    }
}

impl Toeplitz {
    /// Hasher with a custom 40-byte key.
    pub fn with_key(key: [u8; 40]) -> Self {
        Toeplitz { key }
    }

    /// Hash arbitrary input (for IPv4 2-tuple/4-tuple RSS the input is the
    /// big-endian concatenation of addresses and ports — see
    /// [`crate::flow::FiveTuple::rss_input`]).
    pub fn hash(&self, input: &[u8]) -> u32 {
        debug_assert!(input.len() <= 36, "input exceeds key window");
        let mut result = 0u32;
        // Sliding 32-bit window over the key, advanced one bit per input bit.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_key_bit = 32usize;
        for &byte in input {
            for bit in (0..8).rev() {
                if (byte >> bit) & 1 == 1 {
                    result ^= window;
                }
                // Shift the window left one bit, pulling in the next key bit.
                let next = if next_key_bit < 320 {
                    (self.key[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1
                } else {
                    0
                };
                window = (window << 1) | next as u32;
                next_key_bit += 1;
            }
        }
        result
    }

    /// Map a hash to one of `n_queues` via the indirection-table modulo
    /// (Intel NICs use a 128-entry indirection table initialized round-robin,
    /// which reduces to modulo for equal spreading).
    pub fn queue_for(&self, input: &[u8], n_queues: usize) -> usize {
        debug_assert!(n_queues > 0);
        (self.hash(input) as usize) % n_queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use std::net::Ipv4Addr;

    /// Microsoft RSS verification suite vectors (IPv4 with TCP ports),
    /// input layout: src ip, dst ip, src port, dst port — as produced by
    /// `FiveTuple::rss_input` (note: MS docs list dst before src for the
    /// "destination address first" convention; these vectors use the
    /// canonical src-first layout used by DPDK's softrss with reordered
    /// fields).
    fn ms_vector(dst: Ipv4Addr, dport: u16, src: Ipv4Addr, sport: u16) -> [u8; 12] {
        // Microsoft's published vectors concatenate (src, dst, sport, dport)?
        // The canonical published layout is (src ip, dst ip, src port,
        // dst port) where "source" is the packet's source. We build it
        // explicitly to keep the test self-describing.
        let t = FiveTuple::udp(src, sport, dst, dport);
        t.rss_input()
    }

    #[test]
    fn microsoft_published_vector_1() {
        // From the Windows RSS verification suite:
        // dst 161.142.100.80:1766, src 66.9.149.187:2794 -> 0x51ccc178
        let tz = Toeplitz::default();
        let input = ms_vector(
            Ipv4Addr::new(161, 142, 100, 80),
            1766,
            Ipv4Addr::new(66, 9, 149, 187),
            2794,
        );
        assert_eq!(tz.hash(&input), 0x51cc_c178);
    }

    #[test]
    fn microsoft_published_vector_2() {
        // dst 65.69.140.83:4739, src 199.92.111.2:14230 -> 0xc626b0ea
        let tz = Toeplitz::default();
        let input = ms_vector(
            Ipv4Addr::new(65, 69, 140, 83),
            4739,
            Ipv4Addr::new(199, 92, 111, 2),
            14230,
        );
        assert_eq!(tz.hash(&input), 0xc626_b0ea);
    }

    #[test]
    fn microsoft_published_vector_3() {
        // dst 12.22.207.184:38024, src 24.19.198.95:12898 -> 0x5c2b394a
        let tz = Toeplitz::default();
        let input = ms_vector(
            Ipv4Addr::new(12, 22, 207, 184),
            38024,
            Ipv4Addr::new(24, 19, 198, 95),
            12898,
        );
        assert_eq!(tz.hash(&input), 0x5c2b_394a);
    }

    #[test]
    fn ipv4_2tuple_vector() {
        // Address-only (2-tuple) vector: dst 161.142.100.80, src 66.9.149.187
        // -> 0x323e8fc2.
        let tz = Toeplitz::default();
        let mut input = [0u8; 8];
        input[0..4].copy_from_slice(&Ipv4Addr::new(66, 9, 149, 187).octets());
        input[4..8].copy_from_slice(&Ipv4Addr::new(161, 142, 100, 80).octets());
        assert_eq!(tz.hash(&input), 0x323e_8fc2);
    }

    #[test]
    fn deterministic_and_flow_stable() {
        let tz = Toeplitz::default();
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        assert_eq!(tz.hash(&t.rss_input()), tz.hash(&t.rss_input()));
    }

    #[test]
    fn symmetric_key_is_direction_invariant() {
        let tz = Toeplitz::with_key(SYMMETRIC_KEY);
        let t = FiveTuple::udp(
            Ipv4Addr::new(10, 1, 2, 3),
            1111,
            Ipv4Addr::new(10, 3, 2, 1),
            2222,
        );
        assert_eq!(tz.hash(&t.rss_input()), tz.hash(&t.reversed().rss_input()));
    }

    #[test]
    fn queue_mapping_in_range_and_spread() {
        let tz = Toeplitz::default();
        let n = 4;
        let mut counts = [0usize; 4];
        for i in 0..1000u32 {
            let t = FiveTuple::udp(
                Ipv4Addr::from(0x0a000000 + i),
                (1000 + i) as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            let q = tz.queue_for(&t.rss_input(), n);
            assert!(q < n);
            counts[q] += 1;
        }
        // Roughly equal spread: each queue within [150, 350] of the 250 mean.
        for (q, &c) in counts.iter().enumerate() {
            assert!((150..=350).contains(&c), "queue {q} got {c}/1000");
        }
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(Toeplitz::default().hash(&[]), 0);
    }
}
