//! Configuration for the operating-system model.
//!
//! Defaults reproduce the paper's testbed: a Linux 5.4 box with Intel Xeon
//! Silver cores at 2.1 GHz, CFS scheduling, and the `performance` or
//! `ondemand` cpufreq governors.

use metronome_sim::Nanos;

/// Which cpufreq governor drives core frequencies (paper §V-C/§V-F.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Governor {
    /// Pin every core at maximum frequency while executing.
    Performance,
    /// Sample utilization periodically; jump to max above the up-threshold,
    /// scale down proportionally below it.
    Ondemand,
}

/// CPU frequency plan: the ladder of P-states the governor picks from.
#[derive(Clone, Debug)]
pub struct FreqPlan {
    /// Available frequencies in MHz, ascending. The last entry is max.
    pub ladder_mhz: Vec<u32>,
}

impl Default for FreqPlan {
    fn default() -> Self {
        // Xeon Silver 4110-style ladder topping at the paper's 2.1 GHz.
        FreqPlan {
            ladder_mhz: vec![800, 1000, 1200, 1400, 1600, 1800, 2000, 2100],
        }
    }
}

impl FreqPlan {
    /// Maximum frequency.
    pub fn max_mhz(&self) -> u32 {
        *self.ladder_mhz.last().expect("empty ladder")
    }

    /// Minimum frequency.
    pub fn min_mhz(&self) -> u32 {
        self.ladder_mhz[0]
    }

    /// Smallest ladder frequency ≥ `target`, or max if none.
    pub fn step_at_least(&self, target_mhz: u32) -> u32 {
        for &f in &self.ladder_mhz {
            if f >= target_mhz {
                return f;
            }
        }
        self.max_mhz()
    }
}

/// CFS-like scheduler constants (Linux defaults for a small-core box).
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Target scheduling latency — a runnable task waits at most about this
    /// long under moderate load.
    pub sched_latency: Nanos,
    /// Minimum slice a running task keeps before tick preemption.
    pub min_granularity: Nanos,
    /// A waking task preempts the running one only if its vruntime is at
    /// least this far behind.
    pub wakeup_granularity: Nanos,
    /// Period of the scheduler tick while a core is contended.
    pub tick: Nanos,
    /// Multiplier applied to work executed while the core has more than one
    /// runnable thread — models cache/TLB thrash between co-scheduled
    /// hot threads (calibrated so static DPDK + ferret reproduce the paper's
    /// Fig. 12/Table II shapes; see DESIGN.md §3).
    pub contention_inflation: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            sched_latency: Nanos::from_millis(6),
            min_granularity: Nanos::from_micros(750),
            wakeup_granularity: Nanos::from_millis(1),
            tick: Nanos::from_millis(1),
            contention_inflation: 1.45,
        }
    }
}

/// Rare kernel-daemon interference: short bursts of highest-priority work
/// that delay everything on a core. This is what makes a few vacation
/// periods exceed `TL` in the paper's Fig. 4 ("actual CPU-reschedules after
/// a sleep period can occur after the maximum time delay TL, because of
/// CPU-scheduling decisions by the OS — for example favoring OS-kernel
/// demons").
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Mean interval between interference bursts per core (Poisson).
    /// `None` disables interference.
    pub mean_interval: Option<Nanos>,
    /// Log-normal parameters of the burst duration (of the underlying
    /// normal, in ln-nanoseconds).
    pub duration_mu_ln_ns: f64,
    /// Log-normal sigma.
    pub duration_sigma: f64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            // ~1 burst per second per core, ~15 µs median with a lognormal
            // tail: enough to put a visible but small beyond-TL tail in
            // Fig. 4 without causing measurable packet loss at line rate
            // (Table I reports exactly 0 loss at V̄ ≤ 10 µs).
            mean_interval: Some(Nanos::from_millis(800)),
            duration_mu_ln_ns: (15_000f64).ln(),
            duration_sigma: 0.45,
        }
    }
}

impl DaemonConfig {
    /// No interference at all (for clean calibration runs).
    pub fn disabled() -> Self {
        DaemonConfig {
            mean_interval: None,
            ..Default::default()
        }
    }
}

/// Package power model (RAPL-style accounting).
///
/// `P(t) = uncore + Σ_core p_core(t)` where a running core burns
/// `active_max · (f/f_max)^exp`, an idle core burns the C1 or C6 floor
/// depending on how long it has been idle, and every wake transition costs
/// a fixed energy. Calibrated against the paper's Fig. 11 envelope
/// (one busy-polling core ≈ 24 W package; max ondemand gain ≈ 27%).
#[derive(Clone, Debug)]
pub struct PowerConfig {
    /// Constant uncore/package floor in watts.
    pub uncore_watts: f64,
    /// Active power of one core at maximum frequency, watts.
    pub core_active_max_watts: f64,
    /// Exponent of the frequency-power curve (f·V² ≈ f^2.2–2.6).
    pub freq_exponent: f64,
    /// Power in the shallow C1 idle state, watts.
    pub c1_watts: f64,
    /// Power in the deep C6 idle state, watts.
    pub c6_watts: f64,
    /// Idle interval needed before the core drops from C1 to C6.
    pub c6_entry: Nanos,
    /// Energy cost of one sleep→run transition, joules.
    pub wake_energy_joules: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            uncore_watts: 15.0,
            core_active_max_watts: 4.6,
            freq_exponent: 2.4,
            c1_watts: 0.9,
            c6_watts: 0.35,
            c6_entry: Nanos::from_micros(200),
            wake_energy_joules: 1.0e-6,
        }
    }
}

/// Timer-slack handling for `nanosleep()` (paper §III-A): threads outside
/// the real-time class get a kernel-imposed slack unless `prctl()` lowers
/// it to the 1 µs floor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerSlack {
    /// `prctl(PR_SET_TIMERSLACK, 1)` — the best case the paper compares
    /// `hr_sleep()` against in Fig. 1.
    MinimalOneMicro,
    /// The default 50 µs slack of a non-RT thread.
    DefaultFifty,
}

/// Full OS model configuration.
#[derive(Clone, Debug)]
pub struct OsConfig {
    /// Number of CPU cores on the (isolated) NUMA node.
    pub n_cores: usize,
    /// Frequency plan shared by all cores.
    pub freq: FreqPlan,
    /// Governor choice.
    pub governor: Governor,
    /// Governor sampling period (Linux ondemand default: 10 ms).
    pub governor_sample: Nanos,
    /// Fraction of utilization above which ondemand jumps to max frequency.
    pub ondemand_up_threshold: f64,
    /// Scheduler constants.
    pub sched: SchedConfig,
    /// Kernel-daemon interference.
    pub daemon: DaemonConfig,
    /// Power model.
    pub power: PowerConfig,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            n_cores: 8,
            freq: FreqPlan::default(),
            governor: Governor::Performance,
            governor_sample: Nanos::from_millis(10),
            ondemand_up_threshold: 0.80,
            sched: SchedConfig::default(),
            daemon: DaemonConfig::default(),
            power: PowerConfig::default(),
        }
    }
}

/// Kernel nice→weight mapping (each nice step ≈ 1.25× CPU share, anchored
/// at 1024 for nice 0 — matches the kernel's `sched_prio_to_weight` to
/// within rounding).
pub fn nice_weight(nice: i8) -> f64 {
    debug_assert!((-20..=19).contains(&nice), "nice out of range");
    1024.0 * 1.25f64.powi(-(nice as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_weight_matches_kernel_anchors() {
        assert_eq!(nice_weight(0), 1024.0);
        // Kernel: nice -20 = 88761, nice 19 = 15.
        assert!((nice_weight(-20) - 88761.0).abs() / 88761.0 < 0.01);
        assert!((nice_weight(19) - 15.0).abs() < 0.5);
    }

    #[test]
    fn weight_monotone_in_priority() {
        let mut prev = f64::INFINITY;
        for nice in -20..=19 {
            let w = nice_weight(nice);
            assert!(w < prev);
            prev = w;
        }
    }

    #[test]
    fn freq_plan_steps() {
        let p = FreqPlan::default();
        assert_eq!(p.max_mhz(), 2100);
        assert_eq!(p.min_mhz(), 800);
        assert_eq!(p.step_at_least(900), 1000);
        assert_eq!(p.step_at_least(2100), 2100);
        assert_eq!(p.step_at_least(5000), 2100);
        assert_eq!(p.step_at_least(100), 800);
    }

    #[test]
    fn default_config_sane() {
        let c = OsConfig::default();
        assert!(c.n_cores >= 1);
        assert!(c.ondemand_up_threshold > 0.0 && c.ondemand_up_threshold <= 1.0);
        assert!(c.sched.contention_inflation >= 1.0);
        assert!(c.power.c6_watts < c.power.c1_watts);
        assert!(c.power.c1_watts < c.power.core_active_max_watts);
    }
}
