//! The OS executor: a preemptive, CFS-like scheduler over virtual time.
//!
//! Workloads (Metronome threads, static DPDK pollers, XDP NAPI loops, the
//! ferret co-tenant) are expressed as [`Behavior`] state machines. Each time
//! a thread holds a CPU with no pending work, the executor calls
//! [`Behavior::on_run`], which returns the next [`Action`]: burn cycles,
//! sleep through a timer service, wait for an exact instant (hardware
//! wake), or exit. The executor handles everything the kernel would:
//!
//! * **Fair scheduling** — per-core weighted vruntime (nice → weight via
//!   the kernel's 1.25×/step rule), minimum-granularity timeslices under
//!   contention, and wakeup preemption with sleeper fairness. These are the
//!   mechanics behind the paper's CPU-sharing results (§V-E): a waking
//!   Metronome thread preempts a CPU-hog immediately, while two
//!   continuously-busy threads converge to a 50/50 split.
//! * **Sleep services** — wake times drawn from the calibrated
//!   [`SleepModel`] (Fig. 1).
//! * **Contention inflation** — co-scheduled hot threads dilate each
//!   other's work (cache/TLB thrash), the effect that makes `l3fwd` top out
//!   near half line rate when sharing its core with `ferret`.
//! * **Kernel-daemon interference** — rare high-priority bursts that delay
//!   dispatch, producing the small beyond-`TL` tail in Fig. 4.
//! * **Frequency governors** — `performance` pins max frequency;
//!   `ondemand` samples per-core utilization every 10 ms and rescales, so
//!   sleep&wake workloads trade extra CPU time for package power (Fig. 11).
//! * **Power accounting** — every active/idle/wake interval feeds the
//!   [`PowerMeter`].

use crate::config::{Governor, OsConfig};
use crate::power::PowerMeter;
use crate::sleep::{SleepModel, SleepService};
use metronome_sim::{Cycles, EventId, EventQueue, Nanos, Rng};

/// Thread identifier (dense index).
pub type ThreadId = usize;
/// Core identifier (dense index).
pub type CoreId = usize;

/// What a thread does next, returned by [`Behavior::on_run`].
#[derive(Clone, Copy, Debug)]
pub enum Action {
    /// Execute this many CPU cycles, then run again.
    Work(Cycles),
    /// Sleep through a timer service for (at least) `duration`.
    Sleep {
        /// Which sleep primitive to use (affects oversleep and cost).
        service: SleepService,
        /// Requested sleep length.
        duration: Nanos,
    },
    /// Leave the CPU until exactly the given absolute instant (hardware
    /// wake: IRQ delivery, device doorbell). No oversleep model applies.
    WaitUntil(Nanos),
    /// Terminate the thread.
    Exit,
}

/// Context handed to a behavior while it holds the CPU.
pub struct RunCtx<'a> {
    /// Current virtual time.
    pub now: Nanos,
    /// The thread being run.
    pub thread: ThreadId,
    /// The core it runs on.
    pub core: CoreId,
    /// The core's current frequency in MHz.
    pub freq_mhz: u32,
    /// The thread's private RNG stream.
    pub rng: &'a mut Rng,
    /// The sleep cost model (for charging syscall cycles explicitly).
    pub sleep_model: &'a SleepModel,
}

/// A thread body: a resumable state machine.
pub trait Behavior<W> {
    /// Called whenever the thread is dispatched with no residual work.
    /// Mutate the shared `world`, then say what to do next.
    fn on_run(&mut self, world: &mut W, ctx: &mut RunCtx<'_>) -> Action;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Running,
    Sleeping,
    Exited,
}

struct Tcb {
    name: String,
    core: CoreId,
    weight: f64,
    state: ThreadState,
    vruntime: f64, // in weighted nanoseconds
    run_start: Nanos,
    run_rate: f64, // cycles per nanosecond at last dispatch
    run_freq: u32, // MHz at last dispatch (for power accounting)
    work_remaining: Cycles,
    work_event: EventId,
    cpu_time: Nanos,
    wakeups: u64,
    rng: Rng,
}

struct CoreState {
    running: Option<ThreadId>,
    runnable: Vec<ThreadId>,
    freq_mhz: u32,
    min_vruntime: f64,
    idle_since: Option<Nanos>,
    daemon_until: Nanos,
    daemon_started: Nanos,
    tick_event: EventId,
    window_busy: Nanos, // busy time within the current governor window
}

#[derive(Clone, Copy, Debug)]
enum OsEvent {
    TimerFire(ThreadId),
    WorkDone(ThreadId),
    SchedTick(CoreId),
    GovernorSample,
    DaemonStart(CoreId),
    DaemonEnd(CoreId),
}

/// The OS simulator. Generic over the shared `world` the behaviors mutate.
pub struct OsSim<W> {
    cfg: OsConfig,
    queue: EventQueue<OsEvent>,
    cores: Vec<CoreState>,
    threads: Vec<Tcb>,
    behaviors: Vec<Option<Box<dyn Behavior<W>>>>,
    sleep_model: SleepModel,
    power: PowerMeter,
    daemon_rng: Rng,
    master_rng: Rng,
    started: bool,
}

const NICE0_WEIGHT: f64 = 1024.0;

impl<W> OsSim<W> {
    /// Build an OS with the given configuration and master seed.
    pub fn new(cfg: OsConfig, seed: u64) -> Self {
        let max = cfg.freq.max_mhz();
        let power = PowerMeter::new(cfg.power.clone(), cfg.n_cores, max);
        let master = Rng::new(seed);
        let cores = (0..cfg.n_cores)
            .map(|_| CoreState {
                running: None,
                runnable: Vec::new(),
                freq_mhz: max,
                min_vruntime: 0.0,
                idle_since: Some(Nanos::ZERO),
                daemon_until: Nanos::ZERO,
                daemon_started: Nanos::ZERO,
                tick_event: EventId::NONE,
                window_busy: Nanos::ZERO,
            })
            .collect();
        OsSim {
            cfg,
            queue: EventQueue::new(),
            cores,
            threads: Vec::new(),
            behaviors: Vec::new(),
            sleep_model: SleepModel::default(),
            power,
            daemon_rng: master.stream(u64::MAX),
            master_rng: master,
            started: false,
        }
    }

    /// Override the sleep service model (ablations).
    pub fn set_sleep_model(&mut self, model: SleepModel) {
        self.sleep_model = model;
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// The configuration this OS was built with.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Create a thread pinned to `core` with the given nice level.
    /// Threads start runnable at time zero.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        core: CoreId,
        nice: i8,
        behavior: Box<dyn Behavior<W>>,
    ) -> ThreadId {
        assert!(core < self.cfg.n_cores, "core out of range");
        assert!(!self.started, "spawn before run_until");
        let id = self.threads.len();
        let rng = self.master_rng.stream(id as u64 ^ 0x5EED_0000);
        self.threads.push(Tcb {
            name: name.into(),
            core,
            weight: crate::config::nice_weight(nice),
            state: ThreadState::Runnable,
            vruntime: 0.0,
            run_start: Nanos::ZERO,
            run_rate: 0.0,
            run_freq: 0,
            work_remaining: Cycles::ZERO,
            work_event: EventId::NONE,
            cpu_time: Nanos::ZERO,
            wakeups: 0,
            rng,
        });
        self.behaviors.push(Some(behavior));
        self.cores[core].runnable.push(id);
        id
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Governor sampling (only meaningful for ondemand, but the window
        // bookkeeping is shared).
        self.queue
            .schedule(self.cfg.governor_sample, OsEvent::GovernorSample);
        // Daemon interference per core.
        if let Some(mean) = self.cfg.daemon.mean_interval {
            for c in 0..self.cfg.n_cores {
                let gap = Nanos::from_secs_f64(self.daemon_rng.exp(mean.as_secs_f64()));
                self.queue.schedule(gap, OsEvent::DaemonStart(c));
            }
        }
    }

    /// Run the simulation until `t_end`, then close accounting at `t_end`.
    /// May be called repeatedly with increasing horizons.
    pub fn run_until(&mut self, world: &mut W, t_end: Nanos) {
        self.start();
        self.settle(world);
        while let Some(t) = self.queue.peek_time() {
            if t > t_end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.handle(world, now, ev);
            self.settle(world);
        }
        self.close_out(t_end);
    }

    // ----- event handling -------------------------------------------------

    fn handle(&mut self, world: &mut W, now: Nanos, ev: OsEvent) {
        match ev {
            OsEvent::TimerFire(tid) => self.on_wake(now, tid),
            OsEvent::WorkDone(tid) => {
                let core = self.threads[tid].core;
                debug_assert_eq!(self.cores[core].running, Some(tid));
                self.charge_running(core, now);
                self.threads[tid].work_event = EventId::NONE;
                self.threads[tid].work_remaining = Cycles::ZERO;
                self.behavior_turn(world, now, tid);
            }
            OsEvent::SchedTick(core) => self.on_tick(now, core),
            OsEvent::GovernorSample => self.on_governor(now),
            OsEvent::DaemonStart(core) => self.on_daemon_start(now, core),
            OsEvent::DaemonEnd(core) => self.on_daemon_end(now, core),
        }
    }

    /// Dispatch every idle core that has runnable work; loop to a fixed
    /// point (a dispatched behavior may immediately sleep, freeing the core
    /// for the next waiter).
    fn settle(&mut self, world: &mut W) {
        let now = self.queue.now();
        loop {
            let mut progressed = false;
            for core in 0..self.cores.len() {
                if self.cores[core].running.is_none()
                    && self.cores[core].daemon_until <= now
                    && !self.cores[core].runnable.is_empty()
                {
                    self.dispatch(world, now, core);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn pick_next(&self, core: CoreId) -> Option<ThreadId> {
        self.cores[core].runnable.iter().copied().min_by(|&a, &b| {
            self.threads[a]
                .vruntime
                .partial_cmp(&self.threads[b].vruntime)
                .expect("vruntime NaN")
                .then(a.cmp(&b))
        })
    }

    fn cycles_per_ns(&self, core: CoreId) -> f64 {
        let c = &self.cores[core];
        let base = c.freq_mhz as f64 / 1000.0;
        // Contended core: co-scheduled hot threads thrash caches; work takes
        // `contention_inflation` times longer.
        if c.runnable.is_empty() {
            base
        } else {
            base / self.cfg.sched.contention_inflation
        }
    }

    fn dispatch(&mut self, world: &mut W, now: Nanos, core: CoreId) {
        let tid = self.pick_next(core).expect("dispatch on empty runqueue");
        let c = &mut self.cores[core];
        c.runnable.retain(|&t| t != tid);
        // Close the idle interval (power) — this is a hardware wake.
        let freq_now = c.freq_mhz;
        if let Some(idle_from) = c.idle_since.take() {
            let idle_dur = now.saturating_sub(idle_from);
            self.power.charge_idle(core, idle_dur, freq_now);
            self.power.charge_wake(core);
        }
        c.running = Some(tid);
        let rate = self.cycles_per_ns(core);
        let freq = self.cores[core].freq_mhz;
        let t = &mut self.threads[tid];
        t.state = ThreadState::Running;
        t.run_start = now;
        t.run_rate = rate;
        t.run_freq = freq;
        self.ensure_tick(now, core);
        if self.threads[tid].work_remaining.0 > 0 {
            self.schedule_work(now, tid);
        } else {
            self.behavior_turn(world, now, tid);
        }
    }

    /// Invoke the behavior of a thread that is Running with no residual
    /// work, and apply the action it returns.
    fn behavior_turn(&mut self, world: &mut W, now: Nanos, tid: ThreadId) {
        let core = self.threads[tid].core;
        debug_assert_eq!(self.cores[core].running, Some(tid));
        let mut behavior = self.behaviors[tid].take().expect("behavior re-entry");
        let action = {
            let mut ctx = RunCtx {
                now,
                thread: tid,
                core,
                freq_mhz: self.cores[core].freq_mhz,
                rng: &mut self.threads[tid].rng,
                sleep_model: &self.sleep_model,
            };
            behavior.on_run(world, &mut ctx)
        };
        self.behaviors[tid] = Some(behavior);
        match action {
            Action::Work(c) => {
                self.threads[tid].work_remaining = Cycles(c.0.max(1));
                // Re-read rate in case contention changed since dispatch.
                self.threads[tid].run_rate = self.cycles_per_ns(core);
                self.threads[tid].run_start = now;
                self.threads[tid].run_freq = self.cores[core].freq_mhz;
                self.schedule_work(now, tid);
            }
            Action::Sleep { service, duration } => {
                let actual = {
                    let t = &mut self.threads[tid];
                    self.sleep_model.actual_sleep(service, duration, &mut t.rng)
                };
                self.put_to_sleep(now, tid, now.saturating_add(actual));
            }
            Action::WaitUntil(at) => {
                self.put_to_sleep(now, tid, at.max(now));
            }
            Action::Exit => {
                let t = &mut self.threads[tid];
                t.state = ThreadState::Exited;
                self.cores[core].running = None;
                self.core_maybe_idle(now, core);
            }
        }
    }

    fn put_to_sleep(&mut self, now: Nanos, tid: ThreadId, wake_at: Nanos) {
        let core = self.threads[tid].core;
        let t = &mut self.threads[tid];
        t.state = ThreadState::Sleeping;
        self.queue.schedule(wake_at, OsEvent::TimerFire(tid));
        self.cores[core].running = None;
        self.core_maybe_idle(now, core);
    }

    fn core_maybe_idle(&mut self, now: Nanos, core: CoreId) {
        let c = &mut self.cores[core];
        if c.running.is_none() && c.runnable.is_empty() && c.daemon_until <= now {
            c.idle_since = Some(now);
            if !c.tick_event.is_none() {
                self.queue.cancel(c.tick_event);
                c.tick_event = EventId::NONE;
            }
        }
    }

    fn schedule_work(&mut self, now: Nanos, tid: ThreadId) {
        let t = &mut self.threads[tid];
        debug_assert!(t.work_remaining.0 > 0);
        let dur_ns = (t.work_remaining.0 as f64 / t.run_rate).ceil() as u64;
        t.work_event = self
            .queue
            .schedule(now.saturating_add(Nanos(dur_ns)), OsEvent::WorkDone(tid));
    }

    /// Account the running thread's progress up to `now`: CPU time,
    /// vruntime, power, residual work, governor window.
    fn charge_running(&mut self, core: CoreId, now: Nanos) {
        let Some(tid) = self.cores[core].running else {
            return;
        };
        let t = &mut self.threads[tid];
        let elapsed = now.saturating_sub(t.run_start);
        if elapsed.is_zero() {
            return;
        }
        let consumed = Cycles((elapsed.as_nanos() as f64 * t.run_rate).round() as u64);
        t.work_remaining = t.work_remaining.saturating_sub(consumed);
        t.cpu_time += elapsed;
        t.vruntime += elapsed.as_nanos() as f64 * (NICE0_WEIGHT / t.weight);
        t.run_start = now;
        let vr = t.vruntime;
        let freq = t.run_freq;
        self.power.charge_active(core, elapsed, freq);
        let queue_min = self.runnable_min_vr(core).unwrap_or(vr);
        let c = &mut self.cores[core];
        c.window_busy += elapsed;
        c.min_vruntime = c.min_vruntime.max(vr.min(queue_min));
    }

    fn runnable_min_vr(&self, core: CoreId) -> Option<f64> {
        self.cores[core]
            .runnable
            .iter()
            .map(|&t| self.threads[t].vruntime)
            .min_by(|a, b| a.partial_cmp(b).expect("NaN vruntime"))
    }

    /// Preempt the running thread (requeue it) after charging.
    fn preempt(&mut self, core: CoreId, now: Nanos) {
        let Some(tid) = self.cores[core].running else {
            return;
        };
        self.charge_running(core, now);
        let t = &mut self.threads[tid];
        if !t.work_event.is_none() {
            self.queue.cancel(t.work_event);
            t.work_event = EventId::NONE;
        }
        t.state = ThreadState::Runnable;
        self.cores[core].running = None;
        self.cores[core].runnable.push(tid);
    }

    /// Cancel and re-plan the running thread's work completion (frequency or
    /// contention changed).
    fn retime_running(&mut self, core: CoreId, now: Nanos) {
        let Some(tid) = self.cores[core].running else {
            return;
        };
        self.charge_running(core, now);
        let t = &self.threads[tid];
        if t.work_event.is_none() {
            return; // mid-behavior; nothing scheduled yet
        }
        if t.work_remaining.0 == 0 {
            // Completion is imminent (event at ~now); leave it be.
            return;
        }
        let ev = t.work_event;
        self.queue.cancel(ev);
        let rate = self.cycles_per_ns(core);
        let freq = self.cores[core].freq_mhz;
        let t = &mut self.threads[tid];
        t.run_rate = rate;
        t.run_freq = freq;
        self.schedule_work(now, tid);
    }

    fn on_wake(&mut self, now: Nanos, tid: ThreadId) {
        let t = &self.threads[tid];
        debug_assert_eq!(t.state, ThreadState::Sleeping);
        let core = t.core;
        // Sleeper fairness: a long sleeper resumes just behind the pack, so
        // it preempts promptly without hoarding unbounded credit.
        let bonus = self.cfg.sched.sched_latency.as_nanos() as f64 / 2.0;
        let floor = self.cores[core].min_vruntime - bonus;
        let t = &mut self.threads[tid];
        t.vruntime = t.vruntime.max(floor);
        t.state = ThreadState::Runnable;
        t.wakeups += 1;
        let new_vr = t.vruntime;
        self.cores[core].runnable.push(tid);
        self.ensure_tick(now, core);
        if self.cores[core].daemon_until > now {
            return; // daemon owns the core; dispatch happens at DaemonEnd
        }
        if let Some(running) = self.cores[core].running {
            // Wakeup preemption: compare vruntimes with the granularity
            // scaled by the woken thread's weight (kernel wakeup_gran()).
            self.charge_running(core, now);
            let gran = self.cfg.sched.wakeup_granularity.as_nanos() as f64 * NICE0_WEIGHT
                / self.threads[tid].weight;
            if new_vr + gran < self.threads[running].vruntime {
                self.preempt(core, now);
            } else {
                // No preemption, but the core just became (more) contended:
                // re-time the running work under inflation.
                self.retime_running(core, now);
            }
        }
        // settle() dispatches if the core is free.
    }

    fn ensure_tick(&mut self, now: Nanos, core: CoreId) {
        let contended = self.cores[core].running.is_some() && !self.cores[core].runnable.is_empty();
        let has_tick = !self.cores[core].tick_event.is_none();
        if contended && !has_tick {
            self.cores[core].tick_event = self.queue.schedule(
                now.saturating_add(self.cfg.sched.tick),
                OsEvent::SchedTick(core),
            );
        }
    }

    fn on_tick(&mut self, now: Nanos, core: CoreId) {
        self.cores[core].tick_event = EventId::NONE;
        let Some(running) = self.cores[core].running else {
            return;
        };
        if self.cores[core].runnable.is_empty() {
            return;
        }
        self.charge_running(core, now);
        let ran_for = now.saturating_sub(self.threads[running].run_start);
        // We just charged, so run_start == now; use cpu-time delta instead:
        let _ = ran_for;
        let waiter_vr = self.runnable_min_vr(core).expect("contended");
        if waiter_vr < self.threads[running].vruntime {
            self.preempt(core, now);
        }
        // Reschedule while contention persists (after a possible dispatch
        // by settle()).
        self.ensure_tick(now, core);
    }

    fn on_governor(&mut self, now: Nanos) {
        let window = self.cfg.governor_sample;
        for core in 0..self.cores.len() {
            // Close the running segment so the window is exact.
            self.charge_running(core, now);
            let busy = self.cores[core].window_busy;
            self.cores[core].window_busy = Nanos::ZERO;
            if self.cfg.governor == Governor::Ondemand {
                let util = (busy / window).min(1.0);
                let max = self.cfg.freq.max_mhz();
                let new = if util >= self.cfg.ondemand_up_threshold {
                    max
                } else {
                    let target = (max as f64 * util / self.cfg.ondemand_up_threshold) as u32;
                    self.cfg
                        .freq
                        .step_at_least(target.max(self.cfg.freq.min_mhz()))
                };
                if new != self.cores[core].freq_mhz {
                    self.cores[core].freq_mhz = new;
                    self.retime_running(core, now);
                }
            }
        }
        self.queue
            .schedule(now + self.cfg.governor_sample, OsEvent::GovernorSample);
    }

    fn on_daemon_start(&mut self, now: Nanos, core: CoreId) {
        let dur = Nanos::from_secs_f64(
            self.daemon_rng.log_normal(
                self.cfg.daemon.duration_mu_ln_ns,
                self.cfg.daemon.duration_sigma,
            ) * 1e-9,
        );
        // Preempt whatever runs; the daemon is highest priority.
        self.preempt(core, now);
        if let Some(idle_from) = self.cores[core].idle_since.take() {
            let f = self.cores[core].freq_mhz;
            self.power
                .charge_idle(core, now.saturating_sub(idle_from), f);
            self.power.charge_wake(core);
        }
        self.cores[core].daemon_until = now.saturating_add(dur);
        self.cores[core].daemon_started = now;
        self.queue
            .schedule(self.cores[core].daemon_until, OsEvent::DaemonEnd(core));
        // Next interference burst.
        if let Some(mean) = self.cfg.daemon.mean_interval {
            let gap = Nanos::from_secs_f64(self.daemon_rng.exp(mean.as_secs_f64()));
            self.queue.schedule(
                self.cores[core].daemon_until.saturating_add(gap),
                OsEvent::DaemonStart(core),
            );
        }
    }

    fn on_daemon_end(&mut self, now: Nanos, core: CoreId) {
        let started = self.cores[core].daemon_started;
        let dur = now.saturating_sub(started);
        let freq = self.cores[core].freq_mhz;
        self.power.charge_active(core, dur, freq);
        self.cores[core].window_busy += dur;
        self.cores[core].daemon_until = Nanos::ZERO;
        self.core_maybe_idle(now, core);
        // settle() re-dispatches.
    }

    /// Close all accounting at `t_end` without disturbing scheduled events.
    fn close_out(&mut self, t_end: Nanos) {
        for core in 0..self.cores.len() {
            self.charge_running(core, t_end);
            if let Some(idle_from) = self.cores[core].idle_since {
                let f = self.cores[core].freq_mhz;
                self.power
                    .charge_idle(core, t_end.saturating_sub(idle_from), f);
                self.cores[core].idle_since = Some(t_end);
            }
        }
    }

    // ----- metrics ---------------------------------------------------------

    /// Accumulated on-CPU time of a thread (getrusage-style).
    pub fn thread_cpu(&self, tid: ThreadId) -> Nanos {
        self.threads[tid].cpu_time
    }

    /// Number of sleep→runnable transitions of a thread.
    pub fn thread_wakeups(&self, tid: ThreadId) -> u64 {
        self.threads[tid].wakeups
    }

    /// Thread name.
    pub fn thread_name(&self, tid: ThreadId) -> &str {
        &self.threads[tid].name
    }

    /// True if the thread has exited.
    pub fn thread_exited(&self, tid: ThreadId) -> bool {
        self.threads[tid].state == ThreadState::Exited
    }

    /// Total busy time of a core so far.
    pub fn core_active_time(&self, core: CoreId) -> Nanos {
        self.power.active_time(core)
    }

    /// Current frequency of a core in MHz.
    pub fn core_freq(&self, core: CoreId) -> u32 {
        self.cores[core].freq_mhz
    }

    /// Average package power over the first `elapsed` of the run, watts.
    pub fn package_watts(&self, elapsed: Nanos) -> f64 {
        self.power.package_watts(elapsed)
    }

    /// Package energy in joules over `elapsed`.
    pub fn package_energy(&self, elapsed: Nanos) -> f64 {
        self.power.package_energy(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DaemonConfig, OsConfig};
    use crate::sleep::SleepModel;

    /// A behavior scripted from a queue of actions.
    struct Scripted {
        actions: Vec<Action>,
        /// (time, event marker) log shared with the test.
        log: std::rc::Rc<std::cell::RefCell<Vec<Nanos>>>,
    }

    impl Behavior<()> for Scripted {
        fn on_run(&mut self, _w: &mut (), ctx: &mut RunCtx<'_>) -> Action {
            self.log.borrow_mut().push(ctx.now);
            if self.actions.is_empty() {
                Action::Exit
            } else {
                self.actions.remove(0)
            }
        }
    }

    fn quiet_cfg(n_cores: usize) -> OsConfig {
        OsConfig {
            n_cores,
            daemon: DaemonConfig::disabled(),
            ..OsConfig::default()
        }
    }

    fn rc_log() -> std::rc::Rc<std::cell::RefCell<Vec<Nanos>>> {
        std::rc::Rc::new(std::cell::RefCell::new(Vec::new()))
    }

    #[test]
    fn work_charges_cpu_time() {
        let mut os = OsSim::new(quiet_cfg(1), 1);
        let log = rc_log();
        // 2.1e6 cycles at 2100 MHz = exactly 1 ms.
        let tid = os.spawn(
            "worker",
            0,
            0,
            Box::new(Scripted {
                actions: vec![Action::Work(Cycles(2_100_000))],
                log: log.clone(),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        assert_eq!(os.thread_cpu(tid), Nanos::from_millis(1));
        assert!(os.thread_exited(tid));
        // on_run called twice: initial + after work.
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn sleep_wakes_with_calibrated_oversleep() {
        let mut os = OsSim::new(quiet_cfg(1), 2);
        os.set_sleep_model(SleepModel::idle_calibration());
        let log = rc_log();
        os.spawn(
            "sleeper",
            0,
            0,
            Box::new(Scripted {
                actions: vec![Action::Sleep {
                    service: SleepService::HrSleep,
                    duration: Nanos::from_micros(10),
                }],
                log: log.clone(),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        let woke = (log[1] - log[0]).as_micros_f64();
        assert!(
            (woke - 13.46).abs() < 0.5,
            "10µs hr_sleep resumed after {woke}µs"
        );
    }

    #[test]
    fn wait_until_is_exact() {
        let mut os = OsSim::new(quiet_cfg(1), 3);
        let log = rc_log();
        os.spawn(
            "irq",
            0,
            0,
            Box::new(Scripted {
                actions: vec![Action::WaitUntil(Nanos::from_micros(500))],
                log: log.clone(),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        assert_eq!(log.borrow()[1], Nanos::from_micros(500));
    }

    /// Busy-forever behavior in fixed chunks.
    struct Hog {
        chunk: Cycles,
    }
    impl Behavior<()> for Hog {
        fn on_run(&mut self, _w: &mut (), _ctx: &mut RunCtx<'_>) -> Action {
            Action::Work(self.chunk)
        }
    }

    #[test]
    fn equal_weights_share_fairly() {
        let mut cfg = quiet_cfg(1);
        cfg.sched.contention_inflation = 1.0; // pure share test
        let mut os = OsSim::new(cfg, 4);
        let a = os.spawn(
            "a",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        let b = os.spawn(
            "b",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        let ca = os.thread_cpu(a).as_secs_f64();
        let cb = os.thread_cpu(b).as_secs_f64();
        assert!(
            (ca + cb - 1.0).abs() < 0.01,
            "core not fully used: {}",
            ca + cb
        );
        assert!((ca - cb).abs() < 0.05, "unfair split {ca} vs {cb}");
    }

    #[test]
    fn nice_minus20_starves_nice19() {
        let mut cfg = quiet_cfg(1);
        cfg.sched.contention_inflation = 1.0;
        let mut os = OsSim::new(cfg, 5);
        let hi = os.spawn(
            "hi",
            0,
            -20,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        let lo = os.spawn(
            "lo",
            0,
            19,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        let chi = os.thread_cpu(hi).as_secs_f64();
        let clo = os.thread_cpu(lo).as_secs_f64();
        assert!(chi > 0.98, "high-priority got only {chi}");
        assert!(clo < 0.02, "low-priority got {clo}");
    }

    #[test]
    fn contention_inflation_stretches_work() {
        // Two hogs with inflation 2.0 on one core: each finishes half as
        // much work per second of CPU, i.e. a fixed job takes 4x wall time.
        let mut cfg = quiet_cfg(1);
        cfg.sched.contention_inflation = 2.0;
        let mut os = OsSim::new(cfg, 6);
        let log_a = rc_log();
        // 1.05e9 cycles = 500 ms alone.
        os.spawn(
            "a",
            0,
            0,
            Box::new(Scripted {
                actions: vec![Action::Work(Cycles(1_050_000_000))],
                log: log_a.clone(),
            }),
        );
        os.spawn(
            "b",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(2_100_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(5));
        let log = log_a.borrow();
        assert_eq!(log.len(), 2, "job did not finish");
        let wall = (log[1] - log[0]).as_secs_f64();
        // Alone: 0.5 s. Shared 50/50 with 2x inflation: ≈2 s.
        assert!((wall - 2.0).abs() < 0.2, "job took {wall}s, expected ≈2s");
    }

    /// Sleeps then records wake latency while a hog occupies the core.
    struct LatencyProbe {
        sleeps_left: u32,
        asked_at: Nanos,
        waits: std::rc::Rc<std::cell::RefCell<Vec<f64>>>,
    }
    impl Behavior<()> for LatencyProbe {
        fn on_run(&mut self, _w: &mut (), ctx: &mut RunCtx<'_>) -> Action {
            if self.asked_at > Nanos::ZERO {
                let waited = (ctx.now - self.asked_at).as_micros_f64();
                self.waits.borrow_mut().push(waited);
            }
            if self.sleeps_left == 0 {
                return Action::Exit;
            }
            self.sleeps_left -= 1;
            self.asked_at = ctx.now;
            Action::Sleep {
                service: SleepService::HrSleep,
                duration: Nanos::from_micros(50),
            }
        }
    }

    #[test]
    fn waking_high_priority_preempts_hog_quickly() {
        // The §V-E mechanism: a nice -20 Metronome thread sharing a core
        // with a nice 19 hog must regain the CPU right after its timeout.
        let mut os = OsSim::new(quiet_cfg(1), 7);
        let waits = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        os.spawn(
            "metronome",
            0,
            -20,
            Box::new(LatencyProbe {
                sleeps_left: 200,
                asked_at: Nanos::ZERO,
                waits: waits.clone(),
            }),
        );
        os.spawn(
            "ferret",
            0,
            19,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        let waits = waits.borrow();
        assert!(waits.len() >= 150, "probe starved: {} wakes", waits.len());
        let mean: f64 = waits.iter().sum::<f64>() / waits.len() as f64;
        // 50 µs request + ~5.6 µs oversleep; preemption adds only the
        // sub-µs dispatch, no full timeslices.
        assert!(
            (mean - 55.6).abs() < 2.0,
            "mean resume latency {mean}µs — hog not preempted promptly"
        );
    }

    #[test]
    fn tick_preemption_respects_min_granularity() {
        // Two equal hogs: context switches happen at tick boundaries, so
        // each runs at least min_granularity per slice.
        let mut cfg = quiet_cfg(1);
        cfg.sched.contention_inflation = 1.0;
        let mut os = OsSim::new(cfg, 8);
        let a = os.spawn(
            "a",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(21_000),
            }),
        ); // 10µs chunks
        let _b = os.spawn(
            "b",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(21_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_millis(100));
        // With 1 ms ticks over 100 ms shared between 2 threads, thread a
        // gets ≈50 ms ± one slice.
        let ca = os.thread_cpu(a).as_millis_f64();
        assert!((ca - 50.0).abs() < 3.0, "thread a got {ca}ms");
    }

    #[test]
    fn daemon_interference_delays_dispatch() {
        let mut cfg = quiet_cfg(1);
        // Aggressive daemon: every ~2 ms, ~400 µs bursts.
        cfg.daemon = DaemonConfig {
            mean_interval: Some(Nanos::from_millis(2)),
            duration_mu_ln_ns: (400_000f64).ln(),
            duration_sigma: 0.1,
        };
        let mut os = OsSim::new(cfg, 9);
        let waits = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        os.spawn(
            "sleeper",
            0,
            0,
            Box::new(LatencyProbe {
                sleeps_left: 500,
                asked_at: Nanos::ZERO,
                waits: waits.clone(),
            }),
        );
        os.run_until(&mut (), Nanos::from_secs(1));
        let waits = waits.borrow();
        let max = waits.iter().cloned().fold(0.0, f64::max);
        // Some wake must have landed inside a daemon burst and waited
        // noticeably longer than the 50µs+oversleep baseline.
        assert!(
            max > 150.0,
            "max resume latency {max}µs — no interference seen"
        );
    }

    #[test]
    fn ondemand_lowers_frequency_when_mostly_idle() {
        let mut cfg = quiet_cfg(2);
        cfg.governor = Governor::Ondemand;
        let mut os = OsSim::new(cfg, 10);
        // Core 0: hog at 100% util. Core 1: idle (no thread).
        os.spawn(
            "hog",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_millis(100));
        assert_eq!(os.core_freq(0), 2100, "busy core must be at max");
        assert_eq!(os.core_freq(1), 800, "idle core must be at min");
    }

    #[test]
    fn ondemand_saves_power_for_light_load() {
        // ~10% duty cycle: work 100 µs, sleep 900 µs, scripted.
        fn duty_actions(n: usize, freq_scale: u64) -> Vec<Action> {
            let mut v = Vec::new();
            for _ in 0..n {
                v.push(Action::Work(Cycles(210_000 * freq_scale / 1000))); // 100µs at 2.1GHz
                v.push(Action::Sleep {
                    service: SleepService::HrSleep,
                    duration: Nanos::from_micros(900),
                });
            }
            v
        }
        let run = |gov: Governor| -> f64 {
            let mut cfg = quiet_cfg(1);
            cfg.governor = gov;
            let mut os = OsSim::new(cfg, 11);
            let log = rc_log();
            os.spawn(
                "duty",
                0,
                0,
                Box::new(Scripted {
                    actions: duty_actions(900, 1000),
                    log,
                }),
            );
            os.run_until(&mut (), Nanos::from_secs(1));
            os.package_watts(Nanos::from_secs(1))
        };
        let perf = run(Governor::Performance);
        let onde = run(Governor::Ondemand);
        assert!(
            onde < perf,
            "ondemand {onde}W must undercut performance {perf}W at light load"
        );
    }

    #[test]
    fn cpu_time_conserved() {
        let mut cfg = quiet_cfg(2);
        cfg.sched.contention_inflation = 1.0;
        let mut os = OsSim::new(cfg, 12);
        let t0 = os.spawn(
            "a",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        let t1 = os.spawn(
            "b",
            0,
            5,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        let t2 = os.spawn(
            "c",
            1,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        let horizon = Nanos::from_millis(500);
        os.run_until(&mut (), horizon);
        let total = os.thread_cpu(t0) + os.thread_cpu(t1) + os.thread_cpu(t2);
        // Two cores, fully busy: total CPU ≈ 2 × wall.
        let expect = horizon.as_secs_f64() * 2.0;
        assert!(
            (total.as_secs_f64() - expect).abs() < 0.01,
            "conservation violated: {} vs {expect}",
            total.as_secs_f64()
        );
        // Never more than cores × wall.
        assert!(total.as_secs_f64() <= expect + 1e-9);
    }

    #[test]
    fn run_until_is_resumable() {
        let mut os = OsSim::new(quiet_cfg(1), 13);
        let t = os.spawn(
            "hog",
            0,
            0,
            Box::new(Hog {
                chunk: Cycles(210_000),
            }),
        );
        os.run_until(&mut (), Nanos::from_millis(10));
        let mid = os.thread_cpu(t);
        os.run_until(&mut (), Nanos::from_millis(20));
        let end = os.thread_cpu(t);
        assert!((mid.as_millis_f64() - 10.0).abs() < 0.2);
        assert!((end.as_millis_f64() - 20.0).abs() < 0.2);
    }

    #[test]
    fn busy_poll_burns_more_package_power_than_sleep_wake() {
        // Fig. 11's core claim at zero traffic.
        let run = |sleepy: bool| -> f64 {
            let mut os = OsSim::new(quiet_cfg(1), 14);
            let log = rc_log();
            if sleepy {
                let mut acts = Vec::new();
                for _ in 0..2_000 {
                    acts.push(Action::Work(Cycles(4_000))); // ~2µs wake work
                    acts.push(Action::Sleep {
                        service: SleepService::HrSleep,
                        duration: Nanos::from_micros(300),
                    });
                }
                os.spawn(
                    "metronome-ish",
                    0,
                    0,
                    Box::new(Scripted { actions: acts, log }),
                );
            } else {
                os.spawn(
                    "poll",
                    0,
                    0,
                    Box::new(Hog {
                        chunk: Cycles(210_000),
                    }),
                );
            }
            os.run_until(&mut (), Nanos::from_millis(500));
            os.package_watts(Nanos::from_millis(500))
        };
        let poll = run(false);
        let sleepy = run(true);
        assert!(sleepy < poll, "sleep&wake {sleepy}W !< busy poll {poll}W");
    }
}
