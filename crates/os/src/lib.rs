//! # metronome-os — the operating-system model
//!
//! Simulated Linux-like substrate for the Metronome reproduction: the paper
//! evaluates on a Linux 5.4 box whose scheduler, timers, cpufreq governors
//! and RAPL power counters all shape the results. This crate models each:
//!
//! * [`executor::OsSim`] — preemptive CFS-like scheduler executing
//!   [`executor::Behavior`] state machines on virtual-time cores, with
//!   wakeup preemption, sleeper fairness, minimum-granularity timeslicing,
//!   contention inflation (cache/TLB thrash between co-scheduled hot
//!   threads) and rare kernel-daemon interference.
//! * [`sleep::SleepModel`] — `hr_sleep()` vs `nanosleep()` oversleep and
//!   cost, calibrated against the paper's Fig. 1 down to tenths of a
//!   microsecond.
//! * [`config::Governor`] — `performance` and `ondemand` frequency control
//!   (10 ms sampling, up-threshold jumps), feeding cycle-accurate work
//!   stretching.
//! * [`power::PowerMeter`] — RAPL-style package energy: per-core active
//!   power ∝ f^2.4, C1/C6 idle residency, wake-transition energy, uncore
//!   floor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod executor;
pub mod power;
pub mod sleep;

pub use config::{
    DaemonConfig, FreqPlan, Governor, OsConfig, PowerConfig, SchedConfig, TimerSlack,
};
pub use executor::{Action, Behavior, CoreId, OsSim, RunCtx, ThreadId};
pub use power::PowerMeter;
pub use sleep::{SleepModel, SleepService};
