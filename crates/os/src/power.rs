//! Package power accounting (RAPL-style).
//!
//! The paper reads energy through Intel RAPL (§V, \[40\]) and reports package
//! watts for the governor comparisons (Fig. 11), the multiqueue grids
//! (Fig. 13) and the rate sweep (Fig. 15). This meter integrates a simple
//! but physically-shaped model:
//!
//! * running core at frequency `f`: `active_max · (f/f_max)^exp` watts —
//!   the f·V² dynamic-power curve;
//! * idle core: C1 power for the first `c6_entry` of an idle interval,
//!   C6 power afterwards — busy-wait polling never idles and therefore
//!   never touches a C-state, which is exactly why static DPDK burns the
//!   most power at zero traffic;
//! * each wake transition costs fixed energy.
//!
//! Everything is integrated exactly (piecewise-constant), so total energy
//! is deterministic.

use crate::config::PowerConfig;
use metronome_sim::Nanos;

/// Per-run energy integrator for one package.
#[derive(Clone, Debug)]
pub struct PowerMeter {
    cfg: PowerConfig,
    max_mhz: u32,
    core_energy: Vec<f64>,
    wake_count: Vec<u64>,
    /// Total time each core spent active (any frequency).
    active_time: Vec<Nanos>,
}

impl PowerMeter {
    /// Meter for `n_cores` cores with the given model and maximum frequency.
    pub fn new(cfg: PowerConfig, n_cores: usize, max_mhz: u32) -> Self {
        PowerMeter {
            cfg,
            max_mhz,
            core_energy: vec![0.0; n_cores],
            wake_count: vec![0; n_cores],
            active_time: vec![Nanos::ZERO; n_cores],
        }
    }

    /// Instantaneous active power at `freq_mhz`, watts.
    pub fn active_watts(&self, freq_mhz: u32) -> f64 {
        let ratio = freq_mhz as f64 / self.max_mhz as f64;
        self.cfg.core_active_max_watts * ratio.powf(self.cfg.freq_exponent)
    }

    /// Charge an active (running) interval on a core.
    pub fn charge_active(&mut self, core: usize, dur: Nanos, freq_mhz: u32) {
        self.core_energy[core] += self.active_watts(freq_mhz) * dur.as_secs_f64();
        self.active_time[core] += dur;
    }

    /// Charge an idle interval on a core (C1 then C6 after the entry delay).
    ///
    /// C1 leakage rides the core's current voltage/frequency plane, so a
    /// downclocked core idles cheaper — part of the ondemand governor's
    /// advantage for sleep&wake workloads (Fig. 11a). C6 power gates the
    /// core entirely and is frequency-independent.
    pub fn charge_idle(&mut self, core: usize, dur: Nanos, freq_mhz: u32) {
        let c1_span = dur.min(self.cfg.c6_entry);
        let c6_span = dur.saturating_sub(self.cfg.c6_entry);
        let ratio = (freq_mhz as f64 / self.max_mhz as f64).powf(1.2);
        self.core_energy[core] += self.cfg.c1_watts * ratio * c1_span.as_secs_f64()
            + self.cfg.c6_watts * c6_span.as_secs_f64();
    }

    /// Charge one sleep→run transition.
    pub fn charge_wake(&mut self, core: usize) {
        self.core_energy[core] += self.cfg.wake_energy_joules;
        self.wake_count[core] += 1;
    }

    /// Total package energy over `elapsed` of wall time, joules
    /// (cores + uncore floor).
    pub fn package_energy(&self, elapsed: Nanos) -> f64 {
        let cores: f64 = self.core_energy.iter().sum();
        cores + self.cfg.uncore_watts * elapsed.as_secs_f64()
    }

    /// Average package power over `elapsed`, watts.
    pub fn package_watts(&self, elapsed: Nanos) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.package_energy(elapsed) / elapsed.as_secs_f64()
    }

    /// Per-core active time so far.
    pub fn active_time(&self, core: usize) -> Nanos {
        self.active_time[core]
    }

    /// Wake transitions per core.
    pub fn wakes(&self, core: usize) -> u64 {
        self.wake_count[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PowerConfig;

    fn meter() -> PowerMeter {
        PowerMeter::new(PowerConfig::default(), 2, 2100)
    }

    #[test]
    fn active_power_scales_with_frequency() {
        let m = meter();
        let full = m.active_watts(2100);
        let half = m.active_watts(1050);
        assert!((full - PowerConfig::default().core_active_max_watts).abs() < 1e-9);
        // (1/2)^2.4 ≈ 0.19
        assert!((half / full - 0.5f64.powf(2.4)).abs() < 1e-9);
    }

    #[test]
    fn busy_core_beats_idle_core() {
        let mut m = meter();
        let dur = Nanos::from_secs(1);
        m.charge_active(0, dur, 2100);
        m.charge_idle(1, dur, 2100);
        assert!(m.core_energy[0] > 3.0 * m.core_energy[1]);
    }

    #[test]
    fn long_idle_reaches_c6() {
        let mut m = meter();
        // A 1 s idle interval: 200 µs at C1, rest at C6.
        m.charge_idle(0, Nanos::from_secs(1), 2100);
        let e = m.core_energy[0];
        let cfg = PowerConfig::default();
        let expected = cfg.c1_watts * 200e-6 + cfg.c6_watts * (1.0 - 200e-6);
        assert!((e - expected).abs() < 1e-9, "{e} vs {expected}");
        // Many short idles never reach C6 and burn more in total.
        let mut m2 = meter();
        for _ in 0..10_000 {
            m2.charge_idle(0, Nanos::from_micros(100), 2100);
        }
        assert!(m2.core_energy[0] > e);
    }

    #[test]
    fn package_includes_uncore_floor() {
        let m = meter();
        let watts = m.package_watts(Nanos::from_secs(10));
        assert!((watts - PowerConfig::default().uncore_watts).abs() < 1e-9);
    }

    #[test]
    fn wake_energy_counted() {
        let mut m = meter();
        for _ in 0..1000 {
            m.charge_wake(0);
        }
        assert_eq!(m.wakes(0), 1000);
        assert!((m.core_energy[0] - 1000.0 * 1.0e-6).abs() < 1e-12);
    }

    #[test]
    fn downclocked_c1_is_cheaper() {
        let mut hi = meter();
        let mut lo = meter();
        hi.charge_idle(0, Nanos::from_micros(100), 2100);
        lo.charge_idle(0, Nanos::from_micros(100), 800);
        assert!(lo.core_energy[0] < 0.5 * hi.core_energy[0]);
    }

    #[test]
    fn zero_elapsed_power_is_zero() {
        assert_eq!(meter().package_watts(Nanos::ZERO), 0.0);
    }

    #[test]
    fn busy_poll_vs_sleep_wake_shape() {
        // The Fig. 11 intuition: at zero traffic a busy-polling core burns
        // full active power, a sleep&wake core mostly C-state power.
        let mut poll = meter();
        poll.charge_active(0, Nanos::from_secs(1), 2100);
        let mut snw = meter();
        // 20% active, 80% idle in 30 µs chunks + wakes (per-30µs cycle).
        for _ in 0..10_000 {
            snw.charge_active(0, Nanos::from_micros(20), 2100);
            snw.charge_idle(0, Nanos::from_micros(80), 2100);
            snw.charge_wake(0);
        }
        let p_poll = poll.package_watts(Nanos::from_secs(1));
        let p_snw = snw.package_watts(Nanos::from_secs(1));
        assert!(p_snw < p_poll, "sleep&wake {p_snw} >= polling {p_poll}");
    }
}
