//! Fine-grain sleep services: `hr_sleep()` and `nanosleep()`.
//!
//! The paper's §III-A compares its custom `hr_sleep()` kernel service
//! against `nanosleep()` configured with the minimal admissible timer slack
//! (1 µs via `prctl`). Figure 1 gives the ground truth this model is
//! calibrated against (wall-clock from invocation to resume, SCHED_OTHER
//! thread, idle core):
//!
//! | request | hr_sleep | nanosleep(slack=1µs) |
//! |---------|----------|-----------------------|
//! | 1 µs    | ~3.85 µs | ~3.88 µs, wider IQR   |
//! | 10 µs   | ~13.46 µs| ~13.48 µs             |
//! | 100 µs  | ~108.45µs| ~108.55 µs            |
//!
//! The oversleep grows mildly with the request (timer-wheel cascade and
//! coalescing), so the model is `actual = request + base + drift·request +
//! jitter`. `nanosleep` additionally pays the TCB slack-reconciliation
//! instructions (a small extra CPU cost and a wider jitter), and without
//! the `prctl` fix it also waits out the kernel's 50 µs default slack.
//!
//! §V-C's patched variant ("immediately return control if a
//! sub-microsecond sleep timeout is requested") is [`SleepService::HrSleepPatched`].

use crate::config::TimerSlack;
use metronome_sim::{Nanos, Rng};

/// Which sleep primitive a thread uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SleepService {
    /// The paper's custom kernel service: no TCB interaction, no slack.
    HrSleep,
    /// `hr_sleep()` patched to return immediately for sub-microsecond
    /// requests (used in the paper's low-latency tuning, §V-C).
    HrSleepPatched,
    /// POSIX `nanosleep()` with the given timer-slack configuration.
    Nanosleep(TimerSlack),
}

/// Calibrated latency/cost model for the sleep services.
#[derive(Clone, Debug)]
pub struct SleepModel {
    /// Fixed oversleep: timer program + IRQ + dispatch on an idle core.
    pub hr_base: Nanos,
    /// Oversleep proportional to the request (timer coalescing drift).
    pub hr_drift: f64,
    /// Gaussian jitter sigma for hr_sleep.
    pub hr_jitter_sigma: Nanos,
    /// Extra fixed oversleep of nanosleep vs hr_sleep (TCB reconciliation).
    pub nano_extra_base: Nanos,
    /// Jitter sigma multiplier of nanosleep vs hr_sleep.
    pub nano_jitter_factor: f64,
    /// CPU cycles charged to the caller per sleep invocation (syscall entry
    /// and exit, timer arming). hr_sleep's savings on this path are part of
    /// the paper's argument for the custom service.
    pub hr_call_cycles: u64,
    /// CPU cycles per nanosleep invocation (extra TCB slack handling).
    pub nano_call_cycles: u64,
    /// Probability that a wake lands in a timer-coalescing/softirq episode
    /// and picks up an extra exponential delay. Rare enough to be invisible
    /// in Fig. 1's quartiles, but it is what desynchronizes the threads'
    /// wake phases in the long run (the paper's decorrelation assumption,
    /// §IV-B.4).
    pub tail_prob: f64,
    /// Mean of the extra tail delay.
    pub tail_mean: Nanos,
}

impl Default for SleepModel {
    /// The **loaded-system** profile, used by the whole-system simulations:
    /// a quarter of wakes pick up an exponential extra delay (mean 2 µs)
    /// from timer coalescing, NIC DMA traffic and cache pollution while
    /// the machine forwards packets. The mean oversleep is kept identical
    /// to the idle profile (base is lowered by the 500 ns expected tail),
    /// so Fig. 1's means still hold; only the spread differs. This
    /// microsecond-scale wake noise is what de-synchronizes the threads'
    /// wake phases — the paper's decorrelation assumption (§IV-B.4) —
    /// without it, deterministic sleeps lock into collision limit cycles
    /// that the real system never exhibits.
    fn default() -> Self {
        SleepModel {
            hr_base: Nanos(2_300),
            hr_drift: 0.0565,
            hr_jitter_sigma: Nanos(30),
            nano_extra_base: Nanos(25),
            nano_jitter_factor: 1.8,
            hr_call_cycles: 420,
            nano_call_cycles: 560,
            tail_prob: 0.25,
            tail_mean: Nanos(2_000),
        }
    }
}

impl SleepModel {
    /// The **idle-machine** profile: the condition of the paper's Fig. 1
    /// microbenchmark (nothing else running). Tails are rare and the
    /// distribution is as tight as the paper's boxplots.
    pub fn idle_calibration() -> Self {
        SleepModel {
            hr_base: Nanos(2_770),
            tail_prob: 0.02,
            tail_mean: Nanos(1_500),
            ..SleepModel::default()
        }
    }
}

impl SleepModel {
    /// The actual elapsed time between invoking the service with `request`
    /// and the thread becoming runnable again, on an otherwise idle core.
    ///
    /// Deterministic given the caller's RNG stream.
    pub fn actual_sleep(&self, service: SleepService, request: Nanos, rng: &mut Rng) -> Nanos {
        match service {
            SleepService::HrSleepPatched if request < Nanos::MICRO => {
                // Patched fast path: immediately return (no timer at all).
                Nanos::ZERO
            }
            SleepService::HrSleep | SleepService::HrSleepPatched => {
                self.oversleep(request, self.hr_base, self.hr_jitter_sigma, rng)
            }
            SleepService::Nanosleep(slack) => {
                let slack_extra = match slack {
                    // Slack of 1 µs: the timer may coalesce within a 1 µs
                    // window; average half of it.
                    TimerSlack::MinimalOneMicro => Nanos(rng.below(1_000)),
                    // Default 50 µs slack: wake lands anywhere in the
                    // slack window (this is why unpatched nanosleep cannot
                    // do precise microsecond retrieval — paper §III-A).
                    TimerSlack::DefaultFifty => Nanos(rng.below(50_000)),
                };
                let base = self.hr_base + self.nano_extra_base;
                let sigma = Nanos(
                    (self.hr_jitter_sigma.as_nanos() as f64 * self.nano_jitter_factor) as u64,
                );
                self.oversleep(request, base, sigma, rng) + slack_extra
            }
        }
    }

    fn oversleep(&self, request: Nanos, base: Nanos, sigma: Nanos, rng: &mut Rng) -> Nanos {
        let drift = request.scaled_f64(self.hr_drift);
        let jitter = rng.normal(0.0, sigma.as_nanos() as f64);
        let mut noisy = request + base + drift;
        if self.tail_prob > 0.0 && rng.chance(self.tail_prob) {
            noisy += Nanos(rng.exp(self.tail_mean.as_nanos() as f64) as u64);
        }
        if jitter >= 0.0 {
            noisy + Nanos(jitter as u64)
        } else {
            noisy.saturating_sub(Nanos((-jitter) as u64))
        }
    }

    /// CPU cycles the calling thread burns to issue the sleep.
    pub fn call_cycles(&self, service: SleepService) -> u64 {
        match service {
            SleepService::HrSleep | SleepService::HrSleepPatched => self.hr_call_cycles,
            SleepService::Nanosleep(_) => self.nano_call_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_sim::stats::MeanVar;

    fn sample_mean(service: SleepService, request_us: u64, n: usize) -> (f64, f64) {
        let model = SleepModel::idle_calibration();
        let mut rng = Rng::new(42);
        let mut mv = MeanVar::new();
        for _ in 0..n {
            let actual = model.actual_sleep(service, Nanos::from_micros(request_us), &mut rng);
            mv.add(actual.as_micros_f64());
        }
        (mv.mean(), mv.std_dev())
    }

    #[test]
    fn hr_sleep_matches_fig1_one_micro() {
        let (mean, _) = sample_mean(SleepService::HrSleep, 1, 20_000);
        assert!((mean - 3.85).abs() < 0.1, "1µs request -> {mean}µs");
    }

    #[test]
    fn hr_sleep_matches_fig1_ten_micro() {
        let (mean, _) = sample_mean(SleepService::HrSleep, 10, 20_000);
        assert!((mean - 13.46).abs() < 0.15, "10µs request -> {mean}µs");
    }

    #[test]
    fn hr_sleep_matches_fig1_hundred_micro() {
        let (mean, _) = sample_mean(SleepService::HrSleep, 100, 20_000);
        assert!((mean - 108.45).abs() < 0.4, "100µs request -> {mean}µs");
    }

    #[test]
    fn nanosleep_min_slack_slightly_worse() {
        let (hr_mean, hr_sd) = sample_mean(SleepService::HrSleep, 10, 20_000);
        let (na_mean, na_sd) = sample_mean(
            SleepService::Nanosleep(TimerSlack::MinimalOneMicro),
            10,
            20_000,
        );
        assert!(
            na_mean > hr_mean,
            "nanosleep mean {na_mean} <= hr {hr_mean}"
        );
        assert!(
            na_mean - hr_mean < 1.0,
            "gap too large: {}",
            na_mean - hr_mean
        );
        assert!(na_sd > hr_sd, "nanosleep must have more variance");
    }

    #[test]
    fn nanosleep_default_slack_much_worse() {
        let (min_mean, _) = sample_mean(
            SleepService::Nanosleep(TimerSlack::MinimalOneMicro),
            10,
            10_000,
        );
        let (def_mean, _) = sample_mean(
            SleepService::Nanosleep(TimerSlack::DefaultFifty),
            10,
            10_000,
        );
        // ~25 µs of average extra slack dwarfs the request.
        assert!(def_mean > min_mean + 15.0, "{def_mean} vs {min_mean}");
    }

    #[test]
    fn patched_fast_path_returns_immediately() {
        let model = SleepModel::default();
        let mut rng = Rng::new(1);
        let a = model.actual_sleep(SleepService::HrSleepPatched, Nanos(500), &mut rng);
        assert_eq!(a, Nanos::ZERO);
        // At or above 1 µs it behaves like hr_sleep.
        let b = model.actual_sleep(SleepService::HrSleepPatched, Nanos::MICRO, &mut rng);
        assert!(b > Nanos::MICRO);
    }

    #[test]
    fn oversleep_is_monotone_in_request_on_average() {
        let (m1, _) = sample_mean(SleepService::HrSleep, 1, 5_000);
        let (m10, _) = sample_mean(SleepService::HrSleep, 10, 5_000);
        let (m100, _) = sample_mean(SleepService::HrSleep, 100, 5_000);
        assert!(m1 < m10 && m10 < m100);
    }

    #[test]
    fn call_cycles_favor_hr_sleep() {
        let m = SleepModel::default();
        assert!(
            m.call_cycles(SleepService::HrSleep)
                < m.call_cycles(SleepService::Nanosleep(TimerSlack::MinimalOneMicro))
        );
    }

    #[test]
    fn loaded_profile_same_mean_wider_spread() {
        let loaded = SleepModel::default();
        let idle = SleepModel::idle_calibration();
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        let n = 100_000;
        let req = Nanos::from_micros(10);
        let (mut m1, mut m2) = (MeanVar::new(), MeanVar::new());
        for _ in 0..n {
            m1.add(
                loaded
                    .actual_sleep(SleepService::HrSleep, req, &mut r1)
                    .as_micros_f64(),
            );
            m2.add(
                idle.actual_sleep(SleepService::HrSleep, req, &mut r2)
                    .as_micros_f64(),
            );
        }
        assert!(
            (m1.mean() - m2.mean()).abs() < 0.05,
            "means {} vs {}",
            m1.mean(),
            m2.mean()
        );
        assert!(
            m1.std_dev() > 3.0 * m2.std_dev(),
            "loaded spread must dominate"
        );
    }

    #[test]
    fn deterministic_given_stream() {
        let model = SleepModel::default();
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(
                model.actual_sleep(SleepService::HrSleep, Nanos::from_micros(10), &mut a),
                model.actual_sleep(SleepService::HrSleep, Nanos::from_micros(10), &mut b)
            );
        }
    }
}
