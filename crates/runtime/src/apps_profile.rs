//! Application cost profiles for the discrete-event simulator.
//!
//! The DES processes packets in aggregate, so all it needs from an
//! application is its calibrated cycle cost. Profiles are derived from the
//! functional processors in `metronome-apps` (one source of truth for the
//! numbers) or built ad hoc for baselines like `xdp_router_ipv4`.

use metronome_apps::processor::PacketProcessor;
use metronome_apps::{FloWatcher, IpsecGateway, L3Fwd};

/// A named per-packet cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppProfile {
    /// Application name for reports.
    pub name: &'static str,
    /// CPU cycles per packet.
    pub cycles_per_packet: u64,
    /// Fixed CPU cycles per retrieved burst.
    pub cycles_per_burst: u64,
}

impl AppProfile {
    /// Derive a profile from any functional processor.
    pub fn of(p: &dyn PacketProcessor) -> AppProfile {
        AppProfile {
            name: p.name(),
            cycles_per_packet: p.cycles_per_packet(),
            cycles_per_burst: p.cycles_per_burst(),
        }
    }

    /// l3fwd in LPM mode — the paper's default workload.
    pub fn l3fwd() -> AppProfile {
        AppProfile::of(&L3Fwd::with_sample_routes(4))
    }

    /// The IPsec security gateway (outbound).
    pub fn ipsec() -> AppProfile {
        AppProfile::of(&IpsecGateway::outbound())
    }

    /// FloWatcher in run-to-completion mode.
    pub fn flowatcher() -> AppProfile {
        AppProfile::of(&FloWatcher::new(65_536))
    }

    /// Cycles to retrieve and process a burst of `k` packets.
    pub fn burst_cycles(&self, k: u64) -> u64 {
        self.cycles_per_burst + k * self.cycles_per_packet
    }

    /// Single-core drain rate µ (packets/second) at `mhz`, amortizing the
    /// fixed overhead over `burst`-packet bursts (the configured Rx burst
    /// size, clamped to at least 1).
    pub fn mu_pps(&self, mhz: u32, burst: u32) -> f64 {
        let burst = burst.max(1) as f64;
        let cycles = self.cycles_per_packet as f64 + self.cycles_per_burst as f64 / burst;
        mhz as f64 * 1e6 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_calibration_targets() {
        assert!((26e6..30e6).contains(&AppProfile::l3fwd().mu_pps(2100, 32)));
        assert!((5.3e6..6.0e6).contains(&AppProfile::ipsec().mu_pps(2100, 32)));
        assert!(AppProfile::flowatcher().mu_pps(2100, 32) > 14.88e6);
    }

    #[test]
    fn mu_tracks_configured_burst() {
        let p = AppProfile::l3fwd();
        // burst=1 pays the whole per-burst overhead on every packet.
        assert!(p.mu_pps(2100, 1) < p.mu_pps(2100, 32));
        let per_packet = p.cycles_per_packet as f64 + p.cycles_per_burst as f64;
        assert!((p.mu_pps(2100, 1) - 2.1e9 / per_packet).abs() < 1.0);
    }

    #[test]
    fn burst_cycles_linear() {
        let p = AppProfile::l3fwd();
        assert_eq!(
            p.burst_cycles(32) - p.burst_cycles(0),
            32 * p.cycles_per_packet
        );
    }
}
