//! The thread bodies: Metronome workers, static DPDK pollers, XDP NAPI
//! loops and ferret workers, all as `metronome_os::Behavior` state
//! machines over the shared [`World`].

use crate::apps_profile::AppProfile;
use crate::calib;
use crate::world::{FerretCompletion, World};
use metronome_os::executor::{Action, Behavior, RunCtx};
use metronome_os::sleep::SleepService;
use metronome_sim::stats::Ewma;
use metronome_sim::{Cycles, Nanos};

/// Convert a wall duration into cycles at the context's frequency.
fn cycles_for(dur: Nanos, freq_mhz: u32) -> Cycles {
    Cycles::from_duration(dur, freq_mhz)
}

// ---------------------------------------------------------------------------
// Metronome worker (paper Listing 2)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum MetroPhase {
    /// First dispatch: stagger the start phase.
    Init,
    /// Race for the queue.
    TryAcquire,
    /// A burst of `k` packets from queue `q` is being processed.
    Chunk { q: usize, k: u64 },
    /// About to sleep for `dur`.
    GoSleep { dur: Nanos },
    /// Just woke from a timer sleep.
    AfterSleep,
}

/// One Metronome packet-retrieval thread.
pub struct MetronomeWorker {
    /// Index into `world.policies`.
    idx: usize,
    app: AppProfile,
    burst: u64,
    service: SleepService,
    phase: MetroPhase,
}

impl MetronomeWorker {
    /// Worker `idx` running `app` with the given Rx burst size and sleep
    /// service.
    pub fn new(idx: usize, app: AppProfile, burst: u64, service: SleepService) -> Self {
        MetronomeWorker {
            idx,
            app,
            burst,
            service,
            phase: MetroPhase::Init,
        }
    }
}

impl Behavior<World> for MetronomeWorker {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let tid = self.idx;
        loop {
            match self.phase {
                MetroPhase::Init => {
                    // Threads in a real deployment start milliseconds apart
                    // (spawn + EAL init); a uniform stagger over one TL
                    // keeps the first wakes from racing in lockstep.
                    let tl = world.controller.tl();
                    let stagger = Nanos(ctx.rng.below(tl.as_nanos().max(1)));
                    self.phase = MetroPhase::AfterSleep;
                    return Action::WaitUntil(ctx.now.saturating_add(stagger));
                }
                MetroPhase::TryAcquire => {
                    let q = world.policies[tid].queue_to_contend();
                    if world.try_acquire(q, tid, ctx.now) {
                        world.policies[tid].on_race_won();
                        // Account the acquire, then start draining.
                        self.phase = MetroPhase::Chunk { q, k: 0 };
                        return Action::Work(Cycles(calib::ACQUIRE_CYCLES));
                    }
                    // Busy try: become backup, pick a random queue, sleep TL
                    // (or TS in the equal-timeout ablation).
                    let n_queues = world.controller.n_queues();
                    world.policies[tid].on_race_lost(n_queues, ctx.rng.next_u64());
                    let dur = if world.equal_timeouts {
                        world.controller.ts(q)
                    } else {
                        world.controller.tl()
                    };
                    self.phase = MetroPhase::GoSleep { dur };
                    return Action::Work(Cycles(
                        calib::BUSY_TRY_CYCLES + calib::SLEEP_CALL_CYCLES,
                    ));
                }
                MetroPhase::Chunk { q, k } => {
                    if k > 0 {
                        // The chunk just finished computing: account Tx.
                        world.chunk_done(q, ctx.now, k);
                    }
                    let taken = world.queues[q].take_burst(ctx.now, self.burst);
                    if taken > 0 {
                        self.phase = MetroPhase::Chunk { q, k: taken };
                        return Action::Work(Cycles(self.app.burst_cycles(taken)));
                    }
                    // Queue depleted: flush a stale partial batch, release,
                    // compute TS, sleep.
                    if k == 0 {
                        world.policies[tid].on_empty_poll();
                    }
                    if world.queues[q].tx_stale(ctx.now) {
                        world.flush_queue_tx(q, ctx.now);
                    }
                    world.release(q, tid, ctx.now);
                    let dur = world.controller.ts(q);
                    self.phase = MetroPhase::GoSleep { dur };
                    return Action::Work(Cycles(
                        calib::EMPTY_POLL_CYCLES
                            + calib::RELEASE_CYCLES
                            + calib::SLEEP_CALL_CYCLES,
                    ));
                }
                MetroPhase::GoSleep { dur } => {
                    self.phase = MetroPhase::AfterSleep;
                    return Action::Sleep {
                        service: self.service,
                        duration: dur,
                    };
                }
                MetroPhase::AfterSleep => {
                    world.policies[tid].on_wake();
                    // Opportunistically drain a stale Tx batch on the queue
                    // we are about to contend (no owner ⇒ nobody else will).
                    let q = world.policies[tid].queue_to_contend();
                    if world.queues[q].owner.is_none() && world.queues[q].tx_stale(ctx.now) {
                        world.flush_queue_tx(q, ctx.now);
                    }
                    self.phase = MetroPhase::TryAcquire;
                    return Action::Work(Cycles(calib::WAKE_PATH_CYCLES));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Static DPDK poller (paper Listing 1)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum StaticPhase {
    Poll,
    Chunk { k: u64 },
}

/// A classic DPDK busy-poll thread bound to one queue.
///
/// Never sleeps: when its queue is empty it keeps spinning (the empty
/// polls are aggregated into one `Work` block until the next arrival so
/// the simulation stays cheap — CPU accounting is identical).
pub struct StaticPoller {
    q: usize,
    app: AppProfile,
    burst: u64,
    phase: StaticPhase,
}

impl StaticPoller {
    /// Poller bound to queue `q`.
    pub fn new(q: usize, app: AppProfile, burst: u64) -> Self {
        StaticPoller {
            q,
            app,
            burst,
            phase: StaticPhase::Poll,
        }
    }
}

impl Behavior<World> for StaticPoller {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let q = self.q;
        loop {
            match self.phase {
                StaticPhase::Poll => {
                    let taken = world.queues[q].take_burst(ctx.now, self.burst);
                    if taken > 0 {
                        self.phase = StaticPhase::Chunk { k: taken };
                        return Action::Work(Cycles(self.app.burst_cycles(taken)));
                    }
                    if world.queues[q].tx_stale(ctx.now) {
                        world.flush_queue_tx(q, ctx.now);
                    }
                    // Aggregate the empty polls until the next arrival (or
                    // the Tx drain deadline, whichever comes first).
                    let spin_until = match world.queues[q].peek_next_arrival() {
                        Some(t) if t > ctx.now => t,
                        Some(_) => ctx.now, // packet due now; poll again
                        None => ctx.now.saturating_add(Nanos::from_millis(1)),
                    };
                    let cap = ctx.now.saturating_add(calib::TX_DRAIN_TIMEOUT);
                    let horizon = spin_until.min(cap);
                    let dur = horizon.saturating_sub(ctx.now);
                    let spin = cycles_for(dur, ctx.freq_mhz)
                        .0
                        .max(calib::EMPTY_POLL_CYCLES);
                    // Stay in Poll; the Work block models the spinning.
                    return Action::Work(Cycles(spin));
                }
                StaticPhase::Chunk { k } => {
                    world.chunk_done(q, ctx.now, k);
                    self.phase = StaticPhase::Poll;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// XDP / NAPI baseline (paper §V-D)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum XdpPhase {
    /// IRQs enabled, core idle, waiting for packets.
    IrqWait,
    /// Softirq entry after an interrupt.
    IrqEntry,
    /// NAPI polling loop.
    Poll,
    /// A chunk finished processing.
    Chunk { k: u64 },
    /// Budget exhausted or queue empty — exit softirq, re-enable IRQs.
    IrqExit,
}

/// An XDP queue handler: 1:1 queue-to-core, interrupt driven, NAPI-polled.
pub struct XdpHandler {
    q: usize,
    cycles_per_packet: u64,
    last_irq: Nanos,
    /// EWMA of packets per interrupt, driving adaptive moderation.
    batch_ewma: Ewma,
    /// Packets retrieved since the current IRQ fired.
    irq_packets: u64,
    phase: XdpPhase,
}

impl XdpHandler {
    /// Handler for queue `q` (runs `xdp_router_ipv4`-equivalent cost).
    pub fn new(q: usize) -> Self {
        XdpHandler {
            q,
            cycles_per_packet: calib::XDP_CYCLES_PER_PACKET,
            last_irq: Nanos::ZERO,
            batch_ewma: Ewma::new(0.2),
            irq_packets: 0,
            phase: XdpPhase::IrqWait,
        }
    }

    fn itr(&self) -> Nanos {
        // Adaptive interrupt moderation: long window under sustained load,
        // short window when traffic is light.
        if self.batch_ewma.value_or(0.0) > calib::NAPI_BUDGET as f64 / 2.0 {
            calib::XDP_ITR_HIGH
        } else {
            calib::XDP_ITR_LOW
        }
    }
}

impl Behavior<World> for XdpHandler {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let q = self.q;
        loop {
            match self.phase {
                XdpPhase::IrqWait => {
                    match world.queues[q].peek_next_arrival() {
                        None => {
                            // No traffic at all: re-check later, zero CPU.
                            return Action::WaitUntil(
                                ctx.now.saturating_add(Nanos::from_millis(100)),
                            );
                        }
                        Some(t) => {
                            // The NIC raises the interrupt after delivery
                            // latency, but never before the moderation (ITR)
                            // window since the previous IRQ has elapsed —
                            // even if packets are already waiting. This gate
                            // is what keeps interrupt rates bounded under
                            // load (and is what the erratum in our first
                            // model missed: without it, a drain-tail arrival
                            // landing during the IRQ-exit path re-raises
                            // immediately and the handler livelocks at 100%
                            // CPU — Mogul & Ramakrishnan's receive livelock,
                            // which NAPI+ITR exist to prevent).
                            let base = if t > ctx.now {
                                t.saturating_add(calib::IRQ_DELIVERY)
                            } else {
                                ctx.now
                            };
                            let fire = base.max(self.last_irq.saturating_add(self.itr()));
                            self.phase = XdpPhase::IrqEntry;
                            if fire > ctx.now {
                                return Action::WaitUntil(fire);
                            }
                        }
                    }
                }
                XdpPhase::IrqEntry => {
                    self.last_irq = ctx.now;
                    self.phase = XdpPhase::Poll;
                    return Action::Work(Cycles(calib::XDP_IRQ_CYCLES));
                }
                XdpPhase::Poll => {
                    let taken = world.queues[q].take_burst(ctx.now, calib::NAPI_BUDGET);
                    self.irq_packets += taken;
                    if taken > 0 {
                        self.phase = XdpPhase::Chunk { k: taken };
                        return Action::Work(Cycles(taken * self.cycles_per_packet + 200));
                    }
                    self.phase = XdpPhase::IrqExit;
                }
                XdpPhase::Chunk { k } => {
                    world.chunk_done(q, ctx.now, k);
                    // NAPI: stay in polling mode while packets keep coming.
                    self.phase = XdpPhase::Poll;
                }
                XdpPhase::IrqExit => {
                    // Adaptive moderation keys off packets per interrupt,
                    // not per poll chunk (the drain tail's tiny chunks
                    // would otherwise bias the estimate low).
                    self.batch_ewma.update(self.irq_packets as f64);
                    self.irq_packets = 0;
                    self.phase = XdpPhase::IrqWait;
                    return Action::Work(Cycles(600));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ferret co-tenant (paper §V-E)
// ---------------------------------------------------------------------------

/// One ferret worker: a fixed amount of CPU work executed in chunks, with
/// its completion time recorded in the world.
pub struct FerretWorker {
    /// Worker index (for the completion record).
    pub worker: usize,
    remaining: Cycles,
    chunk: Cycles,
}

impl FerretWorker {
    /// Worker with `total` cycles of work in `chunk`-sized slices.
    pub fn new(worker: usize, total: Cycles, chunk: Cycles) -> Self {
        FerretWorker {
            worker,
            remaining: total,
            chunk: Cycles(chunk.0.max(1)),
        }
    }
}

impl Behavior<World> for FerretWorker {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        if self.remaining.0 == 0 {
            world.ferret_done.push(FerretCompletion {
                worker: self.worker,
                at: ctx.now,
            });
            return Action::Exit;
        }
        let step = Cycles(self.remaining.0.min(self.chunk.0));
        self.remaining = self.remaining.saturating_sub(step);
        Action::Work(step)
    }
}
