//! The thread bodies: Metronome workers, static DPDK pollers, XDP NAPI
//! loops and ferret workers, all as `metronome_os::Behavior` state
//! machines over the shared [`World`].
//!
//! The Metronome worker itself carries **no protocol logic**: the Listing 2
//! loop lives once in `metronome_core::engine::MetronomeEngine`, and
//! [`MetronomeWorker`] merely adapts the engine to the simulator by
//! realizing the engine's `Backend` capabilities over the [`World`]
//! (see [`WorldBackend`]) and translating engine ops into scheduler
//! [`Action`]s.

use crate::apps_profile::AppProfile;
use crate::calib;
use crate::world::{FerretCompletion, World};
use metronome_core::engine::{Backend, EngineOp, MetronomeEngine, StepCosts};
use metronome_os::executor::{Action, Behavior, RunCtx};
use metronome_os::sleep::SleepService;
use metronome_sim::stats::Ewma;
use metronome_sim::{Cycles, Nanos, Rng};

/// Convert a wall duration into cycles at the context's frequency.
fn cycles_for(dur: Nanos, freq_mhz: u32) -> Cycles {
    Cycles::from_duration(dur, freq_mhz)
}

// ---------------------------------------------------------------------------
// Metronome worker (paper Listing 2, via the shared engine)
// ---------------------------------------------------------------------------

/// The discrete-event realization of the engine's `Backend` capabilities:
/// the trylock is the simulated queue's owner slot, receive bursts come
/// from the hybrid descriptor-ring model, entropy from the thread's seeded
/// PRNG stream, and every protocol step charges its calibrated cycle cost
/// to the virtual core.
///
/// Constructed fresh for each scheduler turn (it borrows the world and the
/// thread's RNG at the turn's virtual `now`); also constructible directly
/// by tests that want to drive the engine deterministically.
pub struct WorldBackend<'a> {
    /// The shared simulation world.
    pub world: &'a mut World,
    /// The thread's private RNG stream.
    pub rng: &'a mut Rng,
    /// Current virtual time.
    pub now: Nanos,
    /// Simulated thread id (lock-owner identity).
    pub tid: usize,
    /// Application cost profile for packet processing.
    pub app: AppProfile,
}

impl Backend for WorldBackend<'_> {
    fn n_queues(&self) -> usize {
        self.world.controller.n_queues()
    }

    fn draw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        // Race/vacation bookkeeping happens inside the world.
        self.world.try_acquire(q, self.tid, self.now)
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        self.world.queues[q].take_burst(self.now, burst as u64)
    }

    fn chunk_cost(&self, k: u64) -> u64 {
        self.app.burst_cycles(k)
    }

    fn chunk_done(&mut self, q: usize, k: u64) {
        self.world.chunk_done(q, self.now, k);
    }

    fn release(&mut self, q: usize) -> Nanos {
        // Flush a stale partial Tx batch before giving up the queue.
        if self.world.queues[q].tx_stale(self.now) {
            self.world.flush_queue_tx(q, self.now);
        }
        self.world.release(q, self.tid, self.now);
        self.world.controller.ts(q)
    }

    fn before_contend(&mut self, q: usize) {
        // Opportunistically drain a stale Tx batch on the queue we are
        // about to contend (no owner ⇒ nobody else will).
        if self.world.queues[q].owner.is_none() && self.world.queues[q].tx_stale(self.now) {
            self.world.flush_queue_tx(q, self.now);
        }
    }

    fn ts(&self, q: usize) -> Nanos {
        self.world.controller.ts(q)
    }

    fn tl(&self) -> Nanos {
        self.world.controller.tl()
    }

    fn equal_timeouts(&self) -> bool {
        self.world.equal_timeouts
    }

    fn stagger(&mut self) -> Nanos {
        // Threads in a real deployment start milliseconds apart (spawn +
        // EAL init); a uniform stagger over one TL keeps the first wakes
        // from racing in lockstep.
        let tl = self.world.controller.tl();
        Nanos(self.rng.below(tl.as_nanos().max(1)))
    }

    fn costs(&self) -> StepCosts {
        StepCosts {
            wake_path: calib::WAKE_PATH_CYCLES,
            acquire: calib::ACQUIRE_CYCLES,
            busy_try: calib::BUSY_TRY_CYCLES,
            empty_poll: calib::EMPTY_POLL_CYCLES,
            release: calib::RELEASE_CYCLES,
            sleep_call: calib::SLEEP_CALL_CYCLES,
        }
    }
}

/// One Metronome packet-retrieval thread: the shared engine driven by the
/// OS simulator.
pub struct MetronomeWorker {
    /// Simulated thread id (lock-owner identity).
    idx: usize,
    app: AppProfile,
    service: SleepService,
    engine: MetronomeEngine,
}

impl MetronomeWorker {
    /// Worker `idx` running `app` with the given Rx burst size and sleep
    /// service, initially contending queue `idx % n_queues` (assigned by
    /// the runner through `initial_queue`).
    pub fn new(
        idx: usize,
        initial_queue: usize,
        app: AppProfile,
        burst: u32,
        service: SleepService,
    ) -> Self {
        MetronomeWorker {
            idx,
            app,
            service,
            engine: MetronomeEngine::new(initial_queue, burst),
        }
    }
}

impl Behavior<World> for MetronomeWorker {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let mut backend = WorldBackend {
            world,
            rng: &mut *ctx.rng,
            now: ctx.now,
            tid: self.idx,
            app: self.app,
        };
        match self.engine.step(&mut backend) {
            EngineOp::Work(cycles) => Action::Work(Cycles(cycles)),
            EngineOp::Sleep(duration) => Action::Sleep {
                service: self.service,
                duration,
            },
            EngineOp::Wait(dur) => Action::WaitUntil(ctx.now.saturating_add(dur)),
        }
    }
}

// ---------------------------------------------------------------------------
// Static DPDK poller (paper Listing 1)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum StaticPhase {
    Poll,
    Chunk { k: u64 },
}

/// A classic DPDK busy-poll thread bound to one queue.
///
/// Never sleeps: when its queue is empty it keeps spinning (the empty
/// polls are aggregated into one `Work` block until the next arrival so
/// the simulation stays cheap — CPU accounting is identical).
pub struct StaticPoller {
    q: usize,
    app: AppProfile,
    burst: u64,
    phase: StaticPhase,
}

impl StaticPoller {
    /// Poller bound to queue `q`.
    pub fn new(q: usize, app: AppProfile, burst: u64) -> Self {
        StaticPoller {
            q,
            app,
            burst,
            phase: StaticPhase::Poll,
        }
    }
}

impl Behavior<World> for StaticPoller {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let q = self.q;
        loop {
            match self.phase {
                StaticPhase::Poll => {
                    let taken = world.queues[q].take_burst(ctx.now, self.burst);
                    if taken > 0 {
                        self.phase = StaticPhase::Chunk { k: taken };
                        return Action::Work(Cycles(self.app.burst_cycles(taken)));
                    }
                    if world.queues[q].tx_stale(ctx.now) {
                        world.flush_queue_tx(q, ctx.now);
                    }
                    // Aggregate the empty polls until the next arrival (or
                    // the Tx drain deadline, whichever comes first).
                    let spin_until = match world.queues[q].peek_next_arrival() {
                        Some(t) if t > ctx.now => t,
                        Some(_) => ctx.now, // packet due now; poll again
                        None => ctx.now.saturating_add(Nanos::from_millis(1)),
                    };
                    let cap = ctx.now.saturating_add(calib::TX_DRAIN_TIMEOUT);
                    let horizon = spin_until.min(cap);
                    let dur = horizon.saturating_sub(ctx.now);
                    let spin = cycles_for(dur, ctx.freq_mhz)
                        .0
                        .max(calib::EMPTY_POLL_CYCLES);
                    // Stay in Poll; the Work block models the spinning.
                    return Action::Work(Cycles(spin));
                }
                StaticPhase::Chunk { k } => {
                    world.chunk_done(q, ctx.now, k);
                    self.phase = StaticPhase::Poll;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Constant-sleep retrieval (the fixed r_sleep strawman)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum ConstSleepPhase {
    /// Just woke from the fixed timer.
    AfterSleep,
    /// Draining the queue.
    Poll,
    /// A chunk of `k` packets finished processing.
    Chunk {
        /// Packets in the chunk.
        k: u64,
    },
    /// Queue dry: go back to sleep for the fixed period.
    GoSleep,
}

/// The fixed-period retrieval baseline, one thread per queue: drain the
/// queue dry, `r_sleep(period)`, repeat. The simulation counterpart of
/// the realtime `ConstSleep` discipline — it charges the same calibrated
/// wake/sleep-path cycle costs as a Metronome worker, so its CPU differs
/// from Metronome's only through the (non-adaptive) timeout itself.
pub struct ConstSleepWorker {
    q: usize,
    app: AppProfile,
    burst: u64,
    period: Nanos,
    service: SleepService,
    phase: ConstSleepPhase,
}

impl ConstSleepWorker {
    /// Worker bound to queue `q`, sleeping `period` between drains.
    pub fn new(
        q: usize,
        app: AppProfile,
        burst: u64,
        period: Nanos,
        service: SleepService,
    ) -> Self {
        ConstSleepWorker {
            q,
            app,
            burst,
            period,
            service,
            phase: ConstSleepPhase::Poll,
        }
    }
}

impl Behavior<World> for ConstSleepWorker {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let q = self.q;
        loop {
            match self.phase {
                ConstSleepPhase::AfterSleep => {
                    self.phase = ConstSleepPhase::Poll;
                    return Action::Work(Cycles(calib::WAKE_PATH_CYCLES));
                }
                ConstSleepPhase::Poll => {
                    let taken = world.queues[q].take_burst(ctx.now, self.burst);
                    if taken > 0 {
                        self.phase = ConstSleepPhase::Chunk { k: taken };
                        return Action::Work(Cycles(self.app.burst_cycles(taken)));
                    }
                    if world.queues[q].tx_stale(ctx.now) {
                        world.flush_queue_tx(q, ctx.now);
                    }
                    self.phase = ConstSleepPhase::GoSleep;
                    return Action::Work(Cycles(
                        calib::EMPTY_POLL_CYCLES + calib::SLEEP_CALL_CYCLES,
                    ));
                }
                ConstSleepPhase::Chunk { k } => {
                    world.chunk_done(q, ctx.now, k);
                    self.phase = ConstSleepPhase::Poll;
                }
                ConstSleepPhase::GoSleep => {
                    self.phase = ConstSleepPhase::AfterSleep;
                    return Action::Sleep {
                        service: self.service,
                        duration: self.period,
                    };
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// XDP / NAPI baseline (paper §V-D)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum XdpPhase {
    /// IRQs enabled, core idle, waiting for packets.
    IrqWait,
    /// Softirq entry after an interrupt.
    IrqEntry,
    /// NAPI polling loop.
    Poll,
    /// A chunk finished processing.
    Chunk { k: u64 },
    /// Budget exhausted or queue empty — exit softirq, re-enable IRQs.
    IrqExit,
}

/// An XDP queue handler: 1:1 queue-to-core, interrupt driven, NAPI-polled.
pub struct XdpHandler {
    q: usize,
    cycles_per_packet: u64,
    last_irq: Nanos,
    /// EWMA of packets per interrupt, driving adaptive moderation.
    batch_ewma: Ewma,
    /// Packets retrieved since the current IRQ fired.
    irq_packets: u64,
    phase: XdpPhase,
}

impl XdpHandler {
    /// Handler for queue `q` (runs `xdp_router_ipv4`-equivalent cost).
    pub fn new(q: usize) -> Self {
        XdpHandler {
            q,
            cycles_per_packet: calib::XDP_CYCLES_PER_PACKET,
            last_irq: Nanos::ZERO,
            batch_ewma: Ewma::new(0.2),
            irq_packets: 0,
            phase: XdpPhase::IrqWait,
        }
    }

    fn itr(&self) -> Nanos {
        // Adaptive interrupt moderation: long window under sustained load,
        // short window when traffic is light.
        if self.batch_ewma.value_or(0.0) > calib::NAPI_BUDGET as f64 / 2.0 {
            calib::XDP_ITR_HIGH
        } else {
            calib::XDP_ITR_LOW
        }
    }
}

impl Behavior<World> for XdpHandler {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        let q = self.q;
        loop {
            match self.phase {
                XdpPhase::IrqWait => {
                    match world.queues[q].peek_next_arrival() {
                        None => {
                            // No traffic at all: re-check later, zero CPU.
                            return Action::WaitUntil(
                                ctx.now.saturating_add(Nanos::from_millis(100)),
                            );
                        }
                        Some(t) => {
                            // The NIC raises the interrupt after delivery
                            // latency, but never before the moderation (ITR)
                            // window since the previous IRQ has elapsed —
                            // even if packets are already waiting. This gate
                            // is what keeps interrupt rates bounded under
                            // load (and is what the erratum in our first
                            // model missed: without it, a drain-tail arrival
                            // landing during the IRQ-exit path re-raises
                            // immediately and the handler livelocks at 100%
                            // CPU — Mogul & Ramakrishnan's receive livelock,
                            // which NAPI+ITR exist to prevent).
                            let base = if t > ctx.now {
                                t.saturating_add(calib::IRQ_DELIVERY)
                            } else {
                                ctx.now
                            };
                            let fire = base.max(self.last_irq.saturating_add(self.itr()));
                            self.phase = XdpPhase::IrqEntry;
                            if fire > ctx.now {
                                return Action::WaitUntil(fire);
                            }
                        }
                    }
                }
                XdpPhase::IrqEntry => {
                    self.last_irq = ctx.now;
                    self.phase = XdpPhase::Poll;
                    return Action::Work(Cycles(calib::XDP_IRQ_CYCLES));
                }
                XdpPhase::Poll => {
                    let taken = world.queues[q].take_burst(ctx.now, calib::NAPI_BUDGET);
                    self.irq_packets += taken;
                    if taken > 0 {
                        self.phase = XdpPhase::Chunk { k: taken };
                        return Action::Work(Cycles(taken * self.cycles_per_packet + 200));
                    }
                    self.phase = XdpPhase::IrqExit;
                }
                XdpPhase::Chunk { k } => {
                    world.chunk_done(q, ctx.now, k);
                    // NAPI: stay in polling mode while packets keep coming.
                    self.phase = XdpPhase::Poll;
                }
                XdpPhase::IrqExit => {
                    // Adaptive moderation keys off packets per interrupt,
                    // not per poll chunk (the drain tail's tiny chunks
                    // would otherwise bias the estimate low).
                    self.batch_ewma.update(self.irq_packets as f64);
                    self.irq_packets = 0;
                    self.phase = XdpPhase::IrqWait;
                    return Action::Work(Cycles(600));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ferret co-tenant (paper §V-E)
// ---------------------------------------------------------------------------

/// One ferret worker: a fixed amount of CPU work executed in chunks, with
/// its completion time recorded in the world.
pub struct FerretWorker {
    /// Worker index (for the completion record).
    pub worker: usize,
    remaining: Cycles,
    chunk: Cycles,
}

impl FerretWorker {
    /// Worker with `total` cycles of work in `chunk`-sized slices.
    pub fn new(worker: usize, total: Cycles, chunk: Cycles) -> Self {
        FerretWorker {
            worker,
            remaining: total,
            chunk: Cycles(chunk.0.max(1)),
        }
    }
}

impl Behavior<World> for FerretWorker {
    fn on_run(&mut self, world: &mut World, ctx: &mut RunCtx<'_>) -> Action {
        if self.remaining.0 == 0 {
            world.ferret_done.push(FerretCompletion {
                worker: self.worker,
                at: ctx.now,
            });
            return Action::Exit;
        }
        let step = Cycles(self.remaining.0.min(self.chunk.0));
        self.remaining = self.remaining.saturating_sub(step);
        Action::Work(step)
    }
}
