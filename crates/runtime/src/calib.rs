//! Calibration constants of the full-system model.
//!
//! Every number here is back-solved from a measurement the paper itself
//! reports (the derivations are spelled out next to each constant and in
//! DESIGN.md §3). Changing them moves absolute values, not the shapes the
//! reproduction targets — but with these values the absolute numbers land
//! close to the paper's too.

use metronome_sim::Nanos;

/// Rx descriptor ring size (descriptors per queue).
///
/// Table I pins this: at line rate the ring must absorb `NV ≈ 494` packets
/// at target vacation 20 µs with 1.18‰ loss, while `NV ≈ 385` (15 µs) is
/// near-lossless — i.e. the ring holds ≈512 packets. X520/XL710 rings are
/// configurable 32–4096, so 512 is a legal and evidently used setting.
pub const RX_RING_SIZE: usize = 512;

/// CPU cycles burned on the wake path of one sleep&wake cycle *after* the
/// timer fires: timer IRQ handling, context switch in, syscall return,
/// cache re-warming.
///
/// Back-solved (together with [`SLEEP_CALL_CYCLES`]) from the paper's idle
/// CPU floor: ≈20% total for M = 3 threads at zero traffic with
/// `V̄ = 10 µs` (Fig. 9b) means each ~34.5 µs cycle costs ≈2.1 µs of CPU,
/// i.e. ≈4400 cycles at 2.1 GHz split across entry and exit paths.
pub const WAKE_PATH_CYCLES: u64 = 2600;

/// CPU cycles burned entering a sleep: syscall entry, hrtimer arming,
/// context switch out. See [`WAKE_PATH_CYCLES`].
pub const SLEEP_CALL_CYCLES: u64 = 1800;

/// Cycles for a failed trylock attempt (read + CMPXCHG miss + branch).
pub const BUSY_TRY_CYCLES: u64 = 160;

/// Cycles for a successful trylock + queue-state load.
pub const ACQUIRE_CYCLES: u64 = 220;

/// Cycles for an empty `rx_burst` poll (descriptor ring scan, no packets).
pub const EMPTY_POLL_CYCLES: u64 = 90;

/// Cycles to release the lock, update the estimator and compute TS.
pub const RELEASE_CYCLES: u64 = 260;

/// Fixed one-way path latency outside the buffering under study: wire,
/// MoonGen timestamping, DMA posting, PCIe.
///
/// Calibrated to the paper's best-case numbers: static DPDK's minimum mean
/// latency is 6.83 µs and tuned Metronome reaches 7.21 µs (§V-C) — both
/// sit on this floor.
pub const BASE_PATH_LATENCY: Nanos = Nanos(6_300);

/// l3fwd's Tx drain timeout: DPDK's `BURST_TX_DRAIN_US` default. A partial
/// Tx batch is force-flushed once it has been sitting this long.
pub const TX_DRAIN_TIMEOUT: Nanos = Nanos(100_000);

/// XDP per-packet cost (cycles) for `xdp_router_ipv4`.
///
/// Back-solved from Fig. 10b: ≈200% total CPU across 4 cores at
/// 13.57 Mpps ⇒ ≈50% per core per 3.4 Mpps ⇒ ≈310 cycles/packet at
/// 2.1 GHz. Also consistent with one core being unable to carry 10 G line
/// rate (cap ≈6.7 Mpps), which is why the paper's XDP setup needs 4 cores.
pub const XDP_CYCLES_PER_PACKET: u64 = 310;

/// Per-interrupt housekeeping cost (cycles): IRQ entry/exit, NAPI
/// scheduling, softirq dispatch — "per-interrupt housekeeping instructions
/// required to lead control to the packet processing routine" (§V-D).
pub const XDP_IRQ_CYCLES: u64 = 2_800;

/// NAPI poll budget (packets per softirq poll; Linux default).
pub const NAPI_BUDGET: u64 = 64;

/// Interrupt moderation (ITR) window at high packet rates.
pub const XDP_ITR_HIGH: Nanos = Nanos(50_000);

/// Interrupt moderation window at low rates (adaptive ITR low-latency
/// mode).
pub const XDP_ITR_LOW: Nanos = Nanos(12_000);

/// IRQ delivery latency from DMA completion to handler entry.
pub const IRQ_DELIVERY: Nanos = Nanos(2_500);

/// Default latency sample stride (one in this many accepted packets gets
/// timestamped, MoonGen-style). Prime, so samples never alias with the
/// 32-packet Tx batch positions (a power-of-two stride would always
/// sample the same batch slot and bias the Tx-hold component).
pub const LATENCY_SAMPLE_STRIDE: u64 = 509;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_floor_matches_paper() {
        // M = 3 threads, V̄ = 10 µs, zero traffic: TS = 30 µs, actual sleep
        // ≈ 34.5 µs; per cycle CPU = wake + trylock + empty poll + release
        // + sleep call.
        let cycle_cycles = WAKE_PATH_CYCLES
            + ACQUIRE_CYCLES
            + EMPTY_POLL_CYCLES
            + RELEASE_CYCLES
            + SLEEP_CALL_CYCLES;
        let cycle_cpu_us = cycle_cycles as f64 / 2100.0; // at 2.1 GHz
        let period_us = 34.5;
        let total_pct = 3.0 * cycle_cpu_us / period_us * 100.0;
        assert!(
            (15.0..25.0).contains(&total_pct),
            "idle CPU {total_pct}% should be ≈20% (paper Fig. 9b)"
        );
    }

    #[test]
    fn xdp_single_core_cannot_do_line_rate() {
        let cap_pps = 2.1e9 / XDP_CYCLES_PER_PACKET as f64;
        assert!(cap_pps < 14.88e6, "one XDP core must be below line rate");
        assert!(4.0 * cap_pps > 13.57e6, "four cores must reach 13.57 Mpps");
    }

    #[test]
    fn ring_absorbs_table1_vacations() {
        // 14.88 Mpps × 19.55 µs measured V ≈ 291 packets: fits in 512.
        let nv = 14.88e6 * 19.55e-6;
        assert!((nv as usize) < RX_RING_SIZE);
        // 14.88 Mpps × 33.28 µs ≈ 495: just below 512 (1.18‰ loss regime).
        let nv20 = 14.88e6 * 33.28e-6;
        assert!((nv20 as usize) < RX_RING_SIZE && (nv20 as usize) > 470);
    }
}
