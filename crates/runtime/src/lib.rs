//! # metronome-runtime — full-system simulation drivers
//!
//! Glues every substrate together into runnable whole-system experiments:
//! traffic (`metronome-traffic`) feeds NIC descriptor rings
//! (`metronome-dpdk`) drained by thread behaviors — Metronome workers,
//! static DPDK pollers, XDP NAPI handlers, ferret co-tenants — scheduled
//! by the OS model (`metronome-os`) and coordinated by the Metronome
//! policy/controller (`metronome-core`).
//!
//! The public surface is intentionally small:
//!
//! * [`scenario::Scenario`] — describe an experiment (system, app,
//!   traffic, governor, ferret, knobs);
//! * [`runner::run`] — execute it deterministically in the
//!   discrete-event simulator;
//! * [`realtime_runner::run_realtime`] — execute the same scenario on
//!   real threads: wall-clock paced load generation, Toeplitz RSS over
//!   bounded mbuf rings, real Metronome workers running functional
//!   packet processors, per-packet latency histograms;
//! * [`report::RunReport`] — everything the paper's tables/figures plot:
//!   throughput, loss (‰), CPU %, package watts, latency boxplots,
//!   vacation/busy periods, `NV`, ρ, busy tries, ferret slowdowns,
//!   adaptation time series.
//!
//! Calibration constants and their paper-derived justifications live in
//! [`calib`]; DESIGN.md §3 summarizes them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps_profile;
pub mod behaviors;
pub mod calib;
pub mod realtime_runner;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod world;

pub use apps_profile::AppProfile;
pub use behaviors::{MetronomeWorker, WorldBackend};
pub use metronome_core::ExecBackend;
pub use metronome_dpdk::shared_ring::RingPath;
pub use realtime_runner::{
    run_realtime, run_realtime_with, try_run_realtime, try_run_realtime_with, RealtimeError,
};
pub use report::{QueueReport, RampPoint, RunReport};
pub use runner::run;
pub use scenario::{FerretSpec, Scenario, SystemKind, TrafficSpec};
pub use world::{SimQueue, World};
