//! Realtime scenario execution: `run(Scenario) -> RunReport` on real
//! `std::thread`s.
//!
//! The same [`Scenario`] the discrete-event simulator executes runs here
//! against the machine instead of a model, stage for stage:
//!
//! ```text
//! ArrivalProcess ──wall-clock──▶ mempool alloc ──Toeplitz RSS──▶ mbuf rings
//!   (PacedArrivals)               (template refill)               (RssPort)
//!        ──▶ Metronome workers ──▶ PacketProcessor bursts ──▶ mempool free
//!              (Listing 2 on real threads)   (process_burst + latency)
//! ```
//!
//! * **Load generation** — the scenario's [`crate::scenario::TrafficSpec`] builds one
//!   aggregate [`metronome_traffic::ArrivalProcess`], replayed in real
//!   time by [`PacedArrivals`] (MoonGen's role) in bounded batches. Each
//!   arrival takes a pre-allocated buffer from the shared [`Mempool`] and
//!   refills it from its flow's template frame — **zero heap allocation
//!   per packet**; a batch's buffers come out of the pool in one burst
//!   (`alloc_burst`), and an exhausted pool is a counted drop cause of
//!   its own, distinct from ring tail-drop.
//! * **RSS dispatch** — the frame's flow steers it through a real Toeplitz
//!   hash onto one of `N` bounded mbuf rings ([`RssPort`]), offered ring
//!   by ring in bursts (`offer_burst`); a full ring tail-drops with
//!   per-queue accounting, and the dropped frames' buffers recycle
//!   straight back to the pool.
//! * **Retrieval** — `cfg.m_threads` real Metronome workers
//!   ([`Metronome`]) race trylocks and drain bursts, running the same
//!   `MetronomeEngine` as the simulation; each drained burst is processed
//!   with one [`PacketProcessor::process_burst`] call and its mbufs are
//!   returned to the pool in one `free_burst`.
//! * **Processing & measurement** — each frame passes through a functional
//!   [`PacketProcessor`] (per-queue instance, so concurrent queues never
//!   contend), and its scheduled-arrival → completion latency is recorded
//!   in a per-queue log-linear [`Histogram`] (P4TG-style data-plane
//!   histograms rather than sampled reservoirs: recording is O(1), so
//!   every packet is measured).
//!
//! The result is assembled into the same [`RunReport`] the simulator
//! emits (via [`RunReport::from_counts`]), with the fields a wall-clock
//! run cannot observe documented per field below. Packet conservation is
//! exact and asserted: `offered = forwarded + dropped`, where `dropped`
//! breaks down into ring tail-drops, mempool-exhaustion drops, and frames
//! stranded in rings at shutdown (normally zero — the runner drains
//! before stopping).

use crate::report::{QueueReport, RunReport};
use crate::scenario::{Scenario, SystemKind};
use metronome_apps::processor::PacketProcessor;
use metronome_apps::{FloWatcher, IpsecGateway, L3Fwd};
use metronome_core::realtime::Metronome;
use metronome_core::MetronomeConfig;
use metronome_dpdk::{Mbuf, Mempool, RssPort};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_sim::stats::Histogram;
use metronome_sim::Nanos;
use metronome_telemetry::{CounterSnapshot, DropCause, Sampler, TelemetryHub, TelemetrySink};
use metronome_traffic::{FlowSet, PacedArrivals, WallClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flows in the generated population (enough for RSS to spread evenly).
const FLOWS_PER_RUN: usize = 256;

/// Destination subnets, matching `L3Fwd::with_sample_routes(4)`.
const L3FWD_SUBNETS: usize = 4;

/// Mbuf dataroom of the run's pool (DPDK's default; far above the
/// templates' minimal frames).
const MBUF_DATAROOM: usize = 2048;

/// Largest arrival batch the generator requests from the pool at once
/// (bounds how many buffers a catch-up backlog can demand before any
/// recycle).
const GEN_BATCH: usize = 256;

/// How long after the traffic horizon the runner waits for workers to
/// drain the rings before declaring leftovers stranded.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Builds the functional packet processor for one queue. Factories run
/// once per queue at startup; each queue owns its instance, so processor
/// state (route tables, flow tables, SA counters) is per-queue like DPDK's
/// per-lcore state.
pub type ProcessorFactory<'a> = dyn Fn(usize) -> Box<dyn PacketProcessor> + 'a;

/// The functional processor wired to an app profile name (the realtime
/// counterpart of the cost-only [`crate::apps_profile::AppProfile`]).
///
/// # Panics
/// If the profile has no functional implementation.
pub fn default_processor(app_name: &str) -> Box<dyn PacketProcessor> {
    match app_name {
        "l3fwd-lpm" => Box::new(L3Fwd::with_sample_routes(L3FWD_SUBNETS)),
        "ipsec-secgw-out" => Box::new(IpsecGateway::outbound()),
        "flowatcher" => Box::new(FloWatcher::new(65_536)),
        other => panic!("no functional processor wired for app profile '{other}'"),
    }
}

/// Per-queue application state: the processor plus its latency histogram,
/// behind one mutex taken **once per burst**, not per packet. Uncontended
/// by construction — only the worker holding the queue's trylock
/// processes that queue's packets.
struct QueueApp {
    proc: Box<dyn PacketProcessor>,
    latency_ns: Histogram,
}

/// Execute a Metronome scenario end-to-end on real threads, with the
/// app profile's default functional processor.
///
/// # Panics
/// If the scenario's system is not [`SystemKind::Metronome`] (the
/// baselines are simulation-only) or its app has no functional processor.
pub fn run_realtime(sc: &Scenario) -> RunReport {
    run_realtime_with(sc, &|_q| default_processor(sc.app.name))
}

/// [`run_realtime`] with a custom per-queue processor factory (tests use
/// this to inject instrumented or deliberately slow applications).
pub fn run_realtime_with(sc: &Scenario, make_app: &ProcessorFactory) -> RunReport {
    let cfg: MetronomeConfig = match &sc.system {
        SystemKind::Metronome(cfg) => cfg.clone(),
        other => panic!("the realtime runner executes Metronome scenarios only (got {other:?})"),
    };
    assert_eq!(cfg.n_queues, sc.n_queues, "scenario/config queue mismatch");

    // ---- receive side: RSS port over bounded mbuf rings ------------------
    let port = Arc::new(RssPort::new(sc.n_queues, sc.ring_size));

    // ---- the shared mbuf pool --------------------------------------------
    // Default population: every ring full twice over, plus a generation
    // batch and one in-flight burst per worker — generous enough that a
    // correctly sized run never sees pool exhaustion, small enough that a
    // deliberate `with_mbuf_pool` undersizing bites immediately.
    let population = sc.mbuf_pool.unwrap_or_else(|| {
        2 * sc.n_queues * sc.ring_size + GEN_BATCH + cfg.m_threads * cfg.burst as usize
    });
    let pool = Mempool::new(population, MBUF_DATAROOM);

    // ---- frame templates: routable flows, RSS resolved once per flow -----
    let flows = FlowSet::routable(FLOWS_PER_RUN, L3FWD_SUBNETS, sc.seed);
    let templates: Vec<(bytes::BytesMut, usize, u32)> = flows
        .flows()
        .iter()
        .map(|t| {
            let frame = build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS);
            let input = t.rss_input();
            (frame, port.queue_for(&input), port.rss_hash(&input))
        })
        .collect();

    // ---- per-queue functional applications -------------------------------
    let apps: Arc<Vec<Mutex<QueueApp>>> = Arc::new(
        (0..sc.n_queues)
            .map(|q| {
                Mutex::new(QueueApp {
                    proc: make_app(q),
                    latency_ns: Histogram::latency(),
                })
            })
            .collect(),
    );

    // ---- telemetry: counters always on, sampling on request --------------
    // Workers bump the hub's relaxed atomics at protocol grain; the
    // producer side accounts drops by cause through the same hub, so a
    // sampler thread (below) sees one coherent counter surface.
    let hub = TelemetryHub::new(cfg.m_threads, sc.n_queues);

    // ---- workers: the Listing 2 protocol on real threads -----------------
    // The latency clock is anchored only after the workers are up (the
    // cell is filled below): anchoring before the spawn would stamp the
    // arrivals falling due during thread creation with scheduled times
    // milliseconds in the past and inflate the latency tail. No packet
    // can be processed before the cell is set — generation starts after.
    let clock_cell: Arc<std::sync::OnceLock<WallClock>> = Arc::new(std::sync::OnceLock::new());
    let measure_latency = sc.latency_stride > 0;
    let run_start = Instant::now();
    let metronome = Metronome::start_with_telemetry(
        cfg.clone(),
        port.worker_queues(),
        {
            let apps = Arc::clone(&apps);
            let clock_cell = Arc::clone(&clock_cell);
            let pool = pool.clone();
            move |q, burst: &mut Vec<Mbuf>| {
                // One lock, one process_burst, one histogram pass, one
                // free_burst — per burst, never per packet.
                let mut slot = apps[q].lock();
                let _verdicts = slot.proc.process_burst(burst);
                if measure_latency {
                    if let Some(clock) = clock_cell.get() {
                        let done = clock.now();
                        for mbuf in burst.iter() {
                            let lat = done.saturating_sub(mbuf.arrival);
                            slot.latency_ns.record(lat.as_nanos());
                        }
                    }
                }
                drop(slot);
                pool.free_burst(burst.drain(..));
            }
        },
        &hub,
    );

    // ---- sampler thread (the realtime counterpart of the simulation's
    // scheduled sampling events): every `series_every` it snapshots the
    // hub's cumulative counters plus the ring/pool occupancy gauges, and
    // takes one final snapshot after shutdown accounting settles so the
    // windowed series telescopes exactly to the report's totals.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler_thread = sc.series_every.map(|every| {
        let hub = Arc::clone(&hub);
        let port = Arc::clone(&port);
        let pool = pool.clone();
        let apps = Arc::clone(&apps);
        let stop = Arc::clone(&sampler_stop);
        let interval = Duration::from_nanos(every.as_nanos());
        std::thread::Builder::new()
            .name("metronome-sampler".into())
            .spawn(move || {
                let mut sampler = Sampler::new(every);
                let mut last = Instant::now();
                loop {
                    // Acquire pairs with the Release store below: once the
                    // flag reads true, every counter write the main thread
                    // made before raising it (worker counters settled by
                    // join, stranded-frame mirrors) is visible here — the
                    // final snapshot must telescope exactly.
                    while last.elapsed() < interval && !stop.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let stopping = stop.load(Ordering::Acquire);
                    let mut snap =
                        CounterSnapshot::new(Nanos(run_start.elapsed().as_nanos() as u64));
                    hub.fill_snapshot(&mut snap);
                    snap.offered = port.total_offered() + snap.dropped_pool;
                    snap.occupancy = port.occupancies();
                    snap.pool_in_use = pool.in_use() as u64;
                    if measure_latency {
                        // Merging the per-queue histograms takes each app
                        // mutex briefly; workers hold it once per burst,
                        // so contention is rare and bounded.
                        let mut merged = Histogram::latency();
                        for app in apps.iter() {
                            merged.merge(&app.lock().latency_ns);
                        }
                        snap.latency = Some(merged);
                    }
                    sampler.sample(snap);
                    last = Instant::now();
                    if stopping {
                        return sampler.into_series();
                    }
                }
            })
            .expect("spawn sampler thread")
    });

    // ---- traffic: one aggregate arrival process, wall-clock paced --------
    let mut arrivals = sc.traffic.build(1, &sc.nic, sc.seed);
    let mut paced = PacedArrivals::new(arrivals.remove(0), sc.duration).with_max_batch(GEN_BATCH);
    clock_cell
        .set(paced.clock())
        .expect("latency clock anchored twice");

    // ---- load generation (inline, like the sim's event loop) -------------
    // Per batch: one pool transaction hands out blank mbufs, each is
    // refilled from its flow's template (a memcpy into an already
    // allocated buffer), staged per target queue, and offered ring by
    // ring in bursts. Frames the pool could not cover are counted as
    // pool-exhaustion drops against the queue RSS would have picked;
    // frames a full ring rejects come back from `offer_burst` and their
    // buffers return to the pool.
    let mut seq = 0usize;
    let mut blanks: Vec<Mbuf> = Vec::with_capacity(GEN_BATCH);
    let mut staged: Vec<Vec<Mbuf>> = (0..sc.n_queues)
        .map(|_| Vec::with_capacity(GEN_BATCH))
        .collect();
    while let Some(batch) = paced.next_batch() {
        pool.alloc_burst(batch.len(), &mut blanks);
        for &t in batch {
            let (frame, q, hash) = &templates[seq % templates.len()];
            seq += 1;
            match blanks.pop() {
                Some(mut mbuf) => {
                    mbuf.refill(frame);
                    mbuf.queue = *q as u16;
                    mbuf.rss_hash = *hash;
                    mbuf.arrival = t;
                    staged[*q].push(mbuf);
                }
                // Pool exhausted: the NIC has a descriptor but no buffer
                // to DMA into — a drop cause of its own.
                None => hub.dropped(*q, DropCause::Pool, 1),
            }
        }
        for (q, frames) in staged.iter_mut().enumerate() {
            if frames.is_empty() {
                continue;
            }
            port.offer_burst(q, frames);
            // Whatever the ring rejected is tail-dropped (already counted
            // by the ring; mirrored into the telemetry hub): recycle the
            // buffers in one transaction.
            hub.dropped(q, DropCause::Ring, frames.len() as u64);
            pool.free_burst(frames.drain(..));
        }
    }

    // ---- run out the horizon ----------------------------------------------
    // A source can dry up before the scenario ends (Silent traffic, an
    // OnOff off-tail): the workers must still run their idle sleep/wake
    // loop for the full configured duration, or idle-cost measurements
    // (wakes, busy fraction) would cover a spawn/teardown window instead
    // of the scenario — the sim runs the same horizon unconditionally.
    let elapsed = paced.clock().now();
    if elapsed < sc.duration {
        std::thread::sleep(Duration::from_nanos((sc.duration - elapsed).as_nanos()));
    }

    // ---- drain and stop ---------------------------------------------------
    // Generation is over, so `accepted` is final; wait for the workers to
    // catch up before stopping, bounded by a grace period.
    let deadline = Instant::now() + DRAIN_GRACE;
    loop {
        let processed: u64 = (0..sc.n_queues).map(|q| metronome.processed(q)).sum();
        if processed >= port.total_accepted() || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = metronome.stop();
    // Busy time accrues from worker start to join — including the drain
    // tail past the traffic horizon — so CPU% must be normalized by the
    // same span, not by the scenario duration.
    let actual_wall = run_start.elapsed().as_secs_f64();
    // Anything still queued was accepted but never retrieved (only possible
    // if the grace period expired): count it as dropped so conservation
    // stays exact — and recycle the buffers, so the pool audit below
    // still balances.
    let mut stranded_scratch: Vec<Mbuf> = Vec::new();
    let stranded: Vec<u64> = port
        .rings()
        .iter()
        .enumerate()
        .map(|(q, ring)| {
            let mut n = 0u64;
            while ring.pop_burst(&mut stranded_scratch, GEN_BATCH) > 0 {
                n += stranded_scratch.len() as u64;
                pool.free_burst(stranded_scratch.drain(..));
            }
            hub.dropped(q, DropCause::Ring, n);
            n
        })
        .collect();

    // Every buffer the pool handed out must be home again: the workers
    // recycle after each burst and the generator after each offer, so a
    // leak here is a real datapath bug, not a timing artifact.
    debug_assert_eq!(pool.in_use(), 0, "mbuf leak: pool buffers unaccounted");

    // Shutdown accounting is settled: release the sampler for its final
    // snapshot, so the series totals match the report's counters exactly.
    let timeseries = sampler_thread.map(|handle| {
        sampler_stop.store(true, Ordering::Release);
        handle.join().expect("sampler thread panicked")
    });
    let pool_drops: Vec<u64> = (0..sc.n_queues)
        .map(|q| hub.queue(q).dropped_pool.load(Ordering::Relaxed))
        .collect();

    let ctrl = stats
        .controller
        .as_ref()
        .expect("Metronome::stop snapshots the controller");
    let forwarded = stats.total_processed();
    let dropped_pool: u64 = pool_drops.iter().sum();
    let dropped_ring = port.total_dropped() + stranded.iter().sum::<u64>();
    let dropped = dropped_ring + dropped_pool;
    let offered = port.total_offered() + dropped_pool;
    assert_eq!(
        offered,
        forwarded + dropped,
        "packet conservation violated in the realtime pipeline"
    );

    // ---- report: same columns as the simulator ----------------------------
    let mut report =
        RunReport::from_counts(sc.name.clone(), sc.duration, offered, forwarded, dropped);
    report.dropped_ring = dropped_ring;
    report.dropped_pool = dropped_pool;
    report.mempool = Some(pool.stats());
    report.timeseries = timeseries;
    report.queues = (0..sc.n_queues)
        .map(|q| {
            let st = ctrl.queue(q);
            QueueReport {
                mean_vacation_us: st.mean_vacation().map_or(0.0, |v| v.as_micros_f64()),
                mean_busy_us: st.mean_busy().map_or(0.0, |b| b.as_micros_f64()),
                // NV (packets found queued at acquire) is not instrumented
                // on the hot path; the sim reports it.
                nv: 0.0,
                rho: ctrl.rho(q),
                total_tries: st.total_tries,
                busy_tries: st.busy_tries,
                busy_try_fraction: st.busy_try_fraction(),
                drained: stats.processed[q],
                dropped: port.rings()[q].dropped() + stranded[q] + pool_drops[q],
                dropped_pool: pool_drops[q],
            }
        })
        .collect();
    // CPU: the measured busy-period fraction of the run. This is a lower
    // bound (wake path and trylock races are excluded); real deployments
    // would read /proc — the sim charges those costs from calibration.
    report.cpu_total_pct = (0..sc.n_queues)
        .map(|q| ctrl.queue(q).busy_sum.as_secs_f64())
        .sum::<f64>()
        / actual_wall.max(f64::MIN_POSITIVE)
        * 100.0;
    report.busy_try_fraction = ctrl.busy_try_fraction();
    report.total_wakes = stats.wakes.iter().sum();
    if measure_latency {
        let mut merged = Histogram::latency();
        for app in apps.iter() {
            merged.merge(&app.lock().latency_ns);
        }
        report.latency_us = merged.boxplot_scaled(1e-3);
    }
    report
}
