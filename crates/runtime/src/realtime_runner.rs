//! Realtime scenario execution: `run(Scenario) -> RunReport` on real
//! `std::thread`s.
//!
//! The same [`Scenario`] the discrete-event simulator executes runs here
//! against the machine instead of a model, stage for stage:
//!
//! ```text
//! ArrivalProcess ──wall-clock──▶ mempool alloc ──Toeplitz RSS──▶ mbuf rings
//!   (PacedArrivals)               (template refill)               (RssPort)
//!        ──▶ retrieval workers ──▶ PacketProcessor bursts ──▶ mempool free
//!          (discipline per SystemKind)  (process_burst + latency)
//! ```
//!
//! * **Load generation** — the scenario's [`crate::scenario::TrafficSpec`] builds
//!   `gen_shards` [`metronome_traffic::ArrivalProcess`] slices, each
//!   replayed in real time by a [`PacedArrivals`] (MoonGen's role — and
//!   MoonGen's multi-core scaling recipe: flows are partitioned across
//!   shards, so per-flow order is preserved while shards produce
//!   concurrently onto the multi-producer ring path) in bounded batches
//!   against one shared [`WallClock`]. Each arrival takes a pre-allocated
//!   buffer from the shared [`Mempool`] through a per-shard cache and
//!   refills it from its flow's template frame — **zero heap allocation
//!   per packet**; a batch's buffers come out of the pool in one burst
//!   (`alloc_burst`), an exhausted pool is a counted drop cause of its
//!   own (distinct from ring tail-drop), and each batch scatters to its
//!   target queues through a [`QueueScatter`] counting-sort arena in
//!   `O(batch + touched queues)` — independent of the queue count. Every
//!   batch also records its offered-vs-scheduled lateness into a
//!   per-shard jitter histogram (the P4TG-style always-on pacing check),
//!   timestamped by a [`CoarseClock`] that reads the OS clock once per
//!   batch, not per packet.
//! * **RSS dispatch** — the frame's flow steers it through a real Toeplitz
//!   hash onto one of `N` bounded mbuf rings ([`RssPort`]), offered ring
//!   by ring in bursts (`offer_burst`); a full ring tail-drops with
//!   per-queue accounting, and the dropped frames' buffers recycle
//!   straight back to the pool.
//! * **Retrieval** — every [`SystemKind`] maps onto a
//!   `metronome_core::discipline` worker set ([`WorkerSet`] spawns it on
//!   the scenario's [`metronome_core::ExecBackend`] — one OS thread per
//!   worker, or cooperative tasks on a sharded async executor):
//!   Metronome threads race trylocks and sleep adaptive timeouts
//!   (Listing 2); `StaticDpdk` pins one spinning `BusyPoll` worker per
//!   queue; `Xdp` parks one `InterruptLike` worker per queue on a
//!   [`metronome_core::discipline::Doorbell`] the RSS port rings on every
//!   accepted burst (adaptive moderation window included); `ConstSleep`
//!   retrieves on a fixed period; `Idle` spawns nothing. Same rings, same
//!   apps, same report — only the retrieval discipline differs, which is
//!   exactly what the paper's comparative figures vary.
//! * **Processing & measurement** — each frame passes through a functional
//!   [`PacketProcessor`] (per-queue instance, so concurrent queues never
//!   contend), and its scheduled-arrival → completion latency is recorded
//!   in a per-queue log-linear [`Histogram`] (P4TG-style data-plane
//!   histograms rather than sampled reservoirs: recording is O(1), so
//!   every packet is measured).
//!
//! The result is assembled into the same [`RunReport`] the simulator
//! emits (via [`RunReport::from_counts`]), with the fields a wall-clock
//! run cannot observe documented per field below. Packet conservation is
//! exact and asserted: `offered = forwarded + dropped`, where `dropped`
//! breaks down into ring tail-drops, mempool-exhaustion drops, and frames
//! stranded in rings at shutdown (normally zero — the runner drains
//! before stopping; under `Idle` every accepted frame is stranded by
//! construction and counted).
//!
//! A scenario the runner cannot execute (an app profile with no
//! functional processor, a queue-count mismatch) is rejected with a typed
//! [`RealtimeError`] through [`try_run_realtime`]; the panicking
//! [`run_realtime`] convenience wrapper merely unwraps it.

use crate::report::{QueueReport, RunReport};
use crate::scenario::{Scenario, SystemKind};
use metronome_apps::processor::PacketProcessor;
use metronome_apps::{FloWatcher, IpsecGateway, L3Fwd};
use metronome_core::discipline::{DisciplineSpec, ModerationConfig};
use metronome_core::executor::WorkerSet;
use metronome_core::rxqueue::RxQueue;
use metronome_core::{AdaptiveController, MetronomeConfig};
use metronome_dpdk::{Mbuf, Mempool, QueueScatter, RingConsumer, RingPath, RssPort};
use metronome_net::headers::{build_udp_frame, Mac, MIN_FRAME_NO_FCS};
use metronome_sim::stats::Histogram;
use metronome_sim::CoarseClock;
use metronome_sim::Nanos;
use metronome_sim::Rng;
use metronome_telemetry::{
    CounterSnapshot, DropCause, Sampler, TelemetryHub, TelemetrySink, TraceHub,
    DEFAULT_RING_CAPACITY,
};
use metronome_traffic::{FlowSet, InjectionStats, PacedArrivals, PlannedFaults, WallClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flows in the generated population (enough for RSS to spread evenly).
const FLOWS_PER_RUN: usize = 256;

/// Destination subnets, matching `L3Fwd::with_sample_routes(4)`.
const L3FWD_SUBNETS: usize = 4;

/// Mbuf dataroom of the run's pool (DPDK's default; far above the
/// templates' minimal frames).
const MBUF_DATAROOM: usize = 2048;

/// Largest arrival batch the generator requests from the pool at once
/// (bounds how many buffers a catch-up backlog can demand before any
/// recycle).
const GEN_BATCH: usize = 256;

/// How long after the traffic horizon the runner waits for workers to
/// drain the rings before declaring leftovers stranded.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Why the realtime runner refused to execute a scenario. Returned by
/// [`try_run_realtime`] instead of panicking, so callers sweeping over
/// generated scenario sets can report and skip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RealtimeError {
    /// The Metronome config's queue count disagrees with the scenario's.
    QueueMismatch {
        /// Queues in the `MetronomeConfig`.
        config: usize,
        /// Queues in the `Scenario`.
        scenario: usize,
    },
    /// The scenario's app profile has no functional processor wired
    /// (cost-model-only profiles exist in the simulator).
    NoProcessor {
        /// The app profile name.
        app: &'static str,
    },
}

impl std::fmt::Display for RealtimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealtimeError::QueueMismatch { config, scenario } => write!(
                f,
                "Metronome config has {config} queues but the scenario has {scenario}"
            ),
            RealtimeError::NoProcessor { app } => {
                write!(f, "no functional processor wired for app profile '{app}'")
            }
        }
    }
}

impl std::error::Error for RealtimeError {}

/// Builds the functional packet processor for one queue. Factories run
/// once per queue at startup; each queue owns its instance, so processor
/// state (route tables, flow tables, SA counters) is per-queue like DPDK's
/// per-lcore state.
pub type ProcessorFactory<'a> = dyn Fn(usize) -> Box<dyn PacketProcessor> + 'a;

/// The functional processor wired to an app profile name, if one exists
/// (the realtime counterpart of the cost-only
/// [`crate::apps_profile::AppProfile`]).
pub fn processor_for(app_name: &str) -> Option<Box<dyn PacketProcessor>> {
    match app_name {
        "l3fwd-lpm" => Some(Box::new(L3Fwd::with_sample_routes(L3FWD_SUBNETS))),
        "ipsec-secgw-out" => Some(Box::new(IpsecGateway::outbound())),
        "flowatcher" => Some(Box::new(FloWatcher::new(65_536))),
        _ => None,
    }
}

/// [`processor_for`], panicking when the profile has no functional
/// implementation.
///
/// # Panics
/// If the profile has no functional implementation.
pub fn default_processor(app_name: &str) -> Box<dyn PacketProcessor> {
    processor_for(app_name)
        .unwrap_or_else(|| panic!("no functional processor wired for app profile '{app_name}'"))
}

/// The Rx-queue capability realized by a DPDK-like ring consumer: the
/// glue between `metronome_core`'s [`RxQueue`] seam and
/// `metronome_dpdk`'s [`RingConsumer`] (a newtype, since both the trait
/// and the type live in other crates). On the default SPSC ring path a
/// worker's burst drain is one batched acquire/release index update.
#[derive(Clone, Debug)]
pub struct WorkerRing(pub RingConsumer);

impl RxQueue<Mbuf> for WorkerRing {
    fn pop(&self) -> Option<Mbuf> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn pop_burst(&self, out: &mut Vec<Mbuf>, max: usize) -> usize {
        self.0.pop_burst(out, max)
    }
}

/// Per-queue application state: the processor plus its latency histogram,
/// behind one mutex taken **once per burst**, not per packet. Uncontended
/// by construction — only one worker drains a queue at a time (the
/// Metronome trylock, or 1:1 worker/queue pinning in the baselines).
struct QueueApp {
    proc: Box<dyn PacketProcessor>,
    latency_ns: Histogram,
}

/// The worker configuration and discipline a [`SystemKind`] maps onto:
/// `None` for [`SystemKind::Idle`] (no workers at all).
fn discipline_for(
    sc: &Scenario,
) -> Result<Option<(MetronomeConfig, DisciplineSpec)>, RealtimeError> {
    let baseline_cfg = || MetronomeConfig {
        m_threads: sc.n_queues,
        n_queues: sc.n_queues,
        ..MetronomeConfig::default()
    };
    match &sc.system {
        SystemKind::Metronome(cfg) => {
            if cfg.n_queues != sc.n_queues {
                return Err(RealtimeError::QueueMismatch {
                    config: cfg.n_queues,
                    scenario: sc.n_queues,
                });
            }
            Ok(Some((cfg.clone(), DisciplineSpec::Metronome)))
        }
        SystemKind::StaticDpdk => Ok(Some((baseline_cfg(), DisciplineSpec::BusyPoll))),
        SystemKind::Xdp => Ok(Some((
            baseline_cfg(),
            DisciplineSpec::InterruptLike(ModerationConfig::default()),
        ))),
        SystemKind::ConstSleep { period } => {
            Ok(Some((baseline_cfg(), DisciplineSpec::ConstSleep(*period))))
        }
        SystemKind::Idle => Ok(None),
    }
}

/// Execute a scenario end-to-end on real threads, with the app profile's
/// default functional processor. Every [`SystemKind`] executes (each maps
/// onto a retrieval discipline; `Idle` runs the pipeline with no
/// consumers).
///
/// # Panics
/// If the scenario is rejected (see [`try_run_realtime`] for the
/// non-panicking form).
pub fn run_realtime(sc: &Scenario) -> RunReport {
    try_run_realtime(sc).unwrap_or_else(|e| panic!("realtime scenario rejected: {e}"))
}

/// [`run_realtime`] with a custom per-queue processor factory (tests use
/// this to inject instrumented or deliberately slow applications).
///
/// # Panics
/// If the scenario is rejected (see [`try_run_realtime_with`]).
pub fn run_realtime_with(sc: &Scenario, make_app: &ProcessorFactory) -> RunReport {
    try_run_realtime_with(sc, make_app)
        .unwrap_or_else(|e| panic!("realtime scenario rejected: {e}"))
}

/// Fallible [`run_realtime`]: a scenario the runner cannot execute comes
/// back as a typed [`RealtimeError`] instead of a panic.
pub fn try_run_realtime(sc: &Scenario) -> Result<RunReport, RealtimeError> {
    // Resolve the processor up front so the factory below cannot panic on
    // user input.
    if processor_for(sc.app.name).is_none() {
        return Err(RealtimeError::NoProcessor { app: sc.app.name });
    }
    try_run_realtime_with(sc, &|_q| default_processor(sc.app.name))
}

/// Fallible [`run_realtime_with`].
pub fn try_run_realtime_with(
    sc: &Scenario,
    make_app: &ProcessorFactory,
) -> Result<RunReport, RealtimeError> {
    let dispatch = discipline_for(sc)?;

    // ---- generator shards -------------------------------------------------
    // Flows are partitioned across shards, so a shard count above the flow
    // population would leave shards with nothing to emit: clamp (a run
    // has FLOWS_PER_RUN flows, far above any sensible shard count).
    let gen_shards = sc.gen_shards.clamp(1, FLOWS_PER_RUN);
    // Concurrent producers need a multi-producer transport: the default
    // SPSC path auto-upgrades to the MPSC (Vyukov) path. An explicit
    // Locked choice is honored — the locked ring is MPMC already. (SPSC
    // with G > 1 would be *safe* — the producer side is guarded — but
    // the guard serializes the shards, defeating the point.)
    let ring_path = if gen_shards > 1 && sc.ring_path == RingPath::Spsc {
        RingPath::Mpsc
    } else {
        sc.ring_path
    };

    // ---- receive side: RSS port over bounded mbuf rings ------------------
    let mut port = RssPort::with_path(sc.n_queues, sc.ring_size, ring_path);

    // ---- worker shape ----------------------------------------------------
    // The worker config sizes the shared state (controller, locks,
    // doorbells) even when no workers spawn, so the report's per-queue
    // columns keep their shape under `Idle`.
    let worker_cfg = dispatch
        .as_ref()
        .map(|(cfg, _)| cfg.clone())
        .unwrap_or_else(|| MetronomeConfig {
            m_threads: sc.n_queues.max(1),
            n_queues: sc.n_queues,
            ..MetronomeConfig::default()
        });
    let n_workers = dispatch
        .as_ref()
        .map_or(0, |(cfg, spec)| spec.workers(cfg.m_threads, cfg.n_queues));

    // ---- the shared mbuf pool --------------------------------------------
    // Default population: every ring full twice over, plus each producer
    // shard's cache high-water mark and each worker cache's (a cache of
    // size C holds at most 2C before spilling) — generous enough that
    // a correctly sized run never sees pool exhaustion, small enough that
    // a deliberate `with_mbuf_pool` undersizing bites immediately.
    let population = sc.mbuf_pool.unwrap_or_else(|| {
        2 * sc.n_queues * sc.ring_size
            + gen_shards * 2 * GEN_BATCH
            + n_workers.max(1) * 2 * worker_cfg.burst as usize
    });
    let pool = Mempool::new(population, MBUF_DATAROOM);

    // ---- frame templates: routable flows, RSS resolved once per flow -----
    let flows = FlowSet::routable(FLOWS_PER_RUN, L3FWD_SUBNETS, sc.seed);
    let templates: Vec<(bytes::BytesMut, usize, u32)> = flows
        .flows()
        .iter()
        .map(|t| {
            let frame = build_udp_frame(Mac::local(1), Mac::local(2), t, &[], MIN_FRAME_NO_FCS);
            let input = t.rss_input();
            (frame, port.queue_for(&input), port.rss_hash(&input))
        })
        .collect();

    // ---- per-queue functional applications -------------------------------
    let apps: Arc<Vec<Mutex<QueueApp>>> = Arc::new(
        (0..sc.n_queues)
            .map(|q| {
                Mutex::new(QueueApp {
                    proc: make_app(q),
                    latency_ns: Histogram::latency(),
                })
            })
            .collect(),
    );

    // ---- telemetry: counters always on, sampling on request --------------
    // Workers bump the hub's relaxed atomics at protocol grain; the
    // producer side accounts drops by cause through the same hub, so a
    // sampler thread (below) sees one coherent counter surface. The hub
    // carries the discipline label so exported series from different
    // systems stay distinguishable.
    let hub = TelemetryHub::labeled(n_workers, sc.n_queues, sc.system.label());

    // Per-shard generator jitter histograms (offered-vs-scheduled lateness
    // per packet): each shard locks its own slot once per batch, the
    // sampler and the report merge them. Always on — pacing fidelity is a
    // first-class measurement, not a tracing extra.
    let gen_jitter: Arc<Vec<Mutex<Histogram>>> = Arc::new(
        (0..gen_shards)
            .map(|_| Mutex::new(Histogram::latency()))
            .collect(),
    );

    // ---- workers: the scenario's retrieval discipline on real threads ----
    // The latency clock is anchored only after the workers are up (the
    // cell is filled below): anchoring before the spawn would stamp the
    // arrivals falling due during thread creation with scheduled times
    // milliseconds in the past and inflate the latency tail. No packet
    // can be processed before the cell is set — generation starts after.
    let clock_cell: Arc<std::sync::OnceLock<WallClock>> = Arc::new(std::sync::OnceLock::new());
    let measure_latency = sc.latency_stride > 0;
    let run_start = Instant::now();
    // Flight-recorder tracing (opt-in): one ring per worker on the thread
    // backend, one per shard on the executor. The untraced start path
    // passes NullTrace, so a `trace: false` scenario records nothing and
    // pays nothing on the record path.
    let trace_hub: Option<Arc<TraceHub>> = match (&dispatch, sc.trace) {
        (Some((cfg, spec)), true) => Some(Arc::new(TraceHub::labeled(
            WorkerSet::<Mbuf, WorkerRing>::trace_recorders(sc.exec, cfg, spec.clone()),
            DEFAULT_RING_CAPACITY,
            sc.system.label(),
        ))),
        _ => None,
    };
    let metronome = dispatch.map(|(cfg, spec)| {
        let worker_burst = cfg.burst as usize;
        let make_process = {
            let apps = &apps;
            let clock_cell = &clock_cell;
            let pool = &pool;
            move |_worker: usize| {
                let apps = Arc::clone(apps);
                let clock_cell = Arc::clone(clock_cell);
                // Each worker owns a burst-sized mempool cache: a
                // recycled burst is a thread-local stack push, not a
                // freelist lock. The cache rides into the worker's
                // closure and flushes when the thread exits (before
                // join returns), so the post-run pool audit still
                // balances.
                let mut cache = pool.cache(worker_burst);
                move |q: usize, burst: &mut Vec<Mbuf>| {
                    // One lock, one process_burst, one histogram pass,
                    // one free_burst — per burst, never per packet.
                    let mut slot = apps[q].lock();
                    let _verdicts = slot.proc.process_burst(burst);
                    if measure_latency {
                        if let Some(clock) = clock_cell.get() {
                            let done = clock.now();
                            for mbuf in burst.iter() {
                                let lat = done.saturating_sub(mbuf.arrival);
                                slot.latency_ns.record(lat.as_nanos());
                            }
                        }
                    }
                    drop(slot);
                    cache.free_burst(burst.drain(..));
                }
            }
        };
        let consumers: Vec<WorkerRing> = port.consumers().into_iter().map(WorkerRing).collect();
        let worker_set = match &trace_hub {
            Some(trace) => WorkerSet::start_discipline_scoped_traced(
                sc.exec,
                cfg,
                spec.clone(),
                consumers,
                make_process,
                &hub,
                trace,
            ),
            None => WorkerSet::start_discipline_scoped_with_telemetry(
                sc.exec,
                cfg,
                spec.clone(),
                consumers,
                make_process,
                &hub,
            ),
        };
        // Interrupt-driven workers park on per-queue doorbells; arm the
        // RSS port's producer-side hook so every accepted burst rings the
        // queue's bell (the "raise the IRQ" edge). The hook is installed
        // before generation starts, so no accepted frame can pre-date it.
        if matches!(spec, DisciplineSpec::InterruptLike(_)) {
            for q in 0..sc.n_queues {
                let bell = Arc::clone(worker_set.doorbell(q));
                port.set_wake_hook(q, Arc::new(move || bell.ring()));
            }
        }
        worker_set
    });
    let port = Arc::new(port);

    // ---- sampler thread (the realtime counterpart of the simulation's
    // scheduled sampling events): every `series_every` it snapshots the
    // hub's cumulative counters plus the ring/pool occupancy gauges, and
    // takes one final snapshot after shutdown accounting settles so the
    // windowed series telescopes exactly to the report's totals.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler_thread = sc.series_every.map(|every| {
        let hub = Arc::clone(&hub);
        let port = Arc::clone(&port);
        let pool = pool.clone();
        let apps = Arc::clone(&apps);
        let stop = Arc::clone(&sampler_stop);
        let trace_hub = trace_hub.clone();
        let gen_jitter = Arc::clone(&gen_jitter);
        let interval = Duration::from_nanos(every.as_nanos());
        std::thread::Builder::new()
            .name("metronome-sampler".into())
            .spawn(move || {
                let mut sampler = Sampler::new(every);
                let mut last = Instant::now();
                loop {
                    // Acquire pairs with the Release store below: once the
                    // flag reads true, every counter write the main thread
                    // made before raising it (worker counters settled by
                    // join, stranded-frame mirrors) is visible here — the
                    // final snapshot must telescope exactly.
                    while last.elapsed() < interval && !stop.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let stopping = stop.load(Ordering::Acquire);
                    let mut snap =
                        CounterSnapshot::new(Nanos(run_start.elapsed().as_nanos() as u64));
                    hub.fill_snapshot(&mut snap);
                    snap.offered = port.total_offered() + snap.dropped_pool + snap.dropped_fault;
                    snap.occupancy = port.occupancies();
                    snap.pool_in_use = pool.in_use() as u64;
                    snap.pool_cached = pool.cached() as u64;
                    if measure_latency {
                        // Merging the per-queue histograms takes each app
                        // mutex briefly; workers hold it once per burst,
                        // so contention is rare and bounded.
                        let mut merged = Histogram::latency();
                        for app in apps.iter() {
                            merged.merge(&app.lock().latency_ns);
                        }
                        snap.latency = Some(merged);
                    }
                    if let Some(trace) = &trace_hub {
                        // Recorders publish opportunistically (every flush
                        // batch and at drop), so a live window sees the
                        // state as of the last flush; the final snapshot
                        // after join sees everything.
                        let dump = trace.dump();
                        snap.wake_latency = Some(dump.wake_latency());
                        snap.oversleep_hist = Some(dump.oversleep());
                        snap.sched_delay = Some(dump.sched_delay());
                    }
                    // Generator pacing jitter, merged over shards. Each
                    // shard's lock is held per batch, so contention here
                    // is brief and bounded like the app mutexes above.
                    let mut jitter = Histogram::latency();
                    for shard in gen_jitter.iter() {
                        jitter.merge(&shard.lock());
                    }
                    snap.gen_jitter = Some(jitter);
                    sampler.sample(snap);
                    last = Instant::now();
                    if stopping {
                        return sampler.into_series();
                    }
                }
            })
            .expect("spawn sampler thread")
    });

    // ---- traffic: G flow-sharded arrival slices, wall-clock paced --------
    // `TrafficSpec::build(gen_shards, ...)` splits the aggregate rate into
    // `G` phase-staggered slices; every slice paces against ONE shared
    // clock, so interleaved arrival timestamps stay mutually comparable
    // and latency/jitter measurements reference the same zero. Under a
    // fault plan each shard's source passes through its own seeded
    // injector (independent sub-streams of the master seed; spikes
    // duplicate, stalls hold, starvation and jitter suppress). Suppressed
    // packets never reach the pool or the rings, so each shard mirrors
    // its own injector's counts into the hub as `DropCause::Fault`
    // (attributed to queue 0 — injection happens before RSS picks a
    // queue).
    let gen_clock = WallClock::start();
    clock_cell
        .set(gen_clock)
        .expect("latency clock anchored twice");
    let mut fault_stats: Vec<InjectionStats> = Vec::new();
    let pacers: Vec<PacedArrivals> = sc
        .traffic
        .build(gen_shards, &sc.nic, sc.seed)
        .into_iter()
        .enumerate()
        .map(|(s, mut source)| {
            if let Some(plan) = &sc.faults {
                let pf = PlannedFaults::new(
                    source,
                    plan.clone(),
                    Rng::new(sc.seed).stream(0xFA + s as u64),
                );
                fault_stats.push(pf.stats());
                source = Box::new(pf);
            }
            PacedArrivals::with_clock(source, sc.duration, gen_clock).with_max_batch(GEN_BATCH)
        })
        .collect();

    // ---- load generation --------------------------------------------------
    // Flow → shard assignment: flow `i` belongs to shard `i mod G`. Each
    // flow is produced by exactly one shard and each shard emits its slice
    // in schedule order, so per-flow packet order is preserved — the same
    // partitioning argument RSS itself makes on the receive side. `G = 1`
    // runs inline on this thread (the classic path, no spawn); `G > 1`
    // runs every shard on its own scoped producer thread, all offering
    // concurrently onto the multi-producer ring path.
    let shard_templates: Vec<Vec<(bytes::BytesMut, usize, u32)>> = (0..gen_shards)
        .map(|s| {
            templates
                .iter()
                .enumerate()
                .filter(|(i, _)| i % gen_shards == s)
                .map(|(_, t)| t.clone())
                .collect()
        })
        .collect();
    {
        let mut shards: Vec<_> = pacers
            .into_iter()
            .zip(shard_templates.iter())
            .enumerate()
            .map(|(s, (paced, templates))| GenShard {
                paced,
                templates,
                fault_stats: fault_stats.get(s).cloned(),
                jitter: &gen_jitter[s],
            })
            .collect();
        if gen_shards == 1 {
            run_gen_shard(shards.pop().expect("one shard"), &port, &pool, &hub);
        } else {
            let (port_ref, pool_ref, hub_ref) = (&*port, &pool, &*hub);
            std::thread::scope(|scope| {
                for (s, shard) in shards.into_iter().enumerate() {
                    std::thread::Builder::new()
                        .name(format!("metronome-gen{s}"))
                        .spawn_scoped(scope, move || {
                            run_gen_shard(shard, port_ref, pool_ref, hub_ref);
                        })
                        .expect("spawn generator shard");
                }
            });
        }
    }

    // ---- run out the horizon ----------------------------------------------
    // A source can dry up before the scenario ends (Silent traffic, an
    // OnOff off-tail): the workers must still run their idle sleep/wake
    // loop for the full configured duration, or idle-cost measurements
    // (wakes, busy fraction) would cover a spawn/teardown window instead
    // of the scenario — the sim runs the same horizon unconditionally.
    let elapsed = gen_clock.now();
    if elapsed < sc.duration {
        std::thread::sleep(Duration::from_nanos((sc.duration - elapsed).as_nanos()));
    }

    // ---- drain and stop ---------------------------------------------------
    // Generation is over, so `accepted` is final; wait for the workers to
    // catch up before stopping, bounded by a grace period. With no
    // workers (`Idle`) there is nothing to wait for: everything accepted
    // is stranded by construction.
    if let Some(m) = &metronome {
        let deadline = Instant::now() + DRAIN_GRACE;
        loop {
            let processed: u64 = (0..sc.n_queues).map(|q| m.processed(q)).sum();
            if processed >= port.total_accepted() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let stats = metronome.map(WorkerSet::stop).unwrap_or_default();
    // Busy time accrues from worker start to join — including the drain
    // tail past the traffic horizon — so CPU% must be normalized by the
    // same span, not by the scenario duration.
    let actual_wall = run_start.elapsed().as_secs_f64();
    // Anything still queued was accepted but never retrieved (only possible
    // if the grace period expired, or always under `Idle`): count it as
    // dropped so conservation stays exact — and recycle the buffers, so
    // the pool audit below still balances.
    let mut stranded_scratch: Vec<Mbuf> = Vec::new();
    let stranded: Vec<u64> = port
        .rings()
        .iter()
        .enumerate()
        .map(|(q, ring)| {
            let mut n = 0u64;
            while ring.pop_burst(&mut stranded_scratch, GEN_BATCH) > 0 {
                n += stranded_scratch.len() as u64;
                pool.free_burst(stranded_scratch.drain(..));
            }
            hub.dropped(q, DropCause::Ring, n);
            n
        })
        .collect();

    // Every buffer the pool handed out must be home again: the workers
    // recycle after each burst and each generator shard after each offer
    // (the shard caches flushed when `run_gen_shard` returned, the worker
    // caches when their threads exited), so a leak here is a real
    // datapath bug, not a timing artifact.
    debug_assert_eq!(pool.in_use(), 0, "mbuf leak: pool buffers unaccounted");
    debug_assert_eq!(pool.cached(), 0, "worker caches not flushed at exit");

    // Shutdown accounting is settled: release the sampler for its final
    // snapshot, so the series totals match the report's counters exactly.
    let timeseries = sampler_thread.map(|handle| {
        sampler_stop.store(true, Ordering::Release);
        handle.join().expect("sampler thread panicked")
    });
    let pool_drops: Vec<u64> = (0..sc.n_queues)
        .map(|q| hub.queue(q).dropped_pool.load(Ordering::Relaxed))
        .collect();

    // The Metronome discipline snapshots its adaptive controller at stop;
    // the lock-free baselines (and `Idle`) never touch one, so their
    // per-queue race/vacation columns read zero from a fresh instance.
    let ctrl = stats
        .controller
        .clone()
        .unwrap_or_else(|| AdaptiveController::new(worker_cfg.clone()));
    let forwarded = stats.total_processed();
    let dropped_pool: u64 = pool_drops.iter().sum();
    let dropped_ring = port.total_dropped() + stranded.iter().sum::<u64>();
    let dropped_fault: u64 = (0..sc.n_queues)
        .map(|q| hub.queue(q).dropped_fault.load(Ordering::Relaxed))
        .sum();
    let dropped = dropped_ring + dropped_pool + dropped_fault;
    let offered = port.total_offered() + dropped_pool + dropped_fault;
    assert_eq!(
        offered,
        forwarded + dropped,
        "packet conservation violated in the realtime pipeline"
    );

    // ---- report: same columns as the simulator ----------------------------
    let mut report =
        RunReport::from_counts(sc.name.clone(), sc.duration, offered, forwarded, dropped);
    report.dropped_ring = dropped_ring;
    report.dropped_pool = dropped_pool;
    report.dropped_fault = dropped_fault;
    report.mempool = Some(pool.stats());
    report.timeseries = timeseries;
    report.queues = (0..sc.n_queues)
        .map(|q| {
            let st = ctrl.queue(q);
            QueueReport {
                mean_vacation_us: st.mean_vacation().map_or(0.0, |v| v.as_micros_f64()),
                mean_busy_us: st.mean_busy().map_or(0.0, |b| b.as_micros_f64()),
                // NV (packets found queued at acquire) is not instrumented
                // on the hot path; the sim reports it.
                nv: 0.0,
                rho: ctrl.rho(q),
                total_tries: st.total_tries,
                busy_tries: st.busy_tries,
                busy_try_fraction: st.busy_try_fraction(),
                drained: stats.processed.get(q).copied().unwrap_or(0),
                dropped: port.rings()[q].dropped() + stranded[q] + pool_drops[q],
                dropped_pool: pool_drops[q],
            }
        })
        .collect();
    // CPU: the workers' own measured awake time (the telemetry hub's busy
    // spans, flushed at every sleep/park/spin boundary) over the actual
    // wall span — comparable across disciplines: a busy poller reads
    // ≈100% per queue, a parked interrupt worker ≈0 at idle, Metronome in
    // between and proportional to load. This measures *occupancy*, not
    // scheduler CPU time: on an oversubscribed host a spinning worker's
    // involuntary descheduling still counts as busy, exactly like the
    // "burned core" the paper charges to static DPDK. Real deployments
    // would read /proc; the sim charges calibrated cycle costs instead.
    report.cpu_per_thread_pct = (0..n_workers)
        .map(|w| {
            hub.worker(w).busy_nanos.load(Ordering::Relaxed) as f64
                / 1e9
                / actual_wall.max(f64::MIN_POSITIVE)
                * 100.0
        })
        .collect();
    report.cpu_total_pct = report.cpu_per_thread_pct.iter().sum();
    report.busy_try_fraction = ctrl.busy_try_fraction();
    report.total_wakes = stats.wakes.iter().sum();
    if measure_latency {
        let mut merged = Histogram::latency();
        for app in apps.iter() {
            merged.merge(&app.lock().latency_ns);
        }
        report.latency_us = merged.boxplot_scaled(1e-3);
    }
    // Pacing fidelity, merged over generator shards (always measured).
    let mut jitter_merged = Histogram::latency();
    for shard in gen_jitter.iter() {
        jitter_merged.merge(&shard.lock());
    }
    report.gen_jitter_us = jitter_merged.boxplot_scaled(1e-3);
    // Workers joined above, so every recorder has deposited its final
    // ring state: this dump is the complete flight record of the run.
    report.trace = trace_hub.as_ref().map(|t| t.dump());
    Ok(report)
}

/// One generator shard's working set: its arrival-slice pacer, its flow
/// templates (the `i mod G == s` partition), its injector stats (when a
/// fault plan is armed) and its jitter-histogram slot.
struct GenShard<'a> {
    paced: PacedArrivals,
    templates: &'a [(bytes::BytesMut, usize, u32)],
    fault_stats: Option<InjectionStats>,
    jitter: &'a Mutex<Histogram>,
}

/// Produce one shard's arrival slice to exhaustion: pace, stamp, scatter,
/// offer, recycle. Runs inline for `gen_shards = 1` and on a scoped
/// producer thread per shard otherwise; every counter it touches is
/// shard-additive (hub atomics, ring counters, pool accounting), so the
/// aggregate is exact regardless of interleaving.
fn run_gen_shard(shard: GenShard<'_>, port: &RssPort, pool: &Mempool, hub: &TelemetryHub) {
    let GenShard {
        mut paced,
        templates,
        fault_stats,
        jitter,
    } = shard;
    // Per-shard working set: a mempool cache (burst alloc/free is a
    // thread-local stack drain, no freelist lock), a scatter arena
    // (counting sort to per-queue runs, no per-queue Vec churn), and a
    // coarse clock on the pacer's timeline (ONE precise read per batch —
    // the per-packet jitter stamps reuse it).
    let mut cache = pool.cache(GEN_BATCH);
    let mut scatter = QueueScatter::new(port.n_queues());
    let coarse = CoarseClock::from_epoch(paced.clock().anchor());
    let mut blanks: Vec<Mbuf> = Vec::with_capacity(GEN_BATCH);
    let mut seq = 0usize;
    let mut mirrored_fault = 0u64;
    while let Some(batch) = paced.next_batch() {
        // Mirror the injector's suppressions into the hub incrementally,
        // so a live sampler sees fault drops as they happen rather than
        // in one end-of-run burst.
        if let Some(stats) = &fault_stats {
            let total = stats.drops();
            if total > mirrored_fault {
                hub.dropped(0, DropCause::Fault, total - mirrored_fault);
                mirrored_fault = total;
            }
        }
        // Offered-vs-scheduled lateness of the whole batch against one
        // amortized timestamp. A batch IS one emission instant — the
        // per-packet vDSO reads the coarse clock removes were measuring
        // the clock, not the pacing.
        let now = coarse.tick();
        {
            let mut j = jitter.lock();
            for &t in batch {
                j.record(now.saturating_sub(t).as_nanos());
            }
        }
        cache.alloc_burst(batch.len(), &mut blanks);
        for &t in batch {
            let (frame, q, hash) = &templates[seq % templates.len()];
            seq += 1;
            match blanks.pop() {
                Some(mut mbuf) => {
                    mbuf.refill(frame);
                    mbuf.queue = *q as u16;
                    mbuf.rss_hash = *hash;
                    mbuf.arrival = t;
                    scatter.push(*q, mbuf);
                }
                // Pool exhausted: the NIC has a descriptor but no buffer
                // to DMA into — a drop cause of its own.
                None => hub.dropped(*q, DropCause::Pool, 1),
            }
        }
        scatter.dispatch(|q, frames| {
            port.offer_burst(q, frames);
            // Whatever the ring rejected is tail-dropped (already counted
            // by the ring; mirrored into the telemetry hub): recycle the
            // buffers in one cache transaction.
            hub.dropped(q, DropCause::Ring, frames.len() as u64);
            cache.free_burst(frames.drain(..));
        });
    }
    // This shard's slice is over: sweep up its injector's remaining
    // suppressions, plus any packets a queue stall still holds past the
    // horizon — those are stranded upstream of the NIC and will never be
    // offered, so they close the conservation identity as fault drops.
    if let Some(stats) = &fault_stats {
        let total = stats.drops() + stats.held();
        if total > mirrored_fault {
            hub.dropped(0, DropCause::Fault, total - mirrored_fault);
        }
    }
    // The shard cache flushes on drop, before the scoped join — the
    // post-run pool audit sees everything home.
}
