//! Experiment outputs.

use metronome_dpdk::MempoolStats;
use metronome_sim::stats::Boxplot;
use metronome_sim::Nanos;
use metronome_telemetry::export::json::{timeseries_json, Json};
use metronome_telemetry::{TimeSeries, TraceDump};

/// Per-queue outcome of a run.
#[derive(Clone, Debug)]
pub struct QueueReport {
    /// Mean measured vacation period, µs.
    pub mean_vacation_us: f64,
    /// Mean measured busy period, µs.
    pub mean_busy_us: f64,
    /// Mean packets found queued at busy-period start (Table I's `NV`).
    pub nv: f64,
    /// Final smoothed load estimate.
    pub rho: f64,
    /// Successful trylock acquisitions.
    pub total_tries: u64,
    /// Failed trylock attempts.
    pub busy_tries: u64,
    /// busy_tries / (busy_tries + total_tries).
    pub busy_try_fraction: f64,
    /// Packets drained from this queue.
    pub drained: u64,
    /// Packets lost at this queue, all causes (ring tail-drop plus, on
    /// the realtime backend, mempool exhaustion for frames RSS had
    /// steered here).
    pub dropped: u64,
    /// Of `dropped`, packets lost to mempool exhaustion (the frame's
    /// buffer could not be allocated; always 0 on the simulation backend,
    /// which does not model the pool).
    pub dropped_pool: u64,
}

/// One point of the Fig. 9 adaptation time series.
#[derive(Clone, Copy, Debug)]
pub struct RampPoint {
    /// Sample time, seconds.
    pub t_s: f64,
    /// True offered rate, Mpps.
    pub true_mpps: f64,
    /// Metronome's estimate `ρ̂·µ`, Mpps.
    pub est_mpps: f64,
    /// Current `TS`, µs (queue 0).
    pub ts_us: f64,
    /// Current smoothed ρ (queue 0).
    pub rho: f64,
    /// Total packet-thread CPU over the last window, percent.
    pub cpu_pct: f64,
}

/// The full outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario label.
    pub name: String,
    /// Simulated duration.
    pub duration: Nanos,
    /// Packets offered by the NIC (accepted + dropped).
    pub offered: u64,
    /// Packets retrieved and processed.
    pub forwarded: u64,
    /// Packets lost, all causes (`dropped_ring + dropped_pool`).
    pub dropped: u64,
    /// Of `dropped`, packets tail-dropped at the Rx rings (descriptor
    /// exhaustion; includes frames stranded in rings at shutdown).
    pub dropped_ring: u64,
    /// Of `dropped`, packets lost to mempool exhaustion — the NIC had a
    /// free descriptor but no buffer to DMA into. Always 0 on the
    /// simulation backend, which does not model the pool.
    pub dropped_pool: u64,
    /// Of `dropped`, packets suppressed by injected faults (`FaultPlan` /
    /// `FaultyArrivals`) before they reached the rings. Always 0 when the
    /// scenario injects no faults.
    pub dropped_fault: u64,
    /// Mempool counters of the realtime backend's shared buffer pool
    /// (`None` on the simulation backend): pool-sizing visibility —
    /// population, peak occupancy, alloc failures.
    pub mempool: Option<MempoolStats>,
    /// Forwarding throughput in Mpps.
    pub throughput_mpps: f64,
    /// Loss fraction (0..1).
    pub loss: f64,
    /// Total CPU of the packet threads, percent of one core (can exceed
    /// 100 with multiple threads — same convention as the paper's plots).
    pub cpu_total_pct: f64,
    /// Per-thread CPU percentages.
    pub cpu_per_thread_pct: Vec<f64>,
    /// Average package power, watts.
    pub power_watts: f64,
    /// End-to-end latency summary (µs), if sampling was enabled.
    pub latency_us: Option<Boxplot>,
    /// Generator pacing jitter summary (µs): how late each offered packet
    /// left relative to its scheduled departure, merged over generator
    /// shards (`None` on the simulation backend, where departure times are
    /// exact by construction).
    pub gen_jitter_us: Option<Boxplot>,
    /// Per-queue details.
    pub queues: Vec<QueueReport>,
    /// Aggregate busy-try fraction.
    pub busy_try_fraction: f64,
    /// Total thread wake-ups.
    pub total_wakes: u64,
    /// When the ferret job finished (last worker), if it ran and finished.
    pub ferret_completion: Option<Nanos>,
    /// Ferret's uncontended duration, for slowdown ratios.
    pub ferret_standalone: Option<Nanos>,
    /// Fig. 9 time series (empty unless requested).
    pub series: Vec<RampPoint>,
    /// Windowed telemetry series (`None` unless the scenario requested
    /// sampling via `with_series`): per-window duty cycle, throughput,
    /// `TS`/ρ trajectory, drops by cause, occupancy, latency percentiles.
    pub timeseries: Option<TimeSeries>,
    /// Raw vacation-period samples in µs (Fig. 4 / Table I), capped.
    pub vacation_samples_us: Vec<f64>,
    /// Flight-recorder trace dump (`None` unless the scenario enabled
    /// tracing via `with_trace`): per-worker/shard event rings plus
    /// wake-latency, oversleep and scheduler-delay histograms. Render it
    /// with [`TraceDump::chrome_json`] for `chrome://tracing`/Perfetto or
    /// [`TraceDump::summary_json`] for counts.
    pub trace: Option<TraceDump>,
}

impl RunReport {
    /// Assemble the backend-independent core of a report from the raw
    /// packet counts: derived throughput and loss are computed here, every
    /// backend-specific field starts empty. Both the discrete-event runner
    /// and the realtime runner build their reports through this, so the
    /// two backends' columns stay derivation-compatible by construction.
    pub fn from_counts(
        name: impl Into<String>,
        duration: Nanos,
        offered: u64,
        forwarded: u64,
        dropped: u64,
    ) -> RunReport {
        let wall = duration.as_secs_f64();
        RunReport {
            name: name.into(),
            duration,
            offered,
            forwarded,
            dropped,
            // Until a backend says otherwise, every drop is a ring drop
            // (the simulation has no pool to exhaust).
            dropped_ring: dropped,
            dropped_pool: 0,
            dropped_fault: 0,
            mempool: None,
            throughput_mpps: if wall > 0.0 {
                forwarded as f64 / wall / 1e6
            } else {
                0.0
            },
            loss: if offered > 0 {
                dropped as f64 / offered as f64
            } else {
                0.0
            },
            cpu_total_pct: 0.0,
            cpu_per_thread_pct: Vec::new(),
            power_watts: 0.0,
            latency_us: None,
            gen_jitter_us: None,
            queues: Vec::new(),
            busy_try_fraction: 0.0,
            total_wakes: 0,
            ferret_completion: None,
            ferret_standalone: None,
            series: Vec::new(),
            timeseries: None,
            vacation_samples_us: Vec::new(),
            trace: None,
        }
    }

    /// Loss in per-mille, the unit Table I uses.
    pub fn loss_permille(&self) -> f64 {
        self.loss * 1000.0
    }

    /// Mean measured vacation across queues, µs.
    pub fn mean_vacation_us(&self) -> f64 {
        let with_data: Vec<&QueueReport> = self
            .queues
            .iter()
            .filter(|q| q.mean_vacation_us > 0.0)
            .collect();
        if with_data.is_empty() {
            0.0
        } else {
            with_data.iter().map(|q| q.mean_vacation_us).sum::<f64>() / with_data.len() as f64
        }
    }

    /// Mean measured busy period across queues, µs.
    pub fn mean_busy_us(&self) -> f64 {
        let with_data: Vec<&QueueReport> = self
            .queues
            .iter()
            .filter(|q| q.mean_busy_us > 0.0)
            .collect();
        if with_data.is_empty() {
            0.0
        } else {
            with_data.iter().map(|q| q.mean_busy_us).sum::<f64>() / with_data.len() as f64
        }
    }

    /// Mean NV across queues.
    pub fn mean_nv(&self) -> f64 {
        let with_data: Vec<&QueueReport> = self.queues.iter().filter(|q| q.nv > 0.0).collect();
        if with_data.is_empty() {
            0.0
        } else {
            with_data.iter().map(|q| q.nv).sum::<f64>() / with_data.len() as f64
        }
    }

    /// Ferret slowdown vs its standalone duration, if it ran to completion.
    pub fn ferret_slowdown(&self) -> Option<f64> {
        match (self.ferret_completion, self.ferret_standalone) {
            (Some(done), Some(alone)) if !alone.is_zero() => Some(done / alone),
            _ => None,
        }
    }

    /// Mean ρ across queues.
    pub fn mean_rho(&self) -> f64 {
        if self.queues.is_empty() {
            0.0
        } else {
            self.queues.iter().map(|q| q.rho).sum::<f64>() / self.queues.len() as f64
        }
    }

    /// Queue `q`'s share of the forwarded traffic, in `[0, 1]` — 0 when
    /// nothing was forwarded (Silent / zero-rate scenarios), never NaN.
    pub fn queue_share(&self, q: usize) -> f64 {
        if self.forwarded == 0 {
            0.0
        } else {
            self.queues.get(q).map_or(0.0, |qr| qr.drained as f64) / self.forwarded as f64
        }
    }

    /// Machine-readable JSON of the whole report (through the telemetry
    /// JSON writer — the vendored build has no serde). Integer counters
    /// are emitted exactly; non-finite floats render as `null`, so a
    /// pathological report can never produce unparseable output.
    pub fn to_json(&self) -> String {
        let queues: Vec<Json> = self
            .queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                Json::obj()
                    .with("queue", i)
                    .with("mean_vacation_us", q.mean_vacation_us)
                    .with("mean_busy_us", q.mean_busy_us)
                    .with("nv", q.nv)
                    .with("rho", q.rho)
                    .with("total_tries", q.total_tries)
                    .with("busy_tries", q.busy_tries)
                    .with("busy_try_fraction", q.busy_try_fraction)
                    .with("drained", q.drained)
                    .with("share", self.queue_share(i))
                    .with("dropped", q.dropped)
                    .with("dropped_pool", q.dropped_pool)
            })
            .collect();
        let boxplot = |b: &Boxplot| {
            Json::obj()
                .with("min", b.min)
                .with("q1", b.q1)
                .with("median", b.median)
                .with("q3", b.q3)
                .with("max", b.max)
                .with("mean", b.mean)
                .with("std_dev", b.std_dev)
                .with("count", b.count)
        };
        let mut doc = Json::obj()
            .with("name", self.name.as_str())
            .with("duration_s", self.duration.as_secs_f64())
            .with("offered", self.offered)
            .with("forwarded", self.forwarded)
            .with("dropped", self.dropped)
            .with("dropped_ring", self.dropped_ring)
            .with("dropped_pool", self.dropped_pool)
            .with("dropped_fault", self.dropped_fault)
            .with("throughput_mpps", self.throughput_mpps)
            .with("loss", self.loss)
            .with("cpu_total_pct", self.cpu_total_pct)
            .with(
                "cpu_per_thread_pct",
                Json::Arr(self.cpu_per_thread_pct.iter().map(|&c| c.into()).collect()),
            )
            .with("power_watts", self.power_watts)
            .with("busy_try_fraction", self.busy_try_fraction)
            .with("total_wakes", self.total_wakes)
            .with("latency_us", self.latency_us.as_ref().map(boxplot))
            .with("gen_jitter_us", self.gen_jitter_us.as_ref().map(boxplot))
            .with(
                "mempool",
                self.mempool.map(|m| {
                    Json::obj()
                        .with("population", m.population)
                        .with("allocs", m.allocs)
                        .with("frees", m.frees)
                        .with("alloc_failures", m.alloc_failures)
                        .with("in_use_peak", m.in_use_peak)
                }),
            )
            .with(
                "ferret_completion_s",
                self.ferret_completion.map(|n| n.as_secs_f64()),
            )
            .with("ferret_slowdown", self.ferret_slowdown())
            .with("queues", Json::Arr(queues));
        match &self.timeseries {
            Some(ts) => doc.push("timeseries", timeseries_json(ts)),
            None => doc.push("timeseries", Json::Null),
        };
        // The trace rides along as its summary (event/drop counts per
        // ring, histogram quantiles) — the full Chrome dump is a separate
        // artifact callers render on demand.
        doc.push(
            "trace",
            self.trace
                .as_ref()
                .map(TraceDump::summary_json)
                .unwrap_or(Json::Null),
        );
        doc.render()
    }
}
